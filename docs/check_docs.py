#!/usr/bin/env python
"""Docs-site checks, run by the CI docs job.

The documentation is a plain markdown tree; "building" it means proving
it is internally consistent with the code:

1. every relative markdown link in ``docs/*.md`` and ``README.md``
   resolves to an existing file or directory;
2. every path mentioned in the paper-map tables (``docs/paper_map.md``)
   exists in the repository;
3. every ``repro-qss`` subcommand and every long option of the argument
   parser is documented in ``docs/cli.md`` (introspected from
   ``repro.cli.build_parser`` — adding a flag without documenting it
   fails CI).

Exits non-zero with a summary of every violation.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

#: Markdown inline links: ``[text](target)``; external schemes are skipped.
LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)\s]*)?\)")
#: Repo paths quoted in the paper-map tables, e.g. ```src/repro/...py```.
PATH_MENTION = re.compile(r"`((?:src|tests|benchmarks|docs|examples)/[^`\s]+)`")


def check_links(errors: list) -> int:
    pages = sorted(DOCS.glob("*.md")) + [REPO / "README.md"]
    checked = 0
    for page in pages:
        for match in LINK.finditer(page.read_text(encoding="utf-8")):
            target = match.group(1)
            if "://" in target or target.startswith("mailto:"):
                continue
            checked += 1
            resolved = (page.parent / target).resolve()
            if not resolved.exists():
                errors.append(f"{page.relative_to(REPO)}: broken link -> {target}")
    return checked


def check_paper_map(errors: list) -> int:
    text = (DOCS / "paper_map.md").read_text(encoding="utf-8")
    mentions = sorted(set(PATH_MENTION.findall(text)))
    if len(mentions) < 10:
        errors.append(
            f"paper_map.md: expected a table full of repo paths, found "
            f"only {len(mentions)}"
        )
    for mention in mentions:
        if not (REPO / mention).exists():
            errors.append(f"paper_map.md: missing path -> {mention}")
    return len(mentions)


def check_cli_reference(errors: list) -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.cli import build_parser  # noqa: E402

    text = (DOCS / "cli.md").read_text(encoding="utf-8")
    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions  # noqa: SLF001 - argparse introspection
        if action.dest == "command"
    )
    checked = 0
    for name, sub in subparsers.choices.items():
        checked += 1
        if f"## `{name}`" not in text:
            errors.append(f"cli.md: undocumented subcommand -> {name}")
            continue
        for action in sub._actions:  # noqa: SLF001
            for option in action.option_strings:
                if not option.startswith("--") or option == "--help":
                    continue
                checked += 1
                if option not in text:
                    errors.append(
                        f"cli.md: undocumented option of {name!r} -> {option}"
                    )
    return checked


def main() -> int:
    errors: list = []
    links = check_links(errors)
    paths = check_paper_map(errors)
    cli = check_cli_reference(errors)
    if errors:
        print(f"docs check FAILED ({len(errors)} problem(s)):")
        for error in errors:
            print(f"  - {error}")
        return 1
    print(
        f"docs check ok: {links} links, {paths} paper-map paths, "
        f"{cli} CLI symbols verified"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
