"""QSS synthesis pipeline benchmarks: mask-based compiled vs legacy.

The legacy pipeline rebuilds a Python subnet per T-allocation and
recompiles every T-reduction before the schedulability simulation; the
compiled pipeline streams mask-based reductions over one compiled parent
net (zero rebuilds, zero recompiles), computes T-invariants on int64
incidence submatrices and runs the cycle search on masked marking
tuples.  These benches verify the two produce identical reports and pin
the end-to-end speedup contract: **>= 3x on nets with >= 64
T-allocations** (the ``independent_choices`` / ``nested_choices``
families of the scalability study).

Run ``python benchmarks/bench_qss_pipeline.py --smoke`` for a fast
functional pass (equivalence only, no timing statistics) — the mode CI
uses.
"""

from __future__ import annotations

import sys
import time

import pytest

from repro.petrinet.corpus import generate_corpus, run_corpus
from repro.petrinet.generators import independent_choices_net, nested_choices_net
from repro.qss import analyse

#: The contract nets: both have >= 64 T-allocations.
CONTRACT_NETS = [
    ("independent_choices_6x2", lambda: independent_choices_net(6, 2), 64),
    ("nested_choices_10", lambda: nested_choices_net(10), 1024),
]

#: Required end-to-end speedup of the mask pipeline over legacy.
REQUIRED_SPEEDUP = 3.0


def _best_of(callable_, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def _assert_reports_identical(legacy, compiled):
    assert compiled.schedulable == legacy.schedulable
    assert compiled.allocation_count == legacy.allocation_count
    assert compiled.reduction_count == legacy.reduction_count
    assert [v.cycle for v in compiled.verdicts] == [v.cycle for v in legacy.verdicts]
    assert [v.reduction.signature() for v in compiled.verdicts] == [
        v.reduction.signature() for v in legacy.verdicts
    ]
    assert [v.invariants for v in compiled.verdicts] == [
        v.invariants for v in legacy.verdicts
    ]


@pytest.mark.parametrize("name,build,allocations", CONTRACT_NETS)
def test_compiled_pipeline_speedup_contract(name, build, allocations):
    """Identical reports, and >= 3x end-to-end on >= 64-allocation nets."""
    net = build()
    legacy = analyse(net, engine="legacy")
    compiled = analyse(net, engine="compiled")
    assert legacy.allocation_count == allocations
    _assert_reports_identical(legacy, compiled)

    legacy_time = _best_of(lambda: analyse(net, engine="legacy"))
    compiled_time = _best_of(lambda: analyse(net, engine="compiled"))
    speedup = legacy_time / compiled_time
    print(
        f"\nqss pipeline {name} ({allocations} allocations, "
        f"{legacy.reduction_count} reductions): "
        f"legacy={legacy_time * 1000:.1f}ms "
        f"compiled={compiled_time * 1000:.1f}ms speedup={speedup:.1f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"mask-based pipeline must be >= {REQUIRED_SPEEDUP}x faster than the "
        f"legacy rebuild pipeline on {name}; measured {speedup:.2f}x"
    )


@pytest.mark.parametrize("engine", ["legacy", "compiled"])
def test_qss_pipeline_engine_timings(benchmark, engine):
    """pytest-benchmark report rows for the two pipeline engines."""
    net = independent_choices_net(6, 2)
    report = benchmark(analyse, net, engine=engine)
    assert report.schedulable and report.reduction_count == 64
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["allocations"] = report.allocation_count


def test_fail_fast_beats_exhaustive_on_unschedulable_net(benchmark):
    """fail_fast prunes both the checks and the streaming enumeration."""
    # nested choices with a poisoned initial marking: remove the source
    # token flow by checking from an empty marking is intrusive, so use
    # the timing-free functional property instead — fail_fast must
    # examine strictly fewer reductions than the exhaustive run.
    from repro.petrinet.generators import unschedulable_merge_net

    net = unschedulable_merge_net()
    exhaustive = analyse(net)
    fast = benchmark(analyse, net, fail_fast=True)
    assert not fast.schedulable and not fast.complete
    assert len(fast.verdicts) < len(exhaustive.verdicts)
    benchmark.extra_info["verdicts_checked"] = len(fast.verdicts)


def test_corpus_qss_sweep_parallel_matches_sequential():
    """The corpus schedulability sweep runs under the multiprocessing pool
    and returns verdicts identical to the in-process loop."""
    specs = generate_corpus(24, seed=5)
    sequential = run_corpus(specs, workers=1, analyse="qss")
    parallel = run_corpus(specs, workers=2, analyse="qss")
    strip = lambda rs: [r.to_dict() | {"elapsed_ms": 0.0} for r in rs]
    assert strip(parallel.records) == strip(sequential.records)
    assert not parallel.errors
    swept = [r for r in parallel.records if r.schedulable is not None]
    assert swept, "sweep must produce schedulability verdicts"


def _smoke() -> int:
    """Fast functional pass: equivalence on the contract nets, no timing."""
    for name, build, allocations in CONTRACT_NETS:
        net = build()
        legacy = analyse(net, engine="legacy")
        compiled = analyse(net, engine="compiled")
        assert legacy.allocation_count == allocations
        _assert_reports_identical(legacy, compiled)
        print(
            f"smoke {name}: {allocations} allocations, "
            f"{compiled.reduction_count} reductions, "
            f"schedulable={compiled.schedulable} — engines identical"
        )
    test_corpus_qss_sweep_parallel_matches_sequential()
    print("smoke corpus qss sweep: parallel == sequential")
    return 0


if __name__ == "__main__":  # pragma: no cover
    if "--smoke" in sys.argv:
        sys.exit(_smoke())
    print("use --smoke, or run through pytest for the timing contract")
    sys.exit(2)
