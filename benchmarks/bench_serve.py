"""Serving-stack benchmark: sustained events/s through the fleet kernel.

The service refactor split `FleetSimulator` into the `FleetEngine`
stepping kernel (memoized quiescence cascades + vectorized dispatch)
and orchestration layers — the one-shot batch path and the always-on
sharded service both drive the same kernel.  This bench pins the
serving throughput contract:

**>= 500,000 events/s aggregate on a 10,000-instance ATM fleet**
(one-shot path, single core; ~1.0M events/s on a development machine —
the floor leaves 2x headroom for noisy runners).

It also records the always-on service path (supervisor + shard actors
+ typed messages) on a smaller fleet — informational, no floor, since
the actor overhead is the price of incremental ingest, not of serving.

Every timed row lands in ``BENCH_serve.json`` (via ``bench_io``, so
rows accumulate across engines/runs) and ``--smoke`` appends one entry
to the committed ``BENCH_serve.history.json`` — the machine-readable
throughput trajectory of the serving stack across PRs.  CI runs
``--smoke`` (scaled down, equality-checked, no floor); run through
pytest locally for the enforced contract.
"""

from __future__ import annotations

import asyncio
import sys
import time
from dataclasses import asdict

import numpy as np

from bench_io import append_history, record_bench_rows

from repro.apps.atm import MODULE_PARTITION, build_atm_server_net, make_fleet_testbench
from repro.runtime import FleetSimulator, ModuleAssignment
from repro.service import FleetSupervisor, InjectBatch, events_to_injects

#: The contract fleet: 10k ATM server instances, the Table I testbench
#: size per instance (~114 events each with the Ticks riding along).
CONTRACT_INSTANCES = 10_000
CONTRACT_CELLS = 50

#: Enforced floor for the one-shot serving path on the contract fleet.
REQUIRED_EVENTS_PER_SECOND = 500_000.0

#: Smoke sizes (CI): same machinery, affordable fleet.
SMOKE_INSTANCES = 1_000
SMOKE_CELLS = 10


def _workload(instances: int, cells: int):
    net = build_atm_server_net()
    assignment = ModuleAssignment.from_groups(MODULE_PARTITION)
    streams = make_fleet_testbench(instances, cells=cells, seed=2026)
    return net, assignment, streams


def _batch_row(instances: int, cells: int, rounds: int = 2):
    """Timed one-shot runs through the kernel; returns (row, result)."""
    net, assignment, streams = _workload(instances, cells)
    simulator = FleetSimulator(net, assignment)
    result = simulator.run(streams)  # warm-up: populates the cascade memo
    best = result.elapsed_seconds
    for _ in range(rounds):
        best = min(best, simulator.run(streams).elapsed_seconds)
    events = result.stats.events_processed
    row = {
        "path": "batch",
        "instances": instances,
        "events": events,
        "seconds": best,
        "events_per_second": events / best,
    }
    return row, result


def _service_row(instances: int, cells: int, shards: int = 2):
    """Timed service run (async shards, batch injects); returns (row, result)."""
    net, assignment, streams = _workload(instances, cells)

    async def go():
        supervisor = FleetSupervisor(net, assignment, shards=shards)
        await supervisor.start()
        injects = events_to_injects(streams)
        started = time.perf_counter()
        for lo in range(0, len(injects), 2048):
            await supervisor.inject(
                InjectBatch(events=tuple(injects[lo : lo + 2048]))
            )
        result = await supervisor.stop(drain=True)
        return result, time.perf_counter() - started

    result, seconds = asyncio.run(go())
    events = result.stats.events_processed
    row = {
        "path": "service",
        "shards": shards,
        "instances": instances,
        "events": events,
        "seconds": seconds,
        "events_per_second": events / seconds,
    }
    return row, result


def _assert_equal(expected, actual) -> None:
    assert asdict(expected.stats) == asdict(actual.stats)
    assert np.array_equal(expected.instance_cycles, actual.instance_cycles)
    assert np.array_equal(expected.instance_events, actual.instance_events)


class TestServeThroughput:
    def test_kernel_sustains_500k_events_per_second(self):
        """>= 500k events/s on the 10k-instance ATM contract fleet."""
        row, _ = _batch_row(CONTRACT_INSTANCES, CONTRACT_CELLS)
        record_bench_rows("serve", [row])
        print(
            f"\nserve contract: {row['instances']} instances, "
            f"{row['events']} events in {row['seconds']:.3f}s -> "
            f"{row['events_per_second']:,.0f} events/s"
        )
        assert row["events_per_second"] >= REQUIRED_EVENTS_PER_SECOND, (
            f"serving kernel must sustain >= "
            f"{REQUIRED_EVENTS_PER_SECOND:,.0f} events/s on the "
            f"{CONTRACT_INSTANCES}-instance ATM fleet; measured "
            f"{row['events_per_second']:,.0f}"
        )

    def test_service_path_matches_and_is_recorded(self):
        """Service == batch on the same fleet; throughput recorded, no floor."""
        service_row, service_result = _service_row(SMOKE_INSTANCES, SMOKE_CELLS)
        net, assignment, streams = _workload(SMOKE_INSTANCES, SMOKE_CELLS)
        expected = FleetSimulator(net, assignment).run(streams)
        _assert_equal(expected, service_result)
        record_bench_rows("serve", [service_row])
        print(
            f"\nserve service path: {service_row['events']} events via "
            f"{service_row['shards']} shard(s) -> "
            f"{service_row['events_per_second']:,.0f} events/s"
        )


def _smoke() -> int:
    """CI pass: scaled-down fleet, equality-checked, rows + history."""
    batch_row, batch_result = _batch_row(SMOKE_INSTANCES, SMOKE_CELLS, rounds=1)
    service_row, service_result = _service_row(SMOKE_INSTANCES, SMOKE_CELLS)
    _assert_equal(batch_result, service_result)
    path = record_bench_rows("serve", [batch_row, service_row])
    print(
        f"smoke serve batch: {batch_row['events']} events in "
        f"{batch_row['seconds']:.3f}s -> "
        f"{batch_row['events_per_second']:,.0f} events/s"
    )
    print(
        f"smoke serve service: {service_row['shards']} shard(s), results "
        f"identical to batch -> {service_row['events_per_second']:,.0f} "
        f"events/s -> {path}"
    )
    entry = {
        "instances": SMOKE_INSTANCES,
        "events": batch_row["events"],
        "batch_events_per_second": batch_row["events_per_second"],
        "service_events_per_second": service_row["events_per_second"],
        "service_shards": service_row["shards"],
    }
    history = append_history("serve", entry)
    print(f"smoke serve: history appended -> {history}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    if "--smoke" in sys.argv:
        sys.exit(_smoke())
    print("use --smoke, or run through pytest for the throughput contract")
    sys.exit(2)
