"""Serving-stack benchmark: sustained events/s through the fleet kernel.

The service refactor split `FleetSimulator` into the `FleetEngine`
stepping kernel (memoized quiescence cascades + vectorized dispatch)
and orchestration layers — the one-shot batch path and the always-on
sharded service both drive the same kernel.  With zero-copy ingest
(`InjectBatchPacked`: events interned once at the boundary into int64
id columns, consumed by the shards without per-event Python objects)
the *live* service path now carries its own enforced floor:

**>= 500,000 events/s one-shot batch** on the 10,000-instance ATM
contract fleet (~1.0M on a development machine), **also held at
100,000 instances** (the scale row), and
**>= 1,000,000 events/s on the warm service path** (async backend,
pre-packed injects, same 10k contract fleet) — the quasi-static
promise that the always-on runtime adds near-zero per-event overhead.

The process backend additionally must show **>= 2x scaling** from 1
shard to 4 shards when the machine has the cores for it (gated on
``os.cpu_count() >= 4``; recorded informationally otherwise).

Every timed row lands in ``BENCH_serve.json`` (via ``bench_io``, so
rows accumulate across engines/runs) and ``--smoke`` appends one entry
to the committed ``BENCH_serve.history.json`` — the machine-readable
throughput trajectory of the serving stack across PRs.  ``--smoke``
sweeps shards {1, 2, 4} for *both* backends on the smoke fleet
(results equality-checked against one-shot batch every time) and
enforces the 1M service-path contract on the full contract fleet.
"""

from __future__ import annotations

import asyncio
import os
import sys
import time
from dataclasses import asdict

import numpy as np

from bench_io import append_history, record_bench_rows

from repro.apps.atm import MODULE_PARTITION, build_atm_server_net, make_fleet_testbench
from repro.runtime import FleetSimulator, ModuleAssignment
from repro.service import FleetSupervisor, events_to_injects

#: The contract fleet: 10k ATM server instances, the Table I testbench
#: size per instance (~114 events each with the Ticks riding along).
CONTRACT_INSTANCES = 10_000
CONTRACT_CELLS = 50

#: The scale row: 10x the contract fleet (shorter per-instance streams
#: keep the wall-clock bounded; the kernel contract must hold here too).
SCALE_INSTANCES = 100_000
SCALE_CELLS = 10

#: Enforced floor for the one-shot serving path on the contract fleet.
REQUIRED_EVENTS_PER_SECOND = 500_000.0

#: Enforced floor for the *live* service path: async backend, warm
#: (cascade memo + instance registry populated), pre-packed injects.
REQUIRED_SERVICE_EVENTS_PER_SECOND = 1_000_000.0

#: The process backend must scale >= 2x from 1 shard to this many —
#: enforced only on machines with at least ``MIN_SCALING_CORES`` cores.
PROCESS_SCALING_SHARDS = 4
REQUIRED_PROCESS_SCALING = 2.0
MIN_SCALING_CORES = 4

#: Smoke sizes (CI): same machinery, affordable fleet.
SMOKE_INSTANCES = 1_000
SMOKE_CELLS = 10

#: Shard counts the smoke sweep records for each backend.
SMOKE_SHARD_SWEEP = (1, 2, 4)

#: Events per packed inject (the granularity a live producer would
#: batch at; routing + inbox costs amortize across each chunk).
INJECT_CHUNK = 8192


def _workload(instances: int, cells: int):
    net = build_atm_server_net()
    assignment = ModuleAssignment.from_groups(MODULE_PARTITION)
    streams = make_fleet_testbench(instances, cells=cells, seed=2026)
    return net, assignment, streams


def _batch_row(instances: int, cells: int, rounds: int = 2):
    """Timed one-shot runs through the kernel; returns (row, result)."""
    net, assignment, streams = _workload(instances, cells)
    simulator = FleetSimulator(net, assignment)
    result = simulator.run(streams)  # warm-up: populates the cascade memo
    best = result.elapsed_seconds
    for _ in range(rounds):
        best = min(best, simulator.run(streams).elapsed_seconds)
    events = result.stats.events_processed
    row = {
        "path": "batch",
        "instances": instances,
        "events": events,
        "seconds": best,
        "events_per_second": events / best,
    }
    return row, result


def _service_row(
    instances: int,
    cells: int,
    shards: int = 1,
    backend: str = "async",
    warm: bool = True,
):
    """Timed service run over pre-packed injects; returns (row, result).

    Events are interned into ``InjectBatchPacked`` chunks once, outside
    the timer — that is the production shape: the boundary packs each
    arriving wire batch exactly once and everything downstream is
    zero-copy.  ``warm=True`` serves the whole workload once first
    (populating the cascade memo and instance registry), reloads state
    keeping the memo, then times the second pass — the steady-state
    throughput of an always-on service.  The timed window closes on a
    snapshot barrier (control messages ride the shard inboxes, so the
    snapshot observes every inject before it).
    """
    net, assignment, streams = _workload(instances, cells)

    async def go():
        supervisor = FleetSupervisor(
            net, assignment, shards=shards, backend=backend
        )
        await supervisor.start()
        packed = supervisor.pack(events_to_injects(streams))
        chunks = [
            packed.take(slice(lo, lo + INJECT_CHUNK))
            for lo in range(0, len(packed), INJECT_CHUNK)
        ]

        async def pump():
            for chunk in chunks:
                await supervisor.inject(chunk)

        if warm:
            await pump()
            await supervisor.reload(reset_stats=True)
        started = time.perf_counter()
        await pump()
        await supervisor.snapshot()  # barrier: observes every inject above
        seconds = time.perf_counter() - started
        result = await supervisor.stop(drain=True)
        return result, seconds

    result, seconds = asyncio.run(go())
    events = result.stats.events_processed
    row = {
        "path": "service",
        "backend": backend,
        "shards": shards,
        "warm": warm,
        "instances": instances,
        "events": events,
        "seconds": seconds,
        "events_per_second": events / seconds,
    }
    return row, result


def _assert_equal(expected, actual) -> None:
    assert asdict(expected.stats) == asdict(actual.stats)
    assert np.array_equal(expected.instance_cycles, actual.instance_cycles)
    assert np.array_equal(expected.instance_events, actual.instance_events)


def _print_row(label: str, row) -> None:
    print(
        f"{label}: {row['instances']} instances, {row['events']} events "
        f"in {row['seconds']:.3f}s -> {row['events_per_second']:,.0f} "
        f"events/s"
    )


class TestServeThroughput:
    def test_kernel_sustains_500k_events_per_second(self):
        """>= 500k events/s one-shot on the 10k-instance ATM contract fleet."""
        row, _ = _batch_row(CONTRACT_INSTANCES, CONTRACT_CELLS)
        record_bench_rows("serve", [row])
        _print_row("\nserve contract (batch)", row)
        assert row["events_per_second"] >= REQUIRED_EVENTS_PER_SECOND, (
            f"serving kernel must sustain >= "
            f"{REQUIRED_EVENTS_PER_SECOND:,.0f} events/s on the "
            f"{CONTRACT_INSTANCES}-instance ATM fleet; measured "
            f"{row['events_per_second']:,.0f}"
        )

    def test_kernel_holds_contract_at_100k_instances(self):
        """The one-shot floor also holds on the 100k-instance scale fleet."""
        row, _ = _batch_row(SCALE_INSTANCES, SCALE_CELLS, rounds=1)
        record_bench_rows("serve", [row])
        _print_row("\nserve scale (batch, 100k)", row)
        assert row["events_per_second"] >= REQUIRED_EVENTS_PER_SECOND, (
            f"one-shot kernel must hold >= "
            f"{REQUIRED_EVENTS_PER_SECOND:,.0f} events/s at "
            f"{SCALE_INSTANCES} instances; measured "
            f"{row['events_per_second']:,.0f}"
        )

    def test_service_path_sustains_1m_events_per_second(self):
        """>= 1M events/s live (async, warm, packed) — byte-identical."""
        row, result = _service_row(
            CONTRACT_INSTANCES, CONTRACT_CELLS, shards=1, backend="async"
        )
        net, assignment, streams = _workload(
            CONTRACT_INSTANCES, CONTRACT_CELLS
        )
        expected = FleetSimulator(net, assignment).run(streams)
        _assert_equal(expected, result)
        record_bench_rows("serve", [row])
        _print_row("\nserve contract (service, warm)", row)
        assert (
            row["events_per_second"] >= REQUIRED_SERVICE_EVENTS_PER_SECOND
        ), (
            f"warm service path must sustain >= "
            f"{REQUIRED_SERVICE_EVENTS_PER_SECOND:,.0f} events/s on the "
            f"{CONTRACT_INSTANCES}-instance ATM fleet; measured "
            f"{row['events_per_second']:,.0f}"
        )

    def test_process_backend_scales_with_cores(self):
        """>= 2x throughput from 1 to 4 process shards (gated on cores)."""
        import pytest

        cores = os.cpu_count() or 1
        if cores < MIN_SCALING_CORES:
            pytest.skip(
                f"process scaling needs >= {MIN_SCALING_CORES} cores "
                f"(machine has {cores})"
            )
        base, base_result = _service_row(
            CONTRACT_INSTANCES, CONTRACT_CELLS, shards=1, backend="process"
        )
        scaled, scaled_result = _service_row(
            CONTRACT_INSTANCES,
            CONTRACT_CELLS,
            shards=PROCESS_SCALING_SHARDS,
            backend="process",
        )
        _assert_equal(base_result, scaled_result)
        record_bench_rows("serve", [base, scaled])
        ratio = scaled["events_per_second"] / base["events_per_second"]
        _print_row("\nserve process x1", base)
        _print_row("serve process x4", scaled)
        print(f"serve process scaling: {ratio:.2f}x")
        assert ratio >= REQUIRED_PROCESS_SCALING, (
            f"process backend must scale >= {REQUIRED_PROCESS_SCALING}x "
            f"from 1 to {PROCESS_SCALING_SHARDS} shards; measured "
            f"{ratio:.2f}x"
        )

    def test_service_path_matches_and_is_recorded(self):
        """Service == batch on the smoke fleet for both backends."""
        net, assignment, streams = _workload(SMOKE_INSTANCES, SMOKE_CELLS)
        expected = FleetSimulator(net, assignment).run(streams)
        for backend in ("async", "process"):
            row, result = _service_row(
                SMOKE_INSTANCES, SMOKE_CELLS, shards=2, backend=backend
            )
            _assert_equal(expected, result)
            record_bench_rows("serve", [row])
            _print_row(f"\nserve smoke ({backend} x2)", row)


def _smoke() -> int:
    """CI pass: shard sweep, equality checks, the 1M contract, history."""
    batch_row, batch_result = _batch_row(SMOKE_INSTANCES, SMOKE_CELLS, rounds=1)
    rows = [batch_row]
    _print_row("smoke serve batch", batch_row)
    sweep = {}
    for backend in ("async", "process"):
        for shards in SMOKE_SHARD_SWEEP:
            row, result = _service_row(
                SMOKE_INSTANCES, SMOKE_CELLS, shards=shards, backend=backend
            )
            _assert_equal(batch_result, result)
            rows.append(row)
            sweep[f"{backend}_x{shards}"] = row["events_per_second"]
            _print_row(f"smoke serve {backend} x{shards} (identical)", row)

    # the enforced 1M service-path contract, on the full contract fleet
    contract_row, contract_result = _service_row(
        CONTRACT_INSTANCES, CONTRACT_CELLS, shards=1, backend="async"
    )
    rows.append(contract_row)
    _print_row("smoke serve contract (service, warm)", contract_row)
    net, assignment, streams = _workload(CONTRACT_INSTANCES, CONTRACT_CELLS)
    _assert_equal(FleetSimulator(net, assignment).run(streams), contract_result)
    assert (
        contract_row["events_per_second"]
        >= REQUIRED_SERVICE_EVENTS_PER_SECOND
    ), (
        f"warm service path must sustain >= "
        f"{REQUIRED_SERVICE_EVENTS_PER_SECOND:,.0f} events/s; measured "
        f"{contract_row['events_per_second']:,.0f}"
    )

    # process scaling: enforced only when the machine has the cores
    cores = os.cpu_count() or 1
    scaling = None
    if cores >= MIN_SCALING_CORES:
        base, _ = _service_row(
            CONTRACT_INSTANCES, CONTRACT_CELLS, shards=1, backend="process"
        )
        scaled, _ = _service_row(
            CONTRACT_INSTANCES,
            CONTRACT_CELLS,
            shards=PROCESS_SCALING_SHARDS,
            backend="process",
        )
        rows.extend([base, scaled])
        scaling = scaled["events_per_second"] / base["events_per_second"]
        print(f"smoke serve process scaling: {scaling:.2f}x")
        assert scaling >= REQUIRED_PROCESS_SCALING, (
            f"process backend must scale >= {REQUIRED_PROCESS_SCALING}x; "
            f"measured {scaling:.2f}x"
        )
    else:
        print(
            f"smoke serve process scaling: skipped "
            f"({cores} < {MIN_SCALING_CORES} cores)"
        )

    path = record_bench_rows("serve", rows)
    print(f"smoke serve: rows recorded -> {path}")
    entry = {
        "instances": CONTRACT_INSTANCES,
        "events": contract_row["events"],
        "batch_events_per_second": batch_row["events_per_second"],
        "service_events_per_second": contract_row["events_per_second"],
        "service_shards": contract_row["shards"],
        "smoke_sweep": sweep,
        "process_scaling": scaling,
    }
    history = append_history("serve", entry)
    print(f"smoke serve: history appended -> {history}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    if "--smoke" in sys.argv:
        sys.exit(_smoke())
    print("use --smoke, or run through pytest for the throughput contract")
    sys.exit(2)
