"""E7 — Section 4: C code generation for the Figure 4 net, and the
native execution tier contract.

The first bench regenerates the structure of the C listing shown in
Section 4 of the paper (while(1) loop, if/else on p1, counting variable
with an == 2 test on one branch and a while loop on the other) and
times the complete synthesis path: valid schedule -> task partition ->
IR -> C text.

``TestNativeCodegenContract`` then closes the paper's loop: the
generated C is not only emitted but *compiled and executed*
(:mod:`repro.codegen.native`), and on sustained multi-activation runs
of the Figure 4 and ATM programs the shared library must be at least
10x faster than the IR interpreter, with byte-identical activation
results.  Every timed run is recorded to ``BENCH_codegen.json`` (via
:mod:`bench_io`); ``python benchmarks/bench_codegen_section4.py
--smoke`` runs the equality pass plus one timed round, emits the same
JSON, and appends a compact entry to the *committed*
``BENCH_codegen.history.json`` without enforcing the speedup floor
(the mode CI's native smoke uses).  On a machine without a C compiler
the smoke reports the fallback and exits 0.
"""

from __future__ import annotations

import random
import sys
import time

import pytest

from bench_io import append_history, record_bench_rows
from repro.apps.atm import build_atm_server_net
from repro.codegen import (
    EmitOptions,
    TaskExecutor,
    emit_c,
    make_resolver,
    native_available,
    synthesize,
    task_choice_branches,
)
from repro.gallery import figure4_weighted
from repro.qss import compute_valid_schedule


def test_section4_code_generation(benchmark):
    net = figure4_weighted()

    def run():
        schedule = compute_valid_schedule(net)
        program = synthesize(schedule)
        return emit_c(program, EmitOptions(standalone_loop=True))

    emission = benchmark(run)

    source = emission.source
    assert "while (1) {" in source
    assert "choice_p1()" in source
    assert "count_p2++;" in source
    assert "if (count_p2 >= 2) {" in source
    assert "count_p3 += 2;" in source
    assert "while (count_p3 >= 1) {" in source
    # code size is linear in the net, as the paper's complexity remark states
    assert emission.lines_of_code < 60
    benchmark.extra_info["lines_of_code"] = emission.lines_of_code


# ----------------------------------------------------------------------
# Native tier vs IR interpreter on sustained multi-activation runs
# ----------------------------------------------------------------------
#: The contract programs: (name, net builder, activations per task).
#: Figure 4 is the paper's own Section 4 listing; the ATM server is the
#: paper's driving application (two tasks, shared fragments, choices).
NATIVE_CONTRACT_PROGRAMS = [
    ("figure4", figure4_weighted, 20_000),
    ("atm_server", build_atm_server_net, 5_000),
]

#: The native tier's reason to exist: the compiled shared library must
#: sustain >= 10x the interpreter's activation throughput per program.
REQUIRED_NATIVE_SPEEDUP = 10.0


def _scripted_maps(task, activations, seed):
    """Seeded random choice streams over the task's choice alphabet."""
    branches = task_choice_branches(task)
    rng = random.Random(seed)
    return [
        {place: rng.choice(options) for place, options in branches.items()}
        for _ in range(activations)
    ]


def _native_rows(name, program, activations, rounds=3):
    """Measure interpreter vs native on every task of one program.

    Results are proven identical (fired sequences, choices, cycles,
    final counters) before any timing counts.  The native run times the
    scripted batch entry point with a pre-encoded script — choice
    encoding is net-independent setup work, the same way the
    interpreter's resolvers are prebuilt outside its loop.  Timing
    interleaves the engines round by round (best-of per engine) so a
    slow scheduling window hits both rather than skewing the ratio.
    """
    interp_total = native_total = 0.0
    task_count = 0
    for index, task in enumerate(program.tasks):
        maps = _scripted_maps(task, activations, seed=1729 + index)
        interp = TaskExecutor(task)
        native = TaskExecutor(task, engine="native")
        assert native.active_engine == "native"
        backend = native.native_backend
        resolvers = [make_resolver(mapping) for mapping in maps]
        script = backend.encode_script(maps)

        # identical work, proven before the clocks start
        expected = interp.activate_many(maps)
        batch = backend.run_scripted(script)
        for want, got in zip(expected, batch.results):
            assert got.fired == want.fired
            assert got.choices_taken == want.choices_taken
            assert got.cycles == want.cycles
        assert native.counters == interp.counters

        def run_interp():
            interp.reset()
            for resolver in resolvers:
                interp.activate(resolver)

        def run_native():
            backend.reset()
            backend.run_scripted(script)

        interp_best = native_best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            run_interp()
            interp_best = min(interp_best, time.perf_counter() - started)
            started = time.perf_counter()
            run_native()
            native_best = min(native_best, time.perf_counter() - started)
        interp_total += interp_best
        native_total += native_best
        task_count += 1
    speedup = interp_total / native_total
    rows = [
        {
            "engine": "compiled",
            "program": name,
            "tasks": task_count,
            "activations": activations,
            "seconds": round(interp_total, 6),
            "speedup": 1.0,
        },
        {
            "engine": "native",
            "program": name,
            "tasks": task_count,
            "activations": activations,
            "seconds": round(native_total, 6),
            "speedup": round(speedup, 2),
        },
    ]
    return rows, speedup


def _contract_programs():
    for name, build, activations in NATIVE_CONTRACT_PROGRAMS:
        yield name, synthesize(compute_valid_schedule(build())), activations


@pytest.mark.skipif(not native_available(), reason="no C compiler on this machine")
class TestNativeCodegenContract:
    def test_native_execution_at_least_10x_faster(self):
        """The compiled-C tier must beat the IR interpreter >= 10x.

        Sustained multi-activation runs of the paper's two programs,
        identical results asserted first.  (Measured ~30-80x on a
        development machine — the 10x floor leaves a wide margin for
        noisy CI runners.)
        """
        speedups = {}
        for name, program, activations in _contract_programs():
            rows, speedup = _native_rows(name, program, activations)
            record_bench_rows("codegen", rows)
            speedups[name] = speedup
            print(
                f"\nnative codegen {name}: interpreter="
                f"{rows[0]['seconds'] * 1000:.1f}ms native="
                f"{rows[1]['seconds'] * 1000:.1f}ms speedup={speedup:.1f}x"
            )
        for name, speedup in speedups.items():
            assert speedup >= REQUIRED_NATIVE_SPEEDUP, (
                f"native tier only {speedup:.1f}x faster than the "
                f"interpreter on {name} (contract: >= "
                f"{REQUIRED_NATIVE_SPEEDUP}x); measured {speedups}"
            )


def _smoke() -> int:
    """Fast functional pass: native == interpreter on the contract
    programs plus one timed round recorded to ``BENCH_codegen.json``
    and appended to the committed ``BENCH_codegen.history.json`` (no
    speedup floor — CI enforces that in the pytest pass)."""
    if not native_available():
        print(
            "smoke codegen: no C compiler found — native tier falls back "
            "to the interpreter (tested elsewhere); nothing to measure"
        )
        return 0
    entry = {"programs": {}}
    for name, program, activations in _contract_programs():
        rows, speedup = _native_rows(name, program, activations, rounds=1)
        path = record_bench_rows("codegen", rows)
        entry["programs"][name] = {
            "tasks": rows[0]["tasks"],
            "activations": activations,
            "interpreter_seconds": rows[0]["seconds"],
            "native_seconds": rows[1]["seconds"],
            "speedup": rows[1]["speedup"],
        }
        print(
            f"smoke codegen {name}: {rows[0]['tasks']} task(s) x "
            f"{activations} activations — results identical, native "
            f"speedup {speedup:.1f}x -> {path}"
        )
    history = append_history("codegen", entry)
    print(f"smoke codegen: history appended -> {history}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    if "--smoke" in sys.argv:
        sys.exit(_smoke())
    print("use --smoke, or run through pytest for the timing contracts")
    sys.exit(2)
