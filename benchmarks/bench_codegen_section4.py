"""E7 — Section 4: C code generation for the Figure 4 net.

Regenerates the structure of the C listing shown in Section 4 of the
paper (while(1) loop, if/else on p1, counting variable with an == 2 test
on one branch and a while loop on the other) and times the complete
synthesis path: valid schedule -> task partition -> IR -> C text.
"""

from __future__ import annotations

from repro.codegen import EmitOptions, emit_c, synthesize
from repro.gallery import figure4_weighted
from repro.qss import compute_valid_schedule


def test_section4_code_generation(benchmark):
    net = figure4_weighted()

    def run():
        schedule = compute_valid_schedule(net)
        program = synthesize(schedule)
        return emit_c(program, EmitOptions(standalone_loop=True))

    emission = benchmark(run)

    source = emission.source
    assert "while (1) {" in source
    assert "choice_p1()" in source
    assert "count_p2++;" in source
    assert "if (count_p2 >= 2) {" in source
    assert "count_p3 += 2;" in source
    assert "while (count_p3 >= 1) {" in source
    # code size is linear in the net, as the paper's complexity remark states
    assert emission.lines_of_code < 60
    benchmark.extra_info["lines_of_code"] = emission.lines_of_code
