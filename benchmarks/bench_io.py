"""Shared machine-readable benchmark output.

Benches that carry a performance contract also *record* what they
measured, so the perf trajectory of the repository is visible in CI
artifacts instead of only in transient log lines.  The format is one
JSON file per benchmark family::

    BENCH_<name>.json
    {
      "schema": "repro-qss.bench/1",
      "bench": "<name>",
      "rows": [ {<free-form row: engine, net, nodes, seconds, ...>}, ... ]
    }

Rows accumulate: every :func:`record_bench_rows` call appends its rows
to the named bucket and rewrites the file, so a pytest session that
runs several contract tests ends with one file holding all of them.
The first record of a name in a fresh process also preloads whatever
the file already holds, so separate processes in one workspace — the
pytest contract pass and the ``--smoke`` pass of a CI job — append to
each other instead of clobbering.  The output directory defaults to
the current working directory and can be redirected with
``BENCH_OUTPUT_DIR`` (CI leaves it at the repo root and uploads the
files as artifacts).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

SCHEMA = "repro-qss.bench/1"

#: In-process accumulator: bench name -> rows recorded so far.
_ROWS: Dict[str, List[Dict[str, Any]]] = {}


def bench_json_path(name: str, directory: Optional[str] = None) -> Path:
    """Where ``BENCH_<name>.json`` is written."""
    base = Path(directory or os.environ.get("BENCH_OUTPUT_DIR", "."))
    return base / f"BENCH_{name}.json"


def record_bench_rows(
    name: str,
    rows: List[Dict[str, Any]],
    directory: Optional[str] = None,
) -> Path:
    """Append ``rows`` to bench ``name`` and rewrite its JSON file.

    Returns the path written.  A fresh process seeds its bucket from
    the rows already on disk (if any), so multi-process CI jobs
    accumulate one trajectory file rather than clobbering each other.
    """
    path = bench_json_path(name, directory)
    bucket = _ROWS.get(name)
    if bucket is None:
        bucket = _ROWS[name] = []
        if path.exists():
            try:
                bucket.extend(load_bench_rows(name, directory))
            except (ValueError, KeyError, OSError):
                pass  # unreadable/foreign file: start over
    bucket.extend(rows)
    path.write_text(
        json.dumps(
            {"schema": SCHEMA, "bench": name, "rows": bucket}, indent=2
        )
        + "\n",
        encoding="utf-8",
    )
    return path


def load_bench_rows(name: str, directory: Optional[str] = None) -> List[Dict[str, Any]]:
    """Read back the rows of ``BENCH_<name>.json`` (for tests/smokes)."""
    data = json.loads(bench_json_path(name, directory).read_text(encoding="utf-8"))
    if data.get("schema") != SCHEMA:
        raise ValueError(f"unsupported bench schema {data.get('schema')!r}")
    return data["rows"]


# ----------------------------------------------------------------------
# Committed perf history
# ----------------------------------------------------------------------
#: ``BENCH_<name>.json`` files are transient CI artifacts (gitignored);
#: ``BENCH_<name>.history.json`` files are *committed*, so the perf
#: trajectory survives in the repository itself.  Bench ``--smoke``
#: runs append one compact entry per invocation.
HISTORY_SCHEMA = "repro-qss.bench-history/1"

#: Oldest entries are dropped beyond this, keeping the committed files
#: reviewable in diffs.
HISTORY_LIMIT = 200


def bench_history_path(name: str, directory: Optional[str] = None) -> Path:
    """Where ``BENCH_<name>.history.json`` is written."""
    base = Path(directory or os.environ.get("BENCH_OUTPUT_DIR", "."))
    return base / f"BENCH_{name}.history.json"


def append_history(
    name: str,
    entry: Dict[str, Any],
    directory: Optional[str] = None,
    limit: int = HISTORY_LIMIT,
) -> Path:
    """Append one entry to ``BENCH_<name>.history.json`` and return its path.

    The file is created on first use; an unreadable or foreign file is
    restarted rather than crashing the bench that records into it.
    """
    path = bench_history_path(name, directory)
    entries: List[Dict[str, Any]] = []
    if path.exists():
        try:
            entries = load_history(name, directory)
        except (ValueError, KeyError, OSError):
            entries = []
    entries.append(entry)
    entries = entries[-limit:]
    path.write_text(
        json.dumps(
            {"schema": HISTORY_SCHEMA, "bench": name, "entries": entries}, indent=2
        )
        + "\n",
        encoding="utf-8",
    )
    return path


def load_history(name: str, directory: Optional[str] = None) -> List[Dict[str, Any]]:
    """Read back the entries of ``BENCH_<name>.history.json``."""
    data = json.loads(bench_history_path(name, directory).read_text(encoding="utf-8"))
    if data.get("schema") != HISTORY_SCHEMA:
        raise ValueError(f"unsupported history schema {data.get('schema')!r}")
    return data["entries"]
