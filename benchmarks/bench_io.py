"""Shared machine-readable benchmark output.

Benches that carry a performance contract also *record* what they
measured, so the perf trajectory of the repository is visible in CI
artifacts instead of only in transient log lines.  The format is one
JSON file per benchmark family::

    BENCH_<name>.json
    {
      "schema": "repro-qss.bench/1",
      "bench": "<name>",
      "rows": [ {<free-form row: engine, net, nodes, seconds, ...>}, ... ]
    }

Rows accumulate: every :func:`record_bench_rows` call re-reads the
rows already on disk under an advisory file lock, appends its own and
rewrites the file atomically, so any number of processes in one
workspace — the pytest contract pass and the ``--smoke`` pass of a CI
job, interleaved however the scheduler likes — append to each other
instead of clobbering.  The output directory defaults to the current
working directory, is created on demand, and can be redirected with
``BENCH_OUTPUT_DIR`` (CI leaves it at the repo root and uploads the
files as artifacts).

Durability: both the transient ``BENCH_<name>.json`` files and the
*committed* ``BENCH_<name>.history.json`` files are written with the
same write-temp-then-rename pattern ``repro.codegen.native`` uses for
cache artifacts, so an interrupted bench can never leave a truncated,
unparseable file behind — readers see either the old content or the
new, never a prefix of the new.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

try:  # advisory inter-process lock; POSIX only, degrade gracefully
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

SCHEMA = "repro-qss.bench/1"


def bench_json_path(name: str, directory: Optional[str] = None) -> Path:
    """Where ``BENCH_<name>.json`` is written."""
    base = Path(directory or os.environ.get("BENCH_OUTPUT_DIR", "."))
    return base / f"BENCH_{name}.json"


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` without ever exposing a partial file.

    Same pattern as ``repro.codegen.native``: write a sibling temp file
    (pid-suffixed, so concurrent writers never share one) and rename it
    over the destination — `os.replace` is atomic on POSIX and Windows.
    The parent directory is created on demand so ``BENCH_OUTPUT_DIR``
    may name a directory that does not exist yet.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed replace
            tmp.unlink()


@contextmanager
def _locked(path: Path) -> Iterator[None]:
    """Hold an exclusive advisory lock for read-modify-write of ``path``.

    The lock lives on a ``.lock`` sidecar (never on the data file, which
    is replaced by rename and would orphan the lock).  On platforms
    without ``fcntl`` the context is a no-op; atomic rename still keeps
    files parseable, only cross-process row merging becomes best-effort.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    lock_path = path.with_name(path.name + ".lock")
    with open(lock_path, "w") as lock:
        fcntl.flock(lock, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(lock, fcntl.LOCK_UN)


def record_bench_rows(
    name: str,
    rows: List[Dict[str, Any]],
    directory: Optional[str] = None,
) -> Path:
    """Append ``rows`` to bench ``name`` and rewrite its JSON file.

    Returns the path written.  Every call merges with the rows already
    on disk under an advisory lock (not just the first call of a
    process), so interleaved recorders accumulate one trajectory file
    rather than clobbering each other.
    """
    path = bench_json_path(name, directory)
    with _locked(path):
        bucket: List[Dict[str, Any]] = []
        if path.exists():
            try:
                bucket = load_bench_rows(name, directory)
            except (ValueError, KeyError, OSError):
                bucket = []  # unreadable/foreign file: start over
        bucket.extend(rows)
        _atomic_write_text(
            path,
            json.dumps(
                {"schema": SCHEMA, "bench": name, "rows": bucket}, indent=2
            )
            + "\n",
        )
    return path


def load_bench_rows(name: str, directory: Optional[str] = None) -> List[Dict[str, Any]]:
    """Read back the rows of ``BENCH_<name>.json`` (for tests/smokes)."""
    data = json.loads(bench_json_path(name, directory).read_text(encoding="utf-8"))
    if data.get("schema") != SCHEMA:
        raise ValueError(f"unsupported bench schema {data.get('schema')!r}")
    return data["rows"]


# ----------------------------------------------------------------------
# Committed perf history
# ----------------------------------------------------------------------
#: ``BENCH_<name>.json`` files are transient CI artifacts (gitignored);
#: ``BENCH_<name>.history.json`` files are *committed*, so the perf
#: trajectory survives in the repository itself.  Bench ``--smoke``
#: runs append one compact entry per invocation.
HISTORY_SCHEMA = "repro-qss.bench-history/1"

#: Oldest entries are dropped beyond this, keeping the committed files
#: reviewable in diffs.
HISTORY_LIMIT = 200


def bench_history_path(name: str, directory: Optional[str] = None) -> Path:
    """Where ``BENCH_<name>.history.json`` is written."""
    base = Path(directory or os.environ.get("BENCH_OUTPUT_DIR", "."))
    return base / f"BENCH_{name}.history.json"


def append_history(
    name: str,
    entry: Dict[str, Any],
    directory: Optional[str] = None,
    limit: int = HISTORY_LIMIT,
) -> Path:
    """Append one entry to ``BENCH_<name>.history.json`` and return its path.

    The file (and its directory) is created on first use; an unreadable
    or foreign file is restarted rather than crashing the bench that
    records into it.  Read-append-rewrite happens under the same
    advisory lock and atomic-rename discipline as
    :func:`record_bench_rows` — these files are committed, so a
    truncated write would show up as a corrupt tracked file.
    """
    path = bench_history_path(name, directory)
    with _locked(path):
        entries: List[Dict[str, Any]] = []
        if path.exists():
            try:
                entries = load_history(name, directory)
            except (ValueError, KeyError, OSError):
                entries = []
        entries.append(entry)
        entries = entries[-limit:]
        _atomic_write_text(
            path,
            json.dumps(
                {"schema": HISTORY_SCHEMA, "bench": name, "entries": entries},
                indent=2,
            )
            + "\n",
        )
    return path


def load_history(name: str, directory: Optional[str] = None) -> List[Dict[str, Any]]:
    """Read back the entries of ``BENCH_<name>.history.json``."""
    data = json.loads(bench_history_path(name, directory).read_text(encoding="utf-8"))
    if data.get("schema") != HISTORY_SCHEMA:
        raise ValueError(f"unsupported history schema {data.get('schema')!r}")
    return data["entries"]
