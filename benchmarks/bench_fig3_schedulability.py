"""E3 — Figure 3: schedulable vs non-schedulable FCPN.

Regenerates the two verdicts of Figure 3: the net of Figure 3a has the
valid schedule {(t1 t2 t4), (t1 t3 t5)}, while the net of Figure 3b is
not schedulable (an adversarial choice resolution accumulates tokens
without bound).  The timed quantity is the full QSS analysis of both
nets.
"""

from __future__ import annotations

from repro.gallery import figure3a_schedulable, figure3b_unschedulable
from repro.petrinet import coverability_analysis
from repro.qss import analyse


def test_figure3_schedulability(benchmark):
    net_a = figure3a_schedulable()
    net_b = figure3b_unschedulable()

    def run():
        return analyse(net_a), analyse(net_b)

    report_a, report_b = benchmark(run)
    assert report_a.schedulable
    sequences = {cycle.sequence for cycle in report_a.schedule.cycles}
    assert sequences == {("t1", "t2", "t4"), ("t1", "t3", "t5")}
    assert not report_b.schedulable
    unbounded = coverability_analysis(net_b).unbounded_places
    assert {"p2", "p3"} <= set(unbounded)
    benchmark.extra_info["figure3a_cycles"] = sorted(" ".join(s) for s in sequences)
    benchmark.extra_info["figure3b_schedulable"] = report_b.schedulable
    benchmark.extra_info["figure3b_unbounded_places"] = unbounded
