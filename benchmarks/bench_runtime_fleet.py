"""Runtime fleet benchmarks: batched compiled execution vs per-instance legacy.

The north-star workload is a server farm: thousands of independent
instances of the ATM server specification, each reacting to its own
Cell/Tick event stream.  The legacy engine steps them one at a time on
the string-keyed reactive simulator; the compiled
:class:`~repro.runtime.fleet.FleetSimulator` steps the whole fleet as a
single ``(N, P)`` numpy marking matrix with vectorized enabledness.
These benches verify the two engines produce identical aggregate stats
and per-instance cycle vectors, and pin the performance contract:
**>= 5x wall-clock on a >= 1000-instance ATM fleet** (measured ~7x on a
development machine; the floor leaves headroom for noisy CI runners).

Run ``python benchmarks/bench_runtime_fleet.py --smoke`` for a fast
functional pass (equivalence, determinism and pool sharding on a small
fleet, no timing statistics) — the mode CI uses.
"""

from __future__ import annotations

import sys
import time
from dataclasses import asdict

import numpy as np
import pytest

from repro.apps.atm import MODULE_PARTITION, build_atm_server_net, make_fleet_testbench
from repro.runtime import FleetSimulator, ModuleAssignment

#: The contract fleet: >= 1000 instances of the 49-transition ATM server.
CONTRACT_INSTANCES = 1_000
#: Cells per instance; the concurrent Ticks ride along (~5 events total
#: per instance), keeping the one-shot legacy baseline affordable.
CONTRACT_CELLS = 3

#: Required wall-clock speedup of the batched engine over per-instance legacy.
REQUIRED_SPEEDUP = 5.0


def _best_of(callable_, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def _fleet(engine: str) -> FleetSimulator:
    net = build_atm_server_net()
    assignment = ModuleAssignment.from_groups(MODULE_PARTITION)
    return FleetSimulator(net, assignment, engine=engine)


def _assert_results_identical(legacy, compiled) -> None:
    assert asdict(legacy.stats) == asdict(compiled.stats)
    assert np.array_equal(legacy.instance_cycles, compiled.instance_cycles)
    assert np.array_equal(legacy.instance_events, compiled.instance_events)


def test_fleet_compiled_at_least_5x_faster():
    """Identical fleets, and >= 5x wall-clock on >= 1000 ATM instances."""
    streams = make_fleet_testbench(CONTRACT_INSTANCES, cells=CONTRACT_CELLS)
    legacy = _fleet("legacy")
    compiled = _fleet("compiled")

    # the engines must do identical work before their times compare
    legacy_result = legacy.run(streams)
    compiled_result = compiled.run(streams)
    _assert_results_identical(legacy_result, compiled_result)

    legacy_time = _best_of(lambda: legacy.run(streams), rounds=2)
    compiled_time = _best_of(lambda: compiled.run(streams))
    speedup = legacy_time / compiled_time
    print(
        f"\nfleet of {CONTRACT_INSTANCES} ATM instances "
        f"({compiled_result.stats.events_processed} events): "
        f"legacy={legacy_time * 1000:.0f}ms compiled={compiled_time * 1000:.0f}ms "
        f"speedup={speedup:.1f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched fleet engine must be >= {REQUIRED_SPEEDUP}x faster than "
        f"the per-instance legacy loop; measured {speedup:.2f}x"
    )


@pytest.mark.parametrize("engine", ["legacy", "compiled"])
def test_fleet_engine_timings(benchmark, engine):
    """pytest-benchmark report rows for the two fleet engines (small fleet)."""
    streams = make_fleet_testbench(100, cells=CONTRACT_CELLS)
    fleet = _fleet(engine)
    result = benchmark(fleet.run, streams)
    assert result.stats.events_processed > 0
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["instances"] = result.instances
    benchmark.extra_info["events"] = result.stats.events_processed


def test_fleet_scaling_rows(benchmark):
    """One report row pinning throughput at the contract fleet size."""
    streams = make_fleet_testbench(CONTRACT_INSTANCES, cells=CONTRACT_CELLS)
    fleet = _fleet("compiled")
    result = benchmark(fleet.run, streams)
    benchmark.extra_info["instances"] = result.instances
    benchmark.extra_info["events"] = result.stats.events_processed
    benchmark.extra_info["p95_cycles"] = result.percentile(95)


def _smoke() -> int:
    """Fast functional pass: equivalence, determinism, pool sharding."""
    streams = make_fleet_testbench(64, cells=CONTRACT_CELLS)
    legacy = _fleet("legacy").run(streams)
    compiled = _fleet("compiled").run(streams)
    _assert_results_identical(legacy, compiled)
    print(
        f"smoke fleet 64x{CONTRACT_CELLS}: engines identical "
        f"({compiled.stats.events_processed} events, "
        f"{compiled.stats.total_cycles} cycles)"
    )
    again = _fleet("compiled").run(make_fleet_testbench(64, cells=CONTRACT_CELLS))
    _assert_results_identical(compiled, again)
    print("smoke determinism: identical results under the fixed fleet seed")
    pooled = _fleet("compiled").run(streams, workers=2)
    _assert_results_identical(compiled, pooled)
    print("smoke pool: workers=2 == sequential")
    return 0


if __name__ == "__main__":  # pragma: no cover
    if "--smoke" in sys.argv:
        sys.exit(_smoke())
    print("use --smoke, or run through pytest for the timing contract")
    sys.exit(2)
