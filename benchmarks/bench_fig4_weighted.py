"""E4 — Figure 4: schedulable FCPN with weighted arcs.

Regenerates the valid schedule {(t1 t2 t1 t2 t4), (t1 t3 t5 t5)} of the
weighted-arc example and the buffer bounds it implies, timing the QSS
analysis.
"""

from __future__ import annotations

from repro.gallery import figure4_weighted
from repro.qss import analyse


def test_figure4_weighted_schedule(benchmark):
    net = figure4_weighted()

    report = benchmark(analyse, net)

    assert report.schedulable
    counts = [cycle.counts for cycle in report.schedule.cycles]
    assert {"t1": 2, "t2": 2, "t4": 1} in counts
    assert {"t1": 1, "t3": 1, "t5": 2} in counts
    bounds = report.schedule.max_buffer_bounds()
    assert bounds["p2"] == 2 and bounds["p3"] == 2
    benchmark.extra_info["cycle_counts"] = counts
    benchmark.extra_info["buffer_bounds"] = bounds
