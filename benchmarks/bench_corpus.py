"""Corpus pipeline benchmarks: parallel fan-out vs the sequential baseline.

The scenario-corpus pipeline (``repro.petrinet.corpus``) is
embarrassingly parallel — one independent property analysis per net — so
its wall-clock should shrink with the pool size.  These benches time the
same spec list through ``run_corpus(workers=1)`` (in-process, no pool)
and ``run_corpus(workers=N)`` (multiprocessing pool with per-worker
compiled-net caches) and record the speedup.

The speedup assertion only runs on multi-core machines: on a single CPU
a process pool cannot beat the sequential loop (it adds fork and IPC
overhead on top of the same serialized compute), so there the benches
only check that the parallel path returns identical verdicts.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.petrinet.corpus import clear_compiled_cache, generate_corpus, run_corpus

#: One corpus, shared by every bench in this module.  Big enough that
#: per-net analysis dominates pool management, small enough for CI.
CORPUS_N = 64
CORPUS_SEED = 11
PARALLEL_WORKERS = 4


@pytest.fixture(scope="module")
def corpus_specs():
    return generate_corpus(CORPUS_N, seed=CORPUS_SEED)


def _strip_timing(records):
    return [record.to_dict() | {"elapsed_ms": 0.0} for record in records]


def _run_cold(specs, workers):
    """One corpus pass with a cold compiled-net cache.

    Forked pool workers inherit the parent's module-level cache, so an
    earlier in-process pass would hand the parallel run pre-compiled
    nets for free; clearing first keeps both sides honest.
    """
    clear_compiled_cache()
    return run_corpus(specs, workers=workers)


def test_corpus_sequential_baseline(benchmark, corpus_specs):
    result = benchmark.pedantic(
        _run_cold, args=(corpus_specs, 1), rounds=1, iterations=1
    )
    assert len(result.records) == CORPUS_N
    assert not result.errors
    benchmark.extra_info["n"] = CORPUS_N
    benchmark.extra_info["workers"] = 1


def test_corpus_parallel_pool(benchmark, corpus_specs):
    result = benchmark.pedantic(
        _run_cold, args=(corpus_specs, PARALLEL_WORKERS), rounds=1, iterations=1
    )
    assert len(result.records) == CORPUS_N
    assert not result.errors
    benchmark.extra_info["n"] = CORPUS_N
    benchmark.extra_info["workers"] = PARALLEL_WORKERS


def _best_of_two(specs, workers):
    """Best-of-2 cold wall-clock, to damp scheduler noise on CI runners."""
    best_result, best_seconds = None, float("inf")
    for _ in range(2):
        started = time.perf_counter()
        result = _run_cold(specs, workers)
        seconds = time.perf_counter() - started
        if seconds < best_seconds:
            best_result, best_seconds = result, seconds
    return best_result, best_seconds


def test_parallel_matches_sequential_and_speeds_up(corpus_specs):
    """Verdicts are engine- and pool-independent; the pool wins on multi-core."""
    sequential, sequential_seconds = _best_of_two(corpus_specs, 1)
    parallel, parallel_seconds = _best_of_two(corpus_specs, PARALLEL_WORKERS)

    assert _strip_timing(parallel.records) == _strip_timing(sequential.records)

    cpus = os.cpu_count() or 1
    speedup = sequential_seconds / parallel_seconds
    print(
        f"\ncorpus n={CORPUS_N}: sequential {sequential_seconds:.2f}s, "
        f"parallel({PARALLEL_WORKERS}w) {parallel_seconds:.2f}s, "
        f"speedup {speedup:.2f}x on {cpus} cpu(s)"
    )
    if cpus >= 2:
        # the pool must beat the in-process loop once there is real
        # hardware parallelism to exploit
        assert speedup > 1.0, (
            f"parallel corpus analysis ({parallel_seconds:.2f}s) should beat "
            f"the sequential baseline ({sequential_seconds:.2f}s) on {cpus} CPUs"
        )
