"""E10 — complexity remarks of Sections 3 and 4.

The paper states that (1) the number of T-reductions is exponential in
the number of conflicting transitions, (2) statically scheduling each
T-reduction is polynomial, and (3) the generated code is linear in the
size of the net.  These benches measure all three shapes on synthetic
families:

* ``independent_choices_net(k)`` — the number of distinct reductions is
  exactly 2^k and the analysis time grows with it;
* ``nested_choices_net(k)`` — the number of *distinct* reductions stays
  linear (k+1) even though there are 2^k allocations, showing why the
  deduplication matters;
* code size versus pipeline length — generated lines grow linearly.
"""

from __future__ import annotations

import pytest

from repro.codegen import emit_c, synthesize
from repro.petrinet.generators import (
    independent_choices_net,
    nested_choices_net,
    pipeline_net,
)
from repro.qss import analyse, compute_valid_schedule, count_distinct_reductions


@pytest.mark.parametrize("choices", [2, 4, 6, 8])
def test_reductions_exponential_in_independent_choices(benchmark, choices):
    net = independent_choices_net(choices)

    report = benchmark(analyse, net)

    assert report.reduction_count == 2**choices
    assert report.schedulable
    benchmark.extra_info["choices"] = choices
    benchmark.extra_info["reductions"] = report.reduction_count


@pytest.mark.parametrize("depth", [4, 8, 12])
def test_nested_choices_stay_linear(benchmark, depth):
    net = nested_choices_net(depth)

    count = benchmark(count_distinct_reductions, net)

    assert count == depth + 1
    benchmark.extra_info["choice_places"] = depth
    benchmark.extra_info["allocations"] = 2**depth
    benchmark.extra_info["distinct_reductions"] = count


@pytest.mark.parametrize("stages", [4, 8, 16, 32])
def test_generated_code_linear_in_net_size(benchmark, stages):
    net = pipeline_net(stages, rates=[1] * stages)

    def run():
        schedule = compute_valid_schedule(net)
        return emit_c(synthesize(schedule))

    emission = benchmark(run)

    lines_per_stage = emission.lines_of_code / stages
    # linear growth: the per-stage cost is bounded by a small constant
    assert lines_per_stage < 12
    benchmark.extra_info["stages"] = stages
    benchmark.extra_info["lines_of_code"] = emission.lines_of_code
    benchmark.extra_info["lines_per_stage"] = round(lines_per_stage, 2)
