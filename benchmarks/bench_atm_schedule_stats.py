"""E9 — Section 5 text: the ATM server's valid schedule statistics.

Regenerates the quantitative statements of Section 5: the FCPN has 49
transitions, 41 places and 11 non-deterministic choices; the valid
schedule contains 120 finite complete cycles (one per distinct
T-reduction out of 2^11 T-allocations); the synthesized software has two
tasks, one per independent-rate input, sharing the WFQ_SCHEDULING code.
The timed quantity is the full schedulability analysis of the ATM net.
"""

from __future__ import annotations

from repro.apps.atm import CELL_SOURCE, TICK_SOURCE
from repro.qss import analyse, partition_tasks


def test_atm_schedule_statistics(benchmark, atm_net):
    report = benchmark.pedantic(analyse, args=(atm_net,), iterations=1, rounds=3)

    assert len(atm_net.transition_names) == 49
    assert len(atm_net.place_names) == 41
    assert len(atm_net.choice_places()) == 11
    assert report.schedulable
    assert report.allocation_count == 2048
    assert report.reduction_count == 120
    assert report.schedule.cycle_count == 120

    partition = partition_tasks(report.schedule)
    assert partition.task_count == 2
    cell_task = partition.task_for_source(CELL_SOURCE)
    tick_task = partition.task_for_source(TICK_SOURCE)
    shared = cell_task.shared_transitions & tick_task.shared_transitions
    assert "t_wfq_start" in shared

    benchmark.extra_info["transitions"] = len(atm_net.transition_names)
    benchmark.extra_info["places"] = len(atm_net.place_names)
    benchmark.extra_info["choices"] = len(atm_net.choice_places())
    benchmark.extra_info["allocations"] = report.allocation_count
    benchmark.extra_info["finite_complete_cycles"] = report.reduction_count
    benchmark.extra_info["tasks"] = partition.task_count
    benchmark.extra_info["shared_transitions"] = sorted(shared)
    benchmark.extra_info["paper"] = {
        "transitions": 49,
        "places": 41,
        "choices": 11,
        "finite_complete_cycles": 120,
        "tasks": 2,
    }
