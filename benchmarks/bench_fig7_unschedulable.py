"""E6 — Figure 7: a non-schedulable FCPN with inconsistent T-reductions.

Regenerates the verdict of Figure 7: both T-reductions keep a source
place with no producer and are inconsistent, so the net has no valid
schedule; the diagnostics name the offending places (p5 for R1, p4 for
R2).  The timed quantity is the full analysis with diagnostics.
"""

from __future__ import annotations

from repro.gallery import figure7_unschedulable
from repro.qss import analyse


def test_figure7_unschedulable(benchmark):
    net = figure7_unschedulable()

    report = benchmark(analyse, net)

    assert not report.schedulable
    assert report.reduction_count == 2
    source_places = set()
    for verdict in report.verdicts:
        assert not verdict.consistent
        assert verdict.source_places
        source_places.update(verdict.source_places)
    assert source_places == {"p4", "p5"}
    benchmark.extra_info["schedulable"] = report.schedulable
    benchmark.extra_info["source_places"] = sorted(source_places)
