"""E2 — Figure 2: static (SDF) cyclic schedule of the multirate chain.

Regenerates the repetition vector f(sigma) = (4, 2, 1) and the finite
complete cycle t1 t1 t1 t1 t2 t2 t3 of the Figure 2 chain, and times the
static scheduling pipeline (balance equations + simulation).
"""

from __future__ import annotations

from repro.gallery import figure2_sdf_chain
from repro.petrinet import is_finite_complete_cycle, t_invariants
from repro.sdf import petri_to_sdf, static_schedule


def test_figure2_static_schedule(benchmark):
    net = figure2_sdf_chain()

    def run():
        graph = petri_to_sdf(net)
        return static_schedule(graph)

    schedule = benchmark(run)
    assert schedule.repetition == {"t1": 4, "t2": 2, "t3": 1}
    assert is_finite_complete_cycle(net, schedule.sequence)
    assert t_invariants(net) == [{"t1": 4, "t2": 2, "t3": 1}]
    benchmark.extra_info["repetition_vector"] = schedule.repetition
    benchmark.extra_info["cycle"] = " ".join(schedule.sequence)
