"""E11 (ablation) — sensitivity of Table I to the task-activation overhead.

The mechanism behind Table I is that every extra task activation and
inter-task message costs cycles; this ablation sweeps the RTOS
activation overhead and shows that the advantage of the 2-task QSS
implementation over the 5-task functional partitioning grows with it
(and essentially vanishes when activations are free).
"""

from __future__ import annotations

from repro.analysis import overhead_sensitivity
from repro.apps.atm import MODULE_PARTITION
from repro.baselines import build_functional_implementation
from repro.qss import compute_valid_schedule

OVERHEADS = [0, 90, 180, 360, 720]


def test_overhead_sensitivity(benchmark, atm_net, atm_testbench):
    functional = build_functional_implementation(atm_net, MODULE_PARTITION)
    schedule = compute_valid_schedule(atm_net)

    def run():
        return overhead_sensitivity(
            atm_net,
            atm_testbench,
            activation_cycles=OVERHEADS,
            run_baseline=functional.run,
            schedule=schedule,
        )

    records = benchmark.pedantic(run, iterations=1, rounds=2)

    ratios = [record["ratio"] for record in records]
    assert ratios == sorted(ratios), "the QSS advantage must grow with overhead"
    assert ratios[-1] > ratios[0] * 1.05
    benchmark.extra_info["sweep"] = [
        {
            "activation_cycles": record["activation_cycles"],
            "qss_cycles": record["qss_cycles"],
            "functional_cycles": record["baseline_cycles"],
            "ratio": round(record["ratio"], 3),
        }
        for record in records
    ]
