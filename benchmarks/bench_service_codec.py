"""Service codec microbench: wire lines vs packed columns vs binary frames.

The service's 4x live-path gap was codec cost, not kernel cost — so
this bench pins where each representation stands:

- **wire codec** (`encode_message`/`decode_message`): one JSON object
  per message, what socket clients speak.  Priced per event via
  `InjectBatch` lines of `WIRE_BATCH` events.
- **packed batches** (`FleetSupervisor.pack`): string events interned
  once at the ingest boundary into int64 id columns; ``unpack`` here is
  the shard-side consumption cost (row gather + round grouping) —
  measured as array slicing + concat, the only touch a packed batch
  gets between boundary and kernel.
- **binary frames** (`encode_frame_packed`/`decode_frame`): what the
  process-backend pipes carry; decode is ``np.frombuffer`` zero-copy.

Rows land in ``BENCH_service_codec.json``; ``--smoke`` (CI) also
appends one entry to the committed
``BENCH_service_codec.history.json``.  Informational — no floors; the
enforced end-to-end contract lives in ``bench_serve.py``.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from bench_io import append_history, record_bench_rows

from repro.apps.atm import MODULE_PARTITION, build_atm_server_net, make_fleet_testbench
from repro.runtime import ModuleAssignment
from repro.service import (
    FleetSupervisor,
    InjectBatch,
    InjectBatchPacked,
    decode_frame,
    decode_message,
    encode_frame_packed,
    encode_message,
    events_to_injects,
)

#: Workload sizes: full bench vs CI smoke.
BENCH_INSTANCES, BENCH_CELLS = 2_000, 25
SMOKE_INSTANCES, SMOKE_CELLS = 200, 5

#: Events per wire-codec line (the `ServiceClient.inject_batch` shape).
WIRE_BATCH = 1024


def _events(instances: int, cells: int):
    build_atm_server_net()  # import-side effects parity with bench_serve
    streams = make_fleet_testbench(instances, cells=cells, seed=2026)
    return events_to_injects(streams)


def _supervisor() -> FleetSupervisor:
    net = build_atm_server_net()
    assignment = ModuleAssignment.from_groups(MODULE_PARTITION)
    return FleetSupervisor(net, assignment)


def _timed(label: str, events: int, fn) -> dict:
    started = time.perf_counter()
    fn()
    seconds = time.perf_counter() - started
    return {
        "codec": label,
        "events": events,
        "seconds": seconds,
        "events_per_second": events / seconds if seconds > 0 else 0.0,
    }


def run(instances: int, cells: int) -> list:
    injects = _events(instances, cells)
    n = len(injects)
    rows = []

    # wire codec: encode then decode every batch line
    batches = [
        InjectBatch(events=tuple(injects[lo : lo + WIRE_BATCH]))
        for lo in range(0, n, WIRE_BATCH)
    ]
    lines: list = []
    rows.append(
        _timed(
            "wire_encode", n, lambda: lines.extend(map(encode_message, batches))
        )
    )
    rows.append(_timed("wire_decode", n, lambda: list(map(decode_message, lines))))

    # packed: the ingest-boundary intern (cold = interning tables fill,
    # warm = steady-state dict hits), then the shard-side consumption
    supervisor = _supervisor()
    supervisor.pack(injects[: min(n, 1024)])  # prime the intern tables
    packed_box: list = []
    rows.append(
        _timed(
            "pack_warm", n, lambda: packed_box.append(supervisor.pack(injects))
        )
    )
    packed = packed_box[0]
    chunks = [
        packed.take(slice(lo, lo + WIRE_BATCH)) for lo in range(0, n, WIRE_BATCH)
    ]
    rows.append(
        _timed(
            "packed_unpack",
            n,
            lambda: np.concatenate(
                [InjectBatchPacked.concat(chunks).instances]
            ),
        )
    )

    # binary frames: the process-backend pipe representation
    frames: list = []
    rows.append(
        _timed(
            "frame_encode",
            n,
            lambda: frames.extend(encode_frame_packed(c) for c in chunks),
        )
    )
    rows.append(
        _timed("frame_decode", n, lambda: list(map(decode_frame, frames)))
    )

    for row in rows:
        row["instances"] = instances
    return rows


def _report(rows: list) -> None:
    for row in rows:
        print(
            f"{row['codec']:>14}: {row['events']} events in "
            f"{row['seconds']:.4f}s -> {row['events_per_second']:,.0f} "
            f"events/s"
        )


def _smoke() -> int:
    rows = run(SMOKE_INSTANCES, SMOKE_CELLS)
    _report(rows)
    path = record_bench_rows("service_codec", rows)
    print(f"smoke service_codec: rows recorded -> {path}")
    entry = {
        "instances": SMOKE_INSTANCES,
        **{row["codec"]: row["events_per_second"] for row in rows},
    }
    history = append_history("service_codec", entry)
    print(f"smoke service_codec: history appended -> {history}")
    return 0


def main() -> int:
    rows = run(BENCH_INSTANCES, BENCH_CELLS)
    _report(rows)
    path = record_bench_rows("service_codec", rows)
    print(f"service_codec: rows recorded -> {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(_smoke() if "--smoke" in sys.argv else main())
