"""E8 — Table I: QSS vs functional task partitioning on the ATM server.

Regenerates the paper's headline experiment on the reconstructed ATM
server and the 50-cell testbench:

===================  =======  ==========================
metric               QSS      functional partitioning
===================  =======  ==========================
number of tasks      2        5
lines of C code      smaller  larger   (paper: 1664 / 2187)
clock cycles         smaller  larger   (paper: 197526 / 249726)
===================  =======  ==========================

Absolute numbers differ from the paper (the target processor is replaced
by the cycle cost model, and transition bodies are extern calls rather
than real C), but the rows, the winner and the approximate improvement
factors (~1.3x code, ~1.26x cycles) are reproduced; the exact measured
values are attached to the benchmark's extra_info and recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.analysis import build_comparison
from repro.apps.atm import MODULE_PARTITION


def test_table1_atm_server(benchmark, atm_net, atm_testbench):
    def run():
        return build_comparison(atm_net, MODULE_PARTITION, atm_testbench)

    table = benchmark.pedantic(run, iterations=1, rounds=3)

    qss = table.row("QSS")
    functional = table.row("Functional task partitioning")
    assert qss.tasks == 2
    assert functional.tasks == 5
    assert qss.lines_of_code < functional.lines_of_code
    assert qss.clock_cycles < functional.clock_cycles

    cycles_ratio = table.ratio("clock_cycles", "QSS", "Functional task partitioning")
    loc_ratio = table.ratio("lines_of_code", "QSS", "Functional task partitioning")
    # the paper reports 1.26x cycles and 1.31x code; accept a generous band
    assert 1.1 < cycles_ratio < 1.6
    assert 1.1 < loc_ratio < 1.6

    benchmark.extra_info["table"] = {
        "tasks": {"qss": qss.tasks, "functional": functional.tasks},
        "lines_of_code": {
            "qss": qss.lines_of_code,
            "functional": functional.lines_of_code,
        },
        "clock_cycles": {
            "qss": qss.clock_cycles,
            "functional": functional.clock_cycles,
        },
    }
    benchmark.extra_info["cycles_ratio"] = round(cycles_ratio, 3)
    benchmark.extra_info["loc_ratio"] = round(loc_ratio, 3)
    benchmark.extra_info["paper"] = {
        "tasks": {"qss": 2, "functional": 5},
        "lines_of_code": {"qss": 1664, "functional": 2187},
        "clock_cycles": {"qss": 197526, "functional": 249726},
    }
