"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md) and records the reproduced values in
the benchmark's ``extra_info`` so they appear in the pytest-benchmark
report next to the timing numbers.
"""

from __future__ import annotations

import pytest

from repro.apps.atm import build_atm_server_net, make_testbench


@pytest.fixture(scope="session")
def atm_net():
    return build_atm_server_net()


@pytest.fixture(scope="session")
def atm_testbench():
    """The Table I testbench: 50 ATM cells plus concurrent ticks."""
    return make_testbench(cells=50, seed=2026)
