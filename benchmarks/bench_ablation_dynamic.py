"""E12 (ablation) — QSS vs fully dynamic scheduling.

The paper's conclusions claim that quasi-static scheduling minimizes
run-time overhead compared to dynamic scheduling because most decisions
are made at compile time.  This ablation runs the ATM testbench on three
implementations — QSS (2 tasks), functional partitioning (5 tasks) and a
fully dynamic one (one micro-task per transition) — and checks the
expected ordering of cycle counts.
"""

from __future__ import annotations

from repro.analysis import functional_metrics, qss_metrics
from repro.apps.atm import MODULE_PARTITION
from repro.baselines import build_dynamic_implementation


def test_dynamic_vs_qss(benchmark, atm_net, atm_testbench):
    dynamic = build_dynamic_implementation(atm_net)

    def run():
        qss_row, _ = qss_metrics(atm_net, atm_testbench)
        functional_row = functional_metrics(atm_net, MODULE_PARTITION, atm_testbench)
        dynamic_stats = dynamic.run(atm_testbench)
        return qss_row, functional_row, dynamic_stats

    qss_row, functional_row, dynamic_stats = benchmark.pedantic(
        run, iterations=1, rounds=2
    )

    assert qss_row.clock_cycles < functional_row.clock_cycles < dynamic_stats.total_cycles
    benchmark.extra_info["qss_cycles"] = qss_row.clock_cycles
    benchmark.extra_info["functional_cycles"] = functional_row.clock_cycles
    benchmark.extra_info["dynamic_cycles"] = dynamic_stats.total_cycles
    benchmark.extra_info["dynamic_over_qss"] = round(
        dynamic_stats.total_cycles / qss_row.clock_cycles, 3
    )
