"""E1 — Figure 1: free-choice vs non-free-choice classification.

Regenerates the structural facts of Figure 1: the net of Figure 1a is a
Free-Choice net, the net of Figure 1b is not (a marking enables t3 but
not t2), and times the classification machinery.
"""

from __future__ import annotations

from repro.gallery import figure1a_free_choice, figure1b_not_free_choice
from repro.petrinet import Marking, classify, is_free_choice


def test_figure1_classification(benchmark):
    net_a = figure1a_free_choice()
    net_b = figure1b_not_free_choice()

    def run():
        return is_free_choice(net_a), is_free_choice(net_b), classify(net_b)

    fc_a, fc_b, class_b = benchmark(run)
    assert fc_a is True
    assert fc_b is False
    assert class_b == "general"
    # the defining counterexample marking of Figure 1b
    marking = Marking({"p1": 1})
    assert net_b.is_enabled("t3", marking) and not net_b.is_enabled("t2", marking)
    benchmark.extra_info["figure1a_free_choice"] = fc_a
    benchmark.extra_info["figure1b_free_choice"] = fc_b
