"""E5 — Figures 5 and 6: T-allocations, T-reductions and their invariants.

Regenerates: the two T-allocations of Figure 5 (A1 with t2, A2 with t3),
the reduction R1 of Figure 6 (t3, p3, t5, p5, p6, t7 removed), the
T-invariants of R1 quoted in the text — (1,1,0,2,0,4,0,0,0) and
(0,0,0,0,0,1,0,1,1) — and the two-cycle valid schedule.  The timed
quantity is allocation enumeration + reduction + static scheduling.
"""

from __future__ import annotations

from repro.gallery import figure5_two_inputs
from repro.petrinet import t_invariants
from repro.qss import TAllocation, analyse, enumerate_allocations, reduce_net


def test_figure5_reductions_and_invariants(benchmark):
    net = figure5_two_inputs()

    def run():
        allocations = list(enumerate_allocations(net))
        r1 = reduce_net(net, TAllocation.from_mapping({"p1": "t2"}))
        return allocations, r1, analyse(net)

    allocations, r1, report = benchmark(run)

    assert len(allocations) == 2
    everything = set(net.transition_names)
    allocation_sets = {
        frozenset(a.allocated_transitions(net)) for a in allocations
    }
    assert frozenset(everything - {"t3"}) in allocation_sets  # A1
    assert frozenset(everything - {"t2"}) in allocation_sets  # A2

    assert set(r1.net.transition_names) == {"t1", "t2", "t4", "t6", "t8", "t9"}
    invariants = t_invariants(r1.net)
    assert {"t1": 1, "t2": 1, "t4": 2, "t6": 4} in invariants
    assert {"t6": 1, "t8": 1, "t9": 1} in invariants

    assert report.schedulable and report.reduction_count == 2
    counts = [cycle.counts for cycle in report.schedule.cycles]
    assert {"t1": 1, "t2": 1, "t4": 2, "t6": 5, "t8": 1, "t9": 1} in counts

    benchmark.extra_info["r1_invariants"] = invariants
    benchmark.extra_info["valid_schedule_counts"] = counts
