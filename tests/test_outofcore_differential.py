"""Differential suite for the out-of-core budgeted frontier engine.

Pins the spill-to-disk exploration (``engine="frontier"`` plus
``memory_budget=``/``spill_dir=``) against the in-RAM paths on the
paper gallery plus seeded nets from the corpus families, under budgets
tiny enough that spilling and chunking trigger even on small nets:

* reachability graphs are **bit-identical** (same marking list, same
  edge list, same ``complete`` flag — the chunked BFS reproduces the
  in-RAM node numbering exactly, including the ``max_markings``
  cutoff point and the ``stop_on_target`` early exit);
* coverability verdicts, place bounds and node counts are identical;
* deadlock sets are identical;
* the budget parser, the spilling visited store and the engine
  validation guard behave as documented;
* symmetry reduction produces a validated quotient that preserves the
  deadlock-freedom verdict and the exact per-place bounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gallery import paper_figures
from repro.petrinet import (
    PetriNet,
    ReachabilityGraph,
    SymmetryGroup,
    build_reachability_graph,
    canonicalize,
    compile_net,
    coverability_analysis,
    detect_symmetries,
    explore_frontier,
    find_deadlocks,
    group_from_names,
    is_deadlock_free,
    orbit_place_bounds,
    parse_memory_budget,
)
from repro.petrinet.corpus import CORPUS_FAMILIES
from repro.petrinet.outofcore import VisitedStore, explore_budgeted
from repro.petrinet.generators import (
    fork_join_pipeline,
    pipeline_net,
    producer_consumer_ring,
)

#: Small enough that even ~100-marking nets spill visited shards and
#: split frontiers into chunks (the spill floors are 64 entries / 64
#: rows, far below any real budget's).
TINY_BUDGET = 4096

GRAPH_CAP = 300
COVERABILITY_CAP = 500
SEEDS_PER_FAMILY = 4

GALLERY = sorted(paper_figures())
#: Every corpus family rides through the budgeted path (the issue floor
#: is five families; running all of them costs little at this cap).
FAMILY_CASES = [
    (family, seed)
    for family in sorted(CORPUS_FAMILIES)
    for seed in range(SEEDS_PER_FAMILY)
]


def _family_net(family: str, seed: int) -> PetriNet:
    return CORPUS_FAMILIES[family].spec(seed).build()


def assert_graphs_identical(budgeted: ReachabilityGraph, other: ReachabilityGraph):
    assert budgeted.markings == other.markings
    assert budgeted.edges == other.edges
    assert budgeted.complete == other.complete


def _budgeted_graph(net, cap=GRAPH_CAP, **kwargs):
    return build_reachability_graph(
        net,
        max_markings=cap,
        engine="frontier",
        memory_budget=TINY_BUDGET,
        **kwargs,
    )


# ----------------------------------------------------------------------
# Gallery + corpus: bit-identity under a tiny forced budget
# ----------------------------------------------------------------------
class TestGallery:
    @pytest.mark.parametrize("figure", GALLERY)
    def test_graphs_identical(self, figure):
        net = paper_figures()[figure]()
        in_ram = build_reachability_graph(
            net, max_markings=GRAPH_CAP, engine="frontier"
        )
        compiled = build_reachability_graph(
            net, max_markings=GRAPH_CAP, engine="compiled"
        )
        budgeted = _budgeted_graph(net)
        assert_graphs_identical(budgeted, in_ram)
        assert_graphs_identical(budgeted, compiled)

    @pytest.mark.parametrize("figure", GALLERY)
    def test_coverability_identical(self, figure):
        net = paper_figures()[figure]()
        in_ram = coverability_analysis(
            net, max_nodes=COVERABILITY_CAP, engine="compiled"
        )
        budgeted = coverability_analysis(
            net,
            max_nodes=COVERABILITY_CAP,
            engine="frontier",
            memory_budget=TINY_BUDGET,
        )
        assert budgeted.bounded == in_ram.bounded
        assert budgeted.unbounded_places == in_ram.unbounded_places
        assert budgeted.place_bounds == in_ram.place_bounds
        assert budgeted.node_count == in_ram.node_count
        assert budgeted.complete == in_ram.complete


class TestCorpusFamilies:
    @pytest.mark.parametrize("family,seed", FAMILY_CASES)
    def test_graphs_identical(self, family, seed):
        net = _family_net(family, seed)
        compiled = build_reachability_graph(
            net, max_markings=GRAPH_CAP, engine="compiled"
        )
        assert_graphs_identical(_budgeted_graph(net), compiled)

    @pytest.mark.parametrize("family,seed", FAMILY_CASES)
    def test_deadlock_sets_identical(self, family, seed):
        net = _family_net(family, seed)
        budgeted = find_deadlocks(
            net,
            max_markings=GRAPH_CAP,
            engine="frontier",
            memory_budget=TINY_BUDGET,
        )
        assert budgeted == find_deadlocks(
            net, max_markings=GRAPH_CAP, engine="compiled"
        )

    @pytest.mark.parametrize("family", sorted(CORPUS_FAMILIES))
    def test_coverability_identical(self, family):
        net = _family_net(family, 0)
        in_ram = coverability_analysis(
            net, max_nodes=COVERABILITY_CAP, engine="frontier"
        )
        budgeted = coverability_analysis(
            net,
            max_nodes=COVERABILITY_CAP,
            engine="frontier",
            memory_budget=TINY_BUDGET,
        )
        assert budgeted.bounded == in_ram.bounded
        assert budgeted.place_bounds == in_ram.place_bounds
        assert budgeted.node_count == in_ram.node_count
        assert budgeted.complete == in_ram.complete


# ----------------------------------------------------------------------
# Spill mechanics
# ----------------------------------------------------------------------
class TestSpillMechanics:
    def test_tiny_budget_really_spills_and_chunks(self):
        # 2401 markings with frontiers wide enough to overflow the
        # 64-row chunk floor at this budget
        compiled = compile_net(producer_consumer_ring(4, 6))
        exploration = explore_frontier(
            compiled, max_markings=10_000, memory_budget=TINY_BUDGET
        )
        spill = exploration.spill
        assert spill is not None
        assert spill.budget_bytes == TINY_BUDGET
        assert spill.shard_count > 0, "tiny budget must force visited shards"
        assert spill.chunk_count > spill.level_count, (
            "tiny budget must split at least one frontier into chunks"
        )
        assert spill.log_bytes > 0

    def test_exploration_matches_in_ram_bit_for_bit(self):
        compiled = compile_net(producer_consumer_ring(4, 3))
        in_ram = explore_frontier(compiled, max_markings=1_000)
        budgeted = explore_frontier(
            compiled, max_markings=1_000, memory_budget=TINY_BUDGET
        )
        assert np.array_equal(np.asarray(budgeted.matrix), in_ram.matrix)
        assert np.array_equal(np.asarray(budgeted.edge_src), in_ram.edge_src)
        assert np.array_equal(
            np.asarray(budgeted.edge_transition), in_ram.edge_transition
        )
        assert np.array_equal(np.asarray(budgeted.edge_dst), in_ram.edge_dst)
        assert budgeted.complete == in_ram.complete

    @pytest.mark.parametrize("cap", [1, 2, 7, 17, 50, 100])
    def test_truncation_cutoff_identical(self, cap):
        """The max_markings cutoff lands on the same node and edge."""
        for net in [producer_consumer_ring(3, 2), pipeline_net(3, rates=[2, 1, 3])]:
            compiled = build_reachability_graph(
                net, max_markings=cap, engine="compiled"
            )
            assert_graphs_identical(_budgeted_graph(net, cap=cap), compiled)

    def test_stop_on_target_identical(self):
        compiled = compile_net(producer_consumer_ring(5, 3))
        full = explore_frontier(compiled, max_markings=100_000)
        target = tuple(int(v) for v in full.matrix[137])
        in_ram = explore_frontier(
            compiled, target=target, stop_on_target=True, max_markings=100_000
        )
        budgeted = explore_frontier(
            compiled,
            target=target,
            stop_on_target=True,
            max_markings=100_000,
            memory_budget=TINY_BUDGET,
        )
        assert budgeted.target_index == in_ram.target_index == 137
        assert budgeted.complete is False
        assert np.array_equal(np.asarray(budgeted.matrix), in_ram.matrix)
        assert np.array_equal(np.asarray(budgeted.edge_dst), in_ram.edge_dst)

    def test_collect_edges_false_leaves_logs_empty(self):
        compiled = compile_net(producer_consumer_ring(4, 3))
        exploration = explore_frontier(
            compiled,
            max_markings=1_000,
            collect_edges=False,
            memory_budget=TINY_BUDGET,
        )
        assert exploration.edge_src.size == 0
        assert exploration.node_count == 256

    def test_user_spill_dir_is_kept(self, tmp_path):
        compiled = compile_net(producer_consumer_ring(4, 3))
        spill_dir = tmp_path / "nested" / "spill"  # created on demand
        explore_frontier(
            compiled,
            max_markings=1_000,
            memory_budget=TINY_BUDGET,
            spill_dir=spill_dir,
        )
        kept = list(spill_dir.iterdir())
        assert kept, "a user-provided spill dir must retain its files"
        assert any(p.name.startswith("visited-") for p in kept)

    def test_spill_dir_alone_forces_outofcore_path(self, tmp_path):
        """``spill_dir`` without a budget still routes out-of-core (no
        shards — everything fits — but the marking log streams there)."""
        net = producer_consumer_ring(3, 2)
        graph = build_reachability_graph(
            net, max_markings=GRAPH_CAP, engine="frontier", spill_dir=tmp_path
        )
        reference = build_reachability_graph(
            net, max_markings=GRAPH_CAP, engine="compiled"
        )
        assert_graphs_identical(graph, reference)
        assert graph._exploration.spill is not None
        assert graph._exploration.spill.shard_count == 0


# ----------------------------------------------------------------------
# Budget parser + visited store unit coverage
# ----------------------------------------------------------------------
class TestParseMemoryBudget:
    @pytest.mark.parametrize(
        "text,expected",
        [
            (None, None),
            (4096, 4096),
            ("4096", 4096),
            ("512b", 512),
            ("1k", 1024),
            ("2KB", 2048),
            ("3KiB", 3072),
            ("64MB", 64 * 2**20),
            ("1.5GiB", int(1.5 * 2**30)),
            (" 8 mb ", 8 * 2**20),
            ("1_000", 1000),
        ],
    )
    def test_accepted(self, text, expected):
        assert parse_memory_budget(text) == expected

    @pytest.mark.parametrize("bad", ["", "abc", "-5", "10TB", "MB", 0, -1])
    def test_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_memory_budget(bad)


class TestVisitedStore:
    def test_lookup_across_spilled_shards(self, tmp_path):
        store = VisitedStore(tmp_path, segment_entries=64)
        rng = np.random.default_rng(7)
        h1 = np.sort(rng.choice(10_000, size=300, replace=False).astype(np.int64))
        h2 = h1 * 31 + 5
        idx = np.arange(300, dtype=np.int64)
        for at in range(0, 300, 50):  # several inserts => several spills
            chunk = slice(at, at + 50)
            store.insert(h1[chunk], h2[chunk], idx[chunk])
        assert store.shard_count >= 3
        found, index, h2_out = store.lookup(h1)
        assert found.all()
        assert np.array_equal(index, idx)
        assert np.array_equal(h2_out, h2)
        missing = np.array([10_001, 20_002], dtype=np.int64)
        found, _, _ = store.lookup(missing)
        assert not found.any()
        store.release()
        assert not list(tmp_path.glob("visited-*.bin"))


# ----------------------------------------------------------------------
# Validation + fallback
# ----------------------------------------------------------------------
class TestValidation:
    @pytest.mark.parametrize("engine", ["compiled", "legacy"])
    def test_budget_requires_frontier_engine(self, engine):
        net = producer_consumer_ring(2, 2)
        with pytest.raises(ValueError, match="frontier"):
            build_reachability_graph(net, engine=engine, memory_budget=TINY_BUDGET)
        with pytest.raises(ValueError, match="frontier"):
            coverability_analysis(net, engine=engine, spill_dir="/tmp/x")
        with pytest.raises(ValueError, match="frontier"):
            find_deadlocks(net, engine=engine, symmetry="auto")

    def test_corpus_rejects_budget_on_other_engines(self):
        from repro.petrinet.corpus import generate_corpus, run_corpus

        specs = generate_corpus(2, seed=0)
        with pytest.raises(ValueError, match="frontier"):
            run_corpus(specs, engine="compiled", memory_budget=TINY_BUDGET)

    def test_corpus_budgeted_records_match_in_ram(self):
        from repro.petrinet.corpus import generate_corpus, run_corpus

        specs = generate_corpus(4, seed=11)
        budgeted = run_corpus(specs, engine="frontier", memory_budget=TINY_BUDGET)
        in_ram = run_corpus(specs, engine="frontier")
        assert not budgeted.errors
        for a, b in zip(budgeted.records, in_ram.records):
            da, db = a.to_dict(), b.to_dict()
            da.pop("elapsed_ms")
            db.pop("elapsed_ms")
            assert da == db

    def test_hash_disagreement_falls_back_to_exact(self, monkeypatch):
        import repro.petrinet.outofcore as outofcore_module
        from repro.petrinet.frontier import _HashDisagreement

        def always_disagrees(*args, **kwargs):
            raise _HashDisagreement

        monkeypatch.setattr(
            outofcore_module, "_explore_spilling", always_disagrees
        )
        net = producer_consumer_ring(3, 2)
        graph = _budgeted_graph(net, cap=200)
        reference = build_reachability_graph(net, max_markings=200, engine="compiled")
        assert_graphs_identical(graph, reference)


# ----------------------------------------------------------------------
# Symmetry reduction
# ----------------------------------------------------------------------
def _twin_branch_net() -> PetriNet:
    """Two interchangeable branches fed by one source place."""
    net = PetriNet(name="twin_branches")
    net.add_place("src", tokens=2)
    net.add_place("p_a")
    net.add_place("p_b")
    net.add_place("sink")
    net.add_transition("t_a")
    net.add_transition("t_b")
    net.add_transition("u_a")
    net.add_transition("u_b")
    net.add_arc("src", "t_a")
    net.add_arc("src", "t_b")
    net.add_arc("t_a", "p_a")
    net.add_arc("t_b", "p_b")
    net.add_arc("p_a", "u_a")
    net.add_arc("p_b", "u_b")
    net.add_arc("u_a", "sink")
    net.add_arc("u_b", "sink")
    return net


class TestSymmetry:
    def test_detects_interchangeable_branches(self):
        compiled = compile_net(fork_join_pipeline(3, 4, closed=True))
        groups = detect_symmetries(compiled)
        assert groups, "fork_join_pipeline branches are interchangeable"
        assert groups[0].k == 3

    def test_quotient_is_smaller_and_preserves_deadlock_verdict(self):
        net = fork_join_pipeline(3, 4, closed=True)
        compiled = compile_net(net)
        full = explore_frontier(compiled, max_markings=10_000)
        quotient = explore_frontier(
            compiled, max_markings=10_000, symmetry="auto"
        )
        assert quotient.complete
        assert quotient.node_count < full.node_count
        assert is_deadlock_free(
            net, engine="frontier", symmetry="auto"
        ) == is_deadlock_free(net, engine="compiled")

    def test_orbit_bounds_equal_full_place_bounds(self):
        net = fork_join_pipeline(3, 4, closed=True)
        budgeted = coverability_analysis(
            net, engine="frontier", symmetry="auto", memory_budget=TINY_BUDGET
        )
        reference = coverability_analysis(net, engine="compiled")
        assert budgeted.bounded == reference.bounded
        assert budgeted.place_bounds == reference.place_bounds
        assert budgeted.complete

    def test_group_from_names_validates_real_symmetry(self):
        compiled = compile_net(_twin_branch_net())
        group = group_from_names(
            compiled,
            [["p_a"], ["p_b"]],
            [["t_a", "u_a"], ["t_b", "u_b"]],
        )
        assert group.k == 2
        quotient = explore_frontier(compiled, symmetry=group)
        full = explore_frontier(compiled)
        assert quotient.complete
        assert quotient.node_count < full.node_count

    def test_group_from_names_rejects_fake_symmetry(self):
        compiled = compile_net(_twin_branch_net())
        with pytest.raises(ValueError):
            group_from_names(
                compiled,
                [["p_a"], ["sink"]],
                [["t_a", "u_a"], ["t_b", "u_b"]],
            )

    def test_canonicalize_sorts_block_subvectors(self):
        group = SymmetryGroup(
            place_blocks=((0, 1), (2, 3)), transition_blocks=()
        )
        rows = np.array([[5, 0, 1, 2, 9], [1, 2, 5, 0, 9]], dtype=np.int64)
        canon = canonicalize(rows, [group])
        # blocks are (cols 0,1) and (cols 2,3); untouched tail col 4
        assert canon.tolist() == [[1, 2, 5, 0, 9], [1, 2, 5, 0, 9]]
        assert rows[0, 0] == 5  # input not mutated

    def test_orbit_place_bounds_lifts_column_maxima(self):
        group = SymmetryGroup(
            place_blocks=((0, 1), (2, 3)), transition_blocks=()
        )
        bounds = np.array([1, 7, 4, 2, 3], dtype=np.int64)
        lifted = orbit_place_bounds(bounds, [group])
        assert lifted.tolist() == [4, 7, 4, 7, 3]

    def test_symmetry_composes_with_budget(self, tmp_path):
        compiled = compile_net(fork_join_pipeline(3, 4, closed=True))
        plain = explore_frontier(compiled, max_markings=10_000, symmetry="auto")
        budgeted = explore_budgeted(
            compiled,
            max_markings=10_000,
            memory_budget=TINY_BUDGET,
            spill_dir=tmp_path,
            symmetry="auto",
        )
        assert budgeted.spill.canonical
        assert np.array_equal(np.asarray(budgeted.matrix), plain.matrix)
        assert np.array_equal(np.asarray(budgeted.edge_dst), plain.edge_dst)
