"""Integration tests pinning every quantitative claim quoted from the paper.

Each test cites the statement in the paper it checks, so a failure points
directly at the part of the reproduction that diverged.
"""

from __future__ import annotations

import pytest

from repro.gallery import paper_figures
from repro.petrinet import (
    Marking,
    coverability_analysis,
    is_free_choice,
    is_marked_graph,
    t_invariants,
)
from repro.qss import TAllocation, analyse, enumerate_allocations, reduce_net


class TestFigure1:
    def test_1a_is_free_choice_1b_is_not(self):
        """Section 2: Figure 1a is a Free Choice net, Figure 1b is not
        because a marking enables t3 but not t2."""
        figures = paper_figures()
        net_a = figures["figure1a"]()
        net_b = figures["figure1b"]()
        assert is_free_choice(net_a)
        assert not is_free_choice(net_b)
        marking = Marking({"p1": 1})
        assert net_b.is_enabled("t3", marking)
        assert not net_b.is_enabled("t2", marking)


class TestFigure2:
    def test_repetition_vector_and_cycle(self):
        """Section 2 / Figure 2: f(sigma) = (4, 2, 1) and the cyclic
        schedule t1 t1 t1 t1 t2 t2 t3 returns the net to (0, 0)."""
        net = paper_figures()["figure2"]()
        assert is_marked_graph(net)
        assert t_invariants(net) == [{"t1": 4, "t2": 2, "t3": 1}]
        from repro.petrinet import is_finite_complete_cycle

        assert is_finite_complete_cycle(
            net, ["t1", "t1", "t1", "t1", "t2", "t2", "t3"]
        )


class TestFigure3:
    def test_3a_valid_schedule(self):
        """Section 3: S = {(t1 t2 t4), (t1 t3 t5)} is a valid schedule."""
        report = analyse(paper_figures()["figure3a"]())
        sequences = {cycle.sequence for cycle in report.schedule.cycles}
        assert sequences == {("t1", "t2", "t4"), ("t1", "t3", "t5")}

    def test_3a_invariant_space(self):
        """Figure 3 annotation: f(s) = a(1,1,0,1,0) + b(1,0,1,0,1)."""
        invariants = t_invariants(paper_figures()["figure3a"]())
        assert {"t1": 1, "t2": 1, "t4": 1} in invariants
        assert {"t1": 1, "t3": 1, "t5": 1} in invariants

    def test_3b_not_schedulable_and_unbounded(self):
        """Section 3: always choosing t2 (t3) accumulates tokens without
        bound in p2 (p3), so the net has no valid schedule."""
        net = paper_figures()["figure3b"]()
        report = analyse(net)
        assert not report.schedulable
        coverability = coverability_analysis(net)
        assert not coverability.bounded
        assert {"p2", "p3"} <= set(coverability.unbounded_places)


class TestFigure4:
    def test_schedule_counts(self):
        """Section 3: S = {(t1 t2 t1 t2 t4), (t1 t3 t5 t5)} is valid."""
        report = analyse(paper_figures()["figure4"]())
        assert report.schedulable
        counts = [cycle.counts for cycle in report.schedule.cycles]
        assert {"t1": 2, "t2": 2, "t4": 1} in counts
        assert {"t1": 1, "t3": 1, "t5": 2} in counts

    def test_partial_sequence_leaves_token(self):
        """Section 3 discussion: after t1 t2 t1 t3 t5 t5 one token remains in
        p2 — bounded, so the net is still considered schedulable."""
        net = paper_figures()["figure4"]()
        from repro.petrinet import fire_sequence

        marking = fire_sequence(net, ["t1", "t2", "t1", "t3", "t5", "t5"])
        assert marking == Marking({"p2": 1})


class TestFigure5:
    def test_two_allocations(self):
        """Section 3: there exist two T-allocations, A1 containing t2 and A2
        containing t3."""
        net = paper_figures()["figure5"]()
        allocations = list(enumerate_allocations(net))
        assert len(allocations) == 2
        assert {a.chosen("p1") for a in allocations} == {"t2", "t3"}

    def test_r1_invariants_match_paper(self):
        """Section 3: the T-invariants of R1 are (1,1,0,2,0,4,0,0,0) and
        (0,0,0,0,0,1,0,1,1)."""
        net = paper_figures()["figure5"]()
        r1 = reduce_net(net, TAllocation.from_mapping({"p1": "t2"}))
        invariants = t_invariants(r1.net)
        assert {"t1": 1, "t2": 1, "t4": 2, "t6": 4} in invariants
        assert {"t6": 1, "t8": 1, "t9": 1} in invariants
        assert len(invariants) == 2

    def test_valid_schedule_counts_match_paper(self):
        """Section 3: a valid set of finite complete cycles is
        {(t1 t2 t4 t4 t6 t6 t6 t6 t8 t9 t6), (t1 t3 t5 t7 t7 t8 t9 t6)}."""
        report = analyse(paper_figures()["figure5"]())
        assert report.schedulable
        counts = [cycle.counts for cycle in report.schedule.cycles]
        assert {"t1": 1, "t2": 1, "t4": 2, "t6": 5, "t8": 1, "t9": 1} in counts
        assert {
            "t1": 1, "t3": 1, "t5": 1, "t7": 2, "t6": 1, "t8": 1, "t9": 1,
        } in counts

    def test_figure6_reduction_steps(self):
        """Figure 6: obtaining R1 removes t3, p3, t5, p5, p6, t7 (in that
        causal order) and keeps everything else."""
        net = paper_figures()["figure5"]()
        trace = []
        reduction = reduce_net(net, TAllocation.from_mapping({"p1": "t2"}), trace=trace)
        removed_order = [step.node for step in trace if step.action.startswith("remove")]
        assert removed_order[0] == "t3"
        assert set(removed_order) == {"t3", "p3", "t5", "p5", "p6", "t7"}
        assert set(reduction.net.transition_names) == {"t1", "t2", "t4", "t6", "t8", "t9"}


class TestFigure7:
    def test_both_reductions_inconsistent(self):
        """Section 3: both T-reductions are inconsistent because they contain
        a source place; firing (t1 t2 t4 t6) forever would accumulate tokens
        in p4 since p3 cannot provide infinitely many."""
        net = paper_figures()["figure7"]()
        report = analyse(net)
        assert not report.schedulable
        assert len(report.verdicts) == 2
        for verdict in report.verdicts:
            assert not verdict.consistent
            assert verdict.source_places
