"""Differential tests: compiled vs legacy property engines must agree.

Every behavioural property that was ported to the compiled engine in
this layer — Karp–Miller coverability (boundedness, unbounded places,
node counts, place bounds), deadlock detection, liveness — is checked
here against the legacy dict-based engine on the whole paper gallery and
on seeded instances of the random generator families.  The two engines
are written to expand the same state spaces in the same order, so the
comparison is exact equality, not just verdict agreement.
"""

from __future__ import annotations

import pytest

from repro.gallery import gallery_nets
from repro.petrinet import (
    build_reachability_graph,
    coverability_analysis,
    find_deadlocks,
    is_bounded,
    is_live,
    place_bounds,
)
from repro.petrinet.generators import (
    fork_join_pipeline,
    producer_consumer_ring,
    random_free_choice_net,
    random_marked_graph,
    unbalanced_choice_net,
)

SEEDS = range(25)

#: Exploration caps: small enough to keep unbounded nets affordable,
#: large enough that every bounded net in the sweep is explored exactly.
MAX_NODES = 600
MAX_MARKINGS = 800


def _cases():
    for figure, net in gallery_nets():
        yield figure, net
    for seed in SEEDS:
        yield f"random_fc_{seed}", random_free_choice_net(
            seed, n_choices=2, max_branch_length=2
        )
        yield f"random_mg_{seed}", random_marked_graph(seed)
    # a few members of the new families for structural variety
    for seed in range(5):
        yield f"unbalanced_{seed}", unbalanced_choice_net(seed, merge=seed % 2 == 0)
    yield "pcr", producer_consumer_ring(3, 2)
    yield "fork_join", fork_join_pipeline(3, 2, closed=True)


CASES = list(_cases())
CASE_IDS = [case_id for case_id, _ in CASES]


@pytest.mark.parametrize("case_id,net", CASES, ids=CASE_IDS)
class TestCoverabilityDifferential:
    def test_coverability_results_identical(self, case_id, net):
        compiled = coverability_analysis(net, max_nodes=MAX_NODES, engine="compiled")
        legacy = coverability_analysis(net, max_nodes=MAX_NODES, engine="legacy")
        assert compiled.bounded == legacy.bounded
        assert compiled.unbounded_places == legacy.unbounded_places
        assert compiled.node_count == legacy.node_count
        assert compiled.place_bounds == legacy.place_bounds
        assert compiled.complete == legacy.complete

    def test_boundedness_verdicts_agree(self, case_id, net):
        assert is_bounded(net, engine="compiled") == is_bounded(net, engine="legacy")

    def test_place_bounds_identical(self, case_id, net):
        assert place_bounds(net, engine="compiled") == place_bounds(
            net, engine="legacy"
        )


@pytest.mark.parametrize("case_id,net", CASES, ids=CASE_IDS)
class TestReachabilityDifferential:
    def test_deadlock_sets_identical(self, case_id, net):
        compiled = find_deadlocks(net, max_markings=MAX_MARKINGS, engine="compiled")
        legacy = find_deadlocks(net, max_markings=MAX_MARKINGS, engine="legacy")
        # both engines explore in the same BFS order, so even the list
        # order (not just the set) must match
        assert compiled == legacy

    def test_liveness_verdicts_agree(self, case_id, net):
        graph = build_reachability_graph(net, max_markings=MAX_MARKINGS)
        if graph.complete:
            assert is_live(
                net, max_markings=MAX_MARKINGS, engine="compiled"
            ) == is_live(net, max_markings=MAX_MARKINGS, engine="legacy")
        else:
            # liveness is only decided on complete graphs: both engines
            # must refuse identically
            for engine in ("compiled", "legacy"):
                with pytest.raises(RuntimeError):
                    is_live(net, max_markings=MAX_MARKINGS, engine=engine)


class TestCompiledNetInput:
    """The compiled path also accepts pre-compiled nets directly."""

    def test_coverability_on_compiled_net(self):
        net = random_marked_graph(3)
        compiled_view = net.compile()
        direct = coverability_analysis(compiled_view)
        via_petri = coverability_analysis(net, engine="legacy")
        assert direct.bounded == via_petri.bounded
        assert direct.place_bounds == via_petri.place_bounds

    def test_legacy_engine_rejects_compiled_net(self):
        compiled_view = random_marked_graph(3).compile()
        with pytest.raises(ValueError):
            coverability_analysis(compiled_view, engine="legacy")

    def test_place_bounds_and_liveness_on_compiled_net(self):
        net = producer_consumer_ring(2, 2)
        compiled_view = net.compile()
        assert place_bounds(compiled_view) == place_bounds(net, engine="legacy")
        assert is_live(compiled_view) is True
