"""Feature tests for the mask-based QSS pipeline and its hot-path fixes.

Covers the PR's satellite guarantees:

* ``find_firing_sequence`` survives cycles longer than the interpreter
  recursion limit (explicit-stack DFS regression);
* ``TAllocation.as_dict`` is memoized, not rebuilt per lookup;
* ``analyse(fail_fast=True)`` stops at the first failing T-reduction and
  ``is_schedulable`` uses it by default;
* the ``workers=`` pool and the streaming mask pipeline behave like the
  sequential/legacy paths;
* the corpus schedulability sweep mode (``analyse="qss"``) fills the new
  columns and round-trips through JSON/CSV.
"""

from __future__ import annotations

import csv
import json
import sys

import pytest

from repro.petrinet import (
    find_finite_complete_cycle,
    find_firing_sequence,
    is_finite_complete_cycle,
)
from repro.petrinet.corpus import (
    CORPUS_SCHEMA,
    corpus_from_json_dict,
    corpus_to_csv,
    corpus_to_json_dict,
    generate_corpus,
    run_corpus,
)
from repro.petrinet.generators import (
    independent_choices_net,
    multirate_choice_net,
    nested_choices_net,
    pipeline_net,
    unschedulable_merge_net,
)
from repro.qss import (
    QSSContext,
    TAllocation,
    analyse,
    check_compiled_reduction,
    is_schedulable,
    iter_compiled_reductions,
)


class TestLongCycleRecursionRegression:
    """The DFS used to recurse once per firing; long cycles blew the stack."""

    @pytest.mark.parametrize("engine", ["compiled", "legacy"])
    def test_sequence_longer_than_recursion_limit(self, engine):
        firings = sys.getrecursionlimit() + 500
        net = pipeline_net(1, rates=[firings])
        counts = {"t0": 1, "t1": firings}
        sequence = find_firing_sequence(net, counts, engine=engine)
        assert sequence is not None
        assert len(sequence) == firings + 1
        assert sequence[0] == "t0"
        assert is_finite_complete_cycle(net, sequence)

    def test_cycle_longer_than_recursion_limit(self):
        firings = sys.getrecursionlimit() + 500
        net = pipeline_net(1, rates=[firings])
        cycle = find_finite_complete_cycle(net, {"t0": 1, "t1": firings})
        assert cycle is not None and len(cycle) == firings + 1

    def test_analyse_multirate_with_large_rates(self):
        """Full QSS analysis whose branch cycle exceeds the stack limit."""
        rate = sys.getrecursionlimit()
        net = multirate_choice_net(rate_a=rate, rate_b=1)
        report = analyse(net)
        assert report.schedulable
        assert max(len(v.cycle) for v in report.verdicts) > rate

    def test_masked_search_longer_than_recursion_limit(self):
        """The shared DFS also backs the mask pipeline's cycle search."""
        firings = sys.getrecursionlimit() + 500
        net = pipeline_net(1, rates=[firings])
        reduction = next(iter_compiled_reductions(net))
        cycle = reduction.find_finite_complete_cycle(
            {"t0": 1, "t1": firings}, reduction.initial
        )
        assert cycle is not None and len(cycle) == firings + 1


class TestAllocationMemoization:
    def test_as_dict_is_memoized(self):
        allocation = TAllocation.from_mapping({"p1": "t2", "p2": "t5"})
        first = allocation.as_dict
        assert allocation.as_dict is first, "as_dict must not be rebuilt per lookup"
        assert first == {"p1": "t2", "p2": "t5"}

    def test_memo_does_not_affect_equality_or_hashing(self):
        a = TAllocation.from_mapping({"p1": "t2"})
        b = TAllocation.from_mapping({"p1": "t2"})
        _ = a.as_dict  # memoize on one side only
        assert a == b
        assert hash(a) == hash(b)
        assert a.chosen("p1") == "t2"
        assert a.chosen("p9") is None


class TestFailFast:
    def test_fail_fast_stops_at_first_failure(self):
        net = unschedulable_merge_net()
        full = analyse(net)
        assert not full.schedulable and len(full.verdicts) == 2 and full.complete
        fast = analyse(net, fail_fast=True)
        assert not fast.schedulable
        assert len(fast.verdicts) == 1, "fail_fast must stop after the first failure"
        assert not fast.complete
        assert fast.reduction_count == 1
        assert "fail-fast" in fast.explain()
        # the partial verdict matches the exhaustive run's first verdict
        assert fast.verdicts[0].cycle == full.verdicts[0].cycle
        assert fast.verdicts[0].schedulable == full.verdicts[0].schedulable

    def test_fail_fast_on_schedulable_net_checks_everything(self):
        net = independent_choices_net(3, 2)
        report = analyse(net, fail_fast=True)
        assert report.schedulable and report.complete
        assert report.reduction_count == 8
        assert report.schedule is not None

    def test_is_schedulable_uses_fail_fast_by_default(self):
        assert is_schedulable(unschedulable_merge_net()) is False
        assert is_schedulable(independent_choices_net(2, 2)) is True

    def test_fail_fast_legacy_engine(self):
        fast = analyse(unschedulable_merge_net(), engine="legacy", fail_fast=True)
        assert not fast.schedulable and len(fast.verdicts) == 1

    def test_fail_fast_complete_flag_uniform_across_engines(self):
        """Any fail-fast stop reports complete=False, in every configuration."""
        net = unschedulable_merge_net()
        for kwargs in (
            {"engine": "compiled"},
            {"engine": "legacy"},
            {"engine": "compiled", "workers": 2},
            {"engine": "legacy", "workers": 2},
        ):
            report = analyse(net, fail_fast=True, **kwargs)
            assert not report.schedulable
            assert not report.complete, kwargs

    def test_fail_fast_with_workers_on_single_reduction_net(self):
        """workers>1 must not bypass fail_fast when only one reduction
        exists (the pool fallback path)."""
        from repro.petrinet import NetBuilder

        # a token-free cycle: one T-reduction, consistent but deadlocked
        net = (
            NetBuilder("single_red_deadlock")
            .transition("a")
            .transition("b")
            .place("p1")
            .place("p2")
            .arc("a", "p1")
            .arc("p1", "b")
            .arc("b", "p2")
            .arc("p2", "a")
            .build()
        )
        for kwargs in (
            {"engine": "compiled", "workers": 2},
            {"engine": "legacy", "workers": 2},
            {"engine": "compiled"},
        ):
            report = analyse(net, fail_fast=True, **kwargs)
            assert not report.schedulable
            assert not report.complete, kwargs
            assert len(report.verdicts) == 1


class TestWorkersPool:
    def test_workers_produce_valid_schedule(self):
        net = nested_choices_net(4)
        report = analyse(net, workers=2)
        assert report.schedulable
        assert report.schedule is not None and report.schedule.verify()

    def test_workers_fail_fast(self):
        report = analyse(unschedulable_merge_net(), fail_fast=True, workers=2)
        assert not report.schedulable
        assert not report.complete
        assert 1 <= len(report.verdicts) <= 2


class TestCompiledReductionSurface:
    def test_masked_enabledness_and_source_places(self):
        net = unschedulable_merge_net()
        reductions = list(iter_compiled_reductions(net))
        assert len(reductions) == 2
        for reduction in reductions:
            # Figure 3b: each reduction keeps the other branch's place as a
            # producer-less source place
            assert len(reduction.source_places()) == 1
            enabled = reduction.enabled_transitions(reduction.initial)
            assert all(reduction.transition_mask[t] for t in enabled)
            verdict = check_compiled_reduction(reduction)
            assert not verdict.schedulable

    def test_mask_signature_distinguishes_reductions(self):
        net = independent_choices_net(2, 2)
        signatures = {r.mask_signature() for r in iter_compiled_reductions(net)}
        assert len(signatures) == 4

    def test_max_reductions_cap_raises(self):
        net = independent_choices_net(3, 2)
        with pytest.raises(RuntimeError, match="more than 3 distinct"):
            list(iter_compiled_reductions(net, max_reductions=3))

    def test_decompile_only_on_demand(self):
        net = nested_choices_net(3)
        reduction = next(iter_compiled_reductions(net))
        assert "net" not in reduction._cache
        rebuilt = reduction.net
        assert "net" in reduction._cache
        assert set(rebuilt.transition_names) == reduction.transition_set

    def test_context_from_compiled_net_only(self):
        """The pipeline also runs on a bare CompiledNet (no source net)."""
        net = independent_choices_net(2, 2)
        context = QSSContext(net.compile())
        reductions = list(iter_compiled_reductions(net.compile(), context=context))
        assert len(reductions) == 4
        for reduction in reductions:
            verdict = check_compiled_reduction(reduction)
            assert verdict.schedulable
            assert set(reduction.net.transition_names) == reduction.transition_set


class TestFastSemiflows:
    def test_vectorized_prune_fallback_matches(self, monkeypatch):
        """Above the row limit the prune falls back to the O(n)-memory
        reference loop; forcing the fallback must not change results."""
        import numpy as np

        import repro.petrinet.invariants as invariants_module
        from repro.petrinet import incidence_matrices, fast_minimal_semiflows

        net = independent_choices_net(2, 3)
        matrix = incidence_matrices(net).incidence
        baseline = [v.tolist() for v in fast_minimal_semiflows(matrix)]
        monkeypatch.setattr(invariants_module, "_PRUNE_VECTOR_LIMIT", 1)
        forced = [v.tolist() for v in fast_minimal_semiflows(matrix)]
        assert forced == baseline
        exact = [
            [int(x) for x in v]
            for v in invariants_module._minimal_semiflows(matrix)
        ]
        assert baseline == exact
        assert all(
            (np.asarray(v) @ matrix == 0).all() for v in baseline
        )


class TestCorpusQSSSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        specs = generate_corpus(10, seed=7)
        return run_corpus(specs, analyse="qss")

    def test_sweep_fills_qss_columns(self, sweep):
        assert sweep.analyse == "qss"
        assert not sweep.errors
        free_choice = [r for r in sweep.records if r.free_choice]
        assert free_choice, "corpus draw must contain free-choice nets"
        for record in free_choice:
            assert record.schedulable is not None
            assert record.allocations is not None and record.allocations >= 1
            assert record.reductions is not None and record.reductions >= 1
            assert record.cycle_lengths is not None
            if record.schedulable:
                assert len(record.cycle_lengths) == record.reductions
                assert all(length > 0 for length in record.cycle_lengths)

    def test_sweep_skips_property_passes(self, sweep):
        for record in sweep.records:
            assert record.bounded is None
            assert record.reachable_markings is None
            assert not record.exploration_complete
            assert record.coverability_nodes == 0

    def test_sweep_json_round_trip(self, sweep):
        data = corpus_to_json_dict(sweep)
        assert data["schema"] == CORPUS_SCHEMA == "repro-qss.corpus/3"
        assert data["analyse"] == "qss"
        assert data["summary"]["qss"]["swept"] > 0
        assert data["summary"]["qss"]["allocations_total"] >= data["summary"][
            "qss"
        ]["reductions_total"]
        rebuilt = corpus_from_json_dict(data)
        assert corpus_to_json_dict(rebuilt) == data

    def test_sweep_matches_parallel_run(self, sweep):
        specs = generate_corpus(10, seed=7)
        parallel = run_corpus(specs, workers=2, analyse="qss")
        strip = lambda rs: [r.to_dict() | {"elapsed_ms": 0.0} for r in rs]
        assert strip(parallel.records) == strip(sweep.records)

    def test_sweep_csv_encodes_cycle_lengths(self, sweep, tmp_path):
        path = tmp_path / "sweep.csv"
        corpus_to_csv(sweep, str(path))
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(sweep.records)
        for row, record in zip(rows, sweep.records):
            if record.cycle_lengths is not None:
                assert json.loads(row["cycle_lengths"]) == record.cycle_lengths
            else:
                assert row["cycle_lengths"] == ""

    def test_properties_mode_also_fills_sweep_columns(self):
        specs = generate_corpus(4, seed=3)
        result = run_corpus(specs, analyse="properties")
        assert result.analyse == "properties"
        for record in result.records:
            if record.free_choice:
                assert record.allocations is not None
                assert record.cycle_lengths is not None
            # property passes still run in this mode
            assert record.coverability_nodes > 0 or record.error

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown corpus analysis mode"):
            run_corpus(generate_corpus(1, seed=0), analyse="everything")
