"""Property-based tests (hypothesis) for the Petri net substrate.

These check the algebraic invariants that the rest of the system relies
on: firing respects the state equation, T-invariants really are
stationary, serialization is lossless, and coverability agrees with
simulation on the net families used throughout the benchmarks.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.petrinet import (
    Marking,
    apply_state_equation,
    fire_sequence,
    incidence_matrices,
    is_finite_complete_cycle,
    is_firing_count_stationary,
    net_from_dict,
    net_to_dict,
    t_invariants,
)
from repro.petrinet.generators import (
    independent_choices_net,
    pipeline_net,
    random_free_choice_net,
    random_marked_graph,
)
from repro.petrinet.simulation import Simulator, make_random_policy
from repro.qss import enumerate_reductions, is_schedulable


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
rates = st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=5)
seeds = st.integers(min_value=0, max_value=10_000)


@st.composite
def pipelines(draw):
    stage_rates = draw(rates)
    return pipeline_net(len(stage_rates), rates=stage_rates)


@st.composite
def marked_graphs(draw):
    seed = draw(seeds)
    n = draw(st.integers(min_value=3, max_value=7))
    extra = draw(st.integers(min_value=0, max_value=4))
    return random_marked_graph(seed, n_transitions=n, extra_places=extra)


@st.composite
def free_choice_nets(draw):
    seed = draw(seeds)
    n_choices = draw(st.integers(min_value=1, max_value=3))
    return random_free_choice_net(seed, n_choices=n_choices, max_branch_length=2)


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(pipelines())
def test_t_invariants_are_stationary(net):
    for invariant in t_invariants(net):
        assert is_firing_count_stationary(net, invariant)


@settings(max_examples=25, deadline=None)
@given(marked_graphs())
def test_marked_graph_invariant_yields_complete_cycle(net):
    """On a live marked graph the all-ones invariant can always be ordered
    into a finite complete cycle (the SDF scheduling result)."""
    invariants = t_invariants(net)
    assert invariants
    from repro.petrinet import find_finite_complete_cycle

    cycle = find_finite_complete_cycle(net, invariants[0])
    assert cycle is not None
    assert is_finite_complete_cycle(net, cycle)


@settings(max_examples=25, deadline=None)
@given(marked_graphs(), st.integers(min_value=1, max_value=30))
def test_simulation_matches_state_equation(net, steps):
    """The marking after any fired sequence equals initial + f^T . D."""
    simulator = Simulator(net, policy=make_random_policy(steps))
    trace = simulator.run(steps)
    predicted = apply_state_equation(
        net, net.initial_marking, trace.firing_counts()
    )
    assert predicted == trace.final_marking


@settings(max_examples=25, deadline=None)
@given(marked_graphs())
def test_serialization_round_trip_preserves_behaviour(net):
    restored = net_from_dict(net_to_dict(net))
    assert restored.initial_marking == net.initial_marking
    assert t_invariants(restored) == t_invariants(net)
    matrices_a = incidence_matrices(net)
    matrices_b = incidence_matrices(restored)
    assert (matrices_a.incidence == matrices_b.incidence).all()


@settings(max_examples=20, deadline=None)
@given(free_choice_nets())
def test_generated_free_choice_nets_are_schedulable(net):
    """The random free-choice family is schedulable by construction, and
    every T-reduction it produces is conflict-free."""
    assert is_schedulable(net)
    for reduction in enumerate_reductions(net):
        assert all(
            len(reduction.net.postset(p)) <= 1 for p in reduction.net.place_names
        )


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=2, max_value=3))
def test_reduction_count_is_product_of_branches(choices, branches):
    """Independent choices multiply: the number of distinct T-reductions of
    the independent-choices family is branches ** choices."""
    net = independent_choices_net(choices, branches=branches)
    assert len(enumerate_reductions(net)) == branches**choices


@settings(max_examples=30, deadline=None)
@given(marked_graphs(), st.integers(min_value=0, max_value=40))
def test_markings_never_negative(net, steps):
    simulator = Simulator(net, policy=make_random_policy(steps + 1))
    trace = simulator.run(steps)
    for marking in trace.markings:
        assert all(count >= 0 for count in marking.tokens.values())
