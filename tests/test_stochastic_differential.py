"""Differential pins for the timed/stochastic runtime: every path agrees.

The ISSUE 9 acceptance criterion: for a fixed seed, the timed and
stochastic fleet is deterministic and **byte-identical across engines**
— compiled vs legacy, the memoized cascade path vs the direct loop, the
one-shot pool, and the async vs process shard backends of the always-on
service.  Tick accounting is integer on purpose; these tests are the
reason.
"""

from __future__ import annotations

import asyncio
from dataclasses import asdict

import numpy as np
import pytest

from repro.apps import atm, heating, router
from repro.runtime import (
    FleetSimulator,
    ModuleAssignment,
    StochasticChoicePolicy,
    TimingModel,
    parse_timing,
    synthetic_streams,
)
from repro.service import FleetSupervisor, InjectBatch, events_to_injects

CASES = {
    "router": (
        router.build_router_net,
        router.MODULE_PARTITION,
        lambda n, e, s: router.make_fleet_testbench(n, packets=e, seed=s),
    ),
    "heating": (
        heating.build_heating_net,
        heating.MODULE_PARTITION,
        lambda n, e, s: heating.make_fleet_testbench(n, samples=e, seed=s),
    ),
    "atm-bursty": (
        atm.build_atm_server_net,
        atm.MODULE_PARTITION,
        lambda n, e, s: atm.make_fleet_testbench(
            n, cells=e, seed=s, arrival="bursty"
        ),
    ),
}


def timed_case(name, instances=14, events=6, seed=17, timing_spec="uniform:1-8"):
    build, partition, bench = CASES[name]
    net = build()
    assignment = ModuleAssignment.from_groups(partition)
    streams = bench(instances, events, seed)
    timing = parse_timing(timing_spec, net, seed=seed)
    return net, assignment, streams, timing


def assert_results_identical(expected, actual):
    assert asdict(expected.stats) == asdict(actual.stats)
    assert np.array_equal(expected.instance_cycles, actual.instance_cycles)
    assert np.array_equal(expected.instance_events, actual.instance_events)
    if expected.instance_ticks is None:
        assert actual.instance_ticks is None
    else:
        assert actual.instance_ticks is not None
        assert expected.instance_ticks.dtype == actual.instance_ticks.dtype
        assert np.array_equal(expected.instance_ticks, actual.instance_ticks)


def run_service(net, assignment, streams, timing, shards=2, backend="async"):
    async def go():
        supervisor = FleetSupervisor(
            net, assignment, shards=shards, backend=backend, timing=timing
        )
        await supervisor.start()
        injects = events_to_injects(streams)
        for lo in range(0, len(injects), 97):
            await supervisor.inject(
                InjectBatch(events=tuple(injects[lo : lo + 97]))
            )
        return await supervisor.stop(drain=True)

    return asyncio.run(go())


class TestTimedEngineEquality:
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_compiled_equals_legacy(self, case):
        net, assignment, streams, timing = timed_case(case)
        compiled = FleetSimulator(net, assignment, timing=timing).run(streams)
        legacy = FleetSimulator(
            net, assignment, engine="legacy", timing=timing
        ).run(streams)
        assert compiled.stats.delay_ticks > 0
        assert_results_identical(compiled, legacy)

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_memo_equals_direct(self, case):
        net, assignment, streams, timing = timed_case(case)
        memoized = FleetSimulator(net, assignment, timing=timing).run(streams)
        direct_sim = FleetSimulator(net, assignment, timing=timing)
        direct_sim.kernel._memo_enabled = False
        direct = direct_sim.run(streams)
        assert not direct_sim.kernel._memo_active
        assert_results_identical(memoized, direct)

    def test_pool_equals_in_process(self):
        net, assignment, streams, timing = timed_case("router")
        sequential = FleetSimulator(net, assignment, timing=timing).run(streams)
        pooled = FleetSimulator(net, assignment, timing=timing).run(
            streams, workers=3
        )
        assert_results_identical(sequential, pooled)

    def test_async_service_equals_one_shot(self):
        net, assignment, streams, timing = timed_case("router")
        expected = FleetSimulator(net, assignment, timing=timing).run(streams)
        actual = run_service(net, assignment, streams, timing, shards=2)
        assert_results_identical(expected, actual)

    def test_process_service_equals_one_shot(self):
        net, assignment, streams, timing = timed_case(
            "heating", instances=10, events=4
        )
        expected = FleetSimulator(net, assignment, timing=timing).run(streams)
        actual = run_service(
            net, assignment, streams, timing, shards=2, backend="process"
        )
        assert_results_identical(expected, actual)

    def test_fixed_seed_runs_are_identical(self):
        runs = []
        for _ in range(2):
            net, assignment, streams, timing = timed_case("router")
            runs.append(
                FleetSimulator(net, assignment, timing=timing).run(streams)
            )
        assert_results_identical(runs[0], runs[1])


class TestTickAccounting:
    def test_fixed_timing_scales_linearly(self):
        net, assignment, streams, _ = timed_case("heating")
        one = FleetSimulator(
            net, assignment, timing=TimingModel.constant(1)
        ).run(streams)
        three = FleetSimulator(
            net, assignment, timing=TimingModel.constant(3)
        ).run(streams)
        assert one.stats.delay_ticks > 0
        assert three.stats.delay_ticks == 3 * one.stats.delay_ticks
        assert np.array_equal(three.instance_ticks, 3 * one.instance_ticks)

    def test_instance_ticks_sum_to_aggregate(self):
        net, assignment, streams, timing = timed_case("router")
        result = FleetSimulator(net, assignment, timing=timing).run(streams)
        assert int(result.instance_ticks.sum()) == result.stats.delay_ticks

    def test_untimed_fleet_has_no_tick_surface(self):
        net, assignment, streams, _ = timed_case("router")
        result = FleetSimulator(net, assignment).run(streams)
        assert result.instance_ticks is None
        assert result.stats.delay_ticks == 0
        assert "delay ticks" not in result.describe()

    def test_timed_describe_reports_percentiles(self):
        net, assignment, streams, timing = timed_case("router")
        result = FleetSimulator(net, assignment, timing=timing).run(streams)
        assert "delay ticks" in result.describe()
        assert "per-instance delay ticks" in result.describe()


class TestStochasticStreamsAcrossEngines:
    @pytest.mark.parametrize("arrival", ["bursty", "diurnal"])
    def test_arrival_processes_equal_across_engines(self, arrival):
        net = router.build_router_net()
        assignment = ModuleAssignment.single_task(net)
        policy = StochasticChoicePolicy.sampled(net, seed=9)
        streams = synthetic_streams(
            net, 10, 8, seed=9, arrival=arrival, choice_policy=policy
        )
        compiled = FleetSimulator(net, assignment).run(streams)
        legacy = FleetSimulator(net, assignment, engine="legacy").run(streams)
        assert compiled.stats.events_processed == 80
        assert_results_identical(compiled, legacy)
