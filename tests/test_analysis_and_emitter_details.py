"""Additional coverage: analysis helpers and C-emitter details."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ComparisonTable,
    ImplementationMetrics,
    qss_metrics,
    schedule_buffer_bounds,
    sharing_tradeoff,
    total_buffer_tokens,
)
from repro.codegen import (
    CodegenOptions,
    EmitOptions,
    emit_c,
    generate_program,
    synthesize,
)
from repro.codegen.ir import Block, Comment, DecCount, FireTransition, Program, TaskProgram, Fragment
from repro.codegen.emit_c import _TaskEmitter
from repro.gallery import figure4_weighted, figure5_two_inputs
from repro.qss import compute_valid_schedule, partition_tasks
from repro.runtime import CostModel, Event


class TestComparisonTable:
    def test_render_and_rows(self):
        table = ComparisonTable(title="demo")
        table.rows.append(ImplementationMetrics("A", tasks=2, lines_of_code=100, clock_cycles=1000))
        table.rows.append(ImplementationMetrics("B", tasks=5, lines_of_code=150, clock_cycles=1500))
        text = table.render()
        assert "demo" in text and "A" in text and "B" in text
        assert table.ratio("clock_cycles", "A", "B") == 1.5
        assert table.row("A").as_row() == ("A", 2, 100, 1000)

    def test_zero_division_guard(self):
        table = ComparisonTable(title="demo")
        table.rows.append(ImplementationMetrics("A", tasks=0, lines_of_code=0, clock_cycles=0))
        table.rows.append(ImplementationMetrics("B", tasks=1, lines_of_code=1, clock_cycles=1))
        with pytest.raises(ZeroDivisionError):
            table.ratio("clock_cycles", "A", "B")


class TestScheduleBufferMetrics:
    def test_bounds_and_total(self, fig4):
        schedule = compute_valid_schedule(fig4)
        bounds = schedule_buffer_bounds(schedule)
        assert bounds["p2"] == 2
        assert total_buffer_tokens(schedule) == sum(bounds.values())

    def test_qss_metrics_on_figure5(self, fig5):
        events = [
            Event(time=0.0, source="t1", choices={"p1": "t2"}),
            Event(time=1.0, source="t8", choices={}),
        ]
        metrics, program = qss_metrics(fig5, events, CostModel(), name="fig5")
        assert metrics.name == "fig5"
        assert metrics.tasks == 2
        assert metrics.clock_cycles > 0
        assert metrics.activations == 2

    def test_sharing_tradeoff_with_execution(self, fig5):
        events = [Event(time=0.0, source="t8", choices={})]
        points = sharing_tradeoff(fig5, events=events)
        assert all(p.clock_cycles is not None for p in points)


class TestEmitterDetails:
    def test_comment_statements_rendered(self, fig4):
        schedule = compute_valid_schedule(fig4)
        partition = partition_tasks(schedule)
        program = generate_program(partition, CodegenOptions(emit_comments=True))
        source = emit_c(program).source
        assert "/* transition t1 */" in source

    def test_dec_by_one_uses_decrement_operator(self):
        task = TaskProgram(
            name="demo",
            source_transitions=("t",),
            counters={"p": 0},
            fragments={
                "t": Fragment(
                    name="t",
                    transition="t",
                    body=Block([FireTransition("t"), DecCount("p", 1), Comment("hi")]),
                )
            },
            entry_fragments=("t",),
        )
        program = Program(name="demo", tasks=[task])
        source = emit_c(program).source
        assert "count_p--;" in source
        assert "/* hi */" in source

    def test_unknown_statement_rejected(self):
        emitter = _TaskEmitter(
            TaskProgram(name="x", source_transitions=(), fragments={}, entry_fragments=()),
            EmitOptions(),
        )
        with pytest.raises(TypeError):
            emitter._emit_statement(object(), 0)

    def test_boilerplate_counted_per_task(self, fig5):
        program = synthesize(compute_valid_schedule(fig5))
        base = emit_c(program).lines_of_code
        padded = emit_c(program, EmitOptions(boilerplate_lines_per_task=5)).lines_of_code
        assert padded - base == 5 * program.task_count

    def test_choice_macros_defined_once(self, fig4):
        program = synthesize(compute_valid_schedule(fig4))
        source = emit_c(program).source
        assert source.count("#define CHOICE_T2 ") == 1
