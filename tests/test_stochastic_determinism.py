"""Seed-stability pins for the stochastic workload layer.

The new arrival processes (`bursty`, `diurnal`), the sampled timing
model and the sampled choice policy must be pure functions of their
seed: byte-identical across interpreter processes under varied
``PYTHONHASHSEED`` (the classic way hidden ``hash()`` dependence leaks
in), identical on repeated in-process calls, and different for
different seeds (a constant stream would also pass the stability
check).
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.runtime import (
    ARRIVAL_PROCESSES,
    StochasticChoicePolicy,
    TimingModel,
    arrival_events,
    bursty_events,
    diurnal_events,
    irregular_events,
    synthetic_streams,
    validate_arrival,
)

SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir, "src"))

#: Digest every stochastic surface in one child process: all arrival
#: processes through ``synthetic_streams``, the app fleet testbenches,
#: and the sampled timing/choice models.
_DIGEST_SCRIPT = """
import hashlib, sys
sys.path.insert(0, {src!r})
from repro.apps import heating, router
from repro.runtime import (
    ARRIVAL_PROCESSES, StochasticChoicePolicy, TimingModel, synthetic_streams,
)

net = router.build_router_net()
parts = []
for arrival in ARRIVAL_PROCESSES:
    streams = synthetic_streams(net, 5, 9, seed=42, arrival=arrival)
    parts.append(
        (
            arrival,
            [
                [(e.time, e.source, sorted(e.choices.items())) for e in s]
                for s in streams
            ],
        )
    )
parts.append(("router_fleet", repr(router.make_fleet_testbench(3, 8, seed=7))))
parts.append(("heating_fleet", repr(heating.make_fleet_testbench(3, 8, seed=7))))
parts.append(
    ("timing", sorted(TimingModel.sampled(net, seed=7).transition_ticks.items()))
)
policy = StochasticChoicePolicy.sampled(net, seed=7)
parts.append(
    ("choice", sorted((p, sorted(w.items())) for p, w in policy.weights.items()))
)
print(hashlib.sha256(repr(parts).encode()).hexdigest())
"""


class TestCrossProcessStability:
    def test_digests_identical_under_varied_hash_seeds(self):
        script = _DIGEST_SCRIPT.format(src=SRC)
        digests = set()
        for hash_seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            digests.add(proc.stdout.strip())
        assert len(digests) == 1, (
            "stochastic workload generation depends on PYTHONHASHSEED: "
            f"{digests}"
        )


class TestArrivalProcesses:
    @pytest.mark.parametrize("arrival", ARRIVAL_PROCESSES)
    def test_same_seed_identical(self, arrival):
        a = arrival_events(arrival, "t_src", mean_interval=1.5, count=40, seed=9)
        b = arrival_events(arrival, "t_src", mean_interval=1.5, count=40, seed=9)
        assert repr(a) == repr(b)

    @pytest.mark.parametrize("arrival", ARRIVAL_PROCESSES)
    def test_different_seeds_differ(self, arrival):
        a = arrival_events(arrival, "t_src", mean_interval=1.5, count=40, seed=9)
        b = arrival_events(arrival, "t_src", mean_interval=1.5, count=40, seed=10)
        assert repr(a) != repr(b)

    @pytest.mark.parametrize("arrival", ARRIVAL_PROCESSES)
    def test_streams_are_time_ordered_with_exact_count(self, arrival):
        events = arrival_events(
            arrival, "t_src", mean_interval=2.0, count=64, seed=3
        )
        assert len(events) == 64
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(t >= 0.0 for t in times)

    def test_exponential_dispatch_is_byte_identical_to_irregular(self):
        # the pinned compatibility contract: the dispatcher must not move
        # the pre-existing default streams by a single byte
        direct = irregular_events("t_src", mean_interval=1.5, count=50, seed=11)
        dispatched = arrival_events(
            "exponential", "t_src", mean_interval=1.5, count=50, seed=11
        )
        assert repr(direct) == repr(dispatched)

    def test_bursty_and_diurnal_are_distinct_processes(self):
        kwargs = dict(mean_interval=1.5, count=50, seed=11)
        reprs = {
            arrival: repr(arrival_events(arrival, "t_src", **kwargs))
            for arrival in ARRIVAL_PROCESSES
        }
        assert len(set(reprs.values())) == len(ARRIVAL_PROCESSES)

    def test_bursty_events_cluster(self):
        events = bursty_events("t_src", mean_interval=1.0, count=200, seed=4)
        gaps = [
            b.time - a.time for a, b in zip(events, events[1:])
        ]
        short = sum(1 for g in gaps if g < 0.5)
        long = sum(1 for g in gaps if g > 2.0)
        # trains of near-back-to-back arrivals separated by long idles
        assert short > len(gaps) // 2
        assert long > 0

    def test_diurnal_events_modulate_rate(self):
        events = diurnal_events(
            "t_src", mean_interval=1.0, count=400, seed=4, amplitude=0.9
        )
        gaps = [b.time - a.time for a, b in zip(events, events[1:])]
        # high-rate phases produce much denser arrivals than the trough
        assert max(gaps) > 4 * (sum(gaps) / len(gaps))

    def test_unknown_arrival_rejected(self):
        with pytest.raises(ValueError, match="bursty"):
            validate_arrival("fractal")
        with pytest.raises(ValueError):
            arrival_events("fractal", "t_src", mean_interval=1.0, count=5)


class TestSampledModels:
    def test_synthetic_streams_default_path_unchanged(self):
        from repro.petrinet.corpus import CORPUS_FAMILIES

        family = CORPUS_FAMILIES["pipeline"]
        net = family.build(3, family.spec(3).param_dict)
        default = synthetic_streams(net, 4, 6, seed=42)
        explicit = synthetic_streams(net, 4, 6, seed=42, arrival="exponential")
        assert repr(default) == repr(explicit)

    def test_timing_model_seed_determinism(self):
        from repro.apps import router

        net = router.build_router_net()
        a = TimingModel.sampled(net, seed=5)
        b = TimingModel.sampled(net, seed=5)
        c = TimingModel.sampled(net, seed=6)
        assert a.transition_ticks == b.transition_ticks
        assert a.transition_ticks != c.transition_ticks
        assert all(1 <= t <= 8 for t in a.transition_ticks.values())

    def test_choice_policy_seed_determinism(self):
        from repro.apps import heating

        net = heating.build_heating_net()
        a = StochasticChoicePolicy.sampled(net, seed=5)
        b = StochasticChoicePolicy.sampled(net, seed=5)
        c = StochasticChoicePolicy.sampled(net, seed=6)
        assert a.weights == b.weights
        assert a.weights != c.weights
        for branches in a.probabilities.values():
            assert sum(branches.values()) == pytest.approx(1.0)
