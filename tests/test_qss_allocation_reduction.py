"""Unit tests for T-allocations and T-reductions (repro.qss)."""

from __future__ import annotations

import pytest

from repro.gallery import (
    figure1b_not_free_choice,
    figure3a_schedulable,
    figure3b_unschedulable,
    figure5_two_inputs,
    figure7_unschedulable,
)
from repro.petrinet import NetBuilder, is_conflict_free
from repro.petrinet.exceptions import NotFreeChoiceError, UnknownNodeError
from repro.qss import (
    TAllocation,
    assert_conflict_free,
    count_allocations,
    count_distinct_reductions,
    enumerate_allocations,
    enumerate_reductions,
    reduce_net,
    validate_allocation,
)
from repro.qss.reduction import ReductionStep


class TestAllocations:
    def test_figure5_has_two_allocations(self, fig5):
        allocations = list(enumerate_allocations(fig5))
        assert len(allocations) == 2
        assert count_allocations(fig5) == 2
        chosen = {a.chosen("p1") for a in allocations}
        assert chosen == {"t2", "t3"}

    def test_allocation_sets_match_paper_figure5(self, fig5):
        """A1 = {t1,t2,t4,t5,t6,t7,t8,t9}, A2 = {t1,t3,t4,t5,t6,t7,t8,t9}."""
        by_choice = {
            a.chosen("p1"): a.allocated_transitions(fig5)
            for a in enumerate_allocations(fig5)
        }
        everything = set(fig5.transition_names)
        assert by_choice["t2"] == frozenset(everything - {"t3"})
        assert by_choice["t3"] == frozenset(everything - {"t2"})

    def test_net_without_choices_has_single_allocation(self, fig2):
        allocations = list(enumerate_allocations(fig2))
        assert len(allocations) == 1
        assert allocations[0].choices == ()

    def test_non_free_choice_rejected(self):
        with pytest.raises(NotFreeChoiceError):
            list(enumerate_allocations(figure1b_not_free_choice()))

    def test_non_free_choice_allowed_when_relaxed(self):
        allocations = list(
            enumerate_allocations(figure1b_not_free_choice(), require_free_choice=False)
        )
        assert len(allocations) == 2

    def test_validate_allocation(self, fig3a):
        good = TAllocation.from_mapping({"p1": "t2"})
        validate_allocation(fig3a, good)
        with pytest.raises(ValueError):
            validate_allocation(fig3a, TAllocation.from_mapping({"p1": "t4"}))
        with pytest.raises(ValueError):
            validate_allocation(fig3a, TAllocation.from_mapping({}))
        with pytest.raises(UnknownNodeError):
            validate_allocation(fig3a, TAllocation.from_mapping({"p_zzz": "t2", "p1": "t2"}))

    def test_allocation_str(self):
        assert "p1->t2" in str(TAllocation.from_mapping({"p1": "t2"}))


class TestReductionAlgorithm:
    def test_figure5_reduction_r1_matches_figure6(self, fig5):
        """Figure 6 walks the removal of t3, p3, t5, p5, p6, t7."""
        allocation = TAllocation.from_mapping({"p1": "t2"})
        trace = []
        reduction = reduce_net(fig5, allocation, trace=trace)
        assert set(reduction.net.transition_names) == {
            "t1", "t2", "t4", "t6", "t8", "t9",
        }
        assert set(reduction.net.place_names) == {"p1", "p2", "p4", "p7"}
        assert set(reduction.removed_transitions) == {"t3", "t5", "t7"}
        assert set(reduction.removed_places) == {"p3", "p5", "p6"}
        # the trace is ordered: t3 goes first (it is the unallocated one)
        assert trace[0] == ReductionStep(
            action="remove-transition", node="t3", reason="not in the T-allocation"
        )

    def test_figure5_reduction_r2(self, fig5):
        allocation = TAllocation.from_mapping({"p1": "t3"})
        reduction = reduce_net(fig5, allocation)
        assert set(reduction.net.transition_names) == {
            "t1", "t3", "t5", "t7", "t6", "t8", "t9",
        }

    def test_reductions_are_conflict_free(self, fig5, fig3a, fig7):
        for net in (fig5, fig3a, fig7):
            for reduction in enumerate_reductions(net):
                assert is_conflict_free(reduction.net)
                assert_conflict_free(reduction)

    def test_figure7_keeps_source_place(self, fig7):
        """Condition (b).ii of the Reduction Algorithm: the starved place is
        kept so the inconsistency of the reduction remains detectable."""
        reduction = reduce_net(fig7, TAllocation.from_mapping({"p1": "t2"}))
        assert "p5" in reduction.net.place_names
        assert reduction.net.preset("p5") == {}
        assert "p5" in reduction.source_places()
        other = reduce_net(fig7, TAllocation.from_mapping({"p1": "t3"}))
        assert "p4" in other.source_places()

    def test_figure3b_keeps_source_place(self, fig3b):
        reduction = reduce_net(fig3b, TAllocation.from_mapping({"p1": "t2"}))
        assert "p3" in reduction.net.place_names
        assert "t4" in reduction.net.transition_names

    def test_figure3a_reductions_are_plain_chains(self, fig3a):
        reduction = reduce_net(fig3a, TAllocation.from_mapping({"p1": "t2"}))
        assert set(reduction.net.transition_names) == {"t1", "t2", "t4"}
        assert set(reduction.net.place_names) == {"p1", "p2"}

    def test_source_transitions_survive_every_reduction(self, fig5):
        for reduction in enumerate_reductions(fig5):
            assert set(fig5.source_transitions()) <= set(
                reduction.net.transition_names
            )

    def test_initial_marking_restricted_to_surviving_places(self):
        net = (
            NetBuilder("marked_choice")
            .place("p_c", tokens=1)
            .arc("p_c", "t_a")
            .arc("p_c", "t_b")
            .arc("t_a", "p_a")
            .arc("p_a", "t_a2")
            .arc("t_a2", "p_c")
            .arc("t_b", "p_b")
            .arc("p_b", "t_b2")
            .arc("t_b2", "p_c")
            .build()
        )
        reduction = reduce_net(net, TAllocation.from_mapping({"p_c": "t_a"}))
        assert reduction.net.initial_marking["p_c"] == 1


class TestEnumeration:
    def test_deduplication_counts(self, fig5, fig3a):
        assert count_distinct_reductions(fig5) == 2
        assert count_distinct_reductions(fig3a) == 2

    def test_duplicate_allocations_collapse(self):
        """A choice nested inside a discarded branch does not multiply the
        number of distinct reductions."""
        net = (
            NetBuilder("nested")
            .source("t_in")
            .arc("t_in", "p_outer")
            .arc("p_outer", "t_stop")
            .arc("t_stop", "p_done")
            .arc("p_done", "t_done")
            .arc("p_outer", "t_go")
            .arc("t_go", "p_inner")
            .arc("p_inner", "t_left")
            .arc("p_inner", "t_right")
            .arc("t_left", "p_l")
            .arc("p_l", "t_l_done")
            .arc("t_right", "p_r")
            .arc("p_r", "t_r_done")
            .build()
        )
        assert count_allocations(net) == 4
        assert count_distinct_reductions(net) == 3
        without_dedup = enumerate_reductions(net, deduplicate=False)
        assert len(without_dedup) == 4

    def test_max_reductions_cap(self, fig5):
        with pytest.raises(RuntimeError):
            enumerate_reductions(fig5, max_reductions=1)

    def test_signatures_identify_equal_reductions(self, fig5):
        reductions = enumerate_reductions(fig5, deduplicate=False)
        signatures = {r.signature() for r in reductions}
        assert len(signatures) == 2
