"""Unit tests for the runtime substrate: cost model, events, RTOS, reactive."""

from __future__ import annotations

import pytest

from repro.codegen import make_resolver, synthesize
from repro.gallery import figure3a_schedulable, figure5_two_inputs
from repro.qss import compute_valid_schedule
from repro.runtime import (
    ChoiceSampler,
    CostModel,
    Event,
    ModuleAssignment,
    ReactiveNetSimulator,
    RTOS,
    irregular_events,
    merge_streams,
    periodic_events,
    with_choices,
)


class TestCostModel:
    def test_defaults_are_positive(self):
        model = CostModel()
        assert model.transition_cycles > 0
        assert model.activation_cycles > model.test_cycles

    def test_with_activation_and_queue(self):
        model = CostModel()
        assert model.with_activation(999).activation_cycles == 999
        assert model.with_queue_cost(7).queue_op_cycles == 7
        # original is unchanged (frozen dataclass semantics)
        assert model.activation_cycles != 999


class TestEvents:
    def test_periodic_events(self):
        events = periodic_events("tick", period=2.0, count=3)
        assert [e.time for e in events] == [0.0, 2.0, 4.0]
        assert all(e.source == "tick" for e in events)

    def test_periodic_validation(self):
        with pytest.raises(ValueError):
            periodic_events("tick", period=0, count=1)

    def test_irregular_events_reproducible_and_sorted(self):
        a = irregular_events("cell", mean_interval=1.0, count=10, seed=5)
        b = irregular_events("cell", mean_interval=1.0, count=10, seed=5)
        assert [e.time for e in a] == [e.time for e in b]
        assert [e.time for e in a] == sorted(e.time for e in a)

    def test_irregular_validation(self):
        with pytest.raises(ValueError):
            irregular_events("cell", mean_interval=0, count=1)

    def test_merge_streams_sorted(self):
        merged = merge_streams(
            periodic_events("a", 3.0, 3), periodic_events("b", 2.0, 3)
        )
        assert [e.time for e in merged] == sorted(e.time for e in merged)
        assert len(merged) == 6

    def test_choice_sampler_respects_per_source(self):
        sampler = ChoiceSampler(
            {"p1": {"x": 1.0}, "p2": {"y": 1.0}},
            per_source={"s1": ["p1"], "s2": ["p2"]},
        )
        assert sampler.sample("s1") == {"p1": "x"}
        assert sampler.sample("s2") == {"p2": "y"}

    def test_choice_sampler_distribution_roughly_matches(self):
        sampler = ChoiceSampler({"p": {"a": 0.8, "b": 0.2}}, seed=1)
        draws = [sampler.sample()["p"] for _ in range(500)]
        share_a = draws.count("a") / len(draws)
        assert 0.7 < share_a < 0.9

    def test_with_choices_attaches_resolutions(self):
        sampler = ChoiceSampler({"p1": {"x": 1.0}})
        events = with_choices(periodic_events("s", 1.0, 2), sampler)
        assert all(e.choices == {"p1": "x"} for e in events)


class TestRTOS:
    def test_rtos_charges_activation_per_event(self, fig3a):
        program = synthesize(compute_valid_schedule(fig3a))
        model = CostModel(activation_cycles=500)
        rtos = RTOS(program, model)
        events = [
            Event(time=0.0, source="t1", choices={"p1": "t2"}),
            Event(time=1.0, source="t1", choices={"p1": "t3"}),
        ]
        stats = rtos.run(events)
        assert stats.events_processed == 2
        assert stats.activation_cycles == 1000
        assert stats.total_cycles == stats.activation_cycles + stats.body_cycles
        assert stats.firings["t1"] == 2
        assert stats.firings["t4"] == 1
        assert stats.firings["t5"] == 1

    def test_rtos_orders_events_by_time(self, fig5):
        program = synthesize(compute_valid_schedule(fig5))
        rtos = RTOS(program)
        events = [
            Event(time=5.0, source="t1", choices={"p1": "t2"}),
            Event(time=1.0, source="t8"),
        ]
        stats = rtos.run(events)
        assert stats.activations["task_t8"] == 1
        assert stats.activations["task_t1"] == 1

    def test_stats_describe(self, fig3a):
        program = synthesize(compute_valid_schedule(fig3a))
        stats = RTOS(program).run([Event(time=0, source="t1", choices={"p1": "t2"})])
        text = stats.describe()
        assert "total cycles" in text
        assert "task_t1" in text

    def test_rtos_reset(self, fig3a):
        program = synthesize(compute_valid_schedule(fig3a))
        rtos = RTOS(program)
        rtos.run([Event(time=0, source="t1", choices={"p1": "t2"})])
        rtos.reset()  # should not raise and counters go back to zero
        assert all(
            executor.counters == executor.task.counters
            for executor in rtos.executor.tasks.values()
        )


class TestReactiveSimulator:
    def test_single_task_has_no_queue_traffic(self, fig3a):
        assignment = ModuleAssignment.single_task(fig3a)
        simulator = ReactiveNetSimulator(fig3a, assignment)
        stats = simulator.run([Event(time=0, source="t1", choices={"p1": "t2"})])
        assert stats.queue_cycles == 0
        assert stats.total_activations == 1
        assert stats.firings == {"t1": 1, "t2": 1, "t4": 1}

    def test_split_tasks_pay_queue_and_activation(self, fig3a):
        assignment = ModuleAssignment.from_groups(
            {"front": ["t1", "t2", "t3"], "back": ["t4", "t5"]}
        )
        simulator = ReactiveNetSimulator(fig3a, assignment)
        stats = simulator.run([Event(time=0, source="t1", choices={"p1": "t2"})])
        assert stats.queue_cycles > 0
        assert stats.total_activations == 2

    def test_one_task_per_transition_is_most_expensive(self, fig3a):
        event = [Event(time=0, source="t1", choices={"p1": "t2"})]
        single = ReactiveNetSimulator(
            fig3a, ModuleAssignment.single_task(fig3a)
        ).run(event)
        dynamic = ReactiveNetSimulator(
            fig3a, ModuleAssignment.one_task_per_transition(fig3a)
        ).run(event)
        assert dynamic.total_cycles > single.total_cycles

    def test_choice_resolution_respected(self, fig3a):
        assignment = ModuleAssignment.single_task(fig3a)
        simulator = ReactiveNetSimulator(fig3a, assignment)
        stats = simulator.run([Event(time=0, source="t1", choices={"p1": "t3"})])
        assert "t5" in stats.firings
        assert "t2" not in stats.firings

    def test_marking_persists_between_events(self, fig5):
        assignment = ModuleAssignment.single_task(fig5)
        simulator = ReactiveNetSimulator(fig5, assignment)
        simulator.run([Event(time=0, source="t1", choices={"p1": "t2"})])
        # one firing of t2 leaves two tokens in p2; t4 fired twice? p2 gets 2
        # tokens, t4 consumes 1 each, so the marking is back to empty except
        # for p4 which t6 drains; just check no negative tokens and reset works
        assert all(v >= 0 for v in simulator.marking.tokens.values())
        simulator.reset()
        assert simulator.marking == fig5.initial_marking

    def test_module_assignment_module_names(self, fig3a):
        assignment = ModuleAssignment.from_groups(
            {"a": ["t1"], "b": ["t2", "t3", "t4", "t5"]}
        )
        assert assignment.module_names == ["a", "b"]
        assert assignment.module_of("t3") == "b"
