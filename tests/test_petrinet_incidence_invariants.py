"""Unit tests for incidence matrices, the state equation and invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gallery import (
    figure2_sdf_chain,
    figure3a_schedulable,
    figure3b_unschedulable,
    figure5_two_inputs,
)
from repro.petrinet import (
    Marking,
    NetBuilder,
    apply_state_equation,
    combine_invariants,
    incidence_matrices,
    invariants_containing,
    is_conservative,
    is_consistent,
    is_firing_count_stationary,
    marking_change,
    minimal_positive_t_invariant,
    s_invariants,
    scale_invariant,
    t_invariants,
    uncovered_transitions,
)


class TestIncidence:
    def test_matrix_shapes_and_entries(self, fig2):
        matrices = incidence_matrices(fig2)
        assert matrices.pre.shape == (3, 2)
        t = matrices.transition_index
        p = matrices.place_index
        assert matrices.post[t["t1"], p["p1"]] == 1
        assert matrices.pre[t["t2"], p["p1"]] == 2
        assert matrices.incidence[t["t2"], p["p1"]] == -2
        assert matrices.incidence[t["t2"], p["p2"]] == 1

    def test_firing_vector_round_trip(self, fig2):
        matrices = incidence_matrices(fig2)
        counts = {"t1": 4, "t3": 1}
        vector = matrices.firing_vector(counts)
        assert matrices.counts_from_vector(vector) == counts

    def test_marking_vector_round_trip(self, fig2):
        matrices = incidence_matrices(fig2)
        marking = Marking({"p1": 3})
        assert matrices.marking_from_vector(matrices.marking_vector(marking)) == marking

    def test_state_equation_application(self, fig2):
        # firing t1 four times puts 4 tokens in p1
        result = apply_state_equation(fig2, Marking(), {"t1": 4})
        assert result == Marking({"p1": 4})

    def test_stationary_firing_count(self, fig2):
        assert is_firing_count_stationary(fig2, {"t1": 4, "t2": 2, "t3": 1})
        assert not is_firing_count_stationary(fig2, {"t1": 1})

    def test_marking_change(self, fig2):
        assert marking_change(fig2, {"t1": 2}) == {"p1": 2}
        assert marking_change(fig2, {"t1": 4, "t2": 2, "t3": 1}) == {}


class TestTInvariants:
    def test_figure2_repetition_vector(self, fig2):
        assert t_invariants(fig2) == [{"t1": 4, "t2": 2, "t3": 1}]

    def test_figure3a_two_minimal_invariants(self, fig3a):
        invariants = t_invariants(fig3a)
        assert {"t1": 1, "t2": 1, "t4": 1} in invariants
        assert {"t1": 1, "t3": 1, "t5": 1} in invariants
        assert len(invariants) == 2

    def test_figure3b_single_invariant(self, fig3b):
        # the paper quotes f = (2, 1, 1, 1): both branches must fire
        assert t_invariants(fig3b) == [{"t1": 2, "t2": 1, "t3": 1, "t4": 1}]

    def test_invariants_are_stationary(self, fig5):
        for invariant in t_invariants(fig5):
            assert is_firing_count_stationary(fig5, invariant)

    def test_consistency(self, fig3a, fig3b, fig5):
        assert is_consistent(fig3a)
        assert is_consistent(fig3b)
        assert is_consistent(fig5)

    def test_inconsistent_net(self):
        # a transition that only produces can never be covered
        net = NetBuilder("inconsistent").source("t1").arc("t1", "p1").build()
        assert not is_consistent(net)
        assert uncovered_transitions(net) == ["t1"]

    def test_empty_net_is_consistent(self):
        assert is_consistent(NetBuilder("empty").build())

    def test_invariants_containing(self, fig3a):
        containing_t2 = invariants_containing(fig3a, "t2")
        assert len(containing_t2) == 1
        assert "t4" in containing_t2[0]

    def test_combine_and_scale(self):
        combined = combine_invariants([{"a": 1, "b": 2}, {"b": 1, "c": 3}])
        assert combined == {"a": 1, "b": 3, "c": 3}
        assert scale_invariant({"a": 2}, 3) == {"a": 6}
        with pytest.raises(ValueError):
            scale_invariant({"a": 1}, 0)

    def test_minimal_positive_invariant(self, fig3a):
        minimal = minimal_positive_t_invariant(fig3a)
        assert minimal is not None
        assert set(minimal) == set(fig3a.transition_names)
        assert is_firing_count_stationary(fig3a, minimal)

    def test_minimal_positive_invariant_none_when_inconsistent(self):
        net = NetBuilder("inconsistent").source("t1").arc("t1", "p1").build()
        assert minimal_positive_t_invariant(net) is None


class TestSInvariants:
    def test_ring_has_place_invariant(self):
        net = (
            NetBuilder("ring")
            .transition("a")
            .transition("b")
            .place("p1", tokens=1)
            .place("p2")
            .arc("a", "p1")
            .arc("p1", "b")
            .arc("b", "p2")
            .arc("p2", "a")
            .build()
        )
        invariants = s_invariants(net)
        assert {"p1": 1, "p2": 1} in invariants
        assert is_conservative(net)

    def test_chain_is_not_conservative(self, fig2):
        assert not is_conservative(fig2)

    def test_weighted_place_invariant(self):
        # a -> p1 (1), p1 -> b (1); a -> p2 (2)?? use a 2:1 conservation
        net = (
            NetBuilder("weighted")
            .transition("a")
            .transition("b")
            .place("p1", tokens=2)
            .place("p2")
            .arc("p1", "a", weight=2)
            .arc("a", "p2")
            .arc("p2", "b")
            .arc("b", "p1", weight=2)
            .build()
        )
        invariants = s_invariants(net)
        assert {"p1": 1, "p2": 2} in invariants
