"""Differential suite: mask-based compiled QSS pipeline vs legacy analyse().

The compiled pipeline (masks over one compiled parent net, streamed
allocation dedup, submatrix invariants, masked cycle search) must be
*indistinguishable* from the legacy per-allocation rebuild pipeline on
every observable: schedulable verdicts, allocation/reduction counts,
dedup signatures, per-reduction diagnostics, minimal T-invariants and
the exact finite-complete-cycle sequences.  This suite pins that down on
the paper's figure gallery plus ten seeds of every corpus family.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.gallery import paper_figures
from repro.petrinet.corpus import CORPUS_FAMILIES
from repro.petrinet.exceptions import NotFreeChoiceError
from repro.petrinet.structure import is_free_choice
from repro.qss import (
    QSSContext,
    analyse,
    count_distinct_reductions,
    enumerate_reductions,
    iter_compiled_reductions,
)

SEEDS_PER_FAMILY = 10

FAMILY_CASES = [
    (family, seed)
    for family in sorted(CORPUS_FAMILIES)
    for seed in range(SEEDS_PER_FAMILY)
]


def _verdict_facts(verdict):
    """Everything observable about one verdict, minus the reduction object."""
    return {
        "schedulable": verdict.schedulable,
        "consistent": verdict.consistent,
        "sources_covered": verdict.sources_covered,
        "cycle": verdict.cycle,
        "uncovered_transitions": verdict.uncovered_transitions,
        "uncovered_sources": verdict.uncovered_sources,
        "source_places": verdict.source_places,
        "deadlocked": verdict.deadlocked,
        "invariants": verdict.invariants,
        "signature": verdict.reduction.signature(),
        "allocation": verdict.reduction.allocation,
    }


def assert_reports_identical(net):
    """Compare the two engines on every observable of the analysis."""
    try:
        legacy = analyse(net, engine="legacy")
    except NotFreeChoiceError:
        with pytest.raises(NotFreeChoiceError):
            analyse(net, engine="compiled")
        return None
    compiled = analyse(net, engine="compiled")

    assert compiled.schedulable == legacy.schedulable
    assert compiled.allocation_count == legacy.allocation_count
    assert compiled.reduction_count == legacy.reduction_count
    assert compiled.complete and legacy.complete
    assert len(compiled.verdicts) == len(legacy.verdicts)
    for c_verdict, l_verdict in zip(compiled.verdicts, legacy.verdicts):
        assert _verdict_facts(c_verdict) == _verdict_facts(l_verdict)
    # per-reduction cycle firing counts (the paper's repetition vectors)
    compiled_counts = [
        Counter(v.cycle) if v.cycle is not None else None for v in compiled.verdicts
    ]
    legacy_counts = [
        Counter(v.cycle) if v.cycle is not None else None for v in legacy.verdicts
    ]
    assert compiled_counts == legacy_counts
    if legacy.schedulable:
        assert compiled.schedule is not None and legacy.schedule is not None
        assert [c.sequence for c in compiled.schedule.cycles] == [
            c.sequence for c in legacy.schedule.cycles
        ]
        assert compiled.schedule.verify()
    return compiled


class TestGalleryDifferential:
    @pytest.mark.parametrize("figure", sorted(paper_figures()))
    def test_gallery_figure(self, figure):
        assert_reports_identical(paper_figures()[figure]())


class TestCorpusFamiliesDifferential:
    @pytest.mark.parametrize("family,seed", FAMILY_CASES)
    def test_family_seed(self, family, seed):
        net = CORPUS_FAMILIES[family].spec(seed).build()
        assert_reports_identical(net)


class TestReductionEquivalence:
    """The mask pipeline's decompiled reductions equal the legacy ones."""

    @pytest.mark.parametrize(
        "family,seed", [(f, s) for f in sorted(CORPUS_FAMILIES) for s in range(3)]
    )
    def test_enumerate_reductions_engines_agree(self, family, seed):
        net = CORPUS_FAMILIES[family].spec(seed).build()
        if not is_free_choice(net):
            pytest.skip("non-free-choice net")
        legacy = enumerate_reductions(net, engine="legacy")
        compiled = enumerate_reductions(net, engine="compiled")
        assert len(compiled) == len(legacy)
        for c_red, l_red in zip(compiled, legacy):
            assert c_red.allocation == l_red.allocation
            assert c_red.signature() == l_red.signature()
            assert c_red.removed_transitions == l_red.removed_transitions
            assert c_red.removed_places == l_red.removed_places
            assert c_red.net.place_names == l_red.net.place_names
            assert c_red.net.transition_names == l_red.net.transition_names
            assert c_red.net.initial_marking == l_red.net.initial_marking
            assert {
                (a.source, a.target, a.weight) for a in c_red.net.arcs
            } == {(a.source, a.target, a.weight) for a in l_red.net.arcs}

    def test_count_distinct_reductions_engines_agree(self):
        for family in ("nested_choices", "independent_choices", "choice_fan"):
            net = CORPUS_FAMILIES[family].spec(1).build()
            assert count_distinct_reductions(
                net, engine="compiled"
            ) == count_distinct_reductions(net, engine="legacy")

    def test_streaming_dedup_matches_legacy_signatures(self):
        net = CORPUS_FAMILIES["nested_choices"].spec(3).build()
        legacy_signatures = [
            r.signature() for r in enumerate_reductions(net, engine="legacy")
        ]
        compiled_signatures = [
            r.signature() for r in iter_compiled_reductions(net)
        ]
        assert compiled_signatures == legacy_signatures

    def test_context_reuse_across_reductions(self):
        """Every streamed reduction shares one parent context/compilation."""
        net = CORPUS_FAMILIES["independent_choices"].spec(0).build()
        context = QSSContext(net)
        reductions = list(iter_compiled_reductions(net, context=context))
        assert all(r.context is context for r in reductions)


class TestArcOrderParity:
    def test_postset_order_differs_from_transition_id_order(self):
        """Allocation enumeration follows arc insertion order, not id order,
        so first-wins dedup picks the same representative as legacy even
        when the two orders disagree."""
        from repro.petrinet import PetriNet

        net = PetriNet("weird_order")
        net.add_transition("src", is_source_hint=True)
        net.add_place("choice")
        for t in ("t_a", "t_b", "t_c"):
            net.add_transition(t)
        net.add_arc("src", "choice")
        for t in ("t_c", "t_a", "t_b"):  # postset order != id order
            net.add_arc("choice", t)
            place = f"p_{t}"
            net.add_place(place)
            net.add_arc(t, place)
            sink = f"e_{t}"
            net.add_transition(sink)
            net.add_arc(place, sink)
        compiled = assert_reports_identical(net)
        assert compiled is not None
        assert [
            str(v.reduction.allocation) for v in compiled.verdicts
        ] == [
            "TAllocation(choice->t_c)",
            "TAllocation(choice->t_a)",
            "TAllocation(choice->t_b)",
        ]


class TestParallelDifferential:
    """The worker pool returns verdicts identical to the sequential run."""

    @pytest.mark.parametrize("engine", ["compiled", "legacy"])
    def test_pool_matches_sequential(self, engine):
        net = CORPUS_FAMILIES["independent_choices"].spec(2).build()
        sequential = analyse(net, engine=engine)
        parallel = analyse(net, engine=engine, workers=2)
        assert parallel.schedulable == sequential.schedulable
        assert parallel.reduction_count == sequential.reduction_count
        assert [_verdict_facts(v) for v in parallel.verdicts] == [
            _verdict_facts(v) for v in sequential.verdicts
        ]
