"""Unit tests for the baseline implementations."""

from __future__ import annotations

import pytest

from repro.baselines import (
    build_dynamic_implementation,
    build_functional_implementation,
    inter_module_queues,
    is_applicable,
    synthesize_single_task,
)
from repro.gallery import figure3a_schedulable, figure4_weighted, figure5_two_inputs
from repro.petrinet import NetBuilder
from repro.runtime import CostModel, Event


FIG5_MODULES = {
    "front": ["t1", "t2", "t3", "t4", "t5"],
    "back": ["t6", "t7"],
    "aux": ["t8", "t9"],
}


class TestFunctionalPartitioning:
    def test_task_count_matches_modules(self, fig5):
        impl = build_functional_implementation(fig5, FIG5_MODULES)
        assert impl.task_count == 3
        assert {t.name for t in impl.program.tasks} == {
            "task_front", "task_back", "task_aux",
        }

    def test_queues_are_cross_module_places(self, fig5):
        queues = inter_module_queues(fig5, FIG5_MODULES)
        places = {q[2] for q in queues}
        assert "p4" in places  # t4/t9 -> p4 -> t6 crosses front/aux -> back
        assert "p1" not in places

    def test_incomplete_partition_rejected(self, fig5):
        with pytest.raises(ValueError):
            build_functional_implementation(fig5, {"only": ["t1"]})

    def test_lines_of_code_exceed_raw_emission(self, fig5):
        impl = build_functional_implementation(fig5, FIG5_MODULES)
        from repro.codegen import emit_c

        assert impl.lines_of_code() > emit_c(impl.program).lines_of_code

    def test_execution_charges_queue_crossings(self, fig5):
        impl = build_functional_implementation(fig5, FIG5_MODULES)
        stats = impl.run([Event(time=0, source="t1", choices={"p1": "t2"})])
        assert stats.queue_cycles > 0
        assert stats.firings["t1"] == 1

    def test_more_modules_cost_more_cycles(self, fig5):
        events = [
            Event(time=0, source="t1", choices={"p1": "t2"}),
            Event(time=1, source="t8", choices={}),
        ]
        coarse = build_functional_implementation(
            fig5, {"all": list(fig5.transition_names)}
        ).run(events)
        fine = build_functional_implementation(fig5, FIG5_MODULES).run(events)
        assert fine.total_cycles > coarse.total_cycles


class TestDynamicBaseline:
    def test_task_per_transition(self, fig3a):
        impl = build_dynamic_implementation(fig3a)
        assert impl.task_count == len(fig3a.transition_names)
        assert impl.lines_of_code() > impl.task_count

    def test_dynamic_slower_than_functional(self, fig5):
        events = [
            Event(time=0, source="t1", choices={"p1": "t2"}),
            Event(time=1, source="t8", choices={}),
        ]
        functional = build_functional_implementation(fig5, FIG5_MODULES).run(events)
        dynamic = build_dynamic_implementation(fig5).run(events)
        assert dynamic.total_cycles > functional.total_cycles

    def test_cost_model_override(self, fig3a):
        impl = build_dynamic_implementation(fig3a)
        event = [Event(time=0, source="t1", choices={"p1": "t2"})]
        cheap = impl.run(event, CostModel(activation_cycles=1))
        costly = impl.run(event, CostModel(activation_cycles=1000))
        assert costly.total_cycles > cheap.total_cycles


class TestLinSafeBaseline:
    def test_open_nets_rejected(self, fig3a, fig4):
        for net in (fig3a, fig4):
            result = is_applicable(net)
            assert not result.applicable
            assert any("source/sink" in reason for reason in result.reasons)

    def test_weighted_arcs_rejected(self):
        net = (
            NetBuilder("weighted_closed")
            .transition("a")
            .transition("b")
            .place("p1", tokens=2)
            .place("p2")
            .arc("p1", "a", weight=2)
            .arc("a", "p2")
            .arc("p2", "b")
            .arc("b", "p1", weight=2)
            .build()
        )
        result = is_applicable(net)
        assert not result.applicable
        assert any("weighted" in reason for reason in result.reasons)

    def test_safe_closed_net_synthesized(self):
        net = (
            NetBuilder("safe_ring")
            .transition("a")
            .transition("b")
            .place("p1", tokens=1)
            .place("p2")
            .arc("p1", "a")
            .arc("a", "p2")
            .arc("p2", "b")
            .arc("b", "p1")
            .build()
        )
        result = synthesize_single_task(net)
        assert result.applicable
        assert result.sequence == ["a", "b"]
        assert "length 2" in result.explain()

    def test_unsafe_net_rejected(self):
        net = (
            NetBuilder("unsafe")
            .transition("a")
            .transition("b")
            .place("p1", tokens=2)
            .place("p2")
            .arc("p1", "a")
            .arc("a", "p2")
            .arc("p2", "b")
            .arc("b", "p1")
            .build()
        )
        result = is_applicable(net)
        assert not result.applicable
        assert any("1-bounded" in reason for reason in result.reasons)

    def test_deadlocking_safe_net_reported(self):
        net = (
            NetBuilder("dead")
            .transition("a")
            .place("p1", tokens=1)
            .place("p2")
            .arc("p1", "a")
            .arc("a", "p2")
            .build()
        )
        result = synthesize_single_task(net)
        assert not result.applicable
        assert any("deadlock" in reason for reason in result.reasons)
