"""Unit tests for the SDF substrate (graphs, balance equations, schedules)."""

from __future__ import annotations

import pytest

from repro.gallery import figure2_sdf_chain
from repro.petrinet import is_marked_graph, t_invariants
from repro.sdf import (
    DeadlockError,
    InconsistentSDFError,
    SDFError,
    SDFGraph,
    compact_schedule,
    is_sample_rate_consistent,
    is_statically_schedulable,
    iteration_token_change,
    petri_to_sdf,
    repetition_vector,
    sdf_to_petri,
    simulate_schedule,
    static_schedule,
    total_buffer_requirement,
)


def figure2_graph() -> SDFGraph:
    """The Figure 2 chain as an SDF graph: rates 1->2 and 1->2."""
    graph = SDFGraph("figure2")
    graph.add_actor("t1")
    graph.add_actor("t2")
    graph.add_actor("t3")
    graph.add_edge("t1", "t2", production=1, consumption=2)
    graph.add_edge("t2", "t3", production=1, consumption=2)
    return graph


def cyclic_graph(delays: int) -> SDFGraph:
    graph = SDFGraph("cycle")
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_edge("a", "b")
    graph.add_edge("b", "a", initial_tokens=delays)
    return graph


class TestGraphModel:
    def test_duplicate_actor_rejected(self):
        graph = SDFGraph()
        graph.add_actor("a")
        with pytest.raises(SDFError):
            graph.add_actor("a")

    def test_edge_to_unknown_actor_rejected(self):
        graph = SDFGraph()
        graph.add_actor("a")
        with pytest.raises(SDFError):
            graph.add_edge("a", "missing")

    def test_invalid_rates_rejected(self):
        graph = SDFGraph()
        graph.add_actor("a")
        graph.add_actor("b")
        with pytest.raises(SDFError):
            graph.add_edge("a", "b", production=0)
        with pytest.raises(SDFError):
            graph.add_edge("a", "b", initial_tokens=-1)

    def test_sources_sinks_connectivity(self):
        graph = figure2_graph()
        assert graph.sources() == ["t1"]
        assert graph.sinks() == ["t3"]
        assert graph.is_connected()

    def test_in_out_edges(self):
        graph = figure2_graph()
        assert len(graph.in_edges("t2")) == 1
        assert len(graph.out_edges("t2")) == 1


class TestBalance:
    def test_figure2_repetition_vector(self):
        assert repetition_vector(figure2_graph()) == {"t1": 4, "t2": 2, "t3": 1}

    def test_repetition_vector_is_minimal(self):
        graph = SDFGraph()
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_edge("a", "b", production=2, consumption=4)
        assert repetition_vector(graph) == {"a": 2, "b": 1}

    def test_inconsistent_graph_detected(self):
        graph = SDFGraph()
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_edge("a", "b", production=2, consumption=3)
        graph.add_edge("a", "b", production=1, consumption=1)
        assert not is_sample_rate_consistent(graph)
        with pytest.raises(InconsistentSDFError):
            repetition_vector(graph)

    def test_empty_graph_rejected(self):
        with pytest.raises(SDFError):
            repetition_vector(SDFGraph())

    def test_disconnected_components_normalized_independently(self):
        graph = SDFGraph()
        for name in ("a", "b", "c", "d"):
            graph.add_actor(name)
        graph.add_edge("a", "b", production=1, consumption=2)
        graph.add_edge("c", "d", production=3, consumption=1)
        assert repetition_vector(graph) == {"a": 2, "b": 1, "c": 1, "d": 3}

    def test_iteration_token_change_is_zero(self):
        change = iteration_token_change(figure2_graph())
        assert all(delta == 0 for delta in change.values())


class TestScheduling:
    def test_pass_matches_paper_figure2(self):
        schedule = static_schedule(figure2_graph())
        assert schedule.repetition == {"t1": 4, "t2": 2, "t3": 1}
        counts = {a: schedule.sequence.count(a) for a in {"t1", "t2", "t3"}}
        assert counts == schedule.repetition

    def test_buffer_bounds_and_cost(self):
        graph = figure2_graph()
        schedule = static_schedule(graph)
        assert total_buffer_requirement(schedule) >= 2
        assert schedule.cost == 4 + 2 + 1  # unit actor costs

    def test_cycle_needs_delays(self):
        assert not is_statically_schedulable(cyclic_graph(0))
        with pytest.raises(DeadlockError):
            static_schedule(cyclic_graph(0))
        assert is_statically_schedulable(cyclic_graph(1))

    def test_simulate_schedule_custom_repetition(self):
        graph = figure2_graph()
        sequence, bounds = simulate_schedule(graph, {"t1": 8, "t2": 4, "t3": 2})
        assert len(sequence) == 14
        assert bounds["t1->t2"] >= 2

    def test_looped_schedule_round_trip(self):
        schedule = static_schedule(figure2_graph())
        looped = compact_schedule(schedule.sequence)
        assert looped.flatten() == schedule.sequence
        assert "(" in str(looped)

    def test_iterations(self):
        schedule = static_schedule(figure2_graph())
        assert schedule.iterations(3) == list(schedule.sequence) * 3


class TestConversion:
    def test_sdf_to_petri_matches_figure2(self):
        net = sdf_to_petri(figure2_graph())
        assert is_marked_graph(net)
        assert t_invariants(net) == [{"t1": 4, "t2": 2, "t3": 1}]

    def test_petri_to_sdf_round_trip(self):
        graph = figure2_graph()
        back = petri_to_sdf(sdf_to_petri(graph))
        assert repetition_vector(back) == repetition_vector(graph)

    def test_petri_to_sdf_keeps_delays(self):
        graph = cyclic_graph(2)
        back = petri_to_sdf(sdf_to_petri(graph))
        assert static_schedule(back).sequence  # still schedulable

    def test_petri_to_sdf_rejects_conflicts(self, fig3a):
        with pytest.raises(SDFError):
            petri_to_sdf(fig3a)

    def test_petri_figure2_gallery_net_converts(self, fig2):
        graph = petri_to_sdf(fig2)
        assert repetition_vector(graph) == {"t1": 4, "t2": 2, "t3": 1}

    def test_costs_preserved(self):
        graph = SDFGraph()
        graph.add_actor("a", cost=9)
        graph.add_actor("b", cost=2)
        graph.add_edge("a", "b")
        net = sdf_to_petri(graph)
        assert net.transition("a").cost == 9
        back = petri_to_sdf(net)
        assert back.actor("a").cost == 9
