"""Unit tests for schedulability checking, valid schedules and tasks."""

from __future__ import annotations

import pytest

from repro.gallery import (
    figure1b_not_free_choice,
    figure3a_schedulable,
    figure3b_unschedulable,
    figure4_weighted,
    figure5_two_inputs,
    figure7_unschedulable,
)
from repro.petrinet import NetBuilder, is_finite_complete_cycle
from repro.petrinet.exceptions import NotFreeChoiceError, NotSchedulableError
from repro.qss import (
    QuasiStaticScheduler,
    TAllocation,
    analyse,
    check_reduction,
    compute_valid_schedule,
    enumerate_reductions,
    is_schedulable,
    minimum_task_count,
    partition_tasks,
    reduce_net,
)


class TestSchedulabilityVerdicts:
    def test_paper_verdicts(self, fig3a, fig3b, fig4, fig5, fig7):
        assert is_schedulable(fig3a)
        assert not is_schedulable(fig3b)
        assert is_schedulable(fig4)
        assert is_schedulable(fig5)
        assert not is_schedulable(fig7)

    def test_conflict_free_net_is_schedulable(self, fig2):
        assert is_schedulable(fig2)

    def test_figure7_reductions_inconsistent(self, fig7):
        for reduction in enumerate_reductions(fig7):
            verdict = check_reduction(fig7, reduction)
            assert not verdict.schedulable
            assert not verdict.consistent
            assert verdict.uncovered_transitions
            assert verdict.source_places
            assert "NOT schedulable" in verdict.explain()

    def test_figure3b_source_not_covered(self, fig3b):
        reduction = reduce_net(fig3b, TAllocation.from_mapping({"p1": "t2"}))
        verdict = check_reduction(fig3b, reduction)
        assert not verdict.consistent
        assert "t1" in verdict.uncovered_sources

    def test_schedulable_verdict_carries_cycle(self, fig3a):
        for reduction in enumerate_reductions(fig3a):
            verdict = check_reduction(fig3a, reduction)
            assert verdict.schedulable
            assert verdict.cycle is not None
            assert is_finite_complete_cycle(reduction.net, verdict.cycle)
            assert "schedulable" in verdict.explain()

    def test_deadlocked_reduction_detected(self):
        """Consistent but unable to fire: a cycle with no initial tokens."""
        net = (
            NetBuilder("deadlock")
            .transition("a")
            .transition("b")
            .place("p1")
            .place("p2")
            .arc("a", "p1")
            .arc("p1", "b")
            .arc("b", "p2")
            .arc("p2", "a")
            .build()
        )
        report = analyse(net)
        assert not report.schedulable
        verdict = report.verdicts[0]
        assert verdict.consistent
        assert verdict.deadlocked

    def test_non_free_choice_rejected(self):
        with pytest.raises(NotFreeChoiceError):
            analyse(figure1b_not_free_choice())


class TestValidSchedules:
    def test_figure3a_schedule_matches_paper(self, fig3a):
        schedule = compute_valid_schedule(fig3a)
        sequences = {cycle.sequence for cycle in schedule.cycles}
        assert sequences == {("t1", "t2", "t4"), ("t1", "t3", "t5")}
        assert schedule.verify()

    def test_figure4_schedule_counts_match_paper(self, fig4):
        """The paper's cycles are (t1 t2 t1 t2 t4) and (t1 t3 t5 t5)."""
        schedule = compute_valid_schedule(fig4)
        counts = [cycle.counts for cycle in schedule.cycles]
        assert {"t1": 2, "t2": 2, "t4": 1} in counts
        assert {"t1": 1, "t3": 1, "t5": 2} in counts
        assert schedule.verify()

    def test_figure5_schedule_counts_match_paper(self, fig5):
        schedule = compute_valid_schedule(fig5)
        counts = [cycle.counts for cycle in schedule.cycles]
        assert {"t1": 1, "t2": 1, "t4": 2, "t6": 5, "t8": 1, "t9": 1} in counts
        assert {"t1": 1, "t3": 1, "t5": 1, "t7": 2, "t6": 1, "t8": 1, "t9": 1} in counts

    def test_every_cycle_contains_every_source(self, fig5):
        schedule = compute_valid_schedule(fig5)
        for cycle in schedule.cycles:
            assert cycle.contains("t1")
            assert cycle.contains("t8")

    def test_unschedulable_raises_with_explanation(self, fig7):
        with pytest.raises(NotSchedulableError) as excinfo:
            compute_valid_schedule(fig7)
        assert "NOT quasi-statically schedulable" in str(excinfo.value)

    def test_buffer_bounds_from_schedule(self, fig4):
        schedule = compute_valid_schedule(fig4)
        bounds = schedule.max_buffer_bounds()
        assert bounds["p2"] == 2
        assert bounds["p3"] == 2

    def test_report_explain_and_counts(self, fig5):
        report = analyse(fig5)
        assert report.allocation_count == 2
        assert report.reduction_count == 2
        assert "schedulable" in report.explain()

    def test_cycles_containing_and_transitions_used(self, fig3a):
        schedule = compute_valid_schedule(fig3a)
        assert len(schedule.cycles_containing("t2")) == 1
        assert schedule.transitions_used() == frozenset(fig3a.transition_names)

    def test_describe_lists_cycles(self, fig3a):
        text = compute_valid_schedule(fig3a).describe()
        assert "finite complete cycle" in text
        assert "t2" in text


class TestSchedulerFacade:
    def test_report_is_cached(self, fig3a):
        scheduler = QuasiStaticScheduler(fig3a)
        assert scheduler.report is scheduler.report
        assert scheduler.is_schedulable()
        assert scheduler.valid_schedule().cycle_count == 2
        assert len(scheduler.reductions()) == 2
        assert "schedulable" in scheduler.explain()

    def test_facade_raises_for_unschedulable(self, fig7):
        scheduler = QuasiStaticScheduler(fig7)
        assert not scheduler.is_schedulable()
        with pytest.raises(NotSchedulableError):
            scheduler.valid_schedule()


class TestTaskPartitioning:
    def test_one_task_per_source(self, fig5):
        partition = partition_tasks(compute_valid_schedule(fig5))
        assert partition.task_count == 2
        assert minimum_task_count(fig5) == 2

    def test_shared_transition_detected(self, fig5):
        partition = partition_tasks(compute_valid_schedule(fig5))
        cell = partition.task_for_source("t1")
        tick = partition.task_for_source("t8")
        assert "t6" in cell.transitions
        assert "t6" in tick.transitions
        assert "t6" in cell.shared_transitions
        assert "t2" in cell.transitions and "t2" not in tick.transitions

    def test_rate_groups_merge_sources(self, fig5):
        partition = partition_tasks(
            compute_valid_schedule(fig5), rate_groups=[["t1", "t8"]]
        )
        assert partition.task_count == 1
        assert set(partition.tasks[0].source_transitions) == {"t1", "t8"}

    def test_task_names(self, fig5):
        partition = partition_tasks(
            compute_valid_schedule(fig5), task_names={"t1": "cell", "t8": "tick"}
        )
        names = {task.name for task in partition.tasks}
        assert names == {"cell", "tick"}

    def test_unknown_source_raises(self, fig5):
        partition = partition_tasks(compute_valid_schedule(fig5))
        with pytest.raises(KeyError):
            partition.task_for_source("t2")

    def test_describe(self, fig5):
        text = partition_tasks(compute_valid_schedule(fig5)).describe()
        assert "2 task(s)" in text
