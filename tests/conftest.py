"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.apps.atm import build_atm_server_net, make_testbench
from repro.gallery import (
    figure2_sdf_chain,
    figure3a_schedulable,
    figure3b_unschedulable,
    figure4_weighted,
    figure5_two_inputs,
    figure7_unschedulable,
)
from repro.qss import analyse


@pytest.fixture
def fig2():
    return figure2_sdf_chain()


@pytest.fixture
def fig3a():
    return figure3a_schedulable()


@pytest.fixture
def fig3b():
    return figure3b_unschedulable()


@pytest.fixture
def fig4():
    return figure4_weighted()


@pytest.fixture
def fig5():
    return figure5_two_inputs()


@pytest.fixture
def fig7():
    return figure7_unschedulable()


@pytest.fixture(scope="session")
def atm_net():
    return build_atm_server_net()


@pytest.fixture(scope="session")
def atm_report(atm_net):
    """Full QSS analysis of the ATM server (expensive, shared per session)."""
    return analyse(atm_net)


@pytest.fixture(scope="session")
def atm_events_small():
    """A small ATM testbench (10 cells) for execution tests."""
    return make_testbench(cells=10, seed=7)
