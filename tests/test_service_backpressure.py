"""Sustained-overload backpressure: firehose clients against tiny inboxes.

The service's overload contract: a bounded shard inbox never grows past
its limit, producers suspend (or get an explicit ``try_put`` refusal)
instead of the server buffering unboundedly, and — critically — the
pressure changes *when* events are served, never *whether* or *in what
per-instance order*.  These tests drive firehose workloads through
deliberately tiny inboxes (limits 1-4, thousands of events) and pin:

- no event loss: every injected event is served, counted, and present
  in the final ``FleetResult``;
- byte-identical results: the drained fleet equals the one-shot batch
  run of the same streams, even when several concurrent producers were
  being suspended and resumed mid-flood;
- correct reply ordering on the socket: control replies come back in
  request order with their ``request_id``s echoed, even with thousands
  of inject lines queued around them.
"""

from __future__ import annotations

import asyncio
from dataclasses import asdict

import numpy as np

from repro.apps.atm import MODULE_PARTITION, build_atm_server_net, make_fleet_testbench
from repro.runtime import FleetEngine, FleetSimulator, ModuleAssignment
from repro.service import (
    Ack,
    FleetSupervisor,
    IngestServer,
    InjectBatch,
    InjectEvent,
    ShardActor,
    Shutdown,
    SnapshotReply,
    SnapshotRequest,
    decode_message,
    encode_message,
    events_to_injects,
)

ATM = build_atm_server_net()
ASSIGNMENT = ModuleAssignment.from_groups(MODULE_PARTITION)


def atm_workload(instances=48, cells=4, seed=23):
    streams = make_fleet_testbench(instances, cells=cells, seed=seed)
    return streams, events_to_injects(streams)


def assert_results_identical(expected, actual):
    assert asdict(expected.stats) == asdict(actual.stats)
    assert np.array_equal(expected.instance_cycles, actual.instance_cycles)
    assert np.array_equal(expected.instance_events, actual.instance_events)


class TestInboxOverload:
    """The bounded inbox under a firehose: full, refusing, losing nothing."""

    def test_try_put_firehose_no_loss(self):
        """Overflow refusals under sustained pressure; retries lose nothing."""

        async def go():
            engine = FleetEngine(ATM, ASSIGNMENT)
            actor = ShardActor(0, engine, inbox_limit=2)
            runner = asyncio.create_task(actor.run())
            total = 400
            refused = 0
            for i in range(total):
                event = InjectEvent(instance=i % 8, source="t_tick")
                while not actor.try_put(event):
                    refused += 1
                    assert actor.inbox.qsize() <= 2  # bounded, always
                    await asyncio.sleep(0)  # yield so the actor drains
            future = asyncio.get_running_loop().create_future()
            await actor.put((Shutdown(drain=True), future))
            keys, result = await asyncio.wait_for(future, timeout=5)
            await runner
            return refused, sorted(keys), result

        refused, keys, result = asyncio.run(go())
        assert refused > 0  # the firehose really did hit a full inbox
        assert keys == list(range(8))
        assert result.stats.events_processed == 400  # no loss
        assert int(result.instance_events.sum()) == 400

    def test_concurrent_producers_suspend_and_results_match(self):
        """Many producers parked on a tiny inbox; drained result is identical.

        Producers partition the fleet by instance (each owns every 4th
        instance's stream, in order), so per-instance order is theirs
        alone and any interleaving the backpressure forces between
        producers must not change the outcome.
        """
        streams, injects = atm_workload()
        expected = FleetSimulator(ATM, ASSIGNMENT).run(streams)

        async def go():
            supervisor = FleetSupervisor(
                ATM, ASSIGNMENT, shards=2, inbox_limit=1
            )
            await supervisor.start()

            async def producer(owner: int) -> int:
                mine = [m for m in injects if m.instance % 4 == owner]
                for lo in range(0, len(mine), 16):
                    await supervisor.inject(
                        InjectBatch(events=tuple(mine[lo : lo + 16]))
                    )
                return len(mine)

            sent = await asyncio.gather(*(producer(k) for k in range(4)))
            assert sum(sent) == len(injects)
            return await supervisor.stop(drain=True)

        actual = asyncio.run(go())
        assert_results_identical(expected, actual)

    def test_packed_firehose_through_inbox_limit_one(self):
        """Pre-packed zero-copy injects obey the same backpressure contract."""
        streams, injects = atm_workload(instances=32, cells=3)
        expected = FleetSimulator(ATM, ASSIGNMENT).run(streams)

        async def go():
            supervisor = FleetSupervisor(
                ATM, ASSIGNMENT, shards=3, inbox_limit=1
            )
            await supervisor.start()
            packed = supervisor.pack(injects)
            for lo in range(0, len(packed), 64):
                await supervisor.inject(packed.take(slice(lo, lo + 64)))
            return await supervisor.stop(drain=True)

        actual = asyncio.run(go())
        assert_results_identical(expected, actual)


class TestSocketFirehose:
    """A raw socket client flooding the ingest server."""

    def test_firehose_acks_in_order_and_no_loss(self):
        """Thousands of inject lines with interleaved controls.

        The reply stream must carry the snapshot replies and the final
        shutdown ``Ack`` in exactly request order, with ``request_id``s
        echoed; the snapshots must observe monotonically non-decreasing
        event counts; and the final drained result must be byte-identical
        to the one-shot batch run — overload shows up as latency, never
        as loss or reordering.
        """
        streams, injects = atm_workload(instances=40, cells=3)
        expected = FleetSimulator(ATM, ASSIGNMENT).run(streams)

        async def go():
            supervisor = FleetSupervisor(
                ATM, ASSIGNMENT, shards=2, inbox_limit=2
            )
            await supervisor.start()
            server = IngestServer(supervisor)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)

            # the firehose: every inject as its own line, a snapshot
            # request after each third of the flood, shutdown at the end
            expected_ids = []
            lines = []
            third = max(1, len(injects) // 3)
            for i, event in enumerate(injects):
                lines.append(encode_message(event))
                if (i + 1) % third == 0:
                    request_id = len(expected_ids) + 1
                    expected_ids.append(request_id)
                    lines.append(
                        encode_message(SnapshotRequest(request_id=request_id))
                    )
            payload = ("\n".join(lines) + "\n").encode()

            async def flood():
                writer.write(payload)
                await writer.drain()
                final = encode_message(Shutdown(drain=True, request_id=99))
                writer.write(final.encode() + b"\n")
                await writer.drain()

            flood_task = asyncio.create_task(flood())
            replies = []
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=30)
                assert line, "server closed before the shutdown ack"
                reply = decode_message(line.strip())
                replies.append(reply)
                if isinstance(reply, Ack):
                    break
            await flood_task
            writer.close()
            await writer.wait_closed()
            await server.stop()
            result = await supervisor.stop(drain=True)
            return replies, expected_ids, result

        replies, expected_ids, actual = asyncio.run(go())
        snapshots, ack = replies[:-1], replies[-1]
        assert all(isinstance(r, SnapshotReply) for r in snapshots)
        assert [r.request_id for r in snapshots] == expected_ids  # in order
        events_seen = [r.events for r in snapshots]
        assert events_seen == sorted(events_seen)  # monotone progress
        assert isinstance(ack, Ack) and ack.ok and ack.request_id == 99
        assert_results_identical(expected, actual)
