"""Unit coverage of the service layer: codec, telemetry, actors, routing.

Complements `tests/test_service_differential.py` (which pins result
equality across serving paths) with the layer-local behaviour: the
wire codec is total and strict, telemetry records validate against
their versioned schema, shard inboxes really bound memory and exert
backpressure, supervisor routing is deterministic and respects the
migration override map, and the ingest server answers malformed lines
without dying.  Also carries the satellite pins for
`FleetResult.percentile`/`percentiles` edge cases and cross-process
`synthetic_streams` determinism.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.apps.atm import MODULE_PARTITION, build_atm_server_net, make_fleet_testbench
from repro.runtime import FleetEngine, ModuleAssignment
from repro.runtime.fleet import FleetResult
from repro.runtime.rtos import ExecutionStats
from repro.service import (
    FRAME_CONTROL,
    FRAME_PACKED,
    FRAME_RESULT,
    TELEMETRY_SCHEMA,
    WIRE_SCHEMA,
    Ack,
    FleetSupervisor,
    IngestServer,
    InjectBatch,
    InjectBatchPacked,
    InjectEvent,
    ProtocolError,
    Reload,
    ServiceClient,
    ShardActor,
    ShardStats,
    Shutdown,
    SnapshotReply,
    SnapshotRequest,
    TelemetryWriter,
    decode_frame,
    decode_message,
    encode_frame_control,
    encode_frame_packed,
    encode_frame_result,
    encode_message,
    events_to_injects,
    validate_backend,
    validate_telemetry_record,
)

ATM = build_atm_server_net()
ASSIGNMENT = ModuleAssignment.from_groups(MODULE_PARTITION)


class TestWireCodec:
    MESSAGES = [
        InjectEvent(instance=7, source="t_cell", time=1.5, choices={"p": "t"}),
        InjectBatch(
            events=(
                InjectEvent(instance=0, source="t_tick"),
                InjectEvent(instance=1, source="t_cell", choices={"a": "b"}),
            )
        ),
        SnapshotRequest(request_id=3),
        ShardStats(
            shard=2,
            instances=10,
            events=400,
            cycles=12345,
            queue_depth=7,
            budget_stops=1,
            throughput_eps=123.5,
            percentiles={"p50": 10.0, "p99": 20.0},
        ),
        SnapshotReply(
            request_id=3,
            instances=10,
            events=400,
            cycles=12345,
            budget_stops=1,
            shards=(
                ShardStats(
                    shard=0,
                    instances=10,
                    events=400,
                    cycles=12345,
                    queue_depth=0,
                    budget_stops=1,
                    throughput_eps=9.0,
                ),
            ),
        ),
        Shutdown(drain=False, request_id=9),
        Reload(reset_stats=False),
        Ack(request_id=4, ok=False, error="boom"),
    ]

    @pytest.mark.parametrize("message", MESSAGES, ids=lambda m: m.TYPE)
    def test_round_trip(self, message):
        line = encode_message(message)
        assert json.loads(line)["schema"] == WIRE_SCHEMA
        assert decode_message(line) == message
        assert decode_message(line.encode()) == message

    def test_rejects_invalid_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_message("{nope")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_message("[1,2]")

    def test_rejects_wrong_schema(self):
        line = json.dumps({"schema": "repro-qss.service/99", "type": "inject"})
        with pytest.raises(ProtocolError, match="unsupported wire schema"):
            decode_message(line)

    def test_rejects_unknown_type(self):
        line = json.dumps({"schema": WIRE_SCHEMA, "type": "teleport"})
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_message(line)

    def test_rejects_unknown_field(self):
        payload = json.loads(encode_message(SnapshotRequest()))
        payload["extra"] = 1
        with pytest.raises(ProtocolError, match="unknown field"):
            decode_message(json.dumps(payload))

    def test_rejects_missing_required_field(self):
        line = json.dumps({"schema": WIRE_SCHEMA, "type": "inject"})
        with pytest.raises(ProtocolError, match="bad payload"):
            decode_message(line)


class TestTelemetrySchema:
    def good_record(self, kind="shard"):
        record = {
            "schema": TELEMETRY_SCHEMA,
            "kind": kind,
            "elapsed_seconds": 1.25,
            "instances": 10,
            "events": 500,
            "events_delta": 100,
            "throughput_eps": 400.0,
            "queue_depth": 3,
            "budget_stops": 0,
            "cycle_percentiles": {"p50": 100.0, "p99": 200.0},
        }
        if kind == "shard":
            record["shard"] = 1
        return record

    @pytest.mark.parametrize("kind", ["shard", "aggregate"])
    def test_valid_records_pass(self, kind):
        validate_telemetry_record(self.good_record(kind))

    def test_rejects_wrong_schema(self):
        record = self.good_record()
        record["schema"] = "repro-qss.telemetry/0"
        with pytest.raises(ValueError, match="unsupported telemetry schema"):
            validate_telemetry_record(record)

    def test_rejects_unknown_kind(self):
        record = self.good_record()
        record["kind"] = "galaxy"
        with pytest.raises(ValueError, match="kind"):
            validate_telemetry_record(record)

    @pytest.mark.parametrize(
        "missing",
        ["elapsed_seconds", "events", "queue_depth", "cycle_percentiles"],
    )
    def test_rejects_missing_field(self, missing):
        record = self.good_record()
        del record[missing]
        with pytest.raises(ValueError, match=missing):
            validate_telemetry_record(record)

    def test_rejects_wrong_type(self):
        record = self.good_record()
        record["events"] = "many"
        with pytest.raises(ValueError, match="wrong type"):
            validate_telemetry_record(record)

    def test_rejects_bool_counter(self):
        record = self.good_record()
        record["queue_depth"] = True
        with pytest.raises(ValueError, match="bool"):
            validate_telemetry_record(record)

    def test_shard_record_needs_shard_id(self):
        record = self.good_record()
        del record["shard"]
        with pytest.raises(ValueError, match="shard"):
            validate_telemetry_record(record)

    def test_writer_appends_valid_json_lines(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with TelemetryWriter(str(path)) as writer:
            writer.emit(self.good_record("shard"))
            writer.emit(self.good_record("aggregate"))
            assert writer.records_written == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            validate_telemetry_record(json.loads(line))

    def test_writer_rejects_invalid_record(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with TelemetryWriter(str(path)) as writer:
            with pytest.raises(ValueError):
                writer.emit({"schema": TELEMETRY_SCHEMA, "kind": "nope"})
        assert path.read_text() == ""

    def test_writer_buffers_until_flush(self, tmp_path):
        """Emits buffer in memory; the file sees one write per flush."""
        path = tmp_path / "telemetry.jsonl"
        with TelemetryWriter(str(path)) as writer:
            writer.emit(self.good_record("shard"))
            writer.emit(self.good_record("aggregate"))
            assert writer.buffered == 2
            assert path.read_text() == ""  # nothing written yet
            writer.flush()
            assert writer.buffered == 0
            assert len(path.read_text().splitlines()) == 2
            writer.emit(self.good_record("shard"))  # buffered again
            assert len(path.read_text().splitlines()) == 2
        # close() flushed the remainder
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            validate_telemetry_record(json.loads(line))

    def test_writer_auto_flushes_at_buffer_limit(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with TelemetryWriter(str(path), buffer_limit=4) as writer:
            for _ in range(4):
                writer.emit(self.good_record("aggregate"))
            assert writer.buffered == 0  # limit reached -> auto-flush
            assert len(path.read_text().splitlines()) == 4


class TestBinaryFrames:
    """The process-backend pipe codec: packed, control and result frames."""

    def packed(self):
        return InjectBatchPacked(
            instances=np.array([5, 9, 5], dtype=np.int64),
            sources=np.array([1, 2, 1], dtype=np.int64),
            signatures=np.array([0, 3, 0], dtype=np.int64),
        )

    def test_packed_frame_round_trips(self):
        batch = self.packed()
        defs = [(("p_choice", "t_left"),), (("p_choice", "t_right"),)]
        data = encode_frame_packed(batch, sig_base=2, sig_defs=defs)
        kind, (decoded, sig_base, sig_defs) = decode_frame(data)
        assert kind == FRAME_PACKED
        assert sig_base == 2
        assert sig_defs == defs
        assert np.array_equal(decoded.instances, batch.instances)
        assert np.array_equal(decoded.sources, batch.sources)
        assert np.array_equal(decoded.signatures, batch.signatures)

    def test_control_frame_round_trips(self):
        message = SnapshotRequest(request_id=7)
        kind, decoded = decode_frame(encode_frame_control(message))
        assert kind == FRAME_CONTROL
        assert decoded == message

    def test_result_frame_round_trips(self):
        payload = ([3, 1, 4], {"events": 42})
        kind, decoded = decode_frame(encode_frame_result(payload))
        assert kind == FRAME_RESULT
        assert decoded == payload

    def test_rejects_missing_magic(self):
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(b"NOPE" + bytes([FRAME_CONTROL]))

    def test_rejects_unknown_kind(self):
        with pytest.raises(ProtocolError, match="unknown binary frame kind"):
            decode_frame(b"RQF1" + bytes([0x7F]))

    def test_rejects_truncated_packed_payload(self):
        data = encode_frame_packed(self.packed())
        with pytest.raises(ProtocolError, match="expected"):
            decode_frame(data[:-8])

    def test_packed_take_and_concat_preserve_order(self):
        batch = self.packed()
        front = batch.take(slice(0, 2))
        back = batch.take(slice(2, 3))
        rejoined = InjectBatchPacked.concat([front, back])
        assert len(front) == 2 and len(back) == 1
        assert np.array_equal(rejoined.instances, batch.instances)
        assert np.array_equal(rejoined.signatures, batch.signatures)


class TestShardBackpressure:
    def test_try_put_reports_overflow(self):
        async def go():
            engine = FleetEngine(ATM, ASSIGNMENT)
            actor = ShardActor(0, engine, inbox_limit=2)
            event = InjectEvent(instance=0, source="t_tick")
            assert actor.try_put(event)
            assert actor.try_put(event)
            assert not actor.try_put(event)  # bounded: third enqueue refused

        asyncio.run(go())

    def test_put_suspends_until_the_actor_drains(self):
        async def go():
            engine = FleetEngine(ATM, ASSIGNMENT)
            actor = ShardActor(0, engine, inbox_limit=1)
            event = InjectEvent(instance=0, source="t_tick")
            await actor.put(event)
            blocked = asyncio.create_task(actor.put(event))
            await asyncio.sleep(0.01)
            assert not blocked.done()  # backpressure: producer is parked
            runner = asyncio.create_task(actor.run())
            await asyncio.wait_for(blocked, timeout=2)
            future = asyncio.get_running_loop().create_future()
            await actor.put((Shutdown(drain=True), future))
            keys, result = await asyncio.wait_for(future, timeout=2)
            await runner
            assert keys == [0]
            assert result.stats.events_processed == 2

        asyncio.run(go())


class TestSupervisorRouting:
    def test_backend_validation(self):
        assert validate_backend("async") == "async"
        with pytest.raises(ValueError, match="unknown service backend"):
            validate_backend("threads")
        with pytest.raises(ValueError, match="shards must be positive"):
            FleetSupervisor(ATM, ASSIGNMENT, shards=0)
        with pytest.raises(ValueError, match="async backend"):
            FleetSupervisor(
                ATM, ASSIGNMENT, backend="process", rebalance_interval=1.0
            )

    def test_routing_is_deterministic_and_total(self):
        supervisor = FleetSupervisor(ATM, ASSIGNMENT, shards=4)
        shards = [supervisor.shard_of(i) for i in range(1000)]
        assert shards == [supervisor.shard_of(i) for i in range(1000)]
        assert set(shards) == {0, 1, 2, 3}  # every shard gets work

    def test_rebalance_updates_routing_override(self):
        async def go():
            supervisor = FleetSupervisor(ATM, ASSIGNMENT, shards=2)
            await supervisor.start()
            for i in range(8):
                await supervisor.inject(
                    InjectEvent(instance=i, source="t_tick")
                )
            victims = [
                i for i in range(8) if supervisor.shard_of(i) == 0
            ]
            moved = await supervisor.rebalance(source=0, target=1, count=2)
            assert moved == 2
            assert supervisor.migrations == 2
            stolen = [
                i for i in victims if supervisor.shard_of(i) == 1
            ]
            assert len(stolen) == 2  # override map redirects future events
            await supervisor.stop()

        asyncio.run(go())

    def test_auto_rebalance_noop_below_threshold(self):
        async def go():
            supervisor = FleetSupervisor(
                ATM, ASSIGNMENT, shards=2, rebalance_threshold=1000
            )
            await supervisor.start()
            await supervisor.inject(InjectEvent(instance=0, source="t_tick"))
            assert await supervisor.rebalance() == 0
            await supervisor.stop()

        asyncio.run(go())

    def test_reload_resets_markings_and_stats(self):
        async def go():
            supervisor = FleetSupervisor(ATM, ASSIGNMENT, shards=2)
            await supervisor.start()
            for i in range(4):
                await supervisor.inject(
                    InjectEvent(instance=i, source="t_tick")
                )
            before = await supervisor.snapshot()
            assert before.events == 4
            await supervisor.reload()
            after = await supervisor.snapshot()
            assert after.events == 0
            assert after.instances == 4  # instances survive the reload
            result = await supervisor.stop()
            assert result.stats.events_processed == 0
            return result

        asyncio.run(go())


class TestIngestServer:
    def test_malformed_line_gets_error_ack_and_connection_survives(self):
        async def go():
            supervisor = FleetSupervisor(ATM, ASSIGNMENT, shards=1)
            await supervisor.start()
            server = IngestServer(supervisor, port=0)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            await writer.drain()
            reply = decode_message((await reader.readline()).strip())
            assert isinstance(reply, Ack) and not reply.ok
            assert "JSON" in reply.error
            # the same connection still serves real requests
            writer.write(
                encode_message(SnapshotRequest(request_id=5)).encode() + b"\n"
            )
            await writer.drain()
            reply = decode_message((await reader.readline()).strip())
            assert isinstance(reply, SnapshotReply)
            assert reply.request_id == 5
            writer.close()
            await writer.wait_closed()
            await server.stop()
            await supervisor.stop()

        asyncio.run(go())

    def test_large_inject_batch_crosses_the_wire(self):
        # regression: a big InjectBatch is one JSON line, far beyond
        # asyncio's 64 KiB default stream limit — the server reads it
        # under the raised STREAM_LIMIT and the client splits batches
        # larger than BATCH_CHUNK events across lines
        from repro.service.ingest import BATCH_CHUNK

        injects = events_to_injects(
            make_fleet_testbench(200, cells=10, seed=3)
        )
        assert len(injects) > BATCH_CHUNK  # exercises the client split
        one_line = encode_message(
            InjectBatch(events=tuple(injects[:BATCH_CHUNK]))
        )
        assert len(one_line) > 64 * 1024  # exercises the server limit

        async def go():
            supervisor = FleetSupervisor(ATM, ASSIGNMENT, shards=2)
            await supervisor.start()
            server = IngestServer(supervisor, port=0)
            host, port = await server.start()
            client = await ServiceClient.connect(host, port)
            await client.inject_batch(injects)
            snapshot = await client.snapshot()
            assert snapshot.events == len(injects)
            await client.close()
            await server.stop()
            await supervisor.stop()

        asyncio.run(go())


class TestFleetResultEdgeCases:
    """Satellite pin: percentile semantics at the edges."""

    @staticmethod
    def result(cycles):
        values = np.array(cycles, dtype=np.int64)
        return FleetResult(
            stats=ExecutionStats(),
            instance_cycles=values,
            instance_events=np.zeros(len(values), dtype=np.int64),
            engine="compiled",
        )

    def test_empty_fleet_percentiles_are_zero(self):
        empty = self.result([])
        assert empty.instances == 0
        assert empty.percentile(50) == 0.0
        assert empty.percentiles() == {
            "p50": 0.0,
            "p90": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }
        assert empty.throughput_eps == 0.0

    def test_q0_and_q100_are_min_and_max(self):
        spread = self.result([10, 20, 30, 40])
        assert spread.percentile(0) == 10.0
        assert spread.percentile(100) == 40.0

    def test_single_instance_every_percentile_is_its_value(self):
        single = self.result([1234])
        for q in (0, 25, 50, 75, 90, 99, 100):
            assert single.percentile(q) == 1234.0
        assert single.percentiles((0, 100)) == {"p0": 1234.0, "p100": 1234.0}

    def test_custom_quantile_labels(self):
        spread = self.result([10, 20, 30, 40])
        assert set(spread.percentiles((50, 99.9))) == {"p50", "p99.9"}


_STREAM_DIGEST_SCRIPT = """
import hashlib, sys
sys.path.insert(0, {src!r})
from repro.petrinet.corpus import CORPUS_FAMILIES
from repro.runtime import synthetic_streams
family = CORPUS_FAMILIES["pipeline"]
net = family.build(3, family.spec(3).param_dict)
streams = synthetic_streams(net, 7, 11, seed=42)
digest = hashlib.sha256(
    repr(
        [
            [(e.time, e.source, sorted(e.choices.items())) for e in stream]
            for stream in streams
        ]
    ).encode()
).hexdigest()
print(digest)
"""


class TestSyntheticStreamDeterminism:
    """Satellite pin: fixed seed => identical streams across processes."""

    def test_streams_identical_across_processes(self):
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        script = _STREAM_DIGEST_SCRIPT.format(src=os.path.abspath(src))
        digests = set()
        for hash_seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            output = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            ).stdout.strip()
            digests.add(output)
        assert len(digests) == 1, (
            "synthetic_streams must be reproducible across processes "
            f"regardless of hash randomization; saw {digests}"
        )

    def test_streams_identical_within_process(self):
        from repro.runtime import synthetic_streams

        first = synthetic_streams(ATM, 5, 9, seed=8)
        second = synthetic_streams(ATM, 5, 9, seed=8)
        assert first == second
        assert synthetic_streams(ATM, 5, 9, seed=9) != first
