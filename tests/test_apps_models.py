"""Pins for the router and heating application case studies.

Both new app models must satisfy the same contract the ATM server does:
the net is free choice (so the whole QSS pipeline applies), every
environment event quiesces (the marking returns to the initial marking
after each event, which is what makes the fleet runtime total), the
functional-module partition covers every transition exactly once, the
declared choice probabilities are exactly the net's choice places, and
the workload generators are deterministic in their seed.
"""

from __future__ import annotations

import pytest

from repro.apps import atm, heating, router
from repro.petrinet import CORPUS_FAMILIES, classify, is_free_choice
from repro.qss import analyse, is_schedulable
from repro.runtime import (
    ExecutionStats,
    FleetSimulator,
    ModuleAssignment,
    ReactiveNetSimulator,
)

APPS = {
    "router": (
        router.build_router_net,
        router.MODULE_PARTITION,
        router.default_choice_probabilities,
        router.ROUTER_CHOICE_PLACES,
        router.make_testbench,
        router.make_fleet_testbench,
    ),
    "heating": (
        heating.build_heating_net,
        heating.MODULE_PARTITION,
        heating.default_choice_probabilities,
        heating.HEATING_CHOICE_PLACES,
        heating.make_testbench,
        heating.make_fleet_testbench,
    ),
}


@pytest.fixture(params=sorted(APPS), name="app")
def _app(request):
    return (request.param,) + APPS[request.param]


class TestModelStructure:
    def test_free_choice(self, app):
        _, build, *_ = app
        net = build()
        assert is_free_choice(net)
        assert classify(net) == "free-choice"

    def test_schedulable(self, app):
        _, build, *_ = app
        assert is_schedulable(build())

    def test_allocation_and_reduction_counts(self):
        # pinned exactly so a topology change is a conscious decision:
        # router has six binary choices (2^6 allocations), heating one
        # ternary and three binary (3*2^3)
        report = analyse(router.build_router_net())
        assert (report.allocation_count, report.reduction_count) == (64, 24)
        report = analyse(heating.build_heating_net())
        assert (report.allocation_count, report.reduction_count) == (24, 12)

    def test_partition_covers_every_transition_exactly_once(self, app):
        _, build, partition, *_ = app
        net = build()
        assigned = [t for group in partition.values() for t in group]
        assert sorted(assigned) == sorted(net.transition_names)

    def test_choice_probabilities_match_choice_places(self, app):
        _, build, _, probabilities, choice_places, *_ = app
        net = build()
        probs = probabilities()
        assert sorted(probs) == sorted(net.choice_places())
        assert sorted(probs) == sorted(choice_places)
        for place, branches in probs.items():
            successors = {
                arc.target for arc in net.arcs if arc.source == place
            }
            assert set(branches) == successors
            assert sum(branches.values()) == pytest.approx(1.0)

    def test_registered_as_corpus_families(self):
        for name in ("router", "heating"):
            family = CORPUS_FAMILIES[name]
            spec = family.spec(0)
            assert spec.param_dict == {}
            net = family.build(0, {})
            assert is_free_choice(net)


class TestQuiescence:
    """Every environment event returns the marking to the initial one."""

    def test_each_event_quiesces(self, app):
        _, build, partition, _, _, make_testbench, _ = app
        net = build()
        simulator = ReactiveNetSimulator(
            net, ModuleAssignment.from_groups(partition)
        )
        initial = simulator.marking
        stats = ExecutionStats()
        for event in make_testbench(25, seed=9):
            simulator.process_event(event, stats)
            assert simulator.marking == initial
        assert stats.events_processed == len(make_testbench(25, seed=9))


class TestWorkloads:
    def test_streams_are_time_ordered_and_choice_resolved(self, app):
        _, build, _, probabilities, _, make_testbench, _ = app
        events = make_testbench(30, seed=4)
        times = [e.time for e in events]
        assert times == sorted(times)
        probs = probabilities()
        for event in events:
            for place, branch in event.choices.items():
                assert branch in probs[place]

    def test_same_seed_identical_different_seed_not(self, app):
        _, _, _, _, _, make_testbench, make_fleet = app
        assert repr(make_testbench(20, seed=3)) == repr(make_testbench(20, seed=3))
        assert repr(make_testbench(20, seed=3)) != repr(make_testbench(20, seed=4))
        assert repr(make_fleet(3, 10, seed=3)) == repr(make_fleet(3, 10, seed=3))

    def test_fleet_instances_get_distinct_streams(self, app):
        _, _, _, _, _, _, make_fleet = app
        streams = make_fleet(4, 10, seed=7)
        assert len(streams) == 4
        reprs = {repr(stream) for stream in streams}
        assert len(reprs) == 4

    def test_fleet_run_serves_every_event(self, app):
        _, build, partition, _, _, _, make_fleet = app
        net = build()
        streams = make_fleet(6, 8, seed=11)
        result = FleetSimulator(
            net, ModuleAssignment.from_groups(partition)
        ).run(streams)
        assert result.stats.events_processed == sum(len(s) for s in streams)
        assert result.stats.budget_stops == 0

    def test_atm_arrival_override_is_byte_compatible(self):
        # the new arrival parameter must not move the paper's default
        # testbench by a single byte
        default = atm.make_testbench(cells=20, seed=2026)
        explicit = atm.make_testbench(cells=20, seed=2026, arrival="exponential")
        assert repr(default) == repr(explicit)
        bursty = atm.make_testbench(cells=20, seed=2026, arrival="bursty")
        assert repr(default) != repr(bursty)
