"""Unit tests for the core Petri net data model (repro.petrinet.net)."""

from __future__ import annotations

import pytest

from repro.petrinet import Marking, PetriNet
from repro.petrinet.exceptions import (
    DuplicateNodeError,
    InvalidArcError,
    InvalidMarkingError,
    NotEnabledError,
    UnknownNodeError,
)


def small_net() -> PetriNet:
    net = PetriNet("small")
    net.add_transition("t1")
    net.add_place("p1", tokens=1)
    net.add_transition("t2")
    net.add_arc("t1", "p1")
    net.add_arc("p1", "t2", weight=2)
    return net


class TestConstruction:
    def test_add_place_and_transition(self):
        net = PetriNet()
        place = net.add_place("p1", tokens=3)
        transition = net.add_transition("t1", cost=5)
        assert place.name == "p1"
        assert transition.cost == 5
        assert net.place_names == ["p1"]
        assert net.transition_names == ["t1"]

    def test_duplicate_name_rejected(self):
        net = PetriNet()
        net.add_place("x")
        with pytest.raises(DuplicateNodeError):
            net.add_place("x")
        with pytest.raises(DuplicateNodeError):
            net.add_transition("x")

    def test_empty_name_rejected(self):
        net = PetriNet()
        with pytest.raises(DuplicateNodeError):
            net.add_place("")

    def test_negative_initial_tokens_rejected(self):
        net = PetriNet()
        with pytest.raises(InvalidMarkingError):
            net.add_place("p", tokens=-1)

    def test_arc_requires_place_transition_pair(self):
        net = PetriNet()
        net.add_place("p1")
        net.add_place("p2")
        net.add_transition("t1")
        net.add_transition("t2")
        with pytest.raises(InvalidArcError):
            net.add_arc("p1", "p2")
        with pytest.raises(InvalidArcError):
            net.add_arc("t1", "t2")

    def test_arc_to_unknown_node(self):
        net = PetriNet()
        net.add_place("p1")
        with pytest.raises(UnknownNodeError):
            net.add_arc("p1", "missing")

    def test_arc_weight_must_be_positive(self):
        net = PetriNet()
        net.add_place("p1")
        net.add_transition("t1")
        with pytest.raises(InvalidArcError):
            net.add_arc("p1", "t1", weight=0)

    def test_arc_replaces_weight(self):
        net = small_net()
        net.add_arc("p1", "t2", weight=3)
        assert net.arc_weight("p1", "t2") == 3
        assert len(net.arcs) == 2


class TestQueries:
    def test_preset_postset(self):
        net = small_net()
        assert net.preset("p1") == {"t1": 1}
        assert net.postset("p1") == {"t2": 2}
        assert net.preset("t1") == {}
        assert net.postset("t2") == {}

    def test_arc_weight_missing_is_zero(self):
        net = small_net()
        assert net.arc_weight("p1", "t1") == 0

    def test_source_and_sink_transitions(self):
        net = small_net()
        assert net.source_transitions() == ["t1"]
        assert net.sink_transitions() == ["t2"]

    def test_choice_and_merge_places(self):
        net = small_net()
        net.add_transition("t3")
        net.add_arc("p1", "t3")
        net.add_transition("t4")
        net.add_arc("t4", "p1")
        assert net.choice_places() == ["p1"]
        assert net.merge_places() == ["p1"]

    def test_contains_and_len(self):
        net = small_net()
        assert "p1" in net
        assert "t1" in net
        assert "nope" not in net
        assert len(net) == 3

    def test_summary_mentions_counts(self):
        text = small_net().summary()
        assert "1 places" in text
        assert "2 transitions" in text


class TestSemantics:
    def test_initial_marking(self):
        net = small_net()
        assert net.initial_marking == Marking({"p1": 1})

    def test_is_enabled_and_fire(self):
        net = small_net()
        marking = net.initial_marking
        assert net.is_enabled("t1", marking)
        assert not net.is_enabled("t2", marking)  # needs 2 tokens
        after = net.fire("t1", marking)
        assert after["p1"] == 2
        assert net.is_enabled("t2", after)
        final = net.fire("t2", after)
        assert final["p1"] == 0

    def test_fire_not_enabled_raises(self):
        net = small_net()
        with pytest.raises(NotEnabledError):
            net.fire("t2", net.initial_marking)

    def test_enabled_transitions_order(self):
        net = small_net()
        marking = Marking({"p1": 2})
        assert net.enabled_transitions(marking) == ["t1", "t2"]


class TestMutation:
    def test_remove_transition_drops_arcs(self):
        net = small_net()
        net.remove_transition("t2")
        assert "t2" not in net
        assert net.postset("p1") == {}

    def test_remove_place_drops_arcs_and_tokens(self):
        net = small_net()
        net.remove_place("p1")
        assert "p1" not in net
        assert net.postset("t1") == {}
        assert net.initial_marking.total() == 0

    def test_remove_unknown_raises(self):
        net = small_net()
        with pytest.raises(UnknownNodeError):
            net.remove_place("zzz")
        with pytest.raises(UnknownNodeError):
            net.remove_transition("zzz")

    def test_set_initial_tokens(self):
        net = small_net()
        net.set_initial_tokens("p1", 5)
        assert net.initial_marking["p1"] == 5
        net.set_initial_tokens("p1", 0)
        assert net.initial_marking["p1"] == 0
        with pytest.raises(InvalidMarkingError):
            net.set_initial_tokens("p1", -1)

    def test_copy_is_independent(self):
        net = small_net()
        clone = net.copy()
        clone.add_place("extra")
        clone.set_initial_tokens("p1", 9)
        assert "extra" not in net
        assert net.initial_marking["p1"] == 1

    def test_subnet_preserves_structure(self, fig5):
        sub = fig5.subnet(places=["p1", "p2"], transitions=["t1", "t2", "t4"])
        assert set(sub.place_names) == {"p1", "p2"}
        assert set(sub.transition_names) == {"t1", "t2", "t4"}
        assert sub.arc_weight("t2", "p2") == 2
        # arcs to removed nodes are dropped
        assert sub.postset("p2") == {"t4": 1}

    def test_subnet_keeps_initial_tokens(self):
        net = small_net()
        sub = net.subnet(places=["p1"], transitions=["t1"])
        assert sub.initial_marking["p1"] == 1
