"""Differential suite for the compiled runtime substrate.

Pins the engine-equality contract of PR 4: the reactive simulator, the
RTOS/IR interpreter, the SDF PASS simulation and the fleet simulator all
take ``engine="compiled"`` / ``engine="legacy"`` and must produce
*identical* results — same :class:`ExecutionStats` field for field (total
cycles, breakdowns, per-task activations, per-transition firings), same
firing sequences, same per-instance cycle vectors — on the paper gallery,
the ATM case study and seeded corpus nets.  Also pins fleet determinism
under fixed seeds, pool-vs-sequential equality and the firing-budget
policies.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np
import pytest

from repro.codegen import synthesize
from repro.gallery import gallery_nets
from repro.petrinet import NetBuilder
from repro.petrinet.corpus import generate_corpus
from repro.qss import compute_valid_schedule
from repro.runtime import (
    RTOS,
    CostModel,
    Event,
    FleetSimulator,
    ModuleAssignment,
    ReactiveNetSimulator,
    synthetic_streams,
)
from repro.apps.atm import (
    MODULE_PARTITION,
    build_atm_server_net,
    make_fleet_testbench,
    make_testbench,
)
from repro.sdf import DeadlockError, SDFGraph, static_schedule

#: Per-event firing budget used when driving arbitrary generated nets:
#: corpus families include nets that never quiesce (token rings), so the
#: differential runs use the "stop" policy — which itself must behave
#: identically across engines.
BUDGET = 64


def stats_dict(stats) -> dict:
    return asdict(stats)


def run_both_reactive(net, assignment, stream, **kwargs):
    legacy = ReactiveNetSimulator(net, assignment, engine="legacy", **kwargs)
    compiled = ReactiveNetSimulator(net, assignment, engine="compiled", **kwargs)
    return legacy.run(stream), compiled.run(stream)


class TestReactiveEngines:
    @pytest.mark.parametrize(
        "figure,net", gallery_nets(), ids=[f for f, _ in gallery_nets()]
    )
    def test_gallery_stats_identical_single_task(self, figure, net):
        streams = synthetic_streams(net, 2, 12, seed=17)
        assignment = ModuleAssignment.single_task(net)
        for stream in streams:
            a, b = run_both_reactive(
                net,
                assignment,
                stream,
                max_firings_per_event=BUDGET,
                on_budget="stop",
            )
            assert stats_dict(a) == stats_dict(b)

    @pytest.mark.parametrize(
        "figure,net", gallery_nets(), ids=[f for f, _ in gallery_nets()]
    )
    def test_gallery_stats_identical_micro_tasks(self, figure, net):
        """One task per transition exercises every queue-crossing branch."""
        stream = synthetic_streams(net, 1, 10, seed=3)[0]
        assignment = ModuleAssignment.one_task_per_transition(net)
        a, b = run_both_reactive(
            net, assignment, stream, max_firings_per_event=BUDGET, on_budget="stop"
        )
        assert stats_dict(a) == stats_dict(b)

    def test_corpus_nets_stats_identical(self):
        for spec in generate_corpus(20, seed=11):
            net = spec.build()
            if not net.source_transitions():
                continue
            stream = synthetic_streams(net, 1, 15, seed=spec.seed)[0]
            a, b = run_both_reactive(
                net,
                ModuleAssignment.single_task(net),
                stream,
                max_firings_per_event=BUDGET,
                on_budget="stop",
            )
            assert stats_dict(a) == stats_dict(b), spec

    def test_atm_stats_identical_with_module_partition(self):
        net = build_atm_server_net()
        events = make_testbench(cells=10, seed=7)
        assignment = ModuleAssignment.from_groups(MODULE_PARTITION)
        a, b = run_both_reactive(net, assignment, events)
        assert stats_dict(a) == stats_dict(b)
        assert a.queue_cycles > 0  # partition really crosses tasks

    def test_marking_and_reset_identical(self, fig5):
        assignment = ModuleAssignment.single_task(fig5)
        legacy = ReactiveNetSimulator(fig5, assignment, engine="legacy")
        compiled = ReactiveNetSimulator(fig5, assignment, engine="compiled")
        event = Event(time=0, source="t1", choices={"p1": "t2"})
        legacy.run([event])
        compiled.run([event])
        assert compiled.marking == legacy.marking
        compiled.reset()
        legacy.reset()
        assert compiled.marking == legacy.marking == fig5.initial_marking

    def test_compiled_accepts_precompiled_net(self, fig3a):
        compiled_view = fig3a.compile()
        simulator = ReactiveNetSimulator(
            compiled_view, ModuleAssignment.single_task(fig3a)
        )
        stats = simulator.run([Event(time=0, source="t1", choices={"p1": "t2"})])
        assert stats.firings == {"t1": 1, "t2": 1, "t4": 1}

    @pytest.mark.parametrize("engine", ["legacy", "compiled"])
    def test_budget_error_policy_raises(self, engine):
        net = _spinning_net()
        simulator = ReactiveNetSimulator(
            net,
            ModuleAssignment.single_task(net),
            max_firings_per_event=10,
            engine=engine,
        )
        with pytest.raises(RuntimeError, match="did not quiesce"):
            simulator.run([Event(time=0, source="t_src")])

    def test_budget_stop_policy_identical(self):
        net = _spinning_net()
        a, b = run_both_reactive(
            net,
            ModuleAssignment.single_task(net),
            [Event(time=0, source="t_src"), Event(time=1, source="t_src")],
            max_firings_per_event=10,
            on_budget="stop",
        )
        assert stats_dict(a) == stats_dict(b)
        assert a.budget_stops == 2

    def test_unknown_engine_rejected(self, fig3a):
        with pytest.raises(ValueError, match="unknown engine"):
            ReactiveNetSimulator(
                fig3a, ModuleAssignment.single_task(fig3a), engine="quantum"
            )
        with pytest.raises(ValueError, match="unknown budget policy"):
            ReactiveNetSimulator(
                fig3a, ModuleAssignment.single_task(fig3a), on_budget="never"
            )


def _spinning_net():
    """A source feeding a self-sustaining loop: never quiesces."""
    return (
        NetBuilder("spinner")
        .source("t_src")
        .arc("t_src", "p_fuel")
        .arc("p_fuel", "t_spin")
        .arc("t_spin", "p_fuel")
        .build()
    )


class TestRtosEngines:
    @pytest.mark.parametrize("figure", ["fig3a", "fig5"])
    def test_gallery_programs_identical(self, figure, request):
        net = request.getfixturevalue(figure)
        program = synthesize(compute_valid_schedule(net))
        events = [
            Event(time=0.0, source="t1", choices={"p1": "t2"}),
            Event(time=1.0, source="t1", choices={"p1": "t3"}),
        ]
        if figure == "fig5":
            events.append(Event(time=2.0, source="t8"))
        legacy = RTOS(program, engine="legacy").run(events)
        compiled = RTOS(program, engine="compiled").run(events)
        assert stats_dict(legacy) == stats_dict(compiled)

    def test_atm_program_identical(self, atm_report):
        from repro.qss import partition_tasks  # noqa: F401 - schedule sanity

        program = synthesize(atm_report.schedule)
        events = make_testbench(cells=10, seed=5)
        model = CostModel(activation_cycles=333)
        legacy = RTOS(program, model, engine="legacy").run(events)
        compiled = RTOS(program, model, engine="compiled").run(events)
        assert stats_dict(legacy) == stats_dict(compiled)
        assert legacy.events_processed == len(events)

    def test_counters_and_reset_identical(self, fig3a):
        program = synthesize(compute_valid_schedule(fig3a))
        legacy = RTOS(program, engine="legacy")
        compiled = RTOS(program, engine="compiled")
        event = Event(time=0, source="t1", choices={"p1": "t2"})
        legacy.run([event])
        compiled.run([event])
        for name in legacy.executor.tasks:
            assert (
                legacy.executor.tasks[name].counters
                == compiled.executor.tasks[name].counters
            )
        legacy.reset()
        compiled.reset()
        for name in legacy.executor.tasks:
            assert (
                legacy.executor.tasks[name].counters
                == compiled.executor.tasks[name].counters
            )


class TestFleetEngines:
    def test_fleet_matches_per_instance_reactive(self):
        net = build_atm_server_net()
        assignment = ModuleAssignment.from_groups(MODULE_PARTITION)
        streams = make_fleet_testbench(6, cells=4, seed=99)
        fleet = FleetSimulator(net, assignment).run(streams)
        simulator = ReactiveNetSimulator(net, assignment, engine="legacy")
        for i, stream in enumerate(streams):
            simulator.reset()
            stats = simulator.run(stream)
            assert fleet.instance_cycles[i] == stats.total_cycles
            assert fleet.instance_events[i] == stats.events_processed

    def test_fleet_engines_identical_on_atm(self):
        net = build_atm_server_net()
        assignment = ModuleAssignment.from_groups(MODULE_PARTITION)
        streams = make_fleet_testbench(10, cells=4, seed=42)
        legacy = FleetSimulator(net, assignment, engine="legacy").run(streams)
        compiled = FleetSimulator(net, assignment, engine="compiled").run(streams)
        assert stats_dict(legacy.stats) == stats_dict(compiled.stats)
        assert np.array_equal(legacy.instance_cycles, compiled.instance_cycles)
        assert np.array_equal(legacy.instance_events, compiled.instance_events)

    def test_fleet_engines_identical_on_corpus(self):
        for spec in generate_corpus(12, seed=23):
            net = spec.build()
            if not net.source_transitions():
                continue
            streams = synthetic_streams(net, 4, 10, seed=spec.seed)
            kwargs = dict(max_firings_per_event=BUDGET, on_budget="stop")
            assignment = ModuleAssignment.single_task(net)
            legacy = FleetSimulator(
                net, assignment, engine="legacy", **kwargs
            ).run(streams)
            compiled = FleetSimulator(
                net, assignment, engine="compiled", **kwargs
            ).run(streams)
            assert stats_dict(legacy.stats) == stats_dict(compiled.stats), spec
            assert np.array_equal(
                legacy.instance_cycles, compiled.instance_cycles
            ), spec

    def test_fleet_deterministic_under_fixed_seed(self):
        net = build_atm_server_net()
        assignment = ModuleAssignment.from_groups(MODULE_PARTITION)
        first = FleetSimulator(net, assignment).run(
            make_fleet_testbench(8, cells=3, seed=5)
        )
        second = FleetSimulator(net, assignment).run(
            make_fleet_testbench(8, cells=3, seed=5)
        )
        assert stats_dict(first.stats) == stats_dict(second.stats)
        assert np.array_equal(first.instance_cycles, second.instance_cycles)
        different = FleetSimulator(net, assignment).run(
            make_fleet_testbench(8, cells=3, seed=6)
        )
        assert not np.array_equal(first.instance_cycles, different.instance_cycles)

    def test_fleet_pool_equals_sequential(self):
        net = build_atm_server_net()
        assignment = ModuleAssignment.from_groups(MODULE_PARTITION)
        streams = make_fleet_testbench(9, cells=3, seed=12)
        fleet = FleetSimulator(net, assignment)
        sequential = fleet.run(streams)
        pooled = fleet.run(streams, workers=3)
        assert stats_dict(sequential.stats) == stats_dict(pooled.stats)
        assert np.array_equal(sequential.instance_cycles, pooled.instance_cycles)
        assert np.array_equal(sequential.instance_events, pooled.instance_events)

    def test_fleet_budget_policies(self):
        net = _spinning_net()
        streams = [[Event(time=0, source="t_src")] for _ in range(3)]
        assignment = ModuleAssignment.single_task(net)
        with pytest.raises(RuntimeError, match="did not quiesce"):
            FleetSimulator(
                net, assignment, max_firings_per_event=8
            ).run(streams)
        kwargs = dict(max_firings_per_event=8, on_budget="stop")
        legacy = FleetSimulator(net, assignment, engine="legacy", **kwargs).run(
            streams
        )
        compiled = FleetSimulator(
            net, assignment, engine="compiled", **kwargs
        ).run(streams)
        assert stats_dict(legacy.stats) == stats_dict(compiled.stats)
        assert compiled.stats.budget_stops == 3

    def test_fleet_result_summaries(self):
        net = build_atm_server_net()
        result = FleetSimulator(
            net, ModuleAssignment.single_task(net)
        ).run(make_fleet_testbench(4, cells=2, seed=1))
        percentiles = result.percentiles()
        assert set(percentiles) == {"p50", "p90", "p95", "p99"}
        assert percentiles["p50"] <= percentiles["p99"]
        text = result.describe()
        assert "fleet of 4 instance(s)" in text
        assert "per-instance cycles" in text
        assert result.throughput_eps > 0

    def test_empty_fleet(self):
        net = build_atm_server_net()
        result = FleetSimulator(net, ModuleAssignment.single_task(net)).run([])
        assert result.instances == 0
        assert result.stats.events_processed == 0
        assert result.percentile(95) == 0.0


class TestSdfEngines:
    def _chain(self):
        graph = SDFGraph("chain")
        graph.add_actor("a", cost=2)
        graph.add_actor("b", cost=1)
        graph.add_actor("c", cost=3)
        graph.add_edge("a", "b", production=2, consumption=3)
        graph.add_edge("b", "c", production=1, consumption=2, initial_tokens=1)
        return graph

    def test_schedule_identical(self):
        legacy = static_schedule(self._chain(), engine="legacy")
        compiled = static_schedule(self._chain(), engine="compiled")
        assert compiled.sequence == legacy.sequence
        assert compiled.buffer_bounds == legacy.buffer_bounds
        assert compiled.repetition == legacy.repetition
        assert compiled.cost == legacy.cost

    def test_deadlock_identical(self):
        graph = SDFGraph("loop")
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")  # no initial tokens: deadlock
        for engine in ("legacy", "compiled"):
            with pytest.raises(DeadlockError):
                static_schedule(graph, engine=engine)

    def test_converted_gallery_net_identical(self, fig2):
        from repro.sdf import petri_to_sdf

        graph = petri_to_sdf(fig2)
        legacy = static_schedule(graph, engine="legacy")
        compiled = static_schedule(graph, engine="compiled")
        assert compiled.sequence == legacy.sequence
        assert compiled.buffer_bounds == legacy.buffer_bounds
