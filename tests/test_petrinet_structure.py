"""Unit tests for structural classification (repro.petrinet.structure)."""

from __future__ import annotations

import pytest

from repro.gallery import (
    figure1a_free_choice,
    figure1b_not_free_choice,
    figure2_sdf_chain,
    figure3a_schedulable,
    figure5_two_inputs,
)
from repro.petrinet import NetBuilder
from repro.petrinet.structure import (
    choice_sets,
    classify,
    clusters,
    conflicting_transitions,
    connected_components,
    equal_conflict_sets,
    in_equal_conflict,
    is_conflict_free,
    is_connected,
    is_extended_free_choice,
    is_free_choice,
    is_marked_graph,
    is_ordinary,
    is_strongly_connected,
    preset_vector,
)


class TestClassPredicates:
    def test_figure1(self):
        assert is_free_choice(figure1a_free_choice())
        assert not is_free_choice(figure1b_not_free_choice())

    def test_marked_graph(self):
        assert is_marked_graph(figure2_sdf_chain())
        assert not is_marked_graph(figure3a_schedulable())

    def test_conflict_free(self):
        assert is_conflict_free(figure2_sdf_chain())
        assert not is_conflict_free(figure3a_schedulable())

    def test_free_choice_includes_conflict_free(self):
        assert is_free_choice(figure2_sdf_chain())
        assert is_free_choice(figure3a_schedulable())

    def test_extended_free_choice(self):
        # two places sharing both successors: extended free choice but not FC
        net = (
            NetBuilder("efc")
            .place("p1", tokens=1)
            .place("p2", tokens=1)
            .arc("p1", "t1")
            .arc("p1", "t2")
            .arc("p2", "t1")
            .arc("p2", "t2")
            .build()
        )
        assert not is_free_choice(net)
        assert is_extended_free_choice(net)

    def test_ordinary(self):
        assert is_ordinary(figure3a_schedulable())
        assert not is_ordinary(figure2_sdf_chain())

    def test_classify_most_specific(self):
        assert classify(figure2_sdf_chain()) == "marked-graph"
        assert classify(figure3a_schedulable()) == "free-choice"
        assert classify(figure1b_not_free_choice()) == "general"

    def test_classify_conflict_free(self):
        net = (
            NetBuilder("cf")
            .transition("t1")
            .transition("t2")
            .transition("t3")
            .place("p1")
            .arc("t1", "p1")
            .arc("t2", "p1")
            .arc("p1", "t3")
            .build()
        )
        assert classify(net) == "conflict-free"


class TestEqualConflict:
    def test_successors_of_same_choice_are_in_equal_conflict(self, fig3a):
        assert in_equal_conflict(fig3a, "t2", "t3")
        assert not in_equal_conflict(fig3a, "t2", "t4")

    def test_source_transitions_not_in_equal_conflict(self, fig5):
        assert not in_equal_conflict(fig5, "t1", "t8")

    def test_preset_vector(self, fig4):
        assert preset_vector(fig4, "t4") == (("p2", 2),)
        assert preset_vector(fig4, "t1") == ()

    def test_equal_conflict_sets_partition(self, fig5):
        sets = equal_conflict_sets(fig5)
        union = set()
        for group in sets:
            assert not (union & group)
            union |= group
        assert union == set(fig5.transition_names)
        assert frozenset({"t2", "t3"}) in sets

    def test_conflicting_transitions(self, fig3a):
        assert conflicting_transitions(fig3a, "t2") == ["t3"]
        assert conflicting_transitions(fig3a, "t4") == []

    def test_choice_sets(self, fig3a):
        assert choice_sets(fig3a) == {"p1": ["t2", "t3"]}


class TestClustersAndConnectivity:
    def test_clusters_partition_nodes(self, fig5):
        parts = clusters(fig5)
        union = set()
        for part in parts:
            assert not (union & part)
            union |= part
        assert union == set(fig5.place_names) | set(fig5.transition_names)

    def test_cluster_groups_choice_with_successors(self, fig3a):
        parts = clusters(fig3a)
        containing_p1 = next(p for p in parts if "p1" in p)
        assert {"t2", "t3"} <= containing_p1

    def test_connectivity(self, fig5):
        assert is_connected(fig5)
        assert not is_strongly_connected(fig5)

    def test_empty_net_is_connected(self):
        assert is_connected(NetBuilder("empty").build())
        assert is_strongly_connected(NetBuilder("empty").build())

    def test_strongly_connected_ring(self):
        net = (
            NetBuilder("ring")
            .transition("a")
            .transition("b")
            .place("p_ab", tokens=1)
            .place("p_ba")
            .arc("a", "p_ab")
            .arc("p_ab", "b")
            .arc("b", "p_ba")
            .arc("p_ba", "a")
            .build()
        )
        assert is_strongly_connected(net)

    def test_connected_components(self):
        net = (
            NetBuilder("two_parts")
            .source("a")
            .arc("a", "p1")
            .arc("p1", "b")
            .source("c")
            .arc("c", "p2")
            .arc("p2", "d")
            .build()
        )
        components = connected_components(net)
        assert len(components) == 2
        sizes = sorted(len(p) + len(t) for p, t in components)
        assert sizes == [3, 3]

    def test_disconnected_net_not_connected(self):
        net = NetBuilder("d").place("p1").transition("t1").build()
        assert not is_connected(net)
