"""Differential suite for the frontier-batched state-space engine.

Pins the frontier engine (``engine="frontier"``) against the compiled
and legacy engines on the paper gallery plus seeded nets from every
corpus family:

* reachability graphs are **bit-identical** (same marking list, same
  edge list, same ``complete`` flag — the frontier BFS reproduces the
  compiled node numbering exactly, including the ``max_markings``
  cutoff point);
* coverability/boundedness verdicts, place bounds and node counts are
  identical (bounded-prefix fast path on bounded nets, clean deferral
  to Karp–Miller on unbounded or oversized ones);
* deadlock, liveness and reachability queries agree;
* QSS schedulability reports agree on verdicts, counts and cycle
  lengths, and every frontier cycle is a genuine finite complete cycle
  (the interleaving may differ from the DFS's — both are valid);
* the exact fallback explorer (the collision path) produces the same
  exploration as the hashed fast path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gallery import paper_figures
from repro.petrinet import (
    CompiledNet,
    Marking,
    PetriNet,
    ReachabilityGraph,
    build_reachability_graph,
    compile_net,
    coverability_analysis,
    find_deadlocks,
    find_firing_sequence,
    is_finite_complete_cycle,
    is_live,
    is_reachable,
    place_bounds,
)
from repro.petrinet.corpus import CORPUS_FAMILIES
from repro.petrinet.frontier import (
    _explore_exact,
    _HashDisagreement,
    explore_frontier,
    frontier_firing_order,
)
from repro.petrinet.generators import pipeline_net, producer_consumer_ring
from repro.petrinet.structure import is_free_choice
from repro.qss import analyse

SEEDS_PER_FAMILY = 10
GRAPH_CAP = 300
COVERABILITY_CAP = 500

GALLERY = sorted(paper_figures())
FAMILY_CASES = [
    (family, seed)
    for family in sorted(CORPUS_FAMILIES)
    for seed in range(SEEDS_PER_FAMILY)
]


def _family_net(family: str, seed: int) -> PetriNet:
    return CORPUS_FAMILIES[family].spec(seed).build()


def _adversarial_arc_order_net() -> PetriNet:
    """A free-choice net whose arc insertion order fights id order.

    Transitions and places are declared in an order unrelated to the
    flow, and the choice place's output arcs are added in reverse
    declaration order — so any engine that confuses insertion order
    with id order, or postset order with consumer-id order, diverges.
    """
    net = PetriNet(name="adversarial_arc_order")
    net.add_place("z_out_b")
    net.add_place("m_choice", tokens=1)
    net.add_place("a_out_a")
    net.add_transition("t_b")
    net.add_transition("alpha_a")
    net.add_transition("z_src")
    net.add_transition("omega_sink_b")
    net.add_transition("b_sink_a")
    # choice place arcs added in reverse of transition declaration order
    net.add_arc("m_choice", "alpha_a")
    net.add_arc("m_choice", "t_b")
    net.add_arc("t_b", "z_out_b")
    net.add_arc("alpha_a", "a_out_a")
    net.add_arc("z_src", "m_choice")
    net.add_arc("z_out_b", "omega_sink_b")
    net.add_arc("a_out_a", "b_sink_a")
    return net


def assert_graphs_identical(frontier: ReachabilityGraph, other: ReachabilityGraph):
    assert frontier.markings == other.markings
    assert frontier.edges == other.edges
    assert frontier.complete == other.complete


def assert_coverability_identical(net, max_nodes=COVERABILITY_CAP):
    compiled_result = coverability_analysis(net, max_nodes=max_nodes, engine="compiled")
    frontier_result = coverability_analysis(net, max_nodes=max_nodes, engine="frontier")
    assert frontier_result.bounded == compiled_result.bounded
    assert frontier_result.unbounded_places == compiled_result.unbounded_places
    assert frontier_result.place_bounds == compiled_result.place_bounds
    assert frontier_result.node_count == compiled_result.node_count
    assert frontier_result.complete == compiled_result.complete
    return frontier_result


def assert_qss_reports_agree(net):
    compiled_report = analyse(net, engine="compiled")
    frontier_report = analyse(net, engine="frontier")
    assert frontier_report.schedulable == compiled_report.schedulable
    assert frontier_report.allocation_count == compiled_report.allocation_count
    assert frontier_report.reduction_count == compiled_report.reduction_count
    assert frontier_report.complete == compiled_report.complete
    for frontier_verdict, compiled_verdict in zip(
        frontier_report.verdicts, compiled_report.verdicts
    ):
        assert frontier_verdict.schedulable == compiled_verdict.schedulable
        assert frontier_verdict.consistent == compiled_verdict.consistent
        assert frontier_verdict.sources_covered == compiled_verdict.sources_covered
        assert frontier_verdict.deadlocked == compiled_verdict.deadlocked
        assert frontier_verdict.invariants == compiled_verdict.invariants
        assert (
            frontier_verdict.reduction.signature()
            == compiled_verdict.reduction.signature()
        )
        if compiled_verdict.cycle is None:
            assert frontier_verdict.cycle is None
        else:
            # the frontier BFS may order the same counts differently:
            # lengths match and the cycle must really execute and close
            assert frontier_verdict.cycle is not None
            assert len(frontier_verdict.cycle) == len(compiled_verdict.cycle)
            assert sorted(frontier_verdict.cycle) == sorted(compiled_verdict.cycle)
            assert is_finite_complete_cycle(
                frontier_verdict.reduction.net, frontier_verdict.cycle
            )
    return frontier_report


# ----------------------------------------------------------------------
# Gallery
# ----------------------------------------------------------------------
class TestGallery:
    @pytest.mark.parametrize("figure", GALLERY)
    def test_graphs_identical_across_all_engines(self, figure):
        net = paper_figures()[figure]()
        legacy = build_reachability_graph(net, max_markings=GRAPH_CAP, engine="legacy")
        compiled = build_reachability_graph(
            net, max_markings=GRAPH_CAP, engine="compiled"
        )
        frontier = build_reachability_graph(
            net, max_markings=GRAPH_CAP, engine="frontier"
        )
        assert_graphs_identical(frontier, compiled)
        assert_graphs_identical(frontier, legacy)

    @pytest.mark.parametrize("figure", GALLERY)
    def test_coverability_identical(self, figure):
        assert_coverability_identical(paper_figures()[figure]())

    @pytest.mark.parametrize("figure", GALLERY)
    def test_property_verdicts_agree(self, figure):
        net = paper_figures()[figure]()
        graph = build_reachability_graph(net, max_markings=GRAPH_CAP)
        if graph.complete:
            assert find_deadlocks(net, engine="frontier") == find_deadlocks(
                net, engine="compiled"
            )
            assert is_live(net, engine="frontier") == is_live(net, engine="compiled")

    @pytest.mark.parametrize("figure", GALLERY)
    def test_qss_reports_agree(self, figure):
        net = paper_figures()[figure]()
        if is_free_choice(net):
            assert_qss_reports_agree(net)


# ----------------------------------------------------------------------
# Corpus families, >= 10 seeds each
# ----------------------------------------------------------------------
class TestCorpusFamilies:
    @pytest.mark.parametrize("family,seed", FAMILY_CASES)
    def test_graphs_identical(self, family, seed):
        net = _family_net(family, seed)
        compiled = build_reachability_graph(
            net, max_markings=GRAPH_CAP, engine="compiled"
        )
        frontier = build_reachability_graph(
            net, max_markings=GRAPH_CAP, engine="frontier"
        )
        assert_graphs_identical(frontier, compiled)

    @pytest.mark.parametrize("family,seed", FAMILY_CASES)
    def test_coverability_identical(self, family, seed):
        assert_coverability_identical(_family_net(family, seed))

    @pytest.mark.parametrize("family,seed", FAMILY_CASES)
    def test_qss_reports_agree(self, family, seed):
        net = _family_net(family, seed)
        if is_free_choice(net):
            assert_qss_reports_agree(net)

    @pytest.mark.parametrize("family", sorted(CORPUS_FAMILIES))
    def test_reachability_queries_agree(self, family):
        net = _family_net(family, 0)
        compiled = build_reachability_graph(
            net, max_markings=GRAPH_CAP, engine="compiled"
        )
        # a marking from the middle of the graph is reachable; a marking
        # with an absurd token count is not
        middle = compiled.markings[len(compiled.markings) // 2]
        assert is_reachable(net, middle, max_markings=GRAPH_CAP, engine="frontier")
        absurd = Marking({net.place_names[0]: 999_999})
        assert is_reachable(
            net, absurd, max_markings=GRAPH_CAP, engine="frontier"
        ) == is_reachable(net, absurd, max_markings=GRAPH_CAP, engine="compiled")


# ----------------------------------------------------------------------
# Edge cases the batching must not get wrong
# ----------------------------------------------------------------------
class TestEdgeCases:
    def test_adversarial_arc_order(self):
        net = _adversarial_arc_order_net()
        legacy = build_reachability_graph(net, max_markings=GRAPH_CAP, engine="legacy")
        frontier = build_reachability_graph(
            net, max_markings=GRAPH_CAP, engine="frontier"
        )
        assert_graphs_identical(frontier, legacy)
        assert_coverability_identical(net)
        assert is_free_choice(net)
        assert_qss_reports_agree(net)

    @pytest.mark.parametrize("cap", [1, 2, 7, 17, 50, 100])
    def test_truncation_cutoff_identical(self, cap):
        """The max_markings cutoff lands on the same node and edge."""
        for net in [producer_consumer_ring(3, 2), pipeline_net(3, rates=[2, 1, 3])]:
            compiled = build_reachability_graph(net, max_markings=cap, engine="compiled")
            frontier = build_reachability_graph(net, max_markings=cap, engine="frontier")
            assert_graphs_identical(frontier, compiled)

    def test_unbounded_net_defers_to_karp_miller(self):
        """Unbounded nets: frontier exploration cannot finish, so the
        coverability analysis must defer to Karp-Miller and return the
        compiled engine's result exactly."""
        net = pipeline_net(3, rates=[1, 1, 1])  # source transition => unbounded
        result = assert_coverability_identical(net, max_nodes=400)
        assert not result.bounded
        assert result.unbounded_places
        # Karp-Miller finishes on unbounded nets (omega makes the tree
        # finite), so place_bounds reports the same None-for-unbounded
        # bounds under both engines
        assert place_bounds(net, engine="frontier") == place_bounds(
            net, engine="compiled"
        )
        assert None in place_bounds(net, engine="frontier").values()

    def test_place_bounds_agree_on_bounded_net(self):
        net = producer_consumer_ring(3, 2)
        assert place_bounds(net, engine="frontier") == place_bounds(
            net, engine="compiled"
        )

    def test_explicit_start_marking(self):
        net = producer_consumer_ring(2, 3)
        graph = build_reachability_graph(net, max_markings=GRAPH_CAP)
        start = graph.markings[-1]
        compiled = build_reachability_graph(
            net, marking=start, max_markings=GRAPH_CAP, engine="compiled"
        )
        frontier = build_reachability_graph(
            net, marking=start, max_markings=GRAPH_CAP, engine="frontier"
        )
        assert_graphs_identical(frontier, compiled)

    def test_exact_fallback_explorer_matches_hashed(self, monkeypatch):
        """The collision fallback path explores identically."""
        import repro.petrinet.frontier as frontier_module

        for build in [
            lambda: producer_consumer_ring(3, 2),
            lambda: pipeline_net(3, rates=[2, 1, 3]),
            lambda: _adversarial_arc_order_net(),
        ]:
            compiled = compile_net(build())
            hashed = explore_frontier(compiled, max_markings=200)
            exact = _explore_exact(
                compiled,
                start=None,
                max_markings=200,
                target=None,
                stop_on_target=False,
                collect_edges=True,
            )
            assert np.array_equal(hashed.matrix, exact.matrix)
            assert np.array_equal(hashed.edge_src, exact.edge_src)
            assert np.array_equal(hashed.edge_transition, exact.edge_transition)
            assert np.array_equal(hashed.edge_dst, exact.edge_dst)
            assert hashed.complete == exact.complete

        # and the public entry point really falls back on disagreement
        def always_disagrees(*args, **kwargs):
            raise _HashDisagreement

        monkeypatch.setattr(frontier_module, "_explore_hashed", always_disagrees)
        net = producer_consumer_ring(3, 2)
        graph = build_reachability_graph(net, max_markings=200, engine="frontier")
        reference = build_reachability_graph(net, max_markings=200, engine="compiled")
        assert_graphs_identical(graph, reference)

    def test_frontier_firing_order_feasibility_matches_dfs(self):
        """find_firing_sequence verdicts agree between frontier and
        compiled on realizable and unrealizable count vectors."""
        net = producer_consumer_ring(2, 2)
        compiled = compile_net(net)
        counts = {t: 1 for t in net.transition_names}
        frontier_seq = find_firing_sequence(compiled, counts, engine="frontier")
        compiled_seq = find_firing_sequence(compiled, counts, engine="compiled")
        assert (frontier_seq is None) == (compiled_seq is None)
        if frontier_seq is not None:
            assert sorted(frontier_seq) == sorted(compiled_seq)
        # an unrealizable vector: fire only a transition whose preset is
        # empty of tokens
        impossible = {net.transition_names[-1]: 50}
        assert find_firing_sequence(
            compiled, impossible, engine="frontier"
        ) == find_firing_sequence(compiled, impossible, engine="compiled") or (
            find_firing_sequence(compiled, impossible, engine="frontier") is None
        ) == (find_firing_sequence(compiled, impossible, engine="compiled") is None)

    def test_narrow_deep_state_space_stays_fast_and_identical(self):
        """A one-marking-per-level chain must bail out of per-level
        batching (the narrow-frontier detector) and still produce the
        compiled engine's exact graph."""
        net = PetriNet(name="producer_chain")
        net.add_place("p")
        net.add_transition("t")
        net.add_arc("t", "p")
        compiled_graph = build_reachability_graph(
            net, max_markings=2_000, engine="compiled"
        )
        frontier_graph = build_reachability_graph(
            net, max_markings=2_000, engine="frontier"
        )
        assert_graphs_identical(frontier_graph, compiled_graph)
        assert not frontier_graph.complete

    def test_stop_on_target_marks_exploration_incomplete(self):
        """An early-exit target search returns a prefix, and says so."""
        compiled = compile_net(producer_consumer_ring(5, 3))
        full = explore_frontier(compiled, max_markings=100_000)
        target = tuple(int(v) for v in full.matrix[50])
        early = explore_frontier(
            compiled, target=target, stop_on_target=True, max_markings=100_000
        )
        assert early.target_index == 50
        assert early.complete is False

    def test_reduction_cycle_search_rejects_unknown_engine(self):
        from repro.qss import QSSContext, iter_compiled_reductions

        net = _adversarial_arc_order_net()
        reduction = next(iter_compiled_reductions(net, context=QSSContext(net)))
        with pytest.raises(ValueError, match="unknown engine"):
            reduction.find_firing_sequence({}, reduction.initial, engine="warp")

    def test_frontier_firing_order_budget_reports_undecided(self):
        """A tiny state budget must report undecided, never a wrong verdict."""
        net = producer_consumer_ring(4, 2)
        compiled = compile_net(net)
        t_ids = np.arange(len(compiled.transitions))
        counts = [4] * len(compiled.transitions)
        order, decided = frontier_firing_order(
            compiled.pre[t_ids],
            compiled.incidence[t_ids],
            np.array(compiled.initial),
            counts,
            max_states=3,
        )
        assert not decided and order is None


# ----------------------------------------------------------------------
# Satellite regressions: adjacency cache, enabled_mask coercion
# ----------------------------------------------------------------------
class TestReachabilityGraphSuccessors:
    def test_successors_match_edge_scan(self):
        net = producer_consumer_ring(2, 2)
        graph = build_reachability_graph(net, engine="frontier")
        for index in range(graph.num_markings):
            expected = [(t, dst) for src, t, dst in graph.edges if src == index]
            assert graph.successors(index) == expected

    def test_adjacency_invalidated_on_growth(self):
        graph = ReachabilityGraph(markings=[Marking({"a": 1}), Marking({"b": 1})])
        graph.edges.append((0, "t", 1))
        assert graph.successors(0) == [("t", 1)]
        # appending an edge after the cache was built must be observed
        graph.edges.append((0, "u", 1))
        assert graph.successors(0) == [("t", 1), ("u", 1)]
        index = graph.add_marking(Marking({"c": 1}))
        graph.edges.append((index, "v", 0))
        assert graph.successors(index) == [("v", 0)]

    def test_returned_list_is_a_copy(self):
        graph = ReachabilityGraph(markings=[Marking({"a": 1})])
        graph.edges.append((0, "t", 0))
        graph.successors(0).append(("junk", 99))
        assert graph.successors(0) == [("t", 0)]


class TestEnabledMaskCoercion:
    def test_int64_2d_fast_path(self):
        compiled = compile_net(producer_consumer_ring(2, 2))
        batch = np.array([compiled.initial, compiled.initial], dtype=np.int64)
        mask = compiled.enabled_mask(batch)
        assert mask.shape == (2, len(compiled.transitions))
        assert np.array_equal(mask[0], compiled.enabled_mask(compiled.initial))

    def test_non_array_inputs_still_work(self):
        compiled = compile_net(producer_consumer_ring(2, 2))
        from_tuple = compiled.enabled_mask(compiled.initial)
        from_list = compiled.enabled_mask(list(compiled.initial))
        from_f64 = compiled.enabled_mask(
            np.array(compiled.initial, dtype=np.float64)
        )
        assert np.array_equal(from_tuple, from_list)
        assert np.array_equal(from_tuple, from_f64)

    def test_3d_input_rejected(self):
        compiled = compile_net(producer_consumer_ring(2, 2))
        bad = np.zeros((2, 2, len(compiled.places)), dtype=np.int64)
        with pytest.raises(ValueError, match="3-D array"):
            compiled.enabled_mask(bad)


class TestCompiledNetPassThrough:
    def test_frontier_accepts_precompiled_net(self):
        compiled = compile_net(producer_consumer_ring(2, 2))
        assert isinstance(compiled, CompiledNet)
        frontier = build_reachability_graph(compiled, engine="frontier")
        reference = build_reachability_graph(compiled, engine="compiled")
        assert_graphs_identical(frontier, reference)

    def test_legacy_engine_still_rejects_compiled_input(self):
        compiled = compile_net(producer_consumer_ring(2, 2))
        with pytest.raises(ValueError, match="legacy"):
            build_reachability_graph(compiled, engine="legacy")

    def test_unknown_engine_rejected(self):
        net = producer_consumer_ring(2, 2)
        with pytest.raises(ValueError, match="unknown engine"):
            build_reachability_graph(net, engine="warp")
