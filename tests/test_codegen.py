"""Unit tests for code generation, C emission and IR interpretation."""

from __future__ import annotations

import pytest

from repro.codegen import (
    CodegenError,
    CodegenOptions,
    EmitOptions,
    ExecutionError,
    ProgramExecutor,
    TaskExecutor,
    emit_c,
    generate_program,
    lines_of_code,
    make_resolver,
    synthesize,
)
from repro.codegen.ir import ChoiceIf, FireTransition, Guarded
from repro.gallery import figure3a_schedulable, figure4_weighted, figure5_two_inputs
from repro.petrinet import NetBuilder
from repro.qss import compute_valid_schedule, partition_tasks
from repro.runtime import CostModel


@pytest.fixture
def fig4_program(fig4):
    return synthesize(compute_valid_schedule(fig4))


@pytest.fixture
def fig5_program(fig5):
    return synthesize(compute_valid_schedule(fig5))


class TestGeneration:
    def test_one_task_per_source(self, fig4_program, fig5_program):
        assert fig4_program.task_count == 1
        assert fig5_program.task_count == 2

    def test_choice_becomes_if(self, fig4_program):
        task = fig4_program.tasks[0]
        body = task.fragments["t1"].body
        choice_statements = [s for s in body if isinstance(s, ChoiceIf)]
        assert len(choice_statements) == 1
        branches = dict(choice_statements[0].branches)
        assert set(branches) == {"t2", "t3"}

    def test_multirate_counters_created(self, fig4_program):
        task = fig4_program.tasks[0]
        assert set(task.counters) == {"p2", "p3"}
        assert all(value == 0 for value in task.counters.values())

    def test_guard_kinds_follow_rate_relation(self, fig4_program):
        """consumer slower -> if test; producer faster -> while loop, as in
        the paper's Task routine."""
        task = fig4_program.tasks[0]

        def find_guard(fragment):
            for statement in task.fragments[fragment].body:
                if isinstance(statement, Guarded):
                    return statement
            return None

        assert find_guard("t2").kind == "if"
        assert find_guard("t3").kind == "while"

    def test_statement_count_positive(self, fig5_program):
        assert fig5_program.statement_count() > 10

    def test_shared_fragment_called_from_both_tasks(self, fig5_program):
        for task in fig5_program.tasks:
            assert "t6" in task.fragments

    def test_entry_fragments_are_sources(self, fig5_program):
        for task in fig5_program.tasks:
            assert set(task.entry_fragments) == set(task.source_transitions)

    def test_weighted_choice_rejected(self):
        net = (
            NetBuilder("weighted_choice")
            .source("t_in")
            .arc("t_in", "p_c")
            .arc("p_c", "t_a", weight=2)
            .arc("p_c", "t_b")
            .arc("t_a", "p_a")
            .arc("p_a", "t_a2")
            .arc("t_b", "p_b")
            .arc("p_b", "t_b2")
            .build()
        )
        # the net is free-choice in the graph sense used by the builder,
        # but the structured generator refuses the weighted choice arc
        from repro.qss import analyse

        report = analyse(net, require_free_choice=False)
        if report.schedulable:
            with pytest.raises(CodegenError):
                synthesize(report.schedule)

    def test_program_task_lookup(self, fig5_program):
        assert fig5_program.task("task_t1").source_transitions == ("t1",)
        with pytest.raises(KeyError):
            fig5_program.task("nope")


class TestCEmission:
    def test_paper_listing_shape(self, fig4_program):
        """The Figure 4 code must have the structure of the Section 4 listing:
        while(1), if/else on p1, counter if==2 pattern, counter while>=1."""
        source = emit_c(fig4_program, EmitOptions(standalone_loop=True)).source
        assert "while (1) {" in source
        assert "choice_p1()" in source
        assert "count_p2++;" in source
        assert "if (count_p2 >= 2) {" in source
        assert "count_p3 += 2;" in source
        assert "while (count_p3 >= 1) {" in source
        assert "t4();" in source and "t5();" in source

    def test_externs_declared(self, fig4_program):
        source = emit_c(fig4_program).source
        for transition in ("t1", "t2", "t3", "t4", "t5"):
            assert f"extern void {transition}(void);" in source
        assert "extern int choice_p1(void);" in source

    def test_counters_declared_static(self, fig4_program):
        source = emit_c(fig4_program).source
        assert "static int count_p2 = 0;" in source

    def test_lines_of_code_counts_boilerplate(self, fig5_program):
        plain = emit_c(fig5_program).lines_of_code
        padded = emit_c(
            fig5_program, EmitOptions(boilerplate_lines_per_task=10)
        ).lines_of_code
        assert padded == plain + 20
        assert lines_of_code(fig5_program) == plain

    def test_inline_all_duplicates_shared_code(self, fig5_program):
        shared = emit_c(fig5_program).source
        duplicated = emit_c(fig5_program, EmitOptions(inline_all=True)).source
        # duplication inlines the shared fragments: at least as many t6 calls
        assert duplicated.count("t6();") >= shared.count("t6();")

    def test_per_task_line_counts(self, fig5_program):
        emission = emit_c(fig5_program)
        assert set(emission.lines_per_task) == {"task_t1", "task_t8"}
        assert all(count > 0 for count in emission.lines_per_task.values())

    def test_source_is_balanced_c(self, fig5_program):
        source = emit_c(fig5_program).source
        assert source.count("{") == source.count("}")


class TestInterpreter:
    def test_figure4_execution_matches_semantics(self, fig4_program):
        executor = ProgramExecutor(fig4_program)
        r1 = executor.activate_source("t1", make_resolver({"p1": "t2"}))
        assert r1.fired == ["t1", "t2"]
        r2 = executor.activate_source("t1", make_resolver({"p1": "t2"}))
        assert r2.fired == ["t1", "t2", "t4"]
        r3 = executor.activate_source("t1", make_resolver({"p1": "t3"}))
        assert r3.fired == ["t1", "t3", "t5", "t5"]

    def test_counters_persist_across_activations(self, fig4_program):
        """The paper's Figure 4 discussion: one token may remain in p2 and is
        consumed two activations later."""
        executor = ProgramExecutor(fig4_program)
        executor.activate_source("t1", make_resolver({"p1": "t2"}))
        task = executor.tasks["task_t1"]
        assert task.counters["p2"] == 1
        executor.activate_source("t1", make_resolver({"p1": "t3"}))
        assert task.counters["p2"] == 1
        result = executor.activate_source("t1", make_resolver({"p1": "t2"}))
        assert "t4" in result.fired
        assert task.counters["p2"] == 0

    def test_cycles_respect_cost_model(self, fig4_program):
        cheap = ProgramExecutor(fig4_program, CostModel(transition_cycles=1))
        costly = ProgramExecutor(fig4_program, CostModel(transition_cycles=100))
        resolver = make_resolver({"p1": "t2"})
        assert (
            costly.activate_source("t1", resolver).cycles
            > cheap.activate_source("t1", resolver).cycles
        )

    def test_choices_taken_recorded(self, fig4_program):
        executor = ProgramExecutor(fig4_program)
        result = executor.activate_source("t1", make_resolver({"p1": "t3"}))
        assert result.choices_taken == {"p1": "t3"}

    def test_missing_resolution_raises(self, fig4_program):
        executor = ProgramExecutor(fig4_program)
        with pytest.raises(KeyError):
            executor.activate_source("t1", make_resolver({}))

    def test_unknown_source_raises(self, fig4_program):
        executor = ProgramExecutor(fig4_program)
        with pytest.raises(KeyError):
            executor.activate_source("t99", make_resolver({}))

    def test_reset_restores_counters(self, fig4_program):
        executor = ProgramExecutor(fig4_program)
        executor.activate_source("t1", make_resolver({"p1": "t2"}))
        executor.reset()
        assert executor.tasks["task_t1"].counters["p2"] == 0

    def test_two_task_execution_shared_code(self, fig5_program):
        executor = ProgramExecutor(fig5_program)
        tick = executor.activate_source("t8", make_resolver({}))
        assert tick.fired == ["t8", "t9", "t6"]
        cell = executor.activate_source("t1", make_resolver({"p1": "t3"}))
        assert cell.fired == ["t1", "t3", "t5", "t7", "t7"]

    def test_interpreter_agrees_with_valid_schedule(self, fig5):
        """Driving every choice resolution through the generated code fires
        exactly the transitions of the corresponding finite complete cycle
        (up to interleaving of the two tasks)."""
        schedule = compute_valid_schedule(fig5)
        program = synthesize(schedule)
        for cycle in schedule.cycles:
            executor = ProgramExecutor(program)
            resolution = dict(cycle.allocation.choices)
            fired = []
            for source in fig5.source_transitions():
                result = executor.activate_source(source, make_resolver(resolution))
                fired.extend(result.fired)
            counts = {t: fired.count(t) for t in set(fired)}
            assert counts == cycle.counts
