"""Golden-freshness gate: the committed goldens match a fresh regen.

``tests/golden/regen.py`` regenerates every golden document into a temp
directory; this test diffs that output byte-for-byte against the files
committed under ``tests/golden/``.  A failure means either an
unintentional behaviour change in the stochastic workload layer or the
corpus pipeline (fix the regression), or an intentional one — in which
case refresh the goldens with ``python tests/golden/regen.py`` and
commit the diff.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = GOLDEN_DIR / "regen.py"
REGEN_COMMAND = "python tests/golden/regen.py"


def run_regen(*extra_args):
    return subprocess.run(
        [sys.executable, str(REGEN), *extra_args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestGoldenFreshness:
    def test_committed_goldens_match_fresh_regen(self, tmp_path):
        proc = run_regen("--out", str(tmp_path))
        assert proc.returncode == 0, proc.stderr
        fresh = sorted(p.name for p in tmp_path.glob("*.json"))
        committed = sorted(p.name for p in GOLDEN_DIR.glob("*.json"))
        assert fresh == committed, (
            f"golden file set drifted (fresh {fresh} vs committed "
            f"{committed}); refresh with: {REGEN_COMMAND}"
        )
        stale = [
            name
            for name in fresh
            if (tmp_path / name).read_bytes() != (GOLDEN_DIR / name).read_bytes()
        ]
        assert not stale, (
            f"committed golden(s) {', '.join(stale)} do not match a fresh "
            f"regeneration; if the behaviour change is intentional, refresh "
            f"them with: {REGEN_COMMAND}"
        )

    def test_check_mode_agrees(self):
        proc = run_regen("--check")
        assert proc.returncode == 0, (
            f"{proc.stdout}{proc.stderr}\nrefresh with: {REGEN_COMMAND}"
        )
        assert "up to date" in proc.stdout

    def test_check_mode_message_names_regen_command(self):
        # the actionable-failure contract: when goldens are stale the
        # operator is told exactly what to run (forced here by checking
        # against an empty "committed" view via a doctored module copy
        # being overkill — instead assert the command string is baked
        # into the check-mode failure text in the source)
        source = REGEN.read_text(encoding="utf-8")
        assert REGEN_COMMAND in source
