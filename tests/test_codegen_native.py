"""Native execution tier: differential, artifact-cache, fallback and
identifier-mangling tests.

The differential suite pins the tentpole guarantee: ``engine="native"``
(the synthesized C compiled to a shared library) produces step-for-step
identical firing sequences, choice consumption, counter trajectories
and cycle charges to the IR interpreter, on the paper gallery and on a
corpus-seeded net population, under identical scripted choice streams.

Everything that needs a C compiler is skipped (not failed) when the
machine has none — the fallback tests below prove that configuration
still executes correctly through the interpreter.
"""

from __future__ import annotations

import random
import re

import pytest

import repro.codegen.native as native_mod
from repro.codegen import (
    CodegenError,
    NativeProgram,
    ProgramExecutor,
    TaskExecutor,
    emit_c,
    EmitOptions,
    make_resolver,
    native_available,
    native_source,
    synthesize,
    task_choice_branches,
)
from repro.codegen.emit_c import _NameTable, sanitize_identifier
from repro.gallery import figure3a_schedulable, figure4_weighted, figure5_two_inputs
from repro.petrinet import NetBuilder
from repro.petrinet.corpus import generate_corpus
from repro.qss import analyse, compute_valid_schedule
from repro.runtime import RTOS, CostModel

needs_cc = pytest.mark.skipif(
    not native_available(), reason="no C compiler on this machine"
)

#: A non-default cost model, so cycle parity is not an accident of the
#: default constants (and the cost-model-independent artifact cache is
#: exercised: both models share one compiled library).
ODD_COSTS = CostModel(
    transition_cycles=7, test_cycles=3, counter_cycles=5, call_cycles=11
)


def scripted_maps(task, activations, seed, outside="elsewhere"):
    """Seeded random choice streams over the task's choice alphabet.

    One map in ~6 also resolves a choice to a transition *outside* the
    task's branches (the data selected an alternative handled elsewhere)
    — the case where the paper's catch-all ``else`` and the interpreter
    disagree, which the native tier's explicit choice tail fixes.
    """
    branches = task_choice_branches(task)
    rng = random.Random(seed)
    maps = []
    for _ in range(activations):
        mapping = {}
        for place, options in branches.items():
            pool = list(options) + [outside]
            mapping[place] = rng.choice(pool)
        maps.append(mapping)
    return maps


def assert_native_matches_interpreter(task, maps, cost_model=None):
    """Step-for-step differential run of one task under both engines."""
    interp = TaskExecutor(task, cost_model)
    native = TaskExecutor(task, cost_model, engine="native")
    assert native.engine == "native"
    assert native.active_engine == "native"
    assert native.native_backend is not None
    for step, mapping in enumerate(maps):
        expected = interp.activate(make_resolver(mapping))
        actual = native.activate(make_resolver(mapping))
        assert actual.task == expected.task
        assert actual.fired == expected.fired, f"step {step}: firing sequences differ"
        assert actual.choices_taken == expected.choices_taken, (
            f"step {step}: choice consumption differs"
        )
        assert actual.cycles == expected.cycles, f"step {step}: cycles differ"
        assert native.counters == interp.counters, (
            f"step {step}: counter trajectories differ"
        )
    # the scripted batch path must agree with the sequential path
    interp.reset()
    native.reset()
    batch = native.activate_many(maps)
    sequential = interp.activate_many(maps)
    assert len(batch) == len(sequential)
    for expected, actual in zip(sequential, batch):
        assert actual.fired == expected.fired
        assert actual.choices_taken == expected.choices_taken
        assert actual.cycles == expected.cycles
    assert native.counters == interp.counters


@pytest.fixture(scope="module")
def corpus_programs():
    """Schedulable, synthesizable corpus-seeded programs (>= 10)."""
    families = [
        "pipeline",
        "choice_fan",
        "independent_choices",
        "nested_choices",
        "multirate_choice",
        "random_marked_graph",
        "producer_consumer_ring",
        "fork_join_pipeline",
        "unbalanced_choice",
    ]
    programs = []
    for spec in generate_corpus(27, seed=11, families=families):
        net = spec.build()
        report = analyse(net)
        if not report.schedulable or report.schedule is None:
            continue
        try:
            program = synthesize(report.schedule)
        except CodegenError:
            continue
        if program.task_count == 0:
            continue
        programs.append((f"{spec.family}/{spec.seed}", program))
        if len(programs) >= 14:
            break
    assert len(programs) >= 10
    return programs


@needs_cc
class TestDifferentialGallery:
    @pytest.mark.parametrize(
        "build", [figure3a_schedulable, figure4_weighted, figure5_two_inputs]
    )
    def test_gallery_nets_step_for_step(self, build):
        program = synthesize(compute_valid_schedule(build()))
        for index, task in enumerate(program.tasks):
            maps = scripted_maps(task, 120, seed=500 + index)
            assert_native_matches_interpreter(task, maps)

    def test_figure4_with_odd_cost_model(self, fig4):
        program = synthesize(compute_valid_schedule(fig4))
        (task,) = program.tasks
        assert_native_matches_interpreter(
            task, scripted_maps(task, 80, seed=7), cost_model=ODD_COSTS
        )

    def test_atm_program_step_for_step(self, atm_report):
        program = synthesize(atm_report.schedule)
        for index, task in enumerate(program.tasks):
            maps = scripted_maps(task, 60, seed=900 + index)
            assert_native_matches_interpreter(task, maps)

    def test_atm_rtos_stats_identical(self, atm_report, atm_events_small):
        program = synthesize(atm_report.schedule)
        compiled = RTOS(program, engine="compiled").run(atm_events_small)
        native = RTOS(program, engine="native").run(atm_events_small)
        assert native.total_cycles == compiled.total_cycles
        assert native.body_cycles == compiled.body_cycles
        assert native.firings == compiled.firings
        assert native.activations == compiled.activations


@needs_cc
class TestDifferentialCorpus:
    def test_corpus_programs_step_for_step(self, corpus_programs):
        assert len(corpus_programs) >= 10
        for rank, (label, program) in enumerate(corpus_programs):
            for index, task in enumerate(program.tasks):
                maps = scripted_maps(task, 40, seed=1_000 + 37 * rank + index)
                try:
                    assert_native_matches_interpreter(task, maps)
                except AssertionError as err:  # pragma: no cover - diagnostics
                    raise AssertionError(f"{label}, task {task.name}: {err}") from err


@needs_cc
class TestNativeSemantics:
    def test_missing_resolution_raises_keyerror(self, fig4):
        program = synthesize(compute_valid_schedule(fig4))
        executor = ProgramExecutor(program, engine="native")
        with pytest.raises(KeyError):
            executor.activate_source("t1", make_resolver({}))

    def test_missing_resolution_in_batch_raises_keyerror(self, fig4):
        program = synthesize(compute_valid_schedule(fig4))
        (task,) = program.tasks
        executor = TaskExecutor(task, engine="native")
        with pytest.raises(KeyError):
            executor.activate_many([{"p1": "t2"}, {}])

    def test_counters_survive_and_can_be_set(self, fig4):
        program = synthesize(compute_valid_schedule(fig4))
        (task,) = program.tasks
        executor = TaskExecutor(task, engine="native")
        executor.activate(make_resolver({"p1": "t2"}))
        assert executor.counters["p2"] == 1
        executor.counters = {"p2": 5, "p3": 0}
        assert executor.counters == {"p2": 5, "p3": 0}
        executor.reset()
        assert executor.counters == {"p2": 0, "p3": 0}

    def test_program_executor_shares_one_artifact(self, fig5):
        program = synthesize(compute_valid_schedule(fig5))
        executor = ProgramExecutor(program, engine="native")
        assert executor.native_program is not None
        backends = [t.native_backend for t in executor.tasks.values()]
        assert all(b is not None for b in backends)
        assert len({id(b.native) for b in backends}) == 1

    def test_two_executors_have_independent_state(self, fig4):
        program = synthesize(compute_valid_schedule(fig4))
        (task,) = program.tasks
        first = TaskExecutor(task, engine="native")
        second = TaskExecutor(task, engine="native")
        first.activate(make_resolver({"p1": "t2"}))
        assert first.counters["p2"] == 1
        assert second.counters["p2"] == 0

    def test_batch_result_aggregates(self, fig4):
        program = synthesize(compute_valid_schedule(fig4))
        (task,) = program.tasks
        executor = TaskExecutor(task, engine="native")
        maps = scripted_maps(task, 50, seed=3)
        batch = executor.native_backend.run_scripted(maps)
        results = batch.results
        assert batch.total_cycles == sum(r.cycles for r in results)
        fired = {}
        for result in results:
            for transition in result.fired:
                fired[transition] = fired.get(transition, 0) + 1
        assert batch.fired_counts() == fired


class TestArtifactCache:
    """Cold build / warm hit / key change / corruption / dir override.

    These tests count compiler invocations through the single
    ``_run_compiler`` seam and isolate the cache in a temp directory via
    ``REPRO_QSS_CACHE_DIR``.
    """

    @pytest.fixture
    def compile_counter(self, monkeypatch):
        calls = []
        original = native_mod._run_compiler

        def counting(command):
            calls.append(list(command))
            return original(command)

        monkeypatch.setattr(native_mod, "_run_compiler", counting)
        return calls

    @pytest.fixture
    def cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QSS_CACHE_DIR", str(tmp_path))
        return tmp_path

    @pytest.fixture
    def fig4_program(self, fig4):
        return synthesize(compute_valid_schedule(fig4))

    @needs_cc
    def test_cold_build_then_warm_hit(self, fig4_program, cache_dir, compile_counter):
        NativeProgram(fig4_program)
        assert len(compile_counter) == 1
        assert list(cache_dir.glob("qss_*.so"))
        # second program over the unchanged net: zero compiler invocations
        NativeProgram(fig4_program)
        assert len(compile_counter) == 1

    @needs_cc
    def test_key_changes_with_source(self, fig4_program, fig5, cache_dir, compile_counter):
        NativeProgram(fig4_program)
        NativeProgram(synthesize(compute_valid_schedule(fig5)))
        assert len(compile_counter) == 2
        assert len(list(cache_dir.glob("qss_*.so"))) == 2

    @needs_cc
    def test_key_changes_with_options(
        self, fig4_program, cache_dir, compile_counter, monkeypatch
    ):
        NativeProgram(fig4_program)
        monkeypatch.setenv("REPRO_QSS_CFLAGS", "-O1")
        NativeProgram(fig4_program)
        assert len(compile_counter) == 2
        assert len(list(cache_dir.glob("qss_*.so"))) == 2

    @needs_cc
    def test_corrupt_artifact_triggers_rebuild(
        self, fig4_program, cache_dir, compile_counter
    ):
        NativeProgram(fig4_program)
        (artifact,) = cache_dir.glob("qss_*.so")
        artifact.write_bytes(b"this is not a shared library")
        program = NativeProgram(fig4_program)
        assert len(compile_counter) == 2
        # the rebuilt artifact actually executes
        backend = program.task_backend(program.program.tasks[0].name)
        result = backend.activate(make_resolver({"p1": "t2"}))
        assert result.fired == ["t1", "t2"]

    @needs_cc
    def test_cache_dir_override_respected(self, fig4_program, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QSS_CACHE_DIR", str(tmp_path / "deep" / "cache"))
        NativeProgram(fig4_program)
        assert list((tmp_path / "deep" / "cache").glob("qss_*.so"))

    def test_no_compiler_probe_fails(self, monkeypatch):
        monkeypatch.setenv("REPRO_QSS_CC", "/nonexistent-compiler")
        assert not native_mod.native_available()
        with pytest.raises(native_mod.NativeUnavailableError):
            native_mod.find_compiler()


class TestInterpreterFallback:
    """A machine with no C compiler must keep working through the
    interpreter, with a clear warning."""

    @pytest.fixture
    def no_compiler(self, monkeypatch):
        monkeypatch.setenv("REPRO_QSS_CC", "/nonexistent-compiler")

    def test_task_executor_falls_back_with_warning(self, fig4, no_compiler):
        program = synthesize(compute_valid_schedule(fig4))
        (task,) = program.tasks
        with pytest.warns(RuntimeWarning, match="falling back"):
            executor = TaskExecutor(task, engine="native")
        assert executor.engine == "native"
        assert executor.active_engine == "compiled"
        assert executor.native_backend is None
        reference = TaskExecutor(task)
        for mapping in ({"p1": "t2"}, {"p1": "t2"}, {"p1": "t3"}):
            expected = reference.activate(make_resolver(mapping))
            actual = executor.activate(make_resolver(mapping))
            assert actual.fired == expected.fired
            assert actual.cycles == expected.cycles

    def test_program_executor_falls_back_with_warning(self, fig5, no_compiler):
        program = synthesize(compute_valid_schedule(fig5))
        with pytest.warns(RuntimeWarning, match="native execution tier unavailable"):
            executor = ProgramExecutor(program, engine="native")
        assert executor.active_engine == "compiled"
        assert executor.native_program is None
        result = executor.activate_source("t8", make_resolver({}))
        assert result.fired == ["t8", "t9", "t6"]

    def test_rtos_falls_back_and_matches_compiled(
        self, atm_report, atm_events_small, no_compiler
    ):
        program = synthesize(atm_report.schedule)
        with pytest.warns(RuntimeWarning):
            stats = RTOS(program, engine="native").run(atm_events_small)
        reference = RTOS(program, engine="compiled").run(atm_events_small)
        assert stats.total_cycles == reference.total_cycles
        assert stats.firings == reference.firings


def weird_name_chain():
    """A schedulable pipeline whose names are hostile to C: dashes,
    spaces, leading digits, a C keyword, and a reserved prefix."""
    return (
        NetBuilder("weird names")
        .source("1st-read")
        .place("qss_cycles")
        .arc("1st-read", "p mid")
        .arc("p mid", "do-stuff")
        .arc("do-stuff", "p out-2")
        .arc("p out-2", "while")
        .arc("while", "qss_cycles")
        .arc("qss_cycles", "2nd emit")
        .build()
    )


def case_collision_choice():
    """A free-choice net whose branch transitions collide after the
    ``CHOICE_<NAME.upper()>`` macro mangling (``go`` vs ``GO``)."""
    return (
        NetBuilder("case-collision")
        .source("t in")
        .arc("t in", "p choice")
        .arc("p choice", "go")
        .arc("p choice", "GO")
        .arc("go", "p-a")
        .arc("p-a", "end-a")
        .arc("GO", "p-b")
        .arc("p-b", "end-b")
        .build()
    )


_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class TestIdentifierMangling:
    def test_sanitize_identifier(self):
        assert sanitize_identifier("t1") == "t1"
        assert sanitize_identifier("do-stuff") == "do_stuff"
        assert sanitize_identifier("p mid") == "p_mid"
        assert sanitize_identifier("2nd emit") == "n2nd_emit"
        assert sanitize_identifier("") == "_"

    def test_name_table_is_collision_proof_and_stable(self):
        table = _NameTable()
        first = table.assign(("fn", "t-x"), "t-x")
        second = table.assign(("fn", "t_x"), "t_x")
        assert first == "t_x"
        assert second == "t_x_2"
        assert table.assign(("fn", "t-x"), "t-x") == first  # stable
        assert table.assign(("fn", "while"), "while") != "while"  # C keyword
        assert not table.assign(("fn", "qss_cycles"), "qss_cycles").startswith("qss_")

    @pytest.mark.parametrize("build", [weird_name_chain, case_collision_choice])
    def test_emission_uses_only_valid_unique_identifiers(self, build):
        program = synthesize(compute_valid_schedule(build()))
        source = emit_c(program).source
        assert source.count("{") == source.count("}")
        statics = re.findall(r"static int (\S+) =", source)
        assert len(statics) == len(set(statics))
        for match in re.findall(r"#define (\S+)|extern \w+ (\w+)\(", source):
            for ident in match:
                if ident:
                    assert _IDENTIFIER.match(ident), ident

    def test_case_collision_macros_are_distinct(self):
        program = synthesize(compute_valid_schedule(case_collision_choice()))
        names = emit_c(program).names
        macros = list(names.choice_macros.values())
        assert len(macros) == len(set(macros))
        assert "CHOICE_GO" in macros and "CHOICE_GO_2" in macros

    def test_cross_task_counter_collision_resolved(self, atm_report):
        """Regression: both ATM tasks count p_wfq_ctx; the emission used
        to define ``count_p_wfq_ctx`` twice at file scope."""
        program = synthesize(atm_report.schedule)
        emission = emit_c(program)
        all_counters = [
            ident
            for per_task in emission.names.counters.values()
            for ident in per_task.values()
        ]
        assert len(all_counters) == len(set(all_counters))

    @needs_cc
    @pytest.mark.parametrize("build", [weird_name_chain, case_collision_choice])
    def test_weird_names_compile_and_run_natively(self, build):
        program = synthesize(compute_valid_schedule(build()))
        for index, task in enumerate(program.tasks):
            maps = scripted_maps(task, 40, seed=40 + index)
            assert_native_matches_interpreter(task, maps)

    @needs_cc
    def test_atm_translation_unit_compiles(self, atm_report, tmp_path):
        """Regression: shared-fragment helpers lacked forward
        declarations and duplicate counters broke the build."""
        program = synthesize(atm_report.schedule)
        unit = tmp_path / "atm.c"
        unit.write_text(native_source(program), encoding="utf-8")
        compiler, _ = native_mod.find_compiler()
        result = native_mod._run_compiler(
            [compiler, "-fsyntax-only", "-Wall", str(unit)]
        )
        assert result.returncode == 0, result.stderr
