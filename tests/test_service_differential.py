"""Differential pins for the service stack: every serving path is equal.

The refactor split `FleetSimulator` into the `FleetEngine` kernel plus
orchestration, and layered the always-on service on the same kernel.
These tests pin the acceptance criterion: for identical seeds and
streams, every path — the one-shot batch run (memoized or direct
kernel), a single-shard service, a multi-shard service, the
process-backed service, the socket ingest, and runs interrupted by
work-stealing migration — produces byte-identical `FleetResult`
contents (aggregate stats dict, per-instance cycle and event vectors).

The one-shot path itself is pinned against the *pre-refactor*
semantics by `tests/test_runtime_compiled_differential.py`, which
keeps requiring compiled == per-instance legacy; equality against the
batch path here therefore chains all the way back to the original
`ReactiveNetSimulator`.
"""

from __future__ import annotations

import asyncio
from dataclasses import asdict

import numpy as np
import pytest

from repro.apps.atm import MODULE_PARTITION, build_atm_server_net, make_fleet_testbench
from repro.petrinet.corpus import CORPUS_FAMILIES
from repro.runtime import FleetSimulator, ModuleAssignment, synthetic_streams
from repro.runtime.fleet import FleetEngine
from repro.service import (
    FleetSupervisor,
    IngestServer,
    InjectBatch,
    ServiceClient,
    events_to_injects,
)


def atm_case(instances=24, cells=6, seed=17):
    net = build_atm_server_net()
    assignment = ModuleAssignment.from_groups(MODULE_PARTITION)
    streams = make_fleet_testbench(instances, cells=cells, seed=seed)
    return net, assignment, streams


def corpus_case(family="choice_fan", instances=16, events=8, seed=5):
    net = CORPUS_FAMILIES[family].build(seed, CORPUS_FAMILIES[family].spec(seed).param_dict)
    assignment = ModuleAssignment.single_task(net)
    streams = synthetic_streams(net, instances, events, seed=seed)
    return net, assignment, streams


def assert_results_identical(expected, actual):
    assert asdict(expected.stats) == asdict(actual.stats)
    assert np.array_equal(expected.instance_cycles, actual.instance_cycles)
    assert np.array_equal(expected.instance_events, actual.instance_events)


def run_service(net, assignment, streams, shards=1, backend="async", steal=None):
    """Feed the streams through a supervisor, return the drained result."""

    async def go():
        supervisor = FleetSupervisor(
            net, assignment, shards=shards, backend=backend
        )
        await supervisor.start()
        injects = events_to_injects(streams)
        half = len(injects) // 2
        for lo in range(0, half, 97):
            await supervisor.inject(
                InjectBatch(events=tuple(injects[lo : min(lo + 97, half)]))
            )
        if steal is not None:
            moved = await supervisor.rebalance(**steal)
            assert moved > 0
        for lo in range(half, len(injects), 97):
            await supervisor.inject(
                InjectBatch(events=tuple(injects[lo : lo + 97]))
            )
        return await supervisor.stop(drain=True)

    return asyncio.run(go())


class TestServiceEqualsBatch:
    """The acceptance pin: service results == the one-shot batch path."""

    def test_single_shard_async_equals_one_shot(self):
        net, assignment, streams = atm_case()
        expected = FleetSimulator(net, assignment).run(streams)
        actual = run_service(net, assignment, streams, shards=1)
        assert_results_identical(expected, actual)

    def test_multi_shard_async_equals_one_shot(self):
        net, assignment, streams = atm_case()
        expected = FleetSimulator(net, assignment).run(streams)
        actual = run_service(net, assignment, streams, shards=3)
        assert_results_identical(expected, actual)

    def test_process_backend_equals_one_shot(self):
        net, assignment, streams = atm_case(instances=12, cells=4)
        expected = FleetSimulator(net, assignment).run(streams)
        actual = run_service(
            net, assignment, streams, shards=2, backend="process"
        )
        assert_results_identical(expected, actual)

    def test_corpus_family_service_equals_one_shot(self):
        net, assignment, streams = corpus_case()
        expected = FleetSimulator(net, assignment).run(streams)
        actual = run_service(net, assignment, streams, shards=2)
        assert_results_identical(expected, actual)

    def test_work_stealing_preserves_equality(self):
        net, assignment, streams = atm_case()
        expected = FleetSimulator(net, assignment).run(streams)
        actual = run_service(
            net,
            assignment,
            streams,
            shards=2,
            steal={"source": 0, "target": 1, "count": 4},
        )
        assert_results_identical(expected, actual)

    def test_socket_ingest_equals_one_shot(self):
        net, assignment, streams = atm_case(instances=10, cells=4)
        expected = FleetSimulator(net, assignment).run(streams)

        async def go():
            supervisor = FleetSupervisor(net, assignment, shards=2)
            await supervisor.start()
            server = IngestServer(supervisor, port=0)
            host, port = await server.start()
            client = await ServiceClient.connect(host, port)
            injects = events_to_injects(streams)
            await client.inject_batch(injects[: len(injects) // 2])
            for inject in injects[len(injects) // 2 :]:
                await client.inject(
                    inject.instance, inject.source, inject.time, inject.choices
                )
            snapshot = await client.snapshot()
            assert snapshot.events == expected.stats.events_processed
            await client.close()
            await server.stop()
            return await supervisor.stop(drain=True)

        assert_results_identical(expected, asyncio.run(go()))


class TestKernelPaths:
    """Memoized cascades, the direct loop, flush and disable all agree."""

    @pytest.mark.parametrize("case", [atm_case, corpus_case])
    def test_memo_equals_direct(self, case):
        net, assignment, streams = case()
        memoized = FleetSimulator(net, assignment).run(streams)
        direct_sim = FleetSimulator(net, assignment)
        direct_sim.kernel._memo_enabled = False
        direct = direct_sim.run(streams)
        assert_results_identical(memoized, direct)
        assert not direct_sim.kernel._memo_active

    def test_memo_flush_and_disable_preserve_results(self, monkeypatch):
        import repro.runtime.fleet as fleet_mod

        net, assignment, streams = atm_case()
        expected = FleetSimulator(net, assignment).run(streams)
        # a tiny limit forces a flush on nearly every round and then the
        # permanent fallback to the direct loop mid-run
        monkeypatch.setattr(fleet_mod, "MEMO_STATE_LIMIT", 2)
        constrained = FleetSimulator(net, assignment)
        actual = constrained.run(streams)
        assert_results_identical(expected, actual)
        assert not constrained.kernel._memo_active

    def test_warm_kernel_rerun_is_identical(self):
        net, assignment, streams = atm_case()
        simulator = FleetSimulator(net, assignment)
        first = simulator.run(streams)
        second = simulator.run(streams)  # reset() keeps the memo warm
        assert_results_identical(first, second)

    def test_budget_stop_accounting_matches(self):
        net, assignment, streams = atm_case(instances=8, cells=4)
        expected = FleetSimulator(
            net, assignment, max_firings_per_event=8, on_budget="stop"
        ).run(streams)
        supervisor_result = asyncio.run(self._budget_service(net, assignment, streams))
        assert_results_identical(expected, supervisor_result)
        assert expected.stats.budget_stops > 0

    @staticmethod
    async def _budget_service(net, assignment, streams):
        supervisor = FleetSupervisor(
            net,
            assignment,
            shards=2,
            max_firings_per_event=8,
            on_budget="stop",
        )
        await supervisor.start()
        for inject in events_to_injects(streams):
            await supervisor.inject(inject)
        return await supervisor.stop(drain=True)


class TestInstanceMigration:
    """export/import moves exactly the per-instance state, nothing else."""

    def test_export_import_round_trip(self):
        net, assignment, streams = atm_case(instances=4, cells=3)
        simulator = FleetSimulator(net, assignment)
        simulator.run(streams)
        kernel = simulator.kernel
        state = kernel.export_instance(2)
        other = FleetEngine(kernel.cnet, assignment)
        row = other.import_instance(state)
        assert other.instance_cycles()[row] == state[1]
        assert other.instance_events()[row] == state[2]
        marking, _, _, ticks = state
        assert other.export_instance(row)[0] == marking
        # pre-timing 3-tuple snapshots still import (ticks default to 0)
        legacy_row = other.import_instance(state[:3])
        assert other.export_instance(legacy_row)[3] == 0
        assert ticks == 0  # untimed run charges no delay

    def test_remove_instance_swaps_last_row(self):
        net, assignment, _ = atm_case(instances=1, cells=1)
        engine = FleetEngine(net, assignment, instances=3)
        engine._cycles[:3] = [10, 20, 30]
        moved_from = engine.remove_instance(0)
        assert moved_from == 2
        assert engine.instances == 2
        assert engine.instance_cycles().tolist() == [30, 20]
