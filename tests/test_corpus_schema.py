"""Adversarial suite for the ``repro-qss.corpus/3`` schema validator.

Every record field is mutated — wrong type, missing, unknown key, bad
schema tag, broken cross-field invariants — and every mutation must be
rejected with a :class:`CorpusSchemaError` whose message carries the
offending path and the expectation, because "records[3].bounded:
expected bool or null, got 'yes' (str)" is actionable and "invalid
document" is not.  The committed goldens double as the positive
fixtures: they must validate unchanged.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.petrinet.corpus import CORPUS_SCHEMA, RECORD_FIELDS
from repro.petrinet.corpus_schema import (
    DOCUMENT_FIELDS,
    CorpusSchemaError,
    canonicalize_corpus_document,
    validate_corpus_document,
    validate_corpus_file,
    validate_corpus_record,
)

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_CORPORA = (
    "corpus_properties.json",
    "corpus_qss.json",
    "corpus_runtime.json",
)

#: One type-violating value per record field.  ``True`` for int fields
#: and ``1`` for bool fields pin the strictness around bool being a
#: subclass of int; floats are rejected by int fields.
BAD_VALUES = {
    "family": 17,
    "seed": True,
    "params": "stages=3",
    "net_name": None,
    "places": 1.5,
    "transitions": "31",
    "arcs": None,
    "net_class": False,
    "free_choice": "yes",
    "bounded": "yes",
    "unbounded_places": "p1",
    "max_place_bound": 2.5,
    "coverability_nodes": None,
    "coverability_complete": 1,
    "reachable_markings": "many",
    "exploration_complete": 0,
    "deadlocks": False,
    "deadlock_free": 0,
    "live": "maybe",
    "schedulable": 1,
    "allocations": "64",
    "reductions": 3.5,
    "cycle_lengths": ["3", "4"],
    "fleet_instances": 16.0,
    "fleet_events": "320",
    "fleet_cycles_total": True,
    "fleet_cycles_p50": "fast",
    "fleet_cycles_p95": [95],
    "fleet_budget_stops": "none",
    "fleet_throughput_eps": "quick",
    "error": 404,
    "elapsed_ms": "slow",
}


def load_doc(name="corpus_properties.json"):
    return json.loads((GOLDEN_DIR / name).read_text(encoding="utf-8"))


class TestValidDocuments:
    @pytest.mark.parametrize("name", GOLDEN_CORPORA)
    def test_committed_goldens_validate(self, name):
        doc = load_doc(name)
        assert validate_corpus_document(doc) is doc

    def test_bad_values_cover_every_field(self):
        assert set(BAD_VALUES) == set(RECORD_FIELDS)


class TestRecordFieldMutations:
    @pytest.mark.parametrize("field", sorted(RECORD_FIELDS))
    def test_wrong_type_rejected_with_path(self, field):
        doc = load_doc()
        doc["records"][3][field] = copy.deepcopy(BAD_VALUES[field])
        with pytest.raises(CorpusSchemaError) as excinfo:
            validate_corpus_document(doc)
        message = str(excinfo.value)
        assert f"records[3].{field}" in message
        assert "expected" in message

    @pytest.mark.parametrize("field", sorted(RECORD_FIELDS))
    def test_missing_field_rejected_by_name(self, field):
        doc = load_doc()
        del doc["records"][0][field]
        with pytest.raises(CorpusSchemaError) as excinfo:
            validate_corpus_document(doc)
        message = str(excinfo.value)
        assert "records[0]" in message
        assert "missing" in message
        assert field in message

    def test_unknown_record_key_rejected(self):
        doc = load_doc()
        doc["records"][1]["verdict"] = "fine"
        with pytest.raises(CorpusSchemaError) as excinfo:
            validate_corpus_document(doc)
        assert "records[1]" in str(excinfo.value)
        assert "verdict" in str(excinfo.value)
        assert "unknown" in str(excinfo.value)

    def test_nested_list_item_path(self):
        record = load_doc()["records"][0]
        record["unbounded_places"] = ["p_ok", 3]
        with pytest.raises(CorpusSchemaError) as excinfo:
            validate_corpus_record(record, path="records[0]")
        assert "records[0].unbounded_places[1]" in str(excinfo.value)

    def test_params_value_type_rejected_with_key(self):
        record = load_doc()["records"][0]
        record["params"] = {"stages": 1.5}
        with pytest.raises(CorpusSchemaError) as excinfo:
            validate_corpus_record(record, path="records[0]")
        assert "records[0].params.stages" in str(excinfo.value)

    def test_negative_sizes_rejected(self):
        record = load_doc()["records"][0]
        record["places"] = -1
        with pytest.raises(CorpusSchemaError):
            validate_corpus_record(record)

    def test_error_message_is_actionable(self):
        doc = load_doc()
        doc["records"][3]["bounded"] = "yes"
        with pytest.raises(CorpusSchemaError) as excinfo:
            validate_corpus_document(doc)
        assert (
            "records[3].bounded: expected bool or null, got 'yes' (str)"
            in str(excinfo.value)
        )
        assert excinfo.value.path == "records[3].bounded"


class TestDocumentMutations:
    def test_bad_schema_tag_rejected(self):
        doc = load_doc()
        doc["schema"] = "repro-qss.corpus/2"
        with pytest.raises(CorpusSchemaError) as excinfo:
            validate_corpus_document(doc)
        assert CORPUS_SCHEMA in str(excinfo.value)
        assert "repro-qss.corpus/2" in str(excinfo.value)

    def test_missing_schema_tag_rejected(self):
        doc = load_doc()
        del doc["schema"]
        with pytest.raises(CorpusSchemaError):
            validate_corpus_document(doc)

    @pytest.mark.parametrize("field", [f for f in DOCUMENT_FIELDS if f != "schema"])
    def test_missing_top_level_field_rejected(self, field):
        doc = load_doc()
        del doc[field]
        with pytest.raises(CorpusSchemaError) as excinfo:
            validate_corpus_document(doc)
        assert field in str(excinfo.value)

    def test_unknown_top_level_key_rejected(self):
        doc = load_doc()
        doc["comment"] = "hand-edited"
        with pytest.raises(CorpusSchemaError) as excinfo:
            validate_corpus_document(doc)
        assert "comment" in str(excinfo.value)

    def test_n_must_match_record_count(self):
        doc = load_doc()
        doc["n"] += 1
        with pytest.raises(CorpusSchemaError) as excinfo:
            validate_corpus_document(doc)
        assert "len(records)" in str(excinfo.value)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n", -1),
            ("n", "8"),
            ("workers", 0),
            ("workers", True),
            ("engine", "turbo"),
            ("analyse", "vibes"),
            ("elapsed_seconds", -0.5),
            ("elapsed_seconds", "1.2"),
            ("records", {"0": {}}),
            ("summary", "aggregates"),
        ],
    )
    def test_top_level_type_violations(self, field, value):
        doc = load_doc()
        doc[field] = value
        with pytest.raises(CorpusSchemaError) as excinfo:
            validate_corpus_document(doc)
        assert str(excinfo.value).startswith(field) or "len(records)" in str(
            excinfo.value
        )

    def test_summary_total_must_match_n(self):
        doc = load_doc()
        doc["summary"]["total"] += 2
        with pytest.raises(CorpusSchemaError) as excinfo:
            validate_corpus_document(doc)
        assert "summary.total" in str(excinfo.value)

    def test_non_dict_document_rejected(self):
        with pytest.raises(CorpusSchemaError):
            validate_corpus_document([1, 2, 3])


class TestFileAndCanonicalization:
    def test_validate_file_round_trip(self):
        doc = validate_corpus_file(str(GOLDEN_DIR / "corpus_qss.json"))
        assert doc["n"] == len(doc["records"])

    def test_invalid_json_file(self, tmp_path):
        bad = tmp_path / "broken.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(CorpusSchemaError) as excinfo:
            validate_corpus_file(str(bad))
        assert "not valid JSON" in str(excinfo.value)

    def test_canonicalize_zeroes_wall_clock_and_is_idempotent(self):
        doc = load_doc("corpus_runtime.json")
        doc["elapsed_seconds"] = 12.5
        doc["workers"] = 8
        doc["records"][0]["elapsed_ms"] = 3.25
        canonical = canonicalize_corpus_document(doc)
        assert canonical["elapsed_seconds"] == 0.0
        assert canonical["workers"] == 1
        assert all(r["elapsed_ms"] == 0.0 for r in canonical["records"])
        assert all(
            r["fleet_throughput_eps"] in (None, 0.0)
            for r in canonical["records"]
        )
        assert canonicalize_corpus_document(canonical) == canonical

    def test_canonicalize_validates_first(self):
        doc = load_doc()
        doc["records"][0]["bounded"] = "yes"
        with pytest.raises(CorpusSchemaError):
            canonicalize_corpus_document(doc)
