"""Regression tests for the bench trajectory layer (``benchmarks/bench_io.py``).

Pins the three failure modes the out-of-core contract is measured
through:

* a ``BENCH_OUTPUT_DIR`` naming a directory that does not exist yet
  must be created, not crash with ``FileNotFoundError``;
* two recorders interleaving on one bench file (the pytest contract
  pass and a ``--smoke`` pass of the same CI job) must accumulate each
  other's rows instead of clobbering the file with a process-local
  bucket;
* writes are atomic — a failed rewrite can never leave a truncated,
  unparseable file behind (these files are committed in the history
  case).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "benchmarks")
)

import bench_io  # noqa: E402  (benchmarks/ is not a package)


@pytest.fixture(autouse=True)
def _fresh_output_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path))
    return tmp_path


class TestMissingOutputDir:
    def test_record_creates_nested_directory(self, tmp_path, monkeypatch):
        nested = tmp_path / "does" / "not" / "exist"
        monkeypatch.setenv("BENCH_OUTPUT_DIR", str(nested))
        assert not nested.exists()
        path = bench_io.record_bench_rows("t", [{"x": 1}])
        assert path.parent == nested
        assert bench_io.load_bench_rows("t") == [{"x": 1}]

    def test_history_creates_nested_directory(self, tmp_path, monkeypatch):
        nested = tmp_path / "fresh" / "dir"
        monkeypatch.setenv("BENCH_OUTPUT_DIR", str(nested))
        bench_io.append_history("t", {"n": 1})
        assert bench_io.load_history("t") == [{"n": 1}]

    def test_explicit_directory_argument(self, tmp_path):
        target = tmp_path / "explicit"
        bench_io.record_bench_rows("t", [{"x": 1}], directory=str(target))
        assert bench_io.load_bench_rows("t", directory=str(target)) == [{"x": 1}]


class TestInterleavedRecorders:
    def test_second_recorder_rows_survive(self, tmp_path):
        """An external writer's rows must survive later in-process calls.

        Simulates a second process by appending a row to the file on
        disk between two in-process ``record_bench_rows`` calls — the
        old process-local accumulator rewrote the file from its own
        bucket and silently dropped that row.
        """
        bench_io.record_bench_rows("t", [{"who": "a", "n": 1}])
        path = bench_io.bench_json_path("t")
        data = json.loads(path.read_text(encoding="utf-8"))
        data["rows"].append({"who": "b", "n": 2})  # the "other process"
        path.write_text(json.dumps(data), encoding="utf-8")
        bench_io.record_bench_rows("t", [{"who": "a", "n": 3}])
        assert bench_io.load_bench_rows("t") == [
            {"who": "a", "n": 1},
            {"who": "b", "n": 2},
            {"who": "a", "n": 3},
        ]

    def test_rows_accumulate_across_calls(self):
        bench_io.record_bench_rows("t", [{"n": 1}])
        bench_io.record_bench_rows("t", [{"n": 2}, {"n": 3}])
        assert [r["n"] for r in bench_io.load_bench_rows("t")] == [1, 2, 3]

    def test_unreadable_file_restarts_bucket(self):
        path = bench_io.bench_json_path("t")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ not json", encoding="utf-8")
        bench_io.record_bench_rows("t", [{"n": 1}])
        assert bench_io.load_bench_rows("t") == [{"n": 1}]

    def test_foreign_schema_restarts_bucket(self):
        path = bench_io.bench_json_path("t")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"schema": "other/9", "rows": [{}]}))
        bench_io.record_bench_rows("t", [{"n": 1}])
        assert bench_io.load_bench_rows("t") == [{"n": 1}]


class TestAtomicWrites:
    def test_failed_replace_leaves_old_content_intact(self):
        bench_io.record_bench_rows("t", [{"n": 1}])

        def boom(src, dst):
            raise OSError("disk on fire")

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(bench_io.os, "replace", boom)
            with pytest.raises(OSError):
                bench_io.record_bench_rows("t", [{"n": 2}])
        # old content still parseable, no temp litter
        assert bench_io.load_bench_rows("t") == [{"n": 1}]
        litter = list(bench_io.bench_json_path("t").parent.glob("*.tmp"))
        assert litter == []

    def test_rows_file_always_valid_json(self):
        bench_io.record_bench_rows("t", [{"n": 1}])
        data = json.loads(
            bench_io.bench_json_path("t").read_text(encoding="utf-8")
        )
        assert data["schema"] == bench_io.SCHEMA
        assert data["bench"] == "t"


class TestHistory:
    def test_append_and_limit(self):
        for n in range(5):
            bench_io.append_history("t", {"n": n}, limit=3)
        assert [e["n"] for e in bench_io.load_history("t")] == [2, 3, 4]

    def test_history_schema_pinned(self):
        bench_io.append_history("t", {"n": 1})
        data = json.loads(
            bench_io.bench_history_path("t").read_text(encoding="utf-8")
        )
        assert data["schema"] == bench_io.HISTORY_SCHEMA
        with pytest.raises(ValueError, match="unsupported"):
            bench_io.bench_history_path("t").write_text(
                json.dumps({"schema": "bogus", "entries": []})
            )
            bench_io.load_history("t")

    def test_interleaved_history_writers_accumulate(self):
        bench_io.append_history("t", {"n": 1})
        path = bench_io.bench_history_path("t")
        data = json.loads(path.read_text(encoding="utf-8"))
        data["entries"].append({"n": 2})
        path.write_text(json.dumps(data), encoding="utf-8")
        bench_io.append_history("t", {"n": 3})
        assert [e["n"] for e in bench_io.load_history("t")] == [1, 2, 3]
