#!/usr/bin/env python
"""Regenerate the committed golden files under ``tests/golden/``.

The goldens pin the observable behaviour of the stochastic workload
layer and the corpus pipeline:

* ``corpus_properties.json`` / ``corpus_qss.json`` /
  ``corpus_runtime.json`` — canonicalized ``repro-qss.corpus/3``
  documents (wall-clock fields zeroed, workers pinned, summary
  recomputed; see
  :func:`repro.petrinet.corpus_schema.canonicalize_corpus_document`),
  one per analysis mode.
* ``workload_digests.json`` — SHA-256 digests of the generated event
  streams (application testbenches and every arrival process) plus the
  tick totals of a timed fleet run, so a change to any seeded stream or
  to the timing accounting shows up as a one-line diff.

``tests/test_golden_corpus.py`` regenerates everything into a temp
directory and diffs it against the committed files; when it fails after
an intentional behaviour change, refresh the goldens with::

    python tests/golden/regen.py

and commit the result.  ``--out DIR`` writes elsewhere (the freshness
test uses it); ``--check`` diffs against the committed files instead of
writing, exiting 1 on any mismatch (the CI golden-freshness gate).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(GOLDEN_DIR.parents[1] / "src"))

#: The three golden corpora: small, fast, and spread over the analysis
#: modes.  The runtime corpus pins the two new application families.
CORPORA = {
    "corpus_properties.json": {
        "n": 8,
        "seed": 7,
        "families": None,
        "analyse": "properties",
    },
    "corpus_qss.json": {"n": 10, "seed": 11, "families": None, "analyse": "qss"},
    "corpus_runtime.json": {
        "n": 4,
        "seed": 3,
        "families": ["router", "heating"],
        "analyse": "runtime",
    },
}

GOLDEN_FILES = tuple(sorted(CORPORA)) + ("workload_digests.json",)


def _build_corpus(params):
    from repro.petrinet.corpus import (
        corpus_to_json_dict,
        generate_corpus,
        run_corpus,
    )
    from repro.petrinet.corpus_schema import canonicalize_corpus_document

    specs = generate_corpus(
        params["n"], seed=params["seed"], families=params["families"]
    )
    result = run_corpus(specs, analyse=params["analyse"])
    return canonicalize_corpus_document(corpus_to_json_dict(result))


def _stream_digest(streams):
    blob = "\n".join(repr(e) for stream in streams for e in stream)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _build_workload_digests():
    from repro.apps import atm, heating, router
    from repro.runtime import (
        ARRIVAL_PROCESSES,
        FleetSimulator,
        ModuleAssignment,
        parse_timing,
        synthetic_streams,
    )

    apps = {
        "atm": (atm.build_atm_server_net, atm.make_fleet_testbench),
        "router": (router.build_router_net, router.make_fleet_testbench),
        "heating": (heating.build_heating_net, heating.make_fleet_testbench),
    }
    doc = {"schema": "repro-qss.golden-digests/1", "fleet_streams": {}}
    for name, (build, bench) in sorted(apps.items()):
        doc["fleet_streams"][name] = _stream_digest(bench(4, 12, seed=2026))

    router_net = router.build_router_net()
    doc["synthetic_streams"] = {
        arrival: _stream_digest(
            synthetic_streams(router_net, 3, 8, seed=5, arrival=arrival)
        )
        for arrival in ARRIVAL_PROCESSES
    }

    # a timed fleet run: total and per-instance tick accounting
    timing = parse_timing("uniform:1-8", router_net, seed=5)
    fleet = FleetSimulator(
        router_net,
        ModuleAssignment.from_groups(router.MODULE_PARTITION),
        timing=timing,
    )
    result = fleet.run(bench(4, 12, seed=2026))
    doc["timed_fleet"] = {
        "family": "router",
        "timing": "uniform:1-8",
        "events": int(result.stats.events_processed),
        "delay_ticks": int(result.stats.delay_ticks),
        "instance_ticks": [int(t) for t in result.instance_ticks],
    }
    return doc


def generate_goldens():
    """Build every golden document, keyed by file name."""
    docs = {name: _build_corpus(params) for name, params in CORPORA.items()}
    docs["workload_digests.json"] = _build_workload_digests()
    return docs


def render(doc) -> str:
    return json.dumps(doc, indent=2, sort_keys=False) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(GOLDEN_DIR),
        help="directory to write the goldens into (default: tests/golden/)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed goldens instead of writing; "
        "exit 1 and print a unified summary of stale files on mismatch",
    )
    args = parser.parse_args(argv)
    docs = generate_goldens()
    if args.check:
        stale = []
        for name, doc in sorted(docs.items()):
            committed = GOLDEN_DIR / name
            if not committed.exists():
                stale.append(f"{name}: missing")
            elif committed.read_text(encoding="utf-8") != render(doc):
                stale.append(f"{name}: stale")
        if stale:
            print("\n".join(stale), file=sys.stderr)
            print(
                "golden files out of date; regenerate with: "
                "python tests/golden/regen.py",
                file=sys.stderr,
            )
            return 1
        print(f"{len(docs)} golden file(s) up to date")
        return 0
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, doc in sorted(docs.items()):
        (out_dir / name).write_text(render(doc), encoding="utf-8")
        print(f"wrote {out_dir / name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
