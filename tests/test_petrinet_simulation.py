"""Unit tests for token-game simulation (repro.petrinet.simulation)."""

from __future__ import annotations

import pytest

from repro.gallery import figure2_sdf_chain, figure3b_unschedulable, figure4_weighted
from repro.petrinet import (
    Marking,
    NetBuilder,
    Simulator,
    find_finite_complete_cycle,
    find_firing_sequence,
    fire_sequence,
    is_finite_complete_cycle,
    is_fireable,
    make_adversarial_policy,
    make_random_policy,
    policy_first_enabled,
)
from repro.petrinet.exceptions import NotEnabledError


class TestSequences:
    def test_fire_sequence(self, fig2):
        result = fire_sequence(fig2, ["t1", "t1"])
        assert result == Marking({"p1": 2})

    def test_fire_sequence_blocks(self, fig2):
        with pytest.raises(NotEnabledError):
            fire_sequence(fig2, ["t2"])

    def test_is_fireable(self, fig2):
        assert is_fireable(fig2, ["t1", "t1", "t2"])
        assert not is_fireable(fig2, ["t2"])

    def test_finite_complete_cycle_figure2(self, fig2):
        cycle = ["t1"] * 4 + ["t2"] * 2 + ["t3"]
        assert is_finite_complete_cycle(fig2, cycle)
        assert not is_finite_complete_cycle(fig2, ["t1"])
        # the interleaved order from the paper's Figure 2 also works
        assert is_finite_complete_cycle(
            fig2, ["t1", "t1", "t2", "t1", "t1", "t2", "t3"]
        )

    def test_finite_complete_cycle_custom_marking(self, fig2):
        marking = Marking({"p1": 4, "p2": 2})
        cycle = ["t2", "t2", "t3", "t1", "t1", "t1", "t1"]
        assert is_finite_complete_cycle(fig2, cycle, marking)
        assert not is_finite_complete_cycle(fig2, ["t2", "t1", "t1"], marking)


class TestConstrainedSearch:
    def test_find_firing_sequence_orders_invariant(self, fig2):
        sequence = find_firing_sequence(fig2, {"t1": 4, "t2": 2, "t3": 1})
        assert sequence is not None
        assert sorted(sequence) == sorted(["t1"] * 4 + ["t2"] * 2 + ["t3"])
        assert is_finite_complete_cycle(fig2, sequence)

    def test_find_firing_sequence_empty_counts(self, fig2):
        assert find_firing_sequence(fig2, {}) == []

    def test_find_firing_sequence_impossible(self, fig2):
        # t3 needs two tokens in p2 which a single t2 firing cannot provide
        assert find_firing_sequence(fig2, {"t2": 1, "t3": 1}) is None

    def test_find_finite_complete_cycle(self, fig4):
        cycle = find_finite_complete_cycle(fig4, {"t1": 2, "t2": 2, "t4": 1})
        assert cycle is not None
        assert is_finite_complete_cycle(fig4, cycle)

    def test_find_finite_complete_cycle_rejects_non_stationary(self, fig4):
        assert find_finite_complete_cycle(fig4, {"t1": 1}) is None

    def test_search_needs_backtracking(self):
        # two tokens must go down distinct branches: a greedy choice of the
        # same branch twice dead-ends, exercising the backtracking path.
        net = (
            NetBuilder("backtrack")
            .place("p0", tokens=2)
            .arc("p0", "ta")
            .arc("p0", "tb")
            .arc("ta", "pa")
            .arc("tb", "pb")
            .arc("pa", "tj")
            .arc("pb", "tj")
            .arc("tj", "p0", weight=2)
            .build()
        )
        counts = {"ta": 1, "tb": 1, "tj": 1}
        sequence = find_firing_sequence(net, counts)
        assert sequence is not None
        assert is_finite_complete_cycle(net, sequence)


class TestSimulator:
    def test_first_enabled_policy_is_deterministic(self, fig2):
        trace_a = Simulator(fig2, policy=policy_first_enabled).run(10)
        trace_b = Simulator(fig2, policy=policy_first_enabled).run(10)
        assert trace_a.fired == trace_b.fired

    def test_random_policy_reproducible(self, fig4):
        trace_a = Simulator(fig4, policy=make_random_policy(3)).run(30)
        trace_b = Simulator(fig4, policy=make_random_policy(3)).run(30)
        assert trace_a.fired == trace_b.fired

    def test_trace_markings_track_firings(self, fig2):
        trace = Simulator(fig2).run(3)
        assert len(trace.markings) == len(trace.fired) + 1
        assert trace.markings[0] == fig2.initial_marking

    def test_deadlock_detection(self):
        net = NetBuilder("dead").place("p1", tokens=1).arc("p1", "t1").build()
        trace = Simulator(net).run(5)
        assert trace.fired == ["t1"]
        assert trace.deadlocked

    def test_adversarial_policy_grows_tokens(self, fig3b):
        # always resolving the choice towards t2 starves p3's branch and
        # accumulates tokens in p2 (the unbounded behaviour of Figure 3b)
        adversary = make_adversarial_policy(["t2", "t1"])
        trace = Simulator(fig3b, policy=adversary).run(100)
        assert trace.max_tokens().get("p2", 0) >= 40
        assert "t3" not in trace.fired

    def test_firing_counts(self, fig2):
        trace = Simulator(fig2).run(7)
        counts = trace.firing_counts()
        assert sum(counts.values()) == len(trace.fired)
