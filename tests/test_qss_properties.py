"""Property-based tests for the QSS pipeline on generated net families.

These cross-check the QSS implementation against independent oracles:

* Theorem 3.1 direction: whenever the analysis declares a net schedulable,
  every cycle it produced really is a finite complete cycle containing
  every source transition (checked by re-execution);
* schedulability implies that following the schedule keeps token counts
  bounded by the schedule's own buffer bounds;
* the end-to-end synthesized code, when driven with the resolution of a
  cycle's allocation, fires exactly the multiset of transitions of that
  cycle.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import ProgramExecutor, make_resolver, synthesize
from repro.petrinet import is_finite_complete_cycle
from repro.petrinet.generators import (
    choice_fan_net,
    independent_choices_net,
    multirate_choice_net,
    random_free_choice_net,
)
from repro.qss import analyse, partition_tasks

seeds = st.integers(min_value=0, max_value=5_000)


@st.composite
def schedulable_nets(draw):
    kind = draw(st.sampled_from(["random", "fan", "independent", "multirate"]))
    if kind == "random":
        return random_free_choice_net(
            draw(seeds), n_choices=draw(st.integers(1, 3)), max_branch_length=2
        )
    if kind == "fan":
        return choice_fan_net(draw(st.integers(2, 4)))
    if kind == "independent":
        return independent_choices_net(draw(st.integers(1, 3)))
    return multirate_choice_net(draw(st.integers(1, 4)), draw(st.integers(1, 4)))


@settings(max_examples=25, deadline=None)
@given(schedulable_nets())
def test_declared_cycles_really_are_complete_cycles(net):
    report = analyse(net)
    assert report.schedulable
    sources = set(net.source_transitions())
    for cycle in report.schedule.cycles:
        assert is_finite_complete_cycle(net, cycle.sequence)
        assert sources <= set(cycle.counts)


@settings(max_examples=25, deadline=None)
@given(schedulable_nets())
def test_schedule_buffer_bounds_are_finite_and_respected(net):
    report = analyse(net)
    bounds = report.schedule.max_buffer_bounds()
    marking = net.initial_marking
    for cycle in report.schedule.cycles:
        current = marking
        for transition in cycle.sequence:
            current = net.fire(transition, current)
            for place, count in current.tokens.items():
                assert count <= bounds[place]


@settings(max_examples=20, deadline=None)
@given(schedulable_nets())
def test_reduction_count_never_exceeds_allocation_count(net):
    report = analyse(net)
    assert 1 <= report.reduction_count <= report.allocation_count


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=3), seeds)
def test_synthesized_code_replays_each_cycle(n_choices, seed):
    """Driving the generated code with a cycle's choice resolution fires the
    cycle's exact firing-count vector (summed over the program's tasks)."""
    net = random_free_choice_net(seed, n_choices=n_choices, max_branch_length=2)
    report = analyse(net)
    program = synthesize(report.schedule)
    for cycle in report.schedule.cycles:
        executor = ProgramExecutor(program)
        resolution = dict(cycle.allocation.choices)
        fired = []
        for source in net.source_transitions():
            result = executor.activate_source(source, make_resolver(resolution))
            fired.extend(result.fired)
        counts = {t: fired.count(t) for t in set(fired)}
        assert counts == cycle.counts


@settings(max_examples=15, deadline=None)
@given(schedulable_nets())
def test_task_partition_covers_every_scheduled_transition(net):
    report = analyse(net)
    partition = partition_tasks(report.schedule)
    assert partition.task_count == len(net.source_transitions())
    covered = set()
    for task in partition.tasks:
        covered |= set(task.transitions)
    assert covered == set(report.schedule.transitions_used())
