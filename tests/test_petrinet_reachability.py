"""Unit tests for reachability, boundedness, deadlock and liveness analysis."""

from __future__ import annotations

import pytest

from repro.gallery import figure2_sdf_chain, figure3b_unschedulable
from repro.petrinet import (
    Marking,
    NetBuilder,
    build_reachability_graph,
    coverability_analysis,
    find_deadlocks,
    is_bounded,
    is_deadlock_free,
    is_k_bounded,
    is_live,
    is_reachable,
    is_safe,
    place_bounds,
)


def bounded_cycle_net():
    """A live, safe ring: t_a and t_b alternate forever."""
    return (
        NetBuilder("ring")
        .transition("t_a")
        .transition("t_b")
        .place("p1", tokens=1)
        .place("p2")
        .arc("p1", "t_a")
        .arc("t_a", "p2")
        .arc("p2", "t_b")
        .arc("t_b", "p1")
        .build()
    )


class TestReachabilityGraph:
    def test_ring_graph_has_two_markings(self):
        graph = build_reachability_graph(bounded_cycle_net())
        assert len(graph.markings) == 2
        assert len(graph.edges) == 2
        assert graph.complete
        assert graph.deadlock_markings() == []

    def test_is_reachable(self):
        net = bounded_cycle_net()
        assert is_reachable(net, Marking({"p2": 1}))
        assert not is_reachable(net, Marking({"p1": 1, "p2": 1}))

    def test_exploration_limit_marks_incomplete(self, fig2):
        # figure 2 has a source transition, so its reachability set is infinite
        graph = build_reachability_graph(fig2, max_markings=10)
        assert not graph.complete
        assert len(graph.markings) == 10

    def test_successors(self):
        graph = build_reachability_graph(bounded_cycle_net())
        assert graph.successors(0) == [("t_a", 1)]


class TestBoundedness:
    def test_ring_is_safe_and_bounded(self):
        net = bounded_cycle_net()
        assert is_bounded(net)
        assert is_safe(net)
        assert is_k_bounded(net, 1)

    def test_source_fed_chain_is_unbounded(self, fig2):
        result = coverability_analysis(fig2)
        assert not result.bounded
        assert "p1" in result.unbounded_places

    def test_figure3b_unbounded(self, fig3b):
        result = coverability_analysis(fig3b)
        assert not result.bounded
        assert set(result.unbounded_places) >= {"p2", "p3"}

    def test_k_bounded_with_two_tokens(self):
        net = (
            NetBuilder("two")
            .transition("t_a")
            .transition("t_b")
            .place("p1", tokens=2)
            .place("p2")
            .arc("p1", "t_a")
            .arc("t_a", "p2")
            .arc("p2", "t_b")
            .arc("t_b", "p1")
            .build()
        )
        assert is_bounded(net)
        assert is_k_bounded(net, 2)
        assert not is_safe(net)

    def test_place_bounds(self):
        bounds = place_bounds(bounded_cycle_net())
        assert bounds == {"p1": 1, "p2": 1}

    def test_place_bounds_unbounded_is_none(self, fig2):
        bounds = place_bounds(fig2)
        assert bounds["p1"] is None


class TestDeadlockAndLiveness:
    def test_ring_is_deadlock_free_and_live(self):
        net = bounded_cycle_net()
        assert is_deadlock_free(net)
        assert is_live(net)

    def test_terminating_net_deadlocks(self):
        net = (
            NetBuilder("finite")
            .place("p1", tokens=1)
            .arc("p1", "t1")
            .arc("t1", "p2")
            .arc("p2", "t2")
            .build()
        )
        deadlocks = find_deadlocks(net)
        assert deadlocks == [Marking()]
        assert not is_deadlock_free(net)
        assert not is_live(net)

    def test_deadlock_free_but_not_live(self):
        # t_dead can never fire (its input place is never marked) but the
        # ring part keeps running, so the net is deadlock-free yet not live.
        net = bounded_cycle_net()
        net.add_place("p_never")
        net.add_transition("t_dead")
        net.add_arc("p_never", "t_dead")
        net.add_arc("t_dead", "p_never")
        assert is_deadlock_free(net)
        assert not is_live(net)

    def test_liveness_requires_complete_graph(self, fig2):
        with pytest.raises(RuntimeError):
            is_live(fig2, max_markings=5)
