"""Compiled/legacy equivalence suite.

The compiled engine (:mod:`repro.petrinet.compiled`) must be a pure
accelerator: every analysis refactored to run on it — enabledness,
firing, reachability exploration, constrained simulation, the QSS
schedulability check — has to produce results identical to the original
dict-based path.  This suite cross-checks the two engines on all gallery
nets and on randomized nets from :mod:`repro.petrinet.generators`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gallery import paper_figures
from repro.petrinet import (
    CompiledNet,
    CompiledSimulator,
    Marking,
    NetBuilder,
    Simulator,
    build_reachability_graph,
    compile_net,
    find_finite_complete_cycle,
    find_firing_sequence,
    fire_sequence,
    incidence_matrices,
    make_random_policy,
    simulate_many,
)
from repro.petrinet.exceptions import NotEnabledError, UnknownNodeError
from repro.petrinet.generators import (
    independent_choices_net,
    multirate_choice_net,
    nested_choices_net,
    pipeline_net,
    random_free_choice_net,
    random_marked_graph,
)
from repro.qss import analyse

GALLERY = sorted(paper_figures())
#: gallery nets inside the FCPN class (figure1b is deliberately not
#: free-choice, so the QSS equivalence check excludes it)
FREE_CHOICE_GALLERY = [f for f in GALLERY if f != "figure1b"]
RANDOM_SEEDS = [0, 1, 2, 3, 4]


def random_nets():
    nets = [random_free_choice_net(seed) for seed in RANDOM_SEEDS]
    nets += [random_marked_graph(seed) for seed in RANDOM_SEEDS]
    return nets


# ----------------------------------------------------------------------
# Compilation basics
# ----------------------------------------------------------------------
class TestCompileBasics:
    def test_index_maps_follow_insertion_order(self, fig4):
        compiled = fig4.compile()
        assert list(compiled.places) == fig4.place_names
        assert list(compiled.transitions) == fig4.transition_names
        for name, index in compiled.place_index.items():
            assert compiled.places[index] == name
        for name, index in compiled.transition_index.items():
            assert compiled.transitions[index] == name

    @pytest.mark.parametrize("figure", GALLERY)
    def test_matrices_match_incidence_module(self, figure):
        net = paper_figures()[figure]()
        compiled = net.compile()
        matrices = incidence_matrices(net)
        assert np.array_equal(compiled.pre, matrices.pre)
        assert np.array_equal(compiled.post, matrices.post)
        assert np.array_equal(compiled.incidence, matrices.incidence)

    def test_csr_arrays_encode_presets(self, fig4):
        compiled = fig4.compile()
        for name, t_id in compiled.transition_index.items():
            lo, hi = compiled.pre_indptr[t_id], compiled.pre_indptr[t_id + 1]
            csr_preset = {
                compiled.places[p]: int(w)
                for p, w in zip(compiled.pre_ids[lo:hi], compiled.pre_weights[lo:hi])
            }
            assert csr_preset == fig4.preset(name)
            lo, hi = compiled.post_indptr[t_id], compiled.post_indptr[t_id + 1]
            csr_postset = {
                compiled.places[p]: int(w)
                for p, w in zip(compiled.post_ids[lo:hi], compiled.post_weights[lo:hi])
            }
            assert csr_postset == fig4.postset(name)

    def test_initial_marking_round_trip(self, atm_net):
        compiled = atm_net.compile()
        assert compiled.initial_marking == atm_net.initial_marking
        assert compiled.marking_to_tuple(atm_net.initial_marking) == compiled.initial

    def test_marking_conversions(self, fig4):
        compiled = fig4.compile()
        marking = Marking({"p1": 2, "p3": 1})
        vector = compiled.marking_to_tuple(marking)
        assert compiled.tokens(vector, "p1") == 2
        assert compiled.tokens(vector, compiled.place_id("p3")) == 1
        assert compiled.marking_from_tuple(vector) == marking
        assert compiled.marking_to_array(marking).tolist() == list(vector)

    def test_compile_net_is_noop_on_compiled(self, fig4):
        compiled = fig4.compile()
        assert compile_net(compiled) is compiled
        assert isinstance(compile_net(fig4), CompiledNet)

    def test_unknown_names_raise(self, fig4):
        compiled = fig4.compile()
        with pytest.raises(UnknownNodeError):
            compiled.transition_id("nope")
        with pytest.raises(UnknownNodeError):
            compiled.place_id("nope")


class TestDecompile:
    @pytest.mark.parametrize("figure", GALLERY)
    def test_round_trip_preserves_structure(self, figure):
        net = paper_figures()[figure]()
        rebuilt = net.compile().decompile()
        assert rebuilt.place_names == net.place_names
        assert rebuilt.transition_names == net.transition_names
        assert sorted((a.source, a.target, a.weight) for a in rebuilt.arcs) == sorted(
            (a.source, a.target, a.weight) for a in net.arcs
        )
        assert rebuilt.initial_marking == net.initial_marking

    def test_round_trip_preserves_metadata(self):
        net = (
            NetBuilder("meta")
            .place("p1", tokens=2, capacity=5, label="buffer")
            .source("t_src", label="input", cost=3)
            .sink("t_snk")
            .arc("t_src", "p1")
            .arc("p1", "t_snk")
            .build()
        )
        rebuilt = net.compile().decompile()
        place = rebuilt.place("p1")
        assert place.capacity == 5 and place.label == "buffer"
        source = rebuilt.transition("t_src")
        assert source.cost == 3 and source.is_source_hint and source.label == "input"
        assert rebuilt.transition("t_snk").is_sink_hint

    def test_recompile_round_trip(self, fig5):
        compiled = fig5.compile()
        again = compiled.decompile().compile()
        assert again.places == compiled.places
        assert again.transitions == compiled.transitions
        assert np.array_equal(again.incidence, compiled.incidence)
        assert again.initial == compiled.initial


# ----------------------------------------------------------------------
# Token-game equivalence
# ----------------------------------------------------------------------
class TestTokenGameEquivalence:
    @pytest.mark.parametrize("figure", GALLERY)
    def test_enabled_and_fire_agree_along_random_walks(self, figure):
        net = paper_figures()[figure]()
        compiled = net.compile()
        rng = __import__("random").Random(figure)
        marking = net.initial_marking
        vector = compiled.initial
        for _ in range(60):
            legacy_enabled = net.enabled_transitions(marking)
            compiled_enabled = [
                compiled.transitions[t]
                for t in compiled.enabled_transitions(vector)
            ]
            assert compiled_enabled == legacy_enabled
            mask = compiled.enabled_mask(np.array(vector, dtype=np.int64))
            assert [
                compiled.transitions[i] for i in np.nonzero(mask)[0]
            ] == legacy_enabled
            if not legacy_enabled:
                break
            choice = rng.choice(legacy_enabled)
            marking = net.fire(choice, marking)
            vector = compiled.fire_by_name(choice, vector)
            assert compiled.marking_from_tuple(vector) == marking

    def test_enabled_mask_batches(self, fig4):
        compiled = fig4.compile()
        walk = [compiled.initial]
        walk.append(compiled.fire(0, walk[-1]))  # t1
        walk.append(compiled.fire(0, walk[-1]))
        batch = np.array(walk, dtype=np.int64)
        mask = compiled.enabled_mask(batch)
        assert mask.shape == (3, len(compiled.transitions))
        for row, vector in zip(mask, walk):
            assert row.tolist() == [
                compiled.is_enabled(t, vector)
                for t in range(len(compiled.transitions))
            ]

    def test_fire_disabled_raises_with_name(self, fig4):
        compiled = fig4.compile()
        t4 = compiled.transition_id("t4")
        with pytest.raises(NotEnabledError, match="t4"):
            compiled.fire(t4, compiled.initial)

    def test_fire_sequence_matches_legacy(self, fig4):
        sequence = ["t1", "t1", "t2", "t2", "t4"]
        assert fire_sequence(fig4.compile(), sequence) == fire_sequence(fig4, sequence)

    def test_expander_agrees_with_scalar_firing(self):
        for net in random_nets():
            compiled = net.compile()
            vector = compiled.initial
            moves = compiled.expander(vector)
            assert [t for t, _ in moves] == compiled.enabled_transitions(vector)
            for transition, successor in moves:
                assert successor == compiled.fire_unchecked(transition, vector)


# ----------------------------------------------------------------------
# Reachability equivalence
# ----------------------------------------------------------------------
class TestReachabilityEquivalence:
    @pytest.mark.parametrize("figure", GALLERY)
    def test_gallery_graphs_identical(self, figure):
        net = paper_figures()[figure]()
        legacy = build_reachability_graph(net, max_markings=300, engine="legacy")
        compiled = build_reachability_graph(net, max_markings=300, engine="compiled")
        assert compiled.markings == legacy.markings
        assert compiled.edges == legacy.edges
        assert compiled.complete == legacy.complete

    def test_random_nets_graphs_identical(self):
        for net in random_nets():
            legacy = build_reachability_graph(net, max_markings=500, engine="legacy")
            compiled = build_reachability_graph(net, max_markings=500, engine="compiled")
            assert compiled.markings == legacy.markings
            assert compiled.edges == legacy.edges
            assert compiled.complete == legacy.complete

    def test_accepts_precompiled_net(self, fig2):
        compiled_net = fig2.compile()
        graph = build_reachability_graph(compiled_net, max_markings=50)
        reference = build_reachability_graph(fig2, max_markings=50, engine="legacy")
        assert graph.markings == reference.markings

    def test_index_of_uses_constant_time_map(self, fig2):
        graph = build_reachability_graph(fig2, max_markings=64)
        for i, marking in enumerate(graph.markings):
            assert graph.index_of(marking) == i
        assert graph.index_of(Marking({"p1": 999})) is None

    def test_add_marking_keeps_index_in_sync(self):
        from repro.petrinet.reachability import ReachabilityGraph

        graph = ReachabilityGraph(markings=[Marking({"a": 1})])
        index = graph.add_marking(Marking({"b": 2}))
        assert index == 1
        assert graph.index_of(Marking({"a": 1})) == 0
        assert graph.index_of(Marking({"b": 2})) == 1

    def test_unknown_engine_rejected(self, fig2):
        with pytest.raises(ValueError, match="unknown engine"):
            build_reachability_graph(fig2, engine="turbo")


# ----------------------------------------------------------------------
# Constrained simulation equivalence
# ----------------------------------------------------------------------
class TestConstrainedSimulationEquivalence:
    @pytest.mark.parametrize(
        "counts",
        [
            {"t1": 4, "t2": 2, "t3": 1},
            {"t1": 8, "t2": 4, "t3": 2},
        ],
    )
    def test_fig2_sequences_identical(self, fig2, counts):
        legacy = find_firing_sequence(fig2, counts, engine="legacy")
        compiled = find_firing_sequence(fig2, counts, engine="compiled")
        assert compiled == legacy

    def test_impossible_counts_agree(self, fig2):
        assert find_firing_sequence(fig2, {"t2": 1}, engine="legacy") is None
        assert find_firing_sequence(fig2, {"t2": 1}, engine="compiled") is None

    def test_empty_counts(self, fig2):
        assert find_firing_sequence(fig2, {}, engine="compiled") == []

    def test_cycles_identical_on_generated_families(self):
        nets = [
            pipeline_net(4, rates=[2, 1, 2, 1]),
            multirate_choice_net(2, 3),
            nested_choices_net(3),
        ]
        from repro.petrinet.invariants import t_invariants

        for net in nets:
            for invariant in t_invariants(net):
                legacy = find_finite_complete_cycle(net, invariant, engine="legacy")
                compiled = find_finite_complete_cycle(net, invariant, engine="compiled")
                assert compiled == legacy

    def test_unknown_transition_raises_unknown_node(self, fig2):
        with pytest.raises(UnknownNodeError):
            find_firing_sequence(fig2, {"missing": 1}, engine="compiled")


# ----------------------------------------------------------------------
# Free simulation equivalence and the batched API
# ----------------------------------------------------------------------
class TestFreeSimulationEquivalence:
    @pytest.mark.parametrize("figure", FREE_CHOICE_GALLERY)
    def test_traces_identical_under_same_policy(self, figure):
        net = paper_figures()[figure]()
        legacy = Simulator(net, policy=make_random_policy(17)).run(80)
        compiled = CompiledSimulator(net, policy=make_random_policy(17)).run(80)
        assert compiled.fired == legacy.fired
        assert compiled.markings == legacy.markings
        assert compiled.deadlocked == legacy.deadlocked

    def test_endpoint_only_traces_match_full_run(self, fig3a):
        full = CompiledSimulator(fig3a, policy=make_random_policy(5)).run(50)
        light = CompiledSimulator(
            fig3a, policy=make_random_policy(5), record_markings=False
        ).run(50)
        assert light.fired == full.fired
        assert light.markings[0] == full.markings[0]
        assert light.final_marking == full.final_marking
        assert len(light.markings) <= 2

    def test_simulate_many_is_reproducible_and_decorrelated(self, fig3a):
        batch_a = simulate_many(fig3a, runs=6, max_steps=40, seed=42)
        batch_b = simulate_many(fig3a, runs=6, max_steps=40, seed=42)
        assert [t.fired for t in batch_a] == [t.fired for t in batch_b]
        # per-run seeds are seed + i, so run i matches a fresh policy
        reference = CompiledSimulator(
            fig3a, policy=make_random_policy(44), record_markings=False
        ).run(40)
        assert batch_a[2].fired == reference.fired

    def test_simulate_many_rejects_policy_and_seed(self, fig3a):
        with pytest.raises(ValueError):
            simulate_many(fig3a, 2, 10, policy=make_random_policy(1), seed=2)

    def test_simulate_many_matches_legacy_loop(self, fig4):
        batch = simulate_many(fig4, runs=3, max_steps=30, seed=7)
        for i, trace in enumerate(batch):
            legacy = Simulator(fig4, policy=make_random_policy(7 + i)).run(30)
            assert trace.fired == legacy.fired
            assert trace.final_marking == legacy.final_marking


# ----------------------------------------------------------------------
# QSS verdict equivalence (Theorem 3.1 must not depend on the engine)
# ----------------------------------------------------------------------
class TestQssEquivalence:
    @pytest.mark.parametrize("figure", FREE_CHOICE_GALLERY)
    def test_gallery_verdicts_identical(self, figure):
        net = paper_figures()[figure]()
        legacy = analyse(net, engine="legacy")
        compiled = analyse(net, engine="compiled")
        assert compiled.schedulable == legacy.schedulable
        assert compiled.reduction_count == legacy.reduction_count
        assert compiled.allocation_count == legacy.allocation_count
        for verdict_c, verdict_l in zip(compiled.verdicts, legacy.verdicts):
            assert verdict_c.schedulable == verdict_l.schedulable
            assert verdict_c.consistent == verdict_l.consistent
            assert verdict_c.sources_covered == verdict_l.sources_covered
            assert verdict_c.deadlocked == verdict_l.deadlocked
            assert verdict_c.cycle == verdict_l.cycle
            assert verdict_c.uncovered_transitions == verdict_l.uncovered_transitions

    def test_random_free_choice_verdicts_identical(self):
        for seed in RANDOM_SEEDS:
            net = random_free_choice_net(seed)
            legacy = analyse(net, engine="legacy")
            compiled = analyse(net, engine="compiled")
            assert compiled.schedulable == legacy.schedulable
            assert [v.cycle for v in compiled.verdicts] == [
                v.cycle for v in legacy.verdicts
            ]

    def test_reduction_compiled_view_is_cached(self, fig3a):
        from repro.qss import enumerate_reductions

        reduction = enumerate_reductions(fig3a)[0]
        assert reduction.compiled is reduction.compiled
        assert list(reduction.compiled.transitions) == reduction.net.transition_names

    def test_unknown_engine_rejected(self, fig3a):
        with pytest.raises(ValueError, match="unknown engine"):
            analyse(fig3a, engine="warp")

    def test_analyse_figure_threads_engine(self):
        from repro.gallery import analyse_figure
        from repro.petrinet.exceptions import NotFreeChoiceError

        legacy = analyse_figure("figure3a", engine="legacy")
        compiled = analyse_figure("figure3a", engine="compiled")
        assert compiled.schedulable == legacy.schedulable is True
        with pytest.raises(KeyError):
            analyse_figure("figure99")
        with pytest.raises(NotFreeChoiceError):
            analyse_figure("figure1b")


# ----------------------------------------------------------------------
# Engine misuse is surfaced, not silently papered over
# ----------------------------------------------------------------------
class TestEngineContract:
    def test_marking_with_unknown_place_rejected(self, fig2):
        compiled = fig2.compile()
        with pytest.raises(UnknownNodeError, match="ghost"):
            compiled.marking_to_tuple(Marking({"p1": 1, "ghost": 1}))
        # zero-count unknown entries in plain dicts are harmless
        assert compiled.marking_to_tuple({"p1": 1, "ghost": 0}) == (1, 0)

    def test_legacy_engine_rejects_compiled_input(self, fig2):
        compiled = fig2.compile()
        with pytest.raises(ValueError, match="legacy"):
            build_reachability_graph(compiled, engine="legacy")
        with pytest.raises(ValueError, match="legacy"):
            find_firing_sequence(compiled, {"t1": 1}, engine="legacy")

    def test_counters_setter_round_trips(self, fig4):
        from repro.codegen import ProgramExecutor, synthesize
        from repro.qss import compute_valid_schedule

        program = synthesize(compute_valid_schedule(fig4))
        executor = next(iter(ProgramExecutor(program).tasks.values()))
        snapshot = executor.counters
        executor.counters = {place: 7 for place in snapshot}
        assert all(value == 7 for value in executor.counters.values())
        executor.reset()
        assert executor.counters == executor.task.counters
