"""Unit tests for markings (repro.petrinet.marking)."""

from __future__ import annotations

import pytest

from repro.petrinet import Marking
from repro.petrinet.exceptions import InvalidMarkingError


class TestBasics:
    def test_lookup_defaults_to_zero(self):
        m = Marking({"p1": 2})
        assert m["p1"] == 2
        assert m["missing"] == 0
        assert m.get("missing", 7) == 7

    def test_zero_entries_are_normalized_away(self):
        assert Marking({"p1": 0, "p2": 1}) == Marking({"p2": 1})
        assert len(Marking({"p1": 0})) == 0

    def test_negative_count_rejected(self):
        with pytest.raises(InvalidMarkingError):
            Marking({"p1": -1})

    def test_equality_with_plain_mapping(self):
        assert Marking({"p1": 1}) == {"p1": 1, "p2": 0}
        assert Marking({"p1": 1}) != {"p1": 2}

    def test_hashable_and_usable_as_key(self):
        seen = {Marking({"a": 1}): "x"}
        assert seen[Marking({"a": 1, "b": 0})] == "x"

    def test_repr_is_sorted(self):
        assert repr(Marking({"b": 1, "a": 2})) == "Marking({a: 2, b: 1})"

    def test_total(self):
        assert Marking({"a": 2, "b": 3}).total() == 5
        assert Marking().total() == 0


class TestOperations:
    def test_add_and_remove_return_new_markings(self):
        m = Marking({"p": 1})
        m2 = m.add("p", 2)
        assert m2["p"] == 3
        assert m["p"] == 1
        m3 = m2.remove("p", 3)
        assert m3["p"] == 0

    def test_remove_below_zero_raises(self):
        with pytest.raises(InvalidMarkingError):
            Marking({"p": 1}).remove("p", 2)

    def test_covers(self):
        big = Marking({"a": 2, "b": 1})
        small = Marking({"a": 1})
        assert big.covers(small)
        assert not small.covers(big)
        assert big.covers(big)
        assert big.strictly_covers(small)
        assert not big.strictly_covers(big)

    def test_restricted_to(self):
        m = Marking({"a": 1, "b": 2, "c": 3})
        assert m.restricted_to(["a", "c"]) == Marking({"a": 1, "c": 3})

    def test_union_places(self):
        a = Marking({"x": 1})
        b = Marking({"y": 2})
        assert set(a.union_places(b)) == {"x", "y"}

    def test_vector_round_trip(self):
        order = ["p1", "p2", "p3"]
        m = Marking({"p1": 4, "p3": 1})
        vector = m.as_vector(order)
        assert vector == (4, 0, 1)
        assert Marking.from_vector(order, vector) == m
