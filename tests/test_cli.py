"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.gallery import figure3a_schedulable, figure7_unschedulable
from repro.petrinet import save_net
from repro.petrinet.corpus import (
    CORPUS_SCHEMA,
    RECORD_FIELDS,
    corpus_from_json_dict,
    corpus_to_json_dict,
)


@pytest.fixture
def fig3a_file(tmp_path):
    path = tmp_path / "fig3a.json"
    save_net(figure3a_schedulable(), path)
    return str(path)


@pytest.fixture
def fig7_file(tmp_path):
    path = tmp_path / "fig7.json"
    save_net(figure7_unschedulable(), path)
    return str(path)


class TestInfoAndAnalyse:
    def test_info(self, fig3a_file, capsys):
        assert main(["info", fig3a_file]) == 0
        out = capsys.readouterr().out
        assert "free-choice" in out
        assert "p1" in out

    def test_analyse_schedulable_exit_zero(self, fig3a_file, capsys):
        assert main(["analyse", fig3a_file, "--show-schedule"]) == 0
        out = capsys.readouterr().out
        assert "schedulable" in out
        assert "finite complete cycle" in out
        assert "task_t1" in out

    def test_analyse_unschedulable_exit_one(self, fig7_file, capsys):
        assert main(["analyse", fig7_file]) == 1
        assert "NOT quasi-statically schedulable" in capsys.readouterr().out

    def test_analyse_fail_fast_flag(self, fig7_file, capsys):
        assert main(["analyse", fig7_file, "--fail-fast"]) == 1
        out = capsys.readouterr().out
        assert "fail-fast stop" in out
        assert "NOT quasi-statically schedulable" in out

    def test_analyse_workers_flag(self, fig3a_file, capsys):
        assert main(["analyse", fig3a_file, "--workers", "2"]) == 0
        assert "schedulable" in capsys.readouterr().out

    def test_missing_file_is_error(self):
        with pytest.raises(SystemExit):
            main(["info", "/nonexistent/net.json"])


class TestSynthesizeAndDot:
    def test_synthesize_to_file(self, fig3a_file, tmp_path, capsys):
        out_file = tmp_path / "out.c"
        assert main(["synthesize", fig3a_file, "-o", str(out_file)]) == 0
        source = out_file.read_text()
        assert "void task_t1(void)" in source
        assert "choice_p1()" in source
        assert "lines of C" in capsys.readouterr().err

    def test_synthesize_unschedulable_fails(self, fig7_file, capsys):
        assert main(["synthesize", fig7_file]) == 1

    def test_synthesize_standalone_loop(self, fig3a_file, capsys):
        assert main(["synthesize", fig3a_file, "--standalone-loop"]) == 0
        assert "while (1) {" in capsys.readouterr().out

    def test_dot_output(self, fig3a_file, tmp_path):
        out_file = tmp_path / "net.dot"
        assert main(["dot", fig3a_file, "-o", str(out_file), "--title", "Fig 3a"]) == 0
        text = out_file.read_text()
        assert text.startswith("digraph")
        assert "Fig 3a" in text


class TestGalleryAndTable:
    def test_gallery_list(self, capsys):
        assert main(["gallery", "list"]) == 0
        out = capsys.readouterr().out
        assert "figure4" in out and "figure7" in out

    def test_gallery_unknown_is_usage_error(self, capsys):
        assert main(["gallery", "figure99"]) == 2

    def test_gallery_dump_to_stdout_is_json(self, capsys):
        assert main(["gallery", "figure4"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "figure4"

    def test_gallery_dump_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "fig4.json"
        assert main(["gallery", "figure4", "-o", str(out_file)]) == 0
        assert json.loads(out_file.read_text())["name"] == "figure4"

    def test_atm_table1_small(self, capsys):
        assert main(["atm-table1", "--cells", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Number of tasks" in out
        assert "clock-cycle ratio" in out


class TestServe:
    def test_serve_small_fleet(self, capsys):
        assert main(["serve", "--instances", "6", "--events", "3"]) == 0
        out = capsys.readouterr().out
        assert "fleet of 6 instance(s) (compiled engine)" in out
        assert "per-instance cycles" in out
        assert "modules partition" in out

    def test_serve_engines_agree_on_cycles(self, capsys):
        args = ["serve", "--instances", "4", "--events", "2", "--seed", "9"]
        assert main(args + ["--engine", "compiled"]) == 0
        compiled_out = capsys.readouterr().out
        assert main(args + ["--engine", "legacy"]) == 0
        legacy_out = capsys.readouterr().out
        pick = lambda text: [
            line for line in text.splitlines()
            if line.startswith(("total cycles", "events processed", "per-instance"))
        ]
        assert pick(compiled_out) == pick(legacy_out)

    def test_serve_single_partition_and_workers(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--instances",
                    "4",
                    "--events",
                    "2",
                    "--partition",
                    "single",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "single partition" in out
        assert "queue traffic  : 0" in out


class TestServeService:
    """The always-on service modes of `repro-qss serve`."""

    def test_service_mode_matches_batch_mode(self, capsys):
        args = ["serve", "--instances", "6", "--events", "3", "--seed", "4"]
        assert main(args) == 0
        batch_out = capsys.readouterr().out
        assert main(args + ["--shards", "2"]) == 0
        service_out = capsys.readouterr().out
        pick = lambda text: [
            line
            for line in text.splitlines()
            if line.startswith(
                ("total cycles", "events processed", "per-instance")
            )
        ]
        assert pick(batch_out) == pick(service_out)
        assert "2 shard(s), async backend" in service_out

    def test_service_process_backend(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--instances",
                    "4",
                    "--events",
                    "2",
                    "--shards",
                    "2",
                    "--backend",
                    "process",
                ]
            )
            == 0
        )
        assert "process backend" in capsys.readouterr().out

    def test_service_telemetry_file(self, tmp_path, capsys):
        from repro.service import validate_telemetry_record

        telemetry = tmp_path / "telemetry.jsonl"
        assert (
            main(
                [
                    "serve",
                    "--instances",
                    "4",
                    "--events",
                    "2",
                    "--shards",
                    "2",
                    "--telemetry",
                    str(telemetry),
                ]
            )
            == 0
        )
        capsys.readouterr()
        lines = telemetry.read_text().splitlines()
        assert lines  # at least the final sample
        kinds = set()
        for line in lines:
            record = json.loads(line)
            validate_telemetry_record(record)
            kinds.add(record["kind"])
        assert kinds == {"shard", "aggregate"}

    def test_corpus_family_workload(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--instances",
                    "5",
                    "--events",
                    "4",
                    "--family",
                    "pipeline",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fleet of 5 instance(s)" in out
        assert "single partition" in out

    def test_corpus_family_with_parameter_override(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--instances",
                    "3",
                    "--events",
                    "2",
                    "--family",
                    "choice_fan:branches=4",
                ]
            )
            == 0
        )
        assert "fleet of 3 instance(s)" in capsys.readouterr().out


class TestServeValidation:
    """Up-front argparse validation of serve flag combinations (exit 2)."""

    @pytest.mark.parametrize(
        "args, fragment",
        [
            (["--instances", "0"], "--instances: must be positive"),
            (["--instances", "-3"], "--instances: must be positive"),
            (["--events", "0"], "--events: must be positive"),
            (["--workers", "0"], "--workers: must be positive"),
            (["--shards", "0"], "--shards: must be positive"),
            (["--workers", "2", "--shards", "2"], "use --shards"),
            (["--duration", "5"], "only meaningful with --listen"),
            (
                ["--listen", "127.0.0.1:0", "--duration", "0"],
                "--duration: must be positive",
            ),
            (["--listen", "localhost"], "expected HOST:PORT"),
            (["--listen", "localhost:notaport"], "bad port"),
            (["--shards", "2", "--engine", "legacy"], "compiled kernel"),
            (["--family", "warp_drive"], "unknown family"),
            (
                ["--family", "pipeline", "--partition", "modules"],
                "needs an application family",
            ),
            (["--family", "atm:cells=3"], "takes no"),
            (
                ["--family", "choice_fan:bogus=1"],
                "unknown parameter",
            ),
            (["--family", "choice_fan:branches"], "expected key=value"),
        ],
    )
    def test_bad_combinations_exit_2(self, args, fragment, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve"] + args)
        assert excinfo.value.code == 2
        assert fragment in capsys.readouterr().err


class TestCorpus:
    def test_small_parallel_corpus_writes_valid_json(self, tmp_path, capsys):
        json_path = tmp_path / "corpus.json"
        assert (
            main(
                [
                    "corpus",
                    "--n",
                    "8",
                    "--workers",
                    "2",
                    "--seed",
                    "3",
                    "--json",
                    str(json_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "corpus: 8 nets" in out
        assert "2 worker(s)" in out

        data = json.loads(json_path.read_text())
        assert data["schema"] == CORPUS_SCHEMA
        assert data["n"] == 8
        assert data["workers"] == 2
        assert len(data["records"]) == 8
        for record in data["records"]:
            assert set(record) == set(RECORD_FIELDS)
            assert record["places"] > 0 and record["transitions"] > 0
            assert record["error"] is None
        assert data["summary"]["total"] == 8
        assert data["summary"]["errors"] == 0

    def test_json_summary_round_trips(self, tmp_path):
        json_path = tmp_path / "corpus.json"
        assert main(["corpus", "--n", "8", "--workers", "2", "--seed", "3",
                     "--json", str(json_path)]) == 0
        data = json.loads(json_path.read_text())
        rebuilt = corpus_to_json_dict(corpus_from_json_dict(data))
        # elapsed_seconds is a stored field, not recomputed, so the whole
        # document must survive the dict -> CorpusResult -> dict cycle
        assert rebuilt == data

    def test_corpus_csv_row_per_net(self, tmp_path, capsys):
        csv_path = tmp_path / "corpus.csv"
        assert main(["corpus", "--n", "5", "--seed", "1", "--csv", str(csv_path)]) == 0
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].split(",")[:3] == ["family", "seed", "params"]
        assert len(lines) == 6  # header + one row per net

    def test_corpus_qss_sweep_mode(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        assert (
            main(
                [
                    "corpus",
                    "--n",
                    "8",
                    "--workers",
                    "2",
                    "--seed",
                    "3",
                    "--analyse",
                    "qss",
                    "--json",
                    str(json_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "qss mode" in out
        assert "qss sweep:" in out
        data = json.loads(json_path.read_text())
        assert data["schema"] == CORPUS_SCHEMA
        assert data["analyse"] == "qss"
        for record in data["records"]:
            assert set(record) == set(RECORD_FIELDS)
            assert record["error"] is None
            # property passes are skipped in sweep mode
            assert record["bounded"] is None
            if record["free_choice"]:
                assert record["schedulable"] is not None
                assert record["allocations"] >= 1
                assert record["cycle_lengths"] is not None
        assert data["summary"]["qss"]["swept"] >= 1
        rebuilt = corpus_to_json_dict(corpus_from_json_dict(data))
        assert rebuilt == data

    def test_corpus_runtime_sweep_mode(self, tmp_path, capsys):
        json_path = tmp_path / "runtime.json"
        assert (
            main(
                [
                    "corpus",
                    "--n",
                    "8",
                    "--workers",
                    "2",
                    "--seed",
                    "3",
                    "--analyse",
                    "runtime",
                    "--json",
                    str(json_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "runtime mode" in out
        assert "runtime sweep:" in out
        data = json.loads(json_path.read_text())
        assert data["schema"] == CORPUS_SCHEMA
        assert data["analyse"] == "runtime"
        swept = 0
        for record in data["records"]:
            assert set(record) == set(RECORD_FIELDS)
            assert record["error"] is None
            # property and qss passes are skipped in runtime mode
            assert record["bounded"] is None
            assert record["schedulable"] is None
            if record["fleet_instances"] is not None:
                swept += 1
                assert record["fleet_events"] > 0
                assert record["fleet_cycles_total"] > 0
                assert record["fleet_cycles_p50"] <= record["fleet_cycles_p95"]
        assert swept >= 1
        assert data["summary"]["runtime"]["swept"] == swept
        rebuilt = corpus_to_json_dict(corpus_from_json_dict(data))
        assert rebuilt == data

    def test_corpus_list_families(self, capsys):
        assert main(["corpus", "--list-families"]) == 0
        out = capsys.readouterr().out
        assert "producer_consumer_ring" in out
        assert "gallery" in out

    def test_corpus_unknown_family_is_usage_error(self, capsys):
        assert main(["corpus", "--n", "4", "--families", "nope"]) == 2
        assert "unknown corpus families" in capsys.readouterr().err

    def test_corpus_family_subset_and_engine(self, capsys):
        assert (
            main(
                [
                    "corpus",
                    "--n",
                    "4",
                    "--families",
                    "producer_consumer_ring,random_marked_graph",
                    "--engine",
                    "legacy",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "legacy engine" in out
