"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.gallery import figure3a_schedulable, figure7_unschedulable
from repro.petrinet import save_net


@pytest.fixture
def fig3a_file(tmp_path):
    path = tmp_path / "fig3a.json"
    save_net(figure3a_schedulable(), path)
    return str(path)


@pytest.fixture
def fig7_file(tmp_path):
    path = tmp_path / "fig7.json"
    save_net(figure7_unschedulable(), path)
    return str(path)


class TestInfoAndAnalyse:
    def test_info(self, fig3a_file, capsys):
        assert main(["info", fig3a_file]) == 0
        out = capsys.readouterr().out
        assert "free-choice" in out
        assert "p1" in out

    def test_analyse_schedulable_exit_zero(self, fig3a_file, capsys):
        assert main(["analyse", fig3a_file, "--show-schedule"]) == 0
        out = capsys.readouterr().out
        assert "schedulable" in out
        assert "finite complete cycle" in out
        assert "task_t1" in out

    def test_analyse_unschedulable_exit_one(self, fig7_file, capsys):
        assert main(["analyse", fig7_file]) == 1
        assert "NOT quasi-statically schedulable" in capsys.readouterr().out

    def test_missing_file_is_error(self):
        with pytest.raises(SystemExit):
            main(["info", "/nonexistent/net.json"])


class TestSynthesizeAndDot:
    def test_synthesize_to_file(self, fig3a_file, tmp_path, capsys):
        out_file = tmp_path / "out.c"
        assert main(["synthesize", fig3a_file, "-o", str(out_file)]) == 0
        source = out_file.read_text()
        assert "void task_t1(void)" in source
        assert "choice_p1()" in source
        assert "lines of C" in capsys.readouterr().err

    def test_synthesize_unschedulable_fails(self, fig7_file, capsys):
        assert main(["synthesize", fig7_file]) == 1

    def test_synthesize_standalone_loop(self, fig3a_file, capsys):
        assert main(["synthesize", fig3a_file, "--standalone-loop"]) == 0
        assert "while (1) {" in capsys.readouterr().out

    def test_dot_output(self, fig3a_file, tmp_path):
        out_file = tmp_path / "net.dot"
        assert main(["dot", fig3a_file, "-o", str(out_file), "--title", "Fig 3a"]) == 0
        text = out_file.read_text()
        assert text.startswith("digraph")
        assert "Fig 3a" in text


class TestGalleryAndTable:
    def test_gallery_list(self, capsys):
        assert main(["gallery", "list"]) == 0
        out = capsys.readouterr().out
        assert "figure4" in out and "figure7" in out

    def test_gallery_unknown_is_usage_error(self, capsys):
        assert main(["gallery", "figure99"]) == 2

    def test_gallery_dump_to_stdout_is_json(self, capsys):
        assert main(["gallery", "figure4"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "figure4"

    def test_gallery_dump_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "fig4.json"
        assert main(["gallery", "figure4", "-o", str(out_file)]) == 0
        assert json.loads(out_file.read_text())["name"] == "figure4"

    def test_atm_table1_small(self, capsys):
        assert main(["atm-table1", "--cells", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Number of tasks" in out
        assert "clock-cycle ratio" in out
