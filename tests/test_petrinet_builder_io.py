"""Unit tests for the builder, serialization, DOT export and generators."""

from __future__ import annotations

import pytest

from repro.gallery import figure4_weighted, figure5_two_inputs
from repro.petrinet import (
    NetBuilder,
    is_conflict_free,
    is_free_choice,
    is_marked_graph,
    load_net,
    net_from_dict,
    net_from_json,
    net_to_dict,
    net_to_dot,
    net_to_json,
    save_net,
    t_invariants,
)
from repro.petrinet.exceptions import SerializationError
from repro.petrinet.generators import (
    choice_fan_net,
    independent_choices_net,
    multirate_choice_net,
    nested_choices_net,
    pipeline_net,
    random_free_choice_net,
    random_marked_graph,
    unschedulable_merge_net,
)
from repro.qss import count_distinct_reductions, is_schedulable


class TestBuilder:
    def test_chain_with_weights(self):
        net = NetBuilder("chain").chain("t1", "p1", ("t2", 3)).build()
        assert net.arc_weight("p1", "t2") == 3
        assert net.arc_weight("t1", "p1") == 1

    def test_name_convention_infers_node_kind(self):
        net = NetBuilder("infer").arc("t1", "p1").arc("p1", "consume").build()
        assert net.has_transition("t1")
        assert net.has_place("p1")
        assert net.has_transition("consume")

    def test_choice_and_merge_helpers(self):
        net = (
            NetBuilder("helpers")
            .choice("p_c", ["t_a", "t_b"])
            .merge(["t_a", "t_b"], "p_m")
            .build()
        )
        assert net.choice_places() == ["p_c"]
        assert net.merge_places() == ["p_m"]

    def test_place_declaration_idempotent(self):
        builder = NetBuilder("idem").place("p1", tokens=1)
        builder.place("p1", tokens=4)
        assert builder.build().initial_marking["p1"] == 4

    def test_source_and_sink_flags(self):
        net = NetBuilder("s").source("t_in").sink("t_out").build()
        assert net.transition("t_in").is_source_hint
        assert net.transition("t_out").is_sink_hint

    def test_tokens_helper(self):
        net = NetBuilder("tok").place("p1").tokens("p1", 7).build()
        assert net.initial_marking["p1"] == 7


class TestSerialization:
    def test_dict_round_trip(self, fig5):
        restored = net_from_dict(net_to_dict(fig5))
        assert restored.name == fig5.name
        assert restored.place_names == fig5.place_names
        assert restored.transition_names == fig5.transition_names
        assert restored.initial_marking == fig5.initial_marking
        for arc in fig5.arcs:
            assert restored.arc_weight(arc.source, arc.target) == arc.weight

    def test_json_round_trip_preserves_analysis(self, fig4):
        restored = net_from_json(net_to_json(fig4))
        assert t_invariants(restored) == t_invariants(fig4)

    def test_file_round_trip(self, tmp_path, fig4):
        path = tmp_path / "net.json"
        save_net(fig4, path)
        assert load_net(path).transition_names == fig4.transition_names

    def test_invalid_json_raises(self):
        with pytest.raises(SerializationError):
            net_from_json("{not json")

    def test_malformed_dict_raises(self):
        with pytest.raises(SerializationError):
            net_from_dict({"places": [{"missing_name": True}]})

    def test_costs_and_labels_preserved(self):
        net = NetBuilder("meta").transition("t1", label="work", cost=7).build()
        restored = net_from_dict(net_to_dict(net))
        assert restored.transition("t1").cost == 7
        assert restored.transition("t1").label == "work"


class TestDot:
    def test_dot_contains_all_nodes_and_weights(self, fig4):
        dot = net_to_dot(fig4, title="Figure 4")
        assert dot.startswith("digraph")
        for node in fig4.place_names + fig4.transition_names:
            assert f'"{node}"' in dot
        assert '[label="2"]' in dot
        assert "Figure 4" in dot

    def test_choice_places_highlighted(self, fig4):
        dot = net_to_dot(fig4)
        assert "fillcolor" in dot


class TestGenerators:
    def test_pipeline_is_marked_graph(self):
        net = pipeline_net(4, rates=[1, 2, 3, 1])
        assert is_marked_graph(net)
        assert len(net.transition_names) == 5

    def test_pipeline_validation(self):
        with pytest.raises(ValueError):
            pipeline_net(0)
        with pytest.raises(ValueError):
            pipeline_net(2, rates=[1])

    def test_choice_fan_counts(self):
        net = choice_fan_net(3)
        assert is_free_choice(net)
        assert count_distinct_reductions(net) == 3

    def test_independent_choices_exponential(self):
        net = independent_choices_net(3, branches=2)
        assert count_distinct_reductions(net) == 8
        assert is_schedulable(net)

    def test_nested_choices_linear(self):
        net = nested_choices_net(4)
        assert len(net.choice_places()) == 4
        # nested choices collapse: far fewer reductions than 2**4 allocations
        assert count_distinct_reductions(net) == 5
        assert is_schedulable(net)

    def test_multirate_choice_matches_figure4(self):
        net = multirate_choice_net(2, 2)
        reference = figure4_weighted()
        assert sorted(t_invariants(net), key=str) == sorted(
            t_invariants(reference), key=str
        )

    def test_unschedulable_merge_net(self):
        assert not is_schedulable(unschedulable_merge_net())

    def test_random_free_choice_nets_are_schedulable(self):
        for seed in range(5):
            net = random_free_choice_net(seed, n_choices=2)
            assert is_free_choice(net)
            assert is_schedulable(net)

    def test_random_marked_graph_is_consistent(self):
        for seed in range(3):
            net = random_marked_graph(seed)
            assert is_marked_graph(net)
            invariants = t_invariants(net)
            assert invariants, "a ring always has a T-invariant"
