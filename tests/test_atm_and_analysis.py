"""Tests for the ATM server model, workload, analysis and the Table I experiment.

These are the integration tests asserting the facts the paper reports in
Section 5: model size (49 transitions, 41 places, 11 choices), 120
finite complete cycles, two tasks, and the direction of the Table I
comparison (QSS smaller and faster than functional task partitioning).
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    build_comparison,
    functional_metrics,
    overhead_sensitivity,
    qss_metrics,
    schedule_buffer_bounds,
    sharing_tradeoff,
    total_buffer_tokens,
)
from repro.apps.atm import (
    ATM_CHOICE_PLACES,
    CELL_CHOICES,
    CELL_SOURCE,
    MODULE_PARTITION,
    TICK_CHOICES,
    TICK_SOURCE,
    AtmWorkload,
    build_atm_server_net,
    default_choice_probabilities,
    make_testbench,
)
from repro.baselines import build_functional_implementation
from repro.codegen import emit_c, synthesize
from repro.petrinet import is_free_choice
from repro.qss import partition_tasks
from repro.runtime import CostModel


class TestAtmModel:
    def test_size_matches_paper(self, atm_net):
        assert len(atm_net.transition_names) == 49
        assert len(atm_net.place_names) == 41
        assert len(atm_net.choice_places()) == 11

    def test_model_is_free_choice(self, atm_net):
        assert is_free_choice(atm_net)

    def test_two_independent_inputs(self, atm_net):
        assert set(atm_net.source_transitions()) == {CELL_SOURCE, TICK_SOURCE}

    def test_choice_places_listed(self, atm_net):
        assert set(ATM_CHOICE_PLACES) == set(atm_net.choice_places())
        assert len(CELL_CHOICES) + len(TICK_CHOICES) == 11

    def test_module_partition_covers_all_transitions(self, atm_net):
        assigned = [t for ts in MODULE_PARTITION.values() for t in ts]
        assert sorted(assigned) == sorted(atm_net.transition_names)
        assert len(MODULE_PARTITION) == 5  # the five modules of Figure 8

    def test_schedulable_with_120_cycles(self, atm_report):
        assert atm_report.schedulable
        assert atm_report.allocation_count == 2 ** 11
        assert atm_report.reduction_count == 120
        assert atm_report.schedule is not None
        assert atm_report.schedule.cycle_count == 120

    def test_every_cycle_contains_both_inputs(self, atm_report):
        for cycle in atm_report.schedule.cycles:
            assert cycle.contains(CELL_SOURCE)
            assert cycle.contains(TICK_SOURCE)

    def test_schedule_verifies(self, atm_report):
        assert atm_report.schedule.verify()

    def test_two_tasks_with_shared_wfq(self, atm_report):
        partition = partition_tasks(atm_report.schedule)
        assert partition.task_count == 2
        cell_task = partition.task_for_source(CELL_SOURCE)
        tick_task = partition.task_for_source(TICK_SOURCE)
        for shared in ("t_wfq_start", "t_compute_finish", "t_update_schedule"):
            assert shared in cell_task.transitions
            assert shared in tick_task.transitions
            assert shared in cell_task.shared_transitions

    def test_buffer_bounds_are_small(self, atm_report):
        bounds = schedule_buffer_bounds(atm_report.schedule)
        assert max(bounds.values()) <= 2
        assert total_buffer_tokens(atm_report.schedule) <= len(bounds) * 2


class TestAtmWorkload:
    def test_testbench_has_requested_cells(self):
        events = make_testbench(cells=15, seed=3)
        assert sum(1 for e in events if e.source == CELL_SOURCE) == 15
        assert any(e.source == TICK_SOURCE for e in events)
        assert [e.time for e in events] == sorted(e.time for e in events)

    def test_testbench_reproducible(self):
        a = make_testbench(cells=10, seed=1)
        b = make_testbench(cells=10, seed=1)
        assert [(e.time, e.source, dict(e.choices)) for e in a] == [
            (e.time, e.source, dict(e.choices)) for e in b
        ]

    def test_events_carry_only_their_choices(self):
        for event in make_testbench(cells=5, seed=2):
            if event.source == CELL_SOURCE:
                assert set(event.choices) == set(CELL_CHOICES)
            else:
                assert set(event.choices) == set(TICK_CHOICES)

    def test_probabilities_cover_all_choices(self, atm_net):
        probabilities = default_choice_probabilities()
        assert set(probabilities) == set(atm_net.choice_places())
        for place, branches in probabilities.items():
            assert set(branches) == set(atm_net.postset_names(place))

    def test_workload_summary(self):
        summary = AtmWorkload(cells=5, seed=1).summary()
        assert summary["cells"] == 5
        assert summary["events"] == summary["cells"] + summary["ticks"]


class TestTableOne:
    def test_table1_shape(self, atm_net, atm_events_small):
        """The headline result: QSS has fewer tasks, less code and fewer
        cycles than functional task partitioning."""
        table = build_comparison(atm_net, MODULE_PARTITION, atm_events_small)
        qss = table.row("QSS")
        functional = table.row("Functional task partitioning")
        assert qss.tasks == 2
        assert functional.tasks == 5
        assert qss.lines_of_code < functional.lines_of_code
        assert qss.clock_cycles < functional.clock_cycles
        # the improvements are significant but not extreme (paper: ~25-30%)
        assert 1.05 < table.ratio("clock_cycles", "QSS", "Functional task partitioning") < 1.8
        assert 1.05 < table.ratio("lines_of_code", "QSS", "Functional task partitioning") < 1.8
        rendered = table.render()
        assert "Number of tasks" in rendered
        assert "Clock cycles" in rendered

    def test_qss_metrics_returns_program(self, atm_net, atm_events_small):
        metrics, program = qss_metrics(atm_net, atm_events_small)
        assert metrics.tasks == program.task_count == 2
        assert metrics.clock_cycles > 0
        source = emit_c(program).source
        assert "void task_t_cell(void)" in source
        assert "void task_t_tick(void)" in source

    def test_functional_metrics(self, atm_net, atm_events_small):
        metrics = functional_metrics(atm_net, MODULE_PARTITION, atm_events_small)
        assert metrics.tasks == 5
        assert metrics.queue_cycles > 0

    def test_ratio_helpers(self, atm_net, atm_events_small):
        table = build_comparison(atm_net, MODULE_PARTITION, atm_events_small)
        with pytest.raises(KeyError):
            table.row("nope")
        assert table.ratio("tasks", "QSS", "Functional task partitioning") == 2.5


class TestTradeoffs:
    def test_sharing_tradeoff_orders_code_size(self, fig5):
        points = sharing_tradeoff(fig5)
        by_label = {p.label: p for p in points}
        assert (
            by_label["shared merges"].lines_of_code
            <= by_label["duplicated merges"].lines_of_code
        )
        assert all(p.buffer_slots >= 0 for p in points)

    def test_overhead_sensitivity_ratio_grows(self, atm_net, atm_events_small):
        functional = build_functional_implementation(atm_net, MODULE_PARTITION)
        records = overhead_sensitivity(
            atm_net,
            atm_events_small,
            activation_cycles=[0, 400],
            run_baseline=functional.run,
        )
        assert len(records) == 2
        assert records[1]["ratio"] > records[0]["ratio"]
