"""Property-based tests tying the algebraic and behavioural layers together.

Seeded randomness only (``random.Random``), no extra dependencies:

* S-invariants (place invariants) computed by :mod:`repro.petrinet.invariants`
  must be conserved along random firing sequences executed on the
  compiled engine — the algebra and the compiled token game must agree.
* On nets whose reachability graph is finite, the place bounds reported
  by Karp–Miller coverability must equal the exact maxima over all
  reachable markings.
* Boundedness verdicts must agree with exhaustive exploration: bounded
  nets explore completely, unbounded nets keep producing fresh markings
  until any cap.
"""

from __future__ import annotations

import random

import pytest

from repro.gallery import figure1a_free_choice, figure2_sdf_chain
from repro.petrinet import (
    build_reachability_graph,
    coverability_analysis,
    is_bounded,
    place_bounds,
    s_invariants,
)
from repro.petrinet.generators import (
    fork_join_pipeline,
    producer_consumer_ring,
    random_free_choice_net,
    random_marked_graph,
    unbalanced_choice_net,
)

SEEDS = range(15)
WALK_STEPS = 300


def _random_compiled_walk(net, seed, steps=WALK_STEPS):
    """Yield every marking tuple along a random compiled firing sequence."""
    compiled = net.compile()
    rng = random.Random(seed)
    marking = compiled.initial
    yield compiled, marking
    for _ in range(steps):
        enabled = compiled.enabled_transitions(marking)
        if not enabled:
            break
        marking = compiled.fire_unchecked(rng.choice(enabled), marking)
        yield compiled, marking


def _bounded_nets():
    for seed in SEEDS:
        yield f"mg_{seed}", random_marked_graph(seed)
    yield "pcr_1x1", producer_consumer_ring(1, 1)
    yield "pcr_2x3", producer_consumer_ring(2, 3)
    yield "pcr_4x2", producer_consumer_ring(4, 2)
    yield "fj_closed", fork_join_pipeline(3, 2, closed=True)
    yield "fig1a", figure1a_free_choice()


BOUNDED = list(_bounded_nets())
BOUNDED_IDS = [case_id for case_id, _ in BOUNDED]


class TestPInvariantConservation:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_marked_graph_invariants_conserved_on_compiled_walks(self, seed):
        net = random_marked_graph(seed)
        invariants = s_invariants(net)
        assert invariants, "a strongly connected marked graph has S-invariants"
        self._check_conserved(net, invariants, seed)

    @pytest.mark.parametrize("stations,capacity", [(1, 1), (2, 2), (3, 1), (4, 3)])
    def test_producer_consumer_credit_invariants(self, stations, capacity):
        net = producer_consumer_ring(stations, capacity)
        invariants = s_invariants(net)
        # one buffer+credit invariant per station, each summing to capacity
        assert len(invariants) == stations
        for invariant in invariants:
            assert sorted(invariant.values()) == [1, 1]
        self._check_conserved(net, invariants, seed=stations * 31 + capacity)

    def _check_conserved(self, net, invariants, seed):
        walk = _random_compiled_walk(net, seed)
        compiled, initial = next(walk)
        weight_vectors = [
            [invariant.get(place, 0) for place in compiled.places]
            for invariant in invariants
        ]
        expected = [
            sum(w * tokens for w, tokens in zip(weights, initial))
            for weights in weight_vectors
        ]
        steps = 0
        for compiled, marking in walk:
            steps += 1
            for weights, value in zip(weight_vectors, expected):
                assert (
                    sum(w * tokens for w, tokens in zip(weights, marking)) == value
                ), f"invariant violated after {steps} firings"
        assert steps > 0, "the walk should fire at least one transition"


class TestPlaceBoundsExact:
    @pytest.mark.parametrize("case_id,net", BOUNDED, ids=BOUNDED_IDS)
    def test_coverability_bounds_equal_reachable_maxima(self, case_id, net):
        graph = build_reachability_graph(net, max_markings=20_000)
        assert graph.complete, "bounded family nets must explore completely"
        exact = {
            place: max(marking[place] for marking in graph.markings)
            for place in net.place_names
        }
        bounds = place_bounds(net)
        assert None not in bounds.values()
        assert bounds == exact

    @pytest.mark.parametrize("case_id,net", BOUNDED, ids=BOUNDED_IDS)
    def test_bounded_nets_never_accelerate(self, case_id, net):
        # on a bounded net the Karp-Miller tree cannot accelerate, so its
        # node set is exactly the reachable marking set
        result = coverability_analysis(net)
        graph = build_reachability_graph(net, max_markings=20_000)
        assert result.bounded
        assert result.node_count == len(graph.markings)


class TestBoundednessVsExhaustive:
    @pytest.mark.parametrize("case_id,net", BOUNDED, ids=BOUNDED_IDS)
    def test_bounded_nets_explore_completely(self, case_id, net):
        assert is_bounded(net)
        assert build_reachability_graph(net, max_markings=20_000).complete

    @pytest.mark.parametrize("seed", SEEDS)
    def test_unbounded_nets_exhaust_any_cap(self, seed):
        # source transitions make these nets unbounded: coverability must
        # say so, and exhaustive exploration must keep finding fresh
        # markings until the cap
        net = random_free_choice_net(seed, n_choices=2, max_branch_length=2)
        assert not is_bounded(net)
        assert not build_reachability_graph(net, max_markings=1_500).complete

    @pytest.mark.parametrize("seed", range(5))
    def test_unbalanced_merge_is_unbounded(self, seed):
        net = unbalanced_choice_net(seed, merge=True)
        result = coverability_analysis(net)
        assert not result.bounded
        assert result.unbounded_places
        assert not build_reachability_graph(net, max_markings=1_500).complete

    def test_figure2_sdf_chain_unbounded_under_free_firing(self):
        # the paper's multirate chain has a source, so free firing is
        # unbounded even though QSS schedules it with bounded buffers
        net = figure2_sdf_chain()
        result = coverability_analysis(net)
        assert not result.bounded
        assert "p1" in result.unbounded_places


class TestTruncatedCoverabilityIsHonest:
    def test_complete_flag_reflects_the_cap(self):
        net = random_marked_graph(2)
        full = coverability_analysis(net)
        assert full.complete
        truncated = coverability_analysis(net, max_nodes=2)
        assert not truncated.complete
        assert truncated.node_count == 2

    def test_boundedness_helpers_decide_when_the_construction_finishes(self):
        # KM terminates on both of these (omega acceleration makes the
        # unbounded tree finite), so the helpers must answer, not raise
        assert is_bounded(random_marked_graph(2)) is True
        assert is_bounded(random_free_choice_net(0, n_choices=1)) is False

    def test_place_bounds_raise_on_truncation(self, monkeypatch):
        from repro.petrinet import reachability

        net = random_marked_graph(2)
        original = reachability.coverability_analysis

        def truncated(*args, **kwargs):
            kwargs["max_nodes"] = 2
            return original(*args, **kwargs)

        monkeypatch.setattr(reachability, "coverability_analysis", truncated)
        with pytest.raises(RuntimeError):
            place_bounds(net)

    def test_corpus_record_leaves_capped_boundedness_undecided(self):
        from repro.petrinet.corpus import CORPUS_FAMILIES, analyse_spec

        spec = CORPUS_FAMILIES["random_marked_graph"].spec(2)
        # a bounded net truncated before any omega shows up: the record
        # must say "undecided", not "bounded"
        record = analyse_spec(spec, max_nodes=2, max_markings=50)
        assert record.coverability_complete is False
        assert record.bounded is None
        assert record.max_place_bound is None
        # omega places found before the cap stay a definitive verdict
        merge_spec = CORPUS_FAMILIES["unschedulable_merge"].spec(0)
        record = analyse_spec(merge_spec, max_nodes=100, max_markings=50)
        assert record.bounded is False
        assert record.unbounded_places
