"""Lin-style safe-net software synthesis (restricted comparator).

The paper's related-work discussion (Section 1) describes Lin's approach
[Lin, DAC 1998]: synthesize a sequential program from a concurrent
specification through a Petri net that is assumed to be *safe*
(1-bounded).  Safeness guarantees termination of the synthesis and makes
every specification schedulable, but it rules out multirate behaviour
(weighted arcs), source/sink transitions modelling the environment, and
therefore inputs with independent rates.

This module implements that restricted flow so the limitation can be
demonstrated experimentally: :func:`is_applicable` reports whether the
method can handle a net at all, and :func:`synthesize_single_task`
produces a single sequential task for the nets it accepts (the
closed, safe nets).  The gallery and ATM nets are rejected for exactly
the reasons the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..petrinet import PetriNet
from ..petrinet.reachability import build_reachability_graph, is_safe
from ..petrinet.structure import is_ordinary


@dataclass
class SafeSynthesisResult:
    """Outcome of attempting Lin-style synthesis on a net."""

    applicable: bool
    reasons: List[str] = field(default_factory=list)
    sequence: Optional[List[str]] = None

    def explain(self) -> str:
        if self.applicable:
            length = len(self.sequence or [])
            return f"safe-net synthesis applicable; cyclic sequence of length {length}"
        return "safe-net synthesis not applicable: " + "; ".join(self.reasons)


def is_applicable(net: PetriNet) -> SafeSynthesisResult:
    """Check the preconditions of the safe-net method on ``net``."""
    reasons: List[str] = []
    if net.source_transitions() or net.sink_transitions():
        reasons.append(
            "the net has source/sink transitions modelling the environment, "
            "which safeness-based synthesis cannot represent"
        )
    if not is_ordinary(net):
        reasons.append(
            "the net has weighted arcs (multirate behaviour), which a safe "
            "net cannot express"
        )
    if not reasons and not is_safe(net):
        reasons.append("the net is not 1-bounded (safe)")
    return SafeSynthesisResult(applicable=not reasons, reasons=reasons)


def synthesize_single_task(
    net: PetriNet, max_length: int = 10_000
) -> SafeSynthesisResult:
    """Produce a single cyclic firing sequence for a safe, closed net.

    The sequence is found by walking the (finite, because the net is
    safe) reachability graph until the initial marking recurs, always
    taking the first enabled transition; this mirrors the determinised
    sequential program Lin's method emits.  Non-applicable nets are
    reported as such without raising.
    """
    result = is_applicable(net)
    if not result.applicable:
        return result
    marking = net.initial_marking
    sequence: List[str] = []
    current = marking
    for _ in range(max_length):
        enabled = net.enabled_transitions(current)
        if not enabled:
            result.reasons.append("the net deadlocks before returning to the initial marking")
            result.applicable = False
            return result
        transition = enabled[0]
        sequence.append(transition)
        current = net.fire(transition, current)
        if current == marking:
            result.sequence = sequence
            return result
    result.reasons.append(
        "no cyclic sequence found within the exploration bound"
    )
    result.applicable = False
    return result
