"""Functional task partitioning — the comparison implementation of Table I.

The paper compares its QSS implementation (two tasks, one per
independent-rate input) against an implementation "obtained by
synthesizing separately one task for each of the five modules shown in
figure 8".  That is what this module builds: one software task per
functional module, with the modules communicating through RTOS message
queues.  Processing a single cell therefore crosses several tasks (MSD →
BUFFER → WFQ_SCHEDULING, ...), and every crossing pays a queue
send/receive plus an activation of the target task — the overhead that
makes this implementation both larger and slower than the QSS one.

Code size is measured by generating the per-module task code with the
same code generator used for QSS (plus per-task/per-queue boilerplate);
execution is measured with the net-level reactive simulator and the same
cycle cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..codegen.emit_c import EmitOptions, emit_c
from ..codegen.generator import CodegenOptions, generate_task_program
from ..codegen.ir import Program
from ..petrinet import ENGINE_COMPILED, PetriNet
from ..qss.tasks import TaskDefinition
from ..runtime.cost import CostModel
from ..runtime.events import Event
from ..runtime.reactive import ModuleAssignment, ReactiveNetSimulator
from ..runtime.rtos import ExecutionStats

#: Extra generated lines charged per task (RTOS registration, task control
#: block, entry/exit glue) and per inter-task queue (declaration, init,
#: send/receive wrappers).  These are the scaffolding costs that a
#: partitioning with more tasks pays in real code bases.
TASK_BOILERPLATE_LINES = 40
QUEUE_BOILERPLATE_LINES = 18


@dataclass
class FunctionalImplementation:
    """A one-task-per-module software implementation.

    Attributes
    ----------
    net:
        The specification.
    modules:
        ``{module name: [transitions]}`` — the functional partition.
    program:
        Generated per-module task code.
    queues:
        Inter-module channels ``(producer module, consumer module, place)``.
    """

    net: PetriNet
    modules: Dict[str, List[str]]
    program: Program
    queues: List[Tuple[str, str, str]]

    @property
    def task_count(self) -> int:
        return len(self.modules)

    def lines_of_code(self) -> int:
        """Generated C lines plus per-task and per-queue boilerplate."""
        emission = emit_c(
            self.program,
            EmitOptions(boilerplate_lines_per_task=TASK_BOILERPLATE_LINES),
        )
        return emission.lines_of_code + QUEUE_BOILERPLATE_LINES * len(self.queues)

    def run(
        self,
        events: Sequence[Event],
        cost_model: Optional[CostModel] = None,
        engine: str = ENGINE_COMPILED,
    ) -> ExecutionStats:
        """Execute the testbench on the multi-task implementation.

        ``engine`` selects the reactive simulator core
        (``"compiled"`` integer ids, default, or ``"legacy"`` string
        dicts); the stats are identical either way.
        """
        assignment = ModuleAssignment.from_groups(self.modules)
        simulator = ReactiveNetSimulator(
            self.net, assignment, cost_model, engine=engine
        )
        return simulator.run(events)


def _module_entry_transitions(
    net: PetriNet, module: str, transitions: Sequence[str], owner: Mapping[str, str]
) -> List[str]:
    """Transitions of a module triggered from outside it.

    These are the module task's activation points: real environment
    sources plus transitions consuming from a place fed by another module
    (an incoming message queue).
    """
    entries: List[str] = []
    for transition in transitions:
        preset = net.preset_names(transition)
        if not preset:
            entries.append(transition)
            continue
        producers: Set[str] = set()
        for place in preset:
            producers.update(net.preset_names(place))
        if any(owner.get(p) != module for p in producers) or not producers:
            entries.append(transition)
    return entries


def inter_module_queues(
    net: PetriNet, modules: Mapping[str, Sequence[str]]
) -> List[Tuple[str, str, str]]:
    """The message queues implied by the partition: one per place whose
    producer and consumer lie in different modules."""
    owner: Dict[str, str] = {}
    for module, transitions in modules.items():
        for transition in transitions:
            owner[transition] = module
    queues: List[Tuple[str, str, str]] = []
    for place in net.place_names:
        producers = {owner[t] for t in net.preset_names(place) if t in owner}
        consumers = {owner[t] for t in net.postset_names(place) if t in owner}
        for producer in sorted(producers):
            for consumer in sorted(consumers):
                if producer != consumer:
                    queues.append((producer, consumer, place))
    return queues


def build_functional_implementation(
    net: PetriNet,
    modules: Mapping[str, Sequence[str]],
    options: Optional[CodegenOptions] = None,
) -> FunctionalImplementation:
    """Synthesize the one-task-per-module implementation of ``net``."""
    owner: Dict[str, str] = {}
    for module, transitions in modules.items():
        for transition in transitions:
            owner[transition] = module
    missing = [t for t in net.transition_names if t not in owner]
    if missing:
        raise ValueError(
            f"module partition does not cover transitions: {missing}"
        )

    program = Program(name=f"{net.name}_functional")
    for module, transitions in modules.items():
        entries = _module_entry_transitions(net, module, transitions, owner)
        places: Set[str] = set()
        for transition in transitions:
            places.update(net.preset_names(transition))
            places.update(net.postset_names(transition))
        task = TaskDefinition(
            name=f"task_{module}",
            source_transitions=tuple(entries),
            transitions=frozenset(transitions),
            places=frozenset(places),
            net=net.subnet(places, transitions, name=f"task_{module}"),
        )
        program.tasks.append(
            generate_task_program(net, task, options or CodegenOptions())
        )

    queues = inter_module_queues(net, modules)
    return FunctionalImplementation(
        net=net,
        modules={m: list(ts) for m, ts in modules.items()},
        program=program,
        queues=queues,
    )
