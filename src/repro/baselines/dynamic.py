"""Fully dynamic scheduling baseline.

The paper's conclusions contrast quasi-static scheduling with dynamic
scheduling: "Quasi-Static Scheduling, if compared to dynamic scheduling,
minimizes the execution runtime overhead since it maximizes the amount
of work done at compile time."  This baseline models the opposite
extreme: every transition of the specification is its own schedulable
unit (a micro-task), so every firing pays the RTOS dispatch overhead and
every token transfer between transitions is an inter-task message.

It is used by the ablation benchmark (E12 in DESIGN.md) to show that the
QSS advantage over functional partitioning widens further against fully
dynamic execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..petrinet import ENGINE_COMPILED, PetriNet
from ..runtime.cost import CostModel
from ..runtime.events import Event
from ..runtime.reactive import ModuleAssignment, ReactiveNetSimulator
from ..runtime.rtos import ExecutionStats

#: Lines of scheduler/task scaffolding charged per micro-task when
#: estimating code size for the dynamic implementation.
MICROTASK_BOILERPLATE_LINES = 8


@dataclass
class DynamicImplementation:
    """A fully dynamic (one micro-task per transition) implementation."""

    net: PetriNet

    @property
    def task_count(self) -> int:
        return len(self.net.transition_names)

    def lines_of_code(self) -> int:
        """Rough code-size estimate: one call line per transition body plus
        scheduler boilerplate per micro-task."""
        return self.task_count * (1 + MICROTASK_BOILERPLATE_LINES)

    def run(
        self,
        events: Sequence[Event],
        cost_model: Optional[CostModel] = None,
        engine: str = ENGINE_COMPILED,
    ) -> ExecutionStats:
        """Execute the testbench; ``engine`` selects the simulator core."""
        assignment = ModuleAssignment.one_task_per_transition(self.net)
        simulator = ReactiveNetSimulator(
            self.net, assignment, cost_model, engine=engine
        )
        return simulator.run(events)


def build_dynamic_implementation(net: PetriNet) -> DynamicImplementation:
    """Build the fully dynamic baseline for ``net``."""
    return DynamicImplementation(net=net)
