"""Baseline implementations the paper compares against (or dismisses)."""

from .dynamic import (
    MICROTASK_BOILERPLATE_LINES,
    DynamicImplementation,
    build_dynamic_implementation,
)
from .functional_partitioning import (
    QUEUE_BOILERPLATE_LINES,
    TASK_BOILERPLATE_LINES,
    FunctionalImplementation,
    build_functional_implementation,
    inter_module_queues,
)
from .lin_safe import SafeSynthesisResult, is_applicable, synthesize_single_task

__all__ = [
    "FunctionalImplementation",
    "build_functional_implementation",
    "inter_module_queues",
    "TASK_BOILERPLATE_LINES",
    "QUEUE_BOILERPLATE_LINES",
    "DynamicImplementation",
    "build_dynamic_implementation",
    "MICROTASK_BOILERPLATE_LINES",
    "SafeSynthesisResult",
    "is_applicable",
    "synthesize_single_task",
]
