"""C code emission from the task IR.

The emitter produces a self-contained, compilable C translation unit:

* one ``void <task>(void)`` function per task, invoked by the RTOS when
  the task's input event occurs;
* ``static int count_<place>`` counting variables for multirate buffers
  (initialized from the initial marking and persistent across
  activations, exactly like the paper's ``count()`` variables);
* ``extern`` declarations for the user-supplied transition functions
  (``void t_name(void)``) and choice readers (``int choice_place(void)``);
* shared fragments: a fragment referenced from more than one site is
  emitted once as a ``static void`` helper (the structured counterpart
  of the paper's label/``goto`` sharing); singly-referenced fragments
  are inlined so that simple nets produce exactly the nested
  ``while (1) { t1; if (p1) { ... } else { ... } }`` shape shown in the
  paper's Section 4 listing.

Net names are arbitrary strings (corpus generators produce dashes,
spaces, leading digits, ...), so every identifier in the emitted unit is
allocated through a :class:`_NameTable`: names are sanitized to C
identifier syntax and collisions (including cross-task counter
collisions and C keywords) are resolved with deterministic ``_2``,
``_3``, ... suffixes.  The resulting name maps are published on the
emission as :class:`CNames` so that the native tier
(:mod:`repro.codegen.native`) can generate a matching driver.

The emitter also reports the generated code size in lines, which is the
"Lines of C code" metric of Table I.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .ir import (
    Block,
    CallFragment,
    ChoiceIf,
    Comment,
    DecCount,
    FireTransition,
    Fragment,
    Guarded,
    IncCount,
    Program,
    TaskProgram,
)

INDENT = "    "


@dataclass
class EmitOptions:
    """Options controlling the C rendering.

    Attributes
    ----------
    standalone_loop:
        Emit each task wrapped in ``while (1) { ... }`` (the paper's
        single-task listing style) instead of a per-activation function
        body called by the RTOS.
    inline_single_use:
        Inline fragments referenced exactly once (default True).  With
        sharing disabled entirely at generation time every fragment is
        referenced once, so this reproduces fully-inlined code.
    inline_all:
        Inline every fragment at every call site (duplicating merge
        continuations instead of sharing them); used by the code-size
        trade-off analysis.  Ignored for fragments that would recurse.
    boilerplate_lines_per_task:
        Extra lines charged per task for RTOS registration/activation
        scaffolding when estimating code size (used so that
        implementations with more tasks pay the overhead the paper
        attributes to task management).
    explicit_choice_tail:
        Emit the last branch of every choice as an explicit
        ``else if (choice == ...)`` instead of the paper's catch-all
        ``else``.  The catch-all matches the paper listing but executes
        the last branch even when the data selected an alternative that
        belongs to another task; the IR interpreter (and the net) do
        nothing in that case.  The native execution tier enables this so
        that compiled and interpreted runs agree choice-for-choice.
    instrument:
        Thread the interpreter's cycle accounting through the emitted
        code: every fragment entry, guard test, choice test, counter
        update and transition firing charges the corresponding
        ``qss_*_cycles`` runtime variable (defined by the native
        driver).  Off by default so the paper-facing listing stays
        clean.
    """

    standalone_loop: bool = False
    inline_single_use: bool = True
    inline_all: bool = False
    boilerplate_lines_per_task: int = 0
    explicit_choice_tail: bool = False
    instrument: bool = False


@dataclass
class CNames:
    """Identifier maps of an emission, for tooling layered on the C text.

    All dicts preserve emission order (macro values are the dict order
    of :attr:`choice_values`).  ``counters`` is keyed per task because
    two tasks may legitimately count the same place independently — the
    emitted identifiers then differ (``count_p``, ``count_p_2``).
    """

    transitions: Dict[str, str] = field(default_factory=dict)
    choice_macros: Dict[str, str] = field(default_factory=dict)
    choice_values: Dict[str, int] = field(default_factory=dict)
    choice_places: Dict[str, str] = field(default_factory=dict)
    tasks: Dict[str, str] = field(default_factory=dict)
    counters: Dict[str, Dict[str, str]] = field(default_factory=dict)


@dataclass
class CEmission:
    """Result of emitting a program: the source text and size metrics."""

    source: str
    lines_of_code: int
    lines_per_task: Dict[str, int] = field(default_factory=dict)
    names: CNames = field(default_factory=CNames)


_IDENT_BAD = re.compile(r"[^0-9A-Za-z_]")

#: C keywords (C99) plus a few common library identifiers the driver
#: pulls in; pre-seeded as "used" so a net element named ``if`` or
#: ``free`` cannot shadow them.
_RESERVED = frozenset(
    """
    auto break case char const continue default do double else enum extern
    float for goto if inline int long register restrict return short signed
    sizeof static struct switch typedef union unsigned void volatile while
    _Bool _Complex _Imaginary
    main malloc realloc free memcpy
    """.split()
)


def sanitize_identifier(name: str) -> str:
    """Best-effort C identifier for ``name`` (no uniqueness guarantee).

    Non-identifier characters become ``_``, a leading digit gets an
    ``n`` prefix, and the empty string becomes ``_``.  Collision-proof
    allocation is :class:`_NameTable`'s job.
    """
    base = _IDENT_BAD.sub("_", name)
    if not base:
        return "_"
    if base[0].isdigit():
        base = "n" + base
    return base


class _NameTable:
    """Deterministic, collision-proof identifier allocation.

    All emitted identifiers (macros, extern functions, choice readers,
    task functions, counters, fragment helpers) share one namespace.
    The first request for a candidate gets it verbatim (so C-safe nets
    emit exactly the paper's ``count_p2`` / ``t1`` names); later
    colliding requests get ``_2``, ``_3``, ... suffixes.  The ``qss_``
    and ``repro_qss_`` prefixes are reserved for the native driver.
    """

    def __init__(self) -> None:
        self._used: Set[str] = set(_RESERVED)
        self._assigned: Dict[Tuple, str] = {}

    def assign(self, key: Tuple, candidate: str) -> str:
        if key in self._assigned:
            return self._assigned[key]
        base = sanitize_identifier(candidate)
        if base.startswith("qss_") or base.startswith("repro_qss_"):
            base = "x_" + base
        name = base
        suffix = 2
        while name in self._used:
            name = f"{base}_{suffix}"
            suffix += 1
        self._used.add(name)
        self._assigned[key] = name
        return name

    def get(self, key: Tuple) -> str:
        return self._assigned[key]


def _collect_externs(program: Program) -> Tuple[List[str], List[str]]:
    transitions: Set[str] = set()
    choices: Set[str] = set()

    def walk(block: Block) -> None:
        for statement in block:
            if isinstance(statement, FireTransition):
                transitions.add(statement.transition)
            elif isinstance(statement, Guarded):
                walk(statement.body)
            elif isinstance(statement, ChoiceIf):
                choices.add(statement.place)
                for choice, branch in statement.branches:
                    transitions.add(choice)
                    walk(branch)

    for task in program.tasks:
        for fragment in task.fragments.values():
            walk(fragment.body)
    return sorted(transitions), sorted(choices)


def _recursive_fragments(task: TaskProgram) -> Set[str]:
    """Names of fragments that sit on a call cycle of the task."""
    graph: Dict[str, Set[str]] = {name: set() for name in task.fragments}

    def walk(owner: str, block: Block) -> None:
        for statement in block:
            if isinstance(statement, Guarded):
                walk(owner, statement.body)
            elif isinstance(statement, ChoiceIf):
                for _, branch in statement.branches:
                    walk(owner, branch)
            elif isinstance(statement, CallFragment):
                graph[owner].add(statement.fragment)

    for name, fragment in task.fragments.items():
        walk(name, fragment.body)

    recursive: Set[str] = set()
    for start in graph:
        stack = list(graph[start])
        seen: Set[str] = set()
        while stack:
            node = stack.pop()
            if node == start:
                recursive.add(start)
                break
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.get(node, ()))
    return recursive


class _TaskEmitter:
    def __init__(
        self,
        task: TaskProgram,
        options: EmitOptions,
        names: Optional[_NameTable] = None,
    ) -> None:
        self.task = task
        self.options = options
        self.names = names if names is not None else _NameTable()
        self.lines: List[str] = []
        self._inline_stack: List[str] = []
        self._recursive = _recursive_fragments(task)

    # -- name lookups ------------------------------------------------------
    def _counter(self, place: str) -> str:
        return self.names.assign(
            ("counter", self.task.name, place), f"count_{place}"
        )

    def _transition_fn(self, transition: str) -> str:
        return self.names.assign(("fn", transition), transition)

    def _choice_reader(self, place: str) -> str:
        return self.names.assign(("choice", place), f"choice_{place}")

    def _choice_macro(self, transition: str) -> str:
        return self.names.assign(("macro", transition), f"CHOICE_{transition.upper()}")

    def _task_fn(self) -> str:
        return self.names.assign(("task", self.task.name), self.task.name)

    def _helper_fn(self, fragment: Fragment) -> str:
        return self.names.assign(
            ("helper", self.task.name, fragment.name),
            f"{self._task_fn()}_{fragment.name}",
        )

    # -- low level -------------------------------------------------------
    def _emit(self, depth: int, text: str) -> None:
        self.lines.append(INDENT * depth + text)

    def _inline_by_options(self, fragment: Fragment) -> bool:
        if self.options.inline_all:
            return True
        if not self.options.inline_single_use:
            return False
        return fragment.call_count <= 1

    def _is_inline(self, fragment: Fragment) -> bool:
        if fragment.name in self._inline_stack:
            # recursive fragment (cyclic task net): must stay a helper call
            return False
        return self._inline_by_options(fragment)

    def _helper_fragments(self) -> List[Fragment]:
        """Fragments that need an emitted helper body: everything not
        inlined by the options, plus fragments on call cycles (which
        surface as helper calls when inlining hits the recursion)."""
        return [
            fragment
            for fragment in self.task.fragments.values()
            if not self._inline_by_options(fragment)
            or fragment.name in self._recursive
        ]

    # -- statement rendering ------------------------------------------------
    def _emit_body(self, block: Block, depth: int) -> None:
        """Emit a fragment body entered with call semantics (charges the
        fragment-call overhead when instrumenting)."""
        if self.options.instrument:
            self._emit(depth, "qss_cycles += qss_call_cycles;")
        self._emit_block(block, depth)

    def _emit_block(self, block: Block, depth: int) -> None:
        for statement in block:
            self._emit_statement(statement, depth)

    def _guard_condition(self, statement: Guarded) -> str:
        condition = " && ".join(
            f"{self._counter(place)} >= {threshold}"
            for place, threshold in statement.conditions
        )
        if self.options.instrument:
            # comma expression: charge one control test per evaluation,
            # including the failing test that exits a while loop — the
            # interpreter charges the same way.
            return f"(qss_cycles += qss_test_cycles, {condition})"
        return condition

    def _emit_statement(self, statement, depth: int) -> None:
        instrument = self.options.instrument
        if isinstance(statement, Comment):
            self._emit(depth, f"/* {statement.text} */")
        elif isinstance(statement, FireTransition):
            call = f"{self._transition_fn(statement.transition)}();"
            if instrument:
                if statement.cost == 1:
                    call += " qss_cycles += qss_tr_unit;"
                else:
                    call += f" qss_cycles += qss_tr_unit * {statement.cost};"
            self._emit(depth, call)
        elif isinstance(statement, IncCount):
            name = self._counter(statement.place)
            if statement.amount == 1:
                text = f"{name}++;"
            else:
                text = f"{name} += {statement.amount};"
            if instrument:
                text += " qss_cycles += qss_counter_cycles;"
            self._emit(depth, text)
        elif isinstance(statement, DecCount):
            name = self._counter(statement.place)
            if statement.amount == 1:
                text = f"{name}--;"
            else:
                text = f"{name} -= {statement.amount};"
            if instrument:
                text += " qss_cycles += qss_counter_cycles;"
            self._emit(depth, text)
        elif isinstance(statement, Guarded):
            keyword = "while" if statement.kind == "while" else "if"
            self._emit(depth, f"{keyword} ({self._guard_condition(statement)}) {{")
            self._emit_block(statement.body, depth + 1)
            self._emit(depth, "}")
        elif isinstance(statement, ChoiceIf):
            reader = f"{self._choice_reader(statement.place)}()"
            last = len(statement.branches) - 1
            for index, (choice, branch) in enumerate(statement.branches):
                comparison = f"{reader} == {self._choice_macro(choice)}"
                if index == 0 and instrument:
                    # one control test per choice, like the interpreter
                    comparison = f"(qss_cycles += qss_test_cycles, {comparison})"
                if index == 0:
                    self._emit(depth, f"if ({comparison}) {{")
                elif index < last or self.options.explicit_choice_tail:
                    self._emit(depth, f"}} else if ({comparison}) {{")
                else:
                    self._emit(depth, "} else {")
                self._emit_block(branch, depth + 1)
            self._emit(depth, "}")
        elif isinstance(statement, CallFragment):
            fragment = self.task.fragments[statement.fragment]
            if self._is_inline(fragment):
                self._inline_stack.append(fragment.name)
                self._emit_body(fragment.body, depth)
                self._inline_stack.pop()
            else:
                self._emit(depth, f"{self._helper_fn(fragment)}();")
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown IR statement {statement!r}")

    # -- task rendering ---------------------------------------------------
    def emit(self) -> List[str]:
        task_fn = self._task_fn()
        # counters
        for place, initial in sorted(self.task.counters.items()):
            self._emit(0, f"static int {self._counter(place)} = {initial};")
        if self.task.counters:
            self._emit(0, "")
        # shared fragment helpers (everything referenced more than once,
        # plus call-cycle members), forward-declared so helpers may call
        # helpers defined later
        helpers = self._helper_fragments()
        if helpers:
            for fragment in helpers:
                self._emit(0, f"static void {self._helper_fn(fragment)}(void);")
            self._emit(0, "")
        for fragment in helpers:
            self._emit(0, f"static void {self._helper_fn(fragment)}(void)")
            self._emit(0, "{")
            self._inline_stack.append(fragment.name)
            self._emit_body(fragment.body, 1)
            self._inline_stack.pop()
            self._emit(0, "}")
            self._emit(0, "")
        # the task entry function
        self._emit(0, f"void {task_fn}(void)")
        self._emit(0, "{")
        body_depth = 1
        if self.options.standalone_loop:
            self._emit(1, "while (1) {")
            body_depth = 2
        for entry in self.task.entry_fragments:
            fragment = self.task.fragments[entry]
            if self._is_inline(fragment):
                self._inline_stack.append(fragment.name)
                self._emit_body(fragment.body, body_depth)
                self._inline_stack.pop()
            else:
                # the fragment-call overhead is charged inside the helper
                self._emit(body_depth, f"{self._helper_fn(fragment)}();")
        if self.options.standalone_loop:
            self._emit(1, "}")
        self._emit(0, "}")
        return self.lines


def emit_c(program: Program, options: Optional[EmitOptions] = None) -> CEmission:
    """Emit the complete C translation unit for ``program``."""
    options = options or EmitOptions()
    transitions, choices = _collect_externs(program)
    table = _NameTable()
    names = CNames()
    # allocate the global namespace in emission order so that C-safe nets
    # get exactly the historical identifiers
    for index, transition in enumerate(transitions):
        names.choice_macros[transition] = table.assign(
            ("macro", transition), f"CHOICE_{transition.upper()}"
        )
        names.choice_values[transition] = index
    for transition in transitions:
        names.transitions[transition] = table.assign(("fn", transition), transition)
    for place in choices:
        names.choice_places[place] = table.assign(("choice", place), f"choice_{place}")

    lines: List[str] = []
    lines.append(f"/* Generated by repro.codegen for model {program.name!r}. */")
    lines.append("/* Quasi-statically scheduled implementation; one function per task. */")
    lines.append("")
    for transition in transitions:
        value = names.choice_values[transition]
        lines.append(f"#define {names.choice_macros[transition]} {value}")
    if transitions:
        lines.append("")
    for transition in transitions:
        lines.append(f"extern void {names.transitions[transition]}(void);")
    for place in choices:
        lines.append(f"extern int {names.choice_places[place]}(void);")
    if options.instrument:
        lines.append("")
        lines.append("/* cycle accounting: defined by the native driver */")
        lines.append("extern long long qss_cycles;")
        lines.append(
            "extern long long qss_call_cycles, qss_test_cycles, "
            "qss_counter_cycles, qss_tr_unit;"
        )
    lines.append("")

    per_task: Dict[str, int] = {}
    for task in program.tasks:
        emitter = _TaskEmitter(task, options, names=table)
        task_lines = emitter.emit()
        per_task[task.name] = len(task_lines) + options.boilerplate_lines_per_task
        names.tasks[task.name] = table.get(("task", task.name))
        names.counters[task.name] = {
            place: table.get(("counter", task.name, place))
            for place in sorted(task.counters)
        }
        lines.extend(task_lines)
        lines.append("")

    source = "\n".join(lines).rstrip() + "\n"
    # Code size metric: every emitted source line plus the boilerplate lines
    # charged per task (RTOS registration/activation scaffolding that the
    # paper's task counts pay for but that we do not materialize as text).
    total = len(source.splitlines()) + options.boilerplate_lines_per_task * len(
        program.tasks
    )
    return CEmission(
        source=source, lines_of_code=total, lines_per_task=per_task, names=names
    )


def lines_of_code(program: Program, options: Optional[EmitOptions] = None) -> int:
    """Convenience wrapper returning only the generated line count."""
    return emit_c(program, options).lines_of_code
