"""C code emission from the task IR.

The emitter produces a self-contained, compilable C translation unit:

* one ``void <task>(void)`` function per task, invoked by the RTOS when
  the task's input event occurs;
* ``static int count_<place>`` counting variables for multirate buffers
  (initialized from the initial marking and persistent across
  activations, exactly like the paper's ``count()`` variables);
* ``extern`` declarations for the user-supplied transition functions
  (``void t_name(void)``) and choice readers (``int choice_place(void)``);
* shared fragments: a fragment referenced from more than one site is
  emitted once as a ``static void`` helper (the structured counterpart
  of the paper's label/``goto`` sharing); singly-referenced fragments
  are inlined so that simple nets produce exactly the nested
  ``while (1) { t1; if (p1) { ... } else { ... } }`` shape shown in the
  paper's Section 4 listing.

The emitter also reports the generated code size in lines, which is the
"Lines of C code" metric of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .ir import (
    Block,
    CallFragment,
    ChoiceIf,
    Comment,
    DecCount,
    FireTransition,
    Fragment,
    Guarded,
    IncCount,
    Program,
    TaskProgram,
)

INDENT = "    "


@dataclass
class EmitOptions:
    """Options controlling the C rendering.

    Attributes
    ----------
    standalone_loop:
        Emit each task wrapped in ``while (1) { ... }`` (the paper's
        single-task listing style) instead of a per-activation function
        body called by the RTOS.
    inline_single_use:
        Inline fragments referenced exactly once (default True).  With
        sharing disabled entirely at generation time every fragment is
        referenced once, so this reproduces fully-inlined code.
    inline_all:
        Inline every fragment at every call site (duplicating merge
        continuations instead of sharing them); used by the code-size
        trade-off analysis.  Ignored for fragments that would recurse.
    boilerplate_lines_per_task:
        Extra lines charged per task for RTOS registration/activation
        scaffolding when estimating code size (used so that
        implementations with more tasks pay the overhead the paper
        attributes to task management).
    """

    standalone_loop: bool = False
    inline_single_use: bool = True
    inline_all: bool = False
    boilerplate_lines_per_task: int = 0


@dataclass
class CEmission:
    """Result of emitting a program: the source text and size metrics."""

    source: str
    lines_of_code: int
    lines_per_task: Dict[str, int] = field(default_factory=dict)


def _counter_name(place: str) -> str:
    return f"count_{place}"


def _function_name(name: str) -> str:
    return name.replace("-", "_")


class _TaskEmitter:
    def __init__(self, task: TaskProgram, options: EmitOptions) -> None:
        self.task = task
        self.options = options
        self.lines: List[str] = []
        self._emitted_helpers: Set[str] = set()
        self._inline_stack: List[str] = []

    # -- low level -------------------------------------------------------
    def _emit(self, depth: int, text: str) -> None:
        self.lines.append(INDENT * depth + text)

    def _is_inline(self, fragment: Fragment) -> bool:
        if fragment.name in self._inline_stack:
            # recursive fragment (cyclic task net): must stay a helper call
            return False
        if self.options.inline_all:
            return True
        if not self.options.inline_single_use:
            return False
        return fragment.call_count <= 1

    # -- statement rendering ------------------------------------------------
    def _emit_block(self, block: Block, depth: int) -> None:
        for statement in block:
            self._emit_statement(statement, depth)

    def _emit_statement(self, statement, depth: int) -> None:
        if isinstance(statement, Comment):
            self._emit(depth, f"/* {statement.text} */")
        elif isinstance(statement, FireTransition):
            self._emit(depth, f"{_function_name(statement.transition)}();")
        elif isinstance(statement, IncCount):
            name = _counter_name(statement.place)
            if statement.amount == 1:
                self._emit(depth, f"{name}++;")
            else:
                self._emit(depth, f"{name} += {statement.amount};")
        elif isinstance(statement, DecCount):
            name = _counter_name(statement.place)
            if statement.amount == 1:
                self._emit(depth, f"{name}--;")
            else:
                self._emit(depth, f"{name} -= {statement.amount};")
        elif isinstance(statement, Guarded):
            condition = " && ".join(
                f"{_counter_name(place)} >= {threshold}"
                for place, threshold in statement.conditions
            )
            keyword = "while" if statement.kind == "while" else "if"
            self._emit(depth, f"{keyword} ({condition}) {{")
            self._emit_block(statement.body, depth + 1)
            self._emit(depth, "}")
        elif isinstance(statement, ChoiceIf):
            reader = f"choice_{statement.place}()"
            for index, (choice, branch) in enumerate(statement.branches):
                if index == 0:
                    self._emit(
                        depth, f"if ({reader} == CHOICE_{choice.upper()}) {{"
                    )
                elif index < len(statement.branches) - 1:
                    self._emit(
                        depth,
                        f"}} else if ({reader} == CHOICE_{choice.upper()}) {{",
                    )
                else:
                    self._emit(depth, "} else {")
                self._emit_block(branch, depth + 1)
            self._emit(depth, "}")
        elif isinstance(statement, CallFragment):
            fragment = self.task.fragments[statement.fragment]
            if self._is_inline(fragment):
                self._inline_stack.append(fragment.name)
                self._emit_block(fragment.body, depth)
                self._inline_stack.pop()
            else:
                self._emit(
                    depth, f"{_function_name(self.task.name)}_{fragment.name}();"
                )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown IR statement {statement!r}")

    # -- task rendering ---------------------------------------------------
    def emit(self) -> List[str]:
        task_fn = _function_name(self.task.name)
        # counters
        for place, initial in sorted(self.task.counters.items()):
            self._emit(0, f"static int {_counter_name(place)} = {initial};")
        if self.task.counters:
            self._emit(0, "")
        # shared fragment helpers (everything referenced more than once)
        for fragment in self.task.fragments.values():
            if self._is_inline(fragment):
                continue
            self._emit(0, f"static void {task_fn}_{fragment.name}(void)")
            self._emit(0, "{")
            self._emit_block(fragment.body, 1)
            self._emit(0, "}")
            self._emit(0, "")
        # the task entry function
        self._emit(0, f"void {task_fn}(void)")
        self._emit(0, "{")
        body_depth = 1
        if self.options.standalone_loop:
            self._emit(1, "while (1) {")
            body_depth = 2
        for entry in self.task.entry_fragments:
            fragment = self.task.fragments[entry]
            if self._is_inline(fragment):
                self._inline_stack.append(fragment.name)
                self._emit_block(fragment.body, body_depth)
                self._inline_stack.pop()
            else:
                self._emit(body_depth, f"{task_fn}_{fragment.name}();")
        if self.options.standalone_loop:
            self._emit(1, "}")
        self._emit(0, "}")
        return self.lines


def _collect_externs(program: Program) -> Tuple[List[str], List[str]]:
    transitions: Set[str] = set()
    choices: Set[str] = set()

    def walk(block: Block) -> None:
        for statement in block:
            if isinstance(statement, FireTransition):
                transitions.add(statement.transition)
            elif isinstance(statement, Guarded):
                walk(statement.body)
            elif isinstance(statement, ChoiceIf):
                choices.add(statement.place)
                for choice, branch in statement.branches:
                    transitions.add(choice)
                    walk(branch)

    for task in program.tasks:
        for fragment in task.fragments.values():
            walk(fragment.body)
    return sorted(transitions), sorted(choices)


def emit_c(program: Program, options: Optional[EmitOptions] = None) -> CEmission:
    """Emit the complete C translation unit for ``program``."""
    options = options or EmitOptions()
    transitions, choices = _collect_externs(program)
    lines: List[str] = []
    lines.append(f"/* Generated by repro.codegen for model {program.name!r}. */")
    lines.append("/* Quasi-statically scheduled implementation; one function per task. */")
    lines.append("")
    for index, transition in enumerate(transitions):
        lines.append(f"#define CHOICE_{transition.upper()} {index}")
    if transitions:
        lines.append("")
    for transition in transitions:
        lines.append(f"extern void {_function_name(transition)}(void);")
    for place in choices:
        lines.append(f"extern int choice_{place}(void);")
    lines.append("")

    per_task: Dict[str, int] = {}
    for task in program.tasks:
        emitter = _TaskEmitter(task, options)
        task_lines = emitter.emit()
        per_task[task.name] = len(task_lines) + options.boilerplate_lines_per_task
        lines.extend(task_lines)
        lines.append("")

    source = "\n".join(lines).rstrip() + "\n"
    # Code size metric: every emitted source line plus the boilerplate lines
    # charged per task (RTOS registration/activation scaffolding that the
    # paper's task counts pay for but that we do not materialize as text).
    total = len(source.splitlines()) + options.boilerplate_lines_per_task * len(
        program.tasks
    )
    return CEmission(source=source, lines_of_code=total, lines_per_task=per_task)


def lines_of_code(program: Program, options: Optional[EmitOptions] = None) -> int:
    """Convenience wrapper returning only the generated line count."""
    return emit_c(program, options).lines_of_code
