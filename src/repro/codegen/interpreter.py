"""Execution of synthesized task code on a simulated target.

The paper reports "clock cycles" measured by compiling the generated C
for an embedded target and running a testbench.  We do not have that
target, so the same IR that the C emitter prints is executed directly by
this interpreter against a configurable cycle cost model
(:class:`~repro.runtime.cost.CostModel`); see DESIGN.md for the
substitution rationale.  Because both the QSS implementation and the
baselines are executed by the same interpreter with the same cost model,
the *relative* comparison of Table I is preserved.

An activation of a task executes its entry fragments once; counting
variables persist across activations (they are the statically allocated
buffers of the implementation).  Data-dependent choices are resolved by
a caller-provided resolver (the workload generator supplies one per
event).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..runtime.cost import CostModel
from .ir import (
    Block,
    CallFragment,
    ChoiceIf,
    Comment,
    DecCount,
    FireTransition,
    Guarded,
    IncCount,
    Program,
    TaskProgram,
)

#: A choice resolver maps a choice place to the transition selected by the
#: run-time data.  It is invoked once per evaluation of the choice.
ChoiceResolver = Callable[[str], str]


class ExecutionError(Exception):
    """Raised when generated code misbehaves (e.g. a counter going negative),
    which would indicate a code generation bug."""


@dataclass
class ActivationResult:
    """Outcome of one task activation."""

    task: str
    cycles: int
    fired: List[str] = field(default_factory=list)
    choices_taken: Dict[str, str] = field(default_factory=dict)


class TaskExecutor:
    """Executes activations of a single task, keeping its counter state."""

    def __init__(self, task: TaskProgram, cost_model: Optional[CostModel] = None) -> None:
        self.task = task
        self.cost = cost_model or CostModel()
        self.counters: Dict[str, int] = dict(task.counters)
        #: guards against runaway recursion caused by malformed fragments
        self._max_depth = 10_000

    def reset(self) -> None:
        """Reset counters to the initial marking."""
        self.counters = dict(self.task.counters)

    def activate(self, resolve_choice: ChoiceResolver) -> ActivationResult:
        """Run one activation of the task (one input event)."""
        result = ActivationResult(task=self.task.name, cycles=0)
        for entry in self.task.entry_fragments:
            self._run_fragment(entry, resolve_choice, result, depth=0)
        return result

    # -- execution ---------------------------------------------------------
    def _run_fragment(
        self,
        name: str,
        resolve_choice: ChoiceResolver,
        result: ActivationResult,
        depth: int,
    ) -> None:
        if depth > self._max_depth:
            raise ExecutionError(
                f"fragment recursion exceeded {self._max_depth} levels in "
                f"task {self.task.name!r}"
            )
        fragment = self.task.fragments[name]
        result.cycles += self.cost.call_cycles
        self._run_block(fragment.body, resolve_choice, result, depth)

    def _run_block(
        self,
        block: Block,
        resolve_choice: ChoiceResolver,
        result: ActivationResult,
        depth: int,
    ) -> None:
        for statement in block:
            if isinstance(statement, Comment):
                continue
            if isinstance(statement, FireTransition):
                result.fired.append(statement.transition)
                result.cycles += statement.cost * self.cost.transition_cycles
            elif isinstance(statement, IncCount):
                self.counters[statement.place] = (
                    self.counters.get(statement.place, 0) + statement.amount
                )
                result.cycles += self.cost.counter_cycles
            elif isinstance(statement, DecCount):
                updated = self.counters.get(statement.place, 0) - statement.amount
                if updated < 0:
                    raise ExecutionError(
                        f"counter for place {statement.place!r} went negative "
                        f"in task {self.task.name!r}"
                    )
                self.counters[statement.place] = updated
                result.cycles += self.cost.counter_cycles
            elif isinstance(statement, Guarded):
                self._run_guarded(statement, resolve_choice, result, depth)
            elif isinstance(statement, ChoiceIf):
                self._run_choice(statement, resolve_choice, result, depth)
            elif isinstance(statement, CallFragment):
                self._run_fragment(
                    statement.fragment, resolve_choice, result, depth + 1
                )
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown IR statement {statement!r}")

    def _guard_holds(self, conditions: Tuple[Tuple[str, int], ...]) -> bool:
        return all(
            self.counters.get(place, 0) >= threshold for place, threshold in conditions
        )

    def _run_guarded(
        self,
        statement: Guarded,
        resolve_choice: ChoiceResolver,
        result: ActivationResult,
        depth: int,
    ) -> None:
        if statement.kind == "if":
            result.cycles += self.cost.test_cycles
            if self._guard_holds(statement.conditions):
                self._run_block(statement.body, resolve_choice, result, depth)
            return
        # while loop
        iterations = 0
        while True:
            result.cycles += self.cost.test_cycles
            if not self._guard_holds(statement.conditions):
                return
            self._run_block(statement.body, resolve_choice, result, depth)
            iterations += 1
            if iterations > 1_000_000:
                raise ExecutionError(
                    "while-guard did not terminate; the generated code would "
                    "loop forever"
                )

    def _run_choice(
        self,
        statement: ChoiceIf,
        resolve_choice: ChoiceResolver,
        result: ActivationResult,
        depth: int,
    ) -> None:
        result.cycles += self.cost.test_cycles
        chosen = resolve_choice(statement.place)
        result.choices_taken[statement.place] = chosen
        for choice, branch in statement.branches:
            if choice == chosen:
                self._run_block(branch, resolve_choice, result, depth)
                return
        # The data selected an alternative outside this task: nothing to do.


class ProgramExecutor:
    """Executes a whole program: one :class:`TaskExecutor` per task."""

    def __init__(self, program: Program, cost_model: Optional[CostModel] = None) -> None:
        self.program = program
        self.cost = cost_model or CostModel()
        self.tasks: Dict[str, TaskExecutor] = {
            task.name: TaskExecutor(task, self.cost) for task in program.tasks
        }
        self._source_to_task: Dict[str, str] = {}
        for task in program.tasks:
            for source in task.source_transitions:
                self._source_to_task[source] = task.name

    def task_for_source(self, source: str) -> TaskExecutor:
        try:
            return self.tasks[self._source_to_task[source]]
        except KeyError:
            raise KeyError(f"no task is triggered by source {source!r}") from None

    def reset(self) -> None:
        for executor in self.tasks.values():
            executor.reset()

    def activate_source(
        self, source: str, resolve_choice: ChoiceResolver
    ) -> ActivationResult:
        """Activate the task triggered by ``source`` (one input event)."""
        return self.task_for_source(source).activate(resolve_choice)


def make_resolver(choices: Mapping[str, str], default_first: bool = False) -> ChoiceResolver:
    """Build a resolver from a fixed ``{place: transition}`` mapping.

    When ``default_first`` is False a missing place raises ``KeyError`` so
    that workload bugs surface immediately.
    """

    def resolve(place: str) -> str:
        if place in choices:
            return choices[place]
        if default_first:
            return ""
        raise KeyError(f"no resolution provided for choice place {place!r}")

    return resolve
