"""Execution of synthesized task code on a simulated target.

The paper reports "clock cycles" measured by compiling the generated C
for an embedded target and running a testbench.  We do not have that
target, so the same IR that the C emitter prints is executed directly by
this interpreter against a configurable cycle cost model
(:class:`~repro.runtime.cost.CostModel`); see DESIGN.md for the
substitution rationale.  Because both the QSS implementation and the
baselines are executed by the same interpreter with the same cost model,
the *relative* comparison of Table I is preserved.

An activation of a task executes its entry fragments once; counting
variables persist across activations (they are the statically allocated
buffers of the implementation).  Data-dependent choices are resolved by
a caller-provided resolver (the workload generator supplies one per
event).

The executor interprets schedules over *compiled markings*: at
construction every counting variable is mapped to a dense integer index
and the IR is lowered once into tuples of integer-indexed operations
(with the cost model baked in), so the per-activation inner loop runs on
a flat list of ints instead of string-keyed dicts — the same
representation shift as :class:`repro.petrinet.compiled.CompiledNet` for
the analysis side.  The public, name-keyed ``counters`` view is
preserved for diagnostics and tests.

Like the analyses, the executor takes ``engine="compiled"`` (default)
or ``engine="legacy"``: the legacy engine skips the lowering and
tree-walks the IR statement objects against a name-keyed counter dict —
the pre-lowering execution style, kept for cross-checking (both charge
identical cycles and fire identical sequences).

``engine="native"`` leaves interpretation behind entirely: the emitted
C is compiled to a shared library and the activations run the paper's
actual artifact (:mod:`repro.codegen.native`), with identical firing
sequences, choice consumption, counter trajectories and cycle charges
(`tests/test_codegen_native.py`).  On a machine without a C compiler
the executor emits a ``RuntimeWarning`` and falls back to the compiled
interpreter; :attr:`TaskExecutor.active_engine` reports which engine
actually runs.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..petrinet.compiled import (
    ENGINE_COMPILED,
    ENGINE_LEGACY,
    ENGINE_NATIVE,
    EXEC_ENGINES,
    validate_engine,
)
from ..runtime.cost import CostModel
from .ir import (
    Block,
    CallFragment,
    ChoiceIf,
    Comment,
    DecCount,
    FireTransition,
    Guarded,
    IncCount,
    Program,
    TaskProgram,
)

#: A choice resolver maps a choice place to the transition selected by the
#: run-time data.  It is invoked once per evaluation of the choice.
ChoiceResolver = Callable[[str], str]


class ExecutionError(Exception):
    """Raised when generated code misbehaves (e.g. a counter going negative),
    which would indicate a code generation bug."""


@dataclass
class ActivationResult:
    """Outcome of one task activation."""

    task: str
    cycles: int
    fired: List[str] = field(default_factory=list)
    choices_taken: Dict[str, str] = field(default_factory=dict)


def _native_fallback_warning(err: Exception) -> None:
    warnings.warn(
        f"native execution tier unavailable ({err}); "
        "falling back to the compiled interpreter",
        RuntimeWarning,
        stacklevel=3,
    )


def _build_native_backend(task: TaskProgram, cost: CostModel):
    """Compile a single task for the native tier, or ``None`` (with a
    warning) when the machine has no C compiler."""
    from .native import NativeUnavailableError, native_task_backend

    try:
        return native_task_backend(task, cost)
    except NativeUnavailableError as err:
        _native_fallback_warning(err)
        return None


# Lowered opcodes: the IR is compiled once per executor into nested
# tuples of these, with counter names replaced by dense integer indices
# and per-statement cycle costs precomputed from the cost model.
_OP_FIRE = 0
_OP_INC = 1
_OP_DEC = 2
_OP_IF = 3
_OP_WHILE = 4
_OP_CHOICE = 5
_OP_CALL = 6


class TaskExecutor:
    """Executes activations of a single task, keeping its counter state.

    With ``engine="compiled"`` (default) the counting variables are held
    as a flat list of ints indexed by a dense place id (the task's
    compiled marking) and the IR is lowered once into integer opcodes;
    with ``engine="legacy"`` the IR statement objects are tree-walked
    against a name-keyed counter dict.  The name-keyed :attr:`counters`
    view is available either way.
    """

    def __init__(
        self,
        task: TaskProgram,
        cost_model: Optional[CostModel] = None,
        engine: str = ENGINE_COMPILED,
        _native_backend=None,
    ) -> None:
        self.task = task
        self.cost = cost_model or CostModel()
        self.engine = validate_engine(engine, EXEC_ENGINES)
        #: the engine actually executing activations; differs from
        #: :attr:`engine` only when ``"native"`` fell back
        self.active_engine = self.engine
        #: the :class:`~repro.codegen.native.NativeTaskBackend` running
        #: the activations when the native tier is active, else ``None``
        self.native_backend = None
        #: guards against runaway recursion caused by malformed fragments
        self._max_depth = 10_000
        if self.engine == ENGINE_NATIVE:
            backend = _native_backend
            if backend is None:
                backend = _build_native_backend(self.task, self.cost)
            if backend is not None:
                self.native_backend = backend
                return
            self.active_engine = ENGINE_COMPILED
        if self.active_engine == ENGINE_LEGACY:
            self._state: Dict[str, int] = dict(task.counters)
            return
        # dense index over the task's counting variables (declared
        # counters first, then any place only referenced by statements)
        self._place_ids: Dict[str, int] = {
            place: i for i, place in enumerate(task.counters)
        }
        self._code: Dict[str, Tuple] = {
            name: self._compile_block(fragment.body)
            for name, fragment in task.fragments.items()
        }
        self._initial: List[int] = [0] * len(self._place_ids)
        for place, value in task.counters.items():
            self._initial[self._place_ids[place]] = value
        self._values: List[int] = list(self._initial)

    @property
    def counters(self) -> Dict[str, int]:
        """Name-keyed snapshot of the counting variables.

        Contains every declared counter plus any statement-only counter
        that currently holds tokens.  The returned dict is a copy;
        assign to the property (or call :meth:`reset`) to change the
        executor's state.
        """
        if self.native_backend is not None:
            return self.native_backend.counters
        declared = self.task.counters
        if self.active_engine == ENGINE_LEGACY:
            return {
                place: value
                for place, value in self._state.items()
                if place in declared or value
            }
        return {
            place: self._values[index]
            for place, index in self._place_ids.items()
            if place in declared or self._values[index]
        }

    @counters.setter
    def counters(self, values: Mapping[str, int]) -> None:
        if self.native_backend is not None:
            self.native_backend.counters = values
            return
        if self.active_engine == ENGINE_LEGACY:
            self._state = dict(values)
            return
        self._values = [0] * len(self._place_ids)
        for place, value in values.items():
            self._values[self._place_ids[place]] = value

    def reset(self) -> None:
        """Reset counters to the initial marking."""
        if self.native_backend is not None:
            self.native_backend.reset()
        elif self.active_engine == ENGINE_LEGACY:
            self._state = dict(self.task.counters)
        else:
            self._values = list(self._initial)

    def activate(self, resolve_choice: ChoiceResolver) -> ActivationResult:
        """Run one activation of the task (one input event)."""
        if self.native_backend is not None:
            return self.native_backend.activate(resolve_choice)
        result = ActivationResult(task=self.task.name, cycles=0)
        run = (
            self._run_fragment_ir
            if self.active_engine == ENGINE_LEGACY
            else self._run_fragment
        )
        for entry in self.task.entry_fragments:
            run(entry, resolve_choice, result, depth=0)
        return result

    def activate_many(
        self, choice_maps: Sequence[Mapping[str, str]]
    ) -> List[ActivationResult]:
        """Run one activation per ``{place: transition}`` map.

        The native tier executes the whole batch in a single library
        call; the interpreter engines loop over
        :func:`make_resolver`-driven activations.  Results are
        engine-identical either way.
        """
        if self.native_backend is not None:
            return self.native_backend.activate_many(choice_maps)
        return [self.activate(make_resolver(mapping)) for mapping in choice_maps]

    # -- IR lowering -------------------------------------------------------
    def _place_id(self, place: str) -> int:
        if place not in self._place_ids:
            self._place_ids[place] = len(self._place_ids)
        return self._place_ids[place]

    def _compile_block(self, block: Block) -> Tuple:
        transition_cycles = self.cost.transition_cycles
        ops: List[Tuple] = []
        for statement in block:
            if isinstance(statement, Comment):
                continue
            if isinstance(statement, FireTransition):
                ops.append(
                    (_OP_FIRE, statement.transition, statement.cost * transition_cycles)
                )
            elif isinstance(statement, IncCount):
                ops.append((_OP_INC, self._place_id(statement.place), statement.amount))
            elif isinstance(statement, DecCount):
                ops.append(
                    (
                        _OP_DEC,
                        self._place_id(statement.place),
                        statement.amount,
                        statement.place,
                    )
                )
            elif isinstance(statement, Guarded):
                conditions = tuple(
                    (self._place_id(place), threshold)
                    for place, threshold in statement.conditions
                )
                opcode = _OP_IF if statement.kind == "if" else _OP_WHILE
                ops.append((opcode, conditions, self._compile_block(statement.body)))
            elif isinstance(statement, ChoiceIf):
                branches = tuple(
                    (choice, self._compile_block(branch))
                    for choice, branch in statement.branches
                )
                ops.append((_OP_CHOICE, statement.place, branches))
            elif isinstance(statement, CallFragment):
                ops.append((_OP_CALL, statement.fragment))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown IR statement {statement!r}")
        return tuple(ops)

    # -- execution ---------------------------------------------------------
    def _run_fragment(
        self,
        name: str,
        resolve_choice: ChoiceResolver,
        result: ActivationResult,
        depth: int,
    ) -> None:
        if depth > self._max_depth:
            raise ExecutionError(
                f"fragment recursion exceeded {self._max_depth} levels in "
                f"task {self.task.name!r}"
            )
        result.cycles += self.cost.call_cycles
        self._run_ops(self._code[name], resolve_choice, result, depth)

    def _run_ops(
        self,
        ops: Tuple,
        resolve_choice: ChoiceResolver,
        result: ActivationResult,
        depth: int,
    ) -> None:
        values = self._values
        counter_cycles = self.cost.counter_cycles
        test_cycles = self.cost.test_cycles
        for op in ops:
            kind = op[0]
            if kind == _OP_FIRE:
                result.fired.append(op[1])
                result.cycles += op[2]
            elif kind == _OP_INC:
                values[op[1]] += op[2]
                result.cycles += counter_cycles
            elif kind == _OP_DEC:
                updated = values[op[1]] - op[2]
                if updated < 0:
                    raise ExecutionError(
                        f"counter for place {op[3]!r} went negative "
                        f"in task {self.task.name!r}"
                    )
                values[op[1]] = updated
                result.cycles += counter_cycles
            elif kind == _OP_IF:
                result.cycles += test_cycles
                if all(values[index] >= threshold for index, threshold in op[1]):
                    self._run_ops(op[2], resolve_choice, result, depth)
            elif kind == _OP_WHILE:
                iterations = 0
                while True:
                    result.cycles += test_cycles
                    if not all(
                        values[index] >= threshold for index, threshold in op[1]
                    ):
                        break
                    self._run_ops(op[2], resolve_choice, result, depth)
                    iterations += 1
                    if iterations > 1_000_000:
                        raise ExecutionError(
                            "while-guard did not terminate; the generated code "
                            "would loop forever"
                        )
            elif kind == _OP_CHOICE:
                result.cycles += test_cycles
                chosen = resolve_choice(op[1])
                result.choices_taken[op[1]] = chosen
                for choice, branch in op[2]:
                    if choice == chosen:
                        self._run_ops(branch, resolve_choice, result, depth)
                        break
                # otherwise the data selected an alternative outside this
                # task: nothing to do.
            else:  # _OP_CALL
                self._run_fragment(op[1], resolve_choice, result, depth + 1)

    # -- legacy (tree-walking) execution ------------------------------------
    def _run_fragment_ir(
        self,
        name: str,
        resolve_choice: ChoiceResolver,
        result: ActivationResult,
        depth: int,
    ) -> None:
        if depth > self._max_depth:
            raise ExecutionError(
                f"fragment recursion exceeded {self._max_depth} levels in "
                f"task {self.task.name!r}"
            )
        result.cycles += self.cost.call_cycles
        self._run_block_ir(
            self.task.fragments[name].body, resolve_choice, result, depth
        )

    def _guard_holds(self, statement: Guarded) -> bool:
        state = self._state
        return all(
            state.get(place, 0) >= threshold
            for place, threshold in statement.conditions
        )

    def _run_block_ir(
        self,
        block: Block,
        resolve_choice: ChoiceResolver,
        result: ActivationResult,
        depth: int,
    ) -> None:
        state = self._state
        cost = self.cost
        for statement in block:
            if isinstance(statement, Comment):
                continue
            if isinstance(statement, FireTransition):
                result.fired.append(statement.transition)
                result.cycles += statement.cost * cost.transition_cycles
            elif isinstance(statement, IncCount):
                state[statement.place] = state.get(statement.place, 0) + statement.amount
                result.cycles += cost.counter_cycles
            elif isinstance(statement, DecCount):
                updated = state.get(statement.place, 0) - statement.amount
                if updated < 0:
                    raise ExecutionError(
                        f"counter for place {statement.place!r} went negative "
                        f"in task {self.task.name!r}"
                    )
                state[statement.place] = updated
                result.cycles += cost.counter_cycles
            elif isinstance(statement, Guarded):
                if statement.kind == "if":
                    result.cycles += cost.test_cycles
                    if self._guard_holds(statement):
                        self._run_block_ir(
                            statement.body, resolve_choice, result, depth
                        )
                else:
                    iterations = 0
                    while True:
                        result.cycles += cost.test_cycles
                        if not self._guard_holds(statement):
                            break
                        self._run_block_ir(
                            statement.body, resolve_choice, result, depth
                        )
                        iterations += 1
                        if iterations > 1_000_000:
                            raise ExecutionError(
                                "while-guard did not terminate; the generated "
                                "code would loop forever"
                            )
            elif isinstance(statement, ChoiceIf):
                result.cycles += cost.test_cycles
                chosen = resolve_choice(statement.place)
                result.choices_taken[statement.place] = chosen
                for choice, branch in statement.branches:
                    if choice == chosen:
                        self._run_block_ir(branch, resolve_choice, result, depth)
                        break
                # otherwise the data selected an alternative outside this
                # task: nothing to do.
            elif isinstance(statement, CallFragment):
                self._run_fragment_ir(
                    statement.fragment, resolve_choice, result, depth + 1
                )
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown IR statement {statement!r}")


class ProgramExecutor:
    """Executes a whole program: one :class:`TaskExecutor` per task.

    ``engine`` is forwarded to every :class:`TaskExecutor`: the lowered
    integer-opcode form (``"compiled"``, default), the direct IR tree
    walk (``"legacy"``), or the compiled shared library (``"native"``,
    built once for the whole program so all tasks share one artifact).
    """

    def __init__(
        self,
        program: Program,
        cost_model: Optional[CostModel] = None,
        engine: str = ENGINE_COMPILED,
    ) -> None:
        self.program = program
        self.cost = cost_model or CostModel()
        self.engine = validate_engine(engine, EXEC_ENGINES)
        self.active_engine = self.engine
        #: the shared :class:`~repro.codegen.native.NativeProgram` when
        #: the native tier is active, else ``None``
        self.native_program = None
        backends: Dict[str, object] = {}
        if self.engine == ENGINE_NATIVE:
            from .native import NativeProgram, NativeUnavailableError

            try:
                native = NativeProgram(program, self.cost)
            except NativeUnavailableError as err:
                _native_fallback_warning(err)
                self.active_engine = ENGINE_COMPILED
            else:
                self.native_program = native
                backends = {
                    task.name: native.task_backend(task.name)
                    for task in program.tasks
                }
        self.tasks: Dict[str, TaskExecutor] = {
            task.name: TaskExecutor(
                task,
                self.cost,
                engine=self.engine if backends else self.active_engine,
                _native_backend=backends.get(task.name),
            )
            for task in program.tasks
        }
        self._source_to_task: Dict[str, str] = {}
        for task in program.tasks:
            for source in task.source_transitions:
                self._source_to_task[source] = task.name

    def task_for_source(self, source: str) -> TaskExecutor:
        try:
            return self.tasks[self._source_to_task[source]]
        except KeyError:
            raise KeyError(f"no task is triggered by source {source!r}") from None

    def reset(self) -> None:
        for executor in self.tasks.values():
            executor.reset()

    def activate_source(
        self, source: str, resolve_choice: ChoiceResolver
    ) -> ActivationResult:
        """Activate the task triggered by ``source`` (one input event)."""
        return self.task_for_source(source).activate(resolve_choice)


def make_resolver(choices: Mapping[str, str], default_first: bool = False) -> ChoiceResolver:
    """Build a resolver from a fixed ``{place: transition}`` mapping.

    When ``default_first`` is False a missing place raises ``KeyError`` so
    that workload bugs surface immediately.
    """

    def resolve(place: str) -> str:
        if place in choices:
            return choices[place]
        if default_first:
            return ""
        raise KeyError(f"no resolution provided for choice place {place!r}")

    return resolve
