"""Software synthesis backend: IR, code generation, C emission, execution."""

from .emit_c import CEmission, CNames, EmitOptions, emit_c, lines_of_code
from .generator import (
    CodegenError,
    CodegenOptions,
    generate_program,
    generate_task_program,
    synthesize,
)
from .interpreter import (
    ActivationResult,
    ChoiceResolver,
    ExecutionError,
    ProgramExecutor,
    TaskExecutor,
    make_resolver,
)
from .native import (
    NativeBuildError,
    NativeProgram,
    NativeTaskBackend,
    NativeUnavailableError,
    native_available,
    native_source,
    task_choice_branches,
)
from .ir import (
    Block,
    CallFragment,
    ChoiceIf,
    Comment,
    DecCount,
    FireTransition,
    Fragment,
    Guarded,
    IncCount,
    Program,
    TaskProgram,
)

__all__ = [
    # IR
    "Program",
    "TaskProgram",
    "Fragment",
    "Block",
    "FireTransition",
    "IncCount",
    "DecCount",
    "CallFragment",
    "Guarded",
    "ChoiceIf",
    "Comment",
    # generation
    "CodegenOptions",
    "CodegenError",
    "generate_task_program",
    "generate_program",
    "synthesize",
    # C emission
    "EmitOptions",
    "CEmission",
    "CNames",
    "emit_c",
    "lines_of_code",
    # native tier
    "NativeProgram",
    "NativeTaskBackend",
    "NativeBuildError",
    "NativeUnavailableError",
    "native_available",
    "native_source",
    "task_choice_branches",
    # execution
    "TaskExecutor",
    "ProgramExecutor",
    "ActivationResult",
    "ChoiceResolver",
    "ExecutionError",
    "make_resolver",
]
