"""Software synthesis backend: IR, code generation, C emission, execution."""

from .emit_c import CEmission, EmitOptions, emit_c, lines_of_code
from .generator import (
    CodegenError,
    CodegenOptions,
    generate_program,
    generate_task_program,
    synthesize,
)
from .interpreter import (
    ActivationResult,
    ChoiceResolver,
    ExecutionError,
    ProgramExecutor,
    TaskExecutor,
    make_resolver,
)
from .ir import (
    Block,
    CallFragment,
    ChoiceIf,
    Comment,
    DecCount,
    FireTransition,
    Fragment,
    Guarded,
    IncCount,
    Program,
    TaskProgram,
)

__all__ = [
    # IR
    "Program",
    "TaskProgram",
    "Fragment",
    "Block",
    "FireTransition",
    "IncCount",
    "DecCount",
    "CallFragment",
    "Guarded",
    "ChoiceIf",
    "Comment",
    # generation
    "CodegenOptions",
    "CodegenError",
    "generate_task_program",
    "generate_program",
    "synthesize",
    # C emission
    "EmitOptions",
    "CEmission",
    "emit_c",
    "lines_of_code",
    # execution
    "TaskExecutor",
    "ProgramExecutor",
    "ActivationResult",
    "ChoiceResolver",
    "ExecutionError",
    "make_resolver",
]
