"""Native execution tier: compile and run the synthesized C.

The paper's end product is generated embedded C; everywhere else in this
reproduction that C is only *printed* (:mod:`repro.codegen.emit_c`) while
execution goes through the IR interpreter
(:mod:`repro.codegen.interpreter`).  This module closes the loop: the
emitted translation unit is wrapped with a small generated driver (task
entry points, counter state access, a recorded trace of transition
firings and choice consumptions so results are observable from Python),
compiled to a shared library with the host C compiler, and loaded via
``ctypes`` behind the same activation interface as the interpreter.

Cycle accounting uses the instrumented emission mode
(``EmitOptions(instrument=True)``): the generated code charges the same
fragment-call / control-test / counter-update / transition costs as the
interpreter against runtime cost variables, which are set from the
:class:`~repro.runtime.cost.CostModel` after loading — so one cached
artifact serves every cost model.

Artifacts are cached on disk under ``~/.cache/repro-qss`` (override with
``REPRO_QSS_CACHE_DIR``), keyed by a content hash of the C source, the
compiler identity, and the flags; writes are atomic and a corrupt or
stale artifact is quarantined and rebuilt once.  A machine without a C
compiler raises :class:`NativeUnavailableError` from the capability
probe; the interpreter layer catches it and falls back with a warning,
so ``engine="native"`` degrades gracefully.

Known, documented divergences from the interpreter (none observable on
well-formed programs):

* the interpreter raises mid-activation on a missing choice resolution
  or a negative counter; the compiled code cannot unwind, so the native
  tier raises *after* the run (missing resolution) or skips the
  negative-counter check entirely (generated guards prevent it);
* a resolver must answer deterministically per place within one
  activation — the compiled choice test may read the choice more than
  once and the reads are memoized.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shlex
import shutil
import subprocess
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..runtime.cost import CostModel
from .emit_c import CEmission, EmitOptions, emit_c
from .ir import Block, ChoiceIf, Guarded, Program, TaskProgram

#: Bump when the generated driver's exported interface changes; baked
#: into both the artifact hash and the library itself
#: (``repro_qss_abi``), so a stale cache entry can never be misloaded.
ABI_VERSION = 1

_BASE_CFLAGS = ("-O2", "-shared", "-fPIC")

#: Trace record kinds (first int of each 3-int trace row).
_TRACE_FIRE = 0
_TRACE_CHOICE = 1
_TRACE_ACTIVATION = 2

#: Choice values outside the macro range, used by the driver protocol.
_CHOICE_UNKNOWN = -1  # resolved to a transition this program never fires
_CHOICE_ERROR = -3  # the Python choice hook raised; re-raised after the run
_CHOICE_MISSING = -4  # scripted run had no resolution for this place


class NativeUnavailableError(RuntimeError):
    """No usable C compiler on this machine (capability probe failed)."""


class NativeBuildError(RuntimeError):
    """The C compiler was found but compilation or loading failed."""


# --------------------------------------------------------------------------
# capability probe and artifact cache
# --------------------------------------------------------------------------

_probe_cache: Dict[Tuple[Optional[str], Optional[str], Optional[str]], Optional[Tuple[str, str]]] = {}


def _probe_key() -> Tuple[Optional[str], Optional[str], Optional[str]]:
    env = os.environ
    return (env.get("REPRO_QSS_CC"), env.get("CC"), env.get("PATH"))


def find_compiler() -> Tuple[str, str]:
    """Locate the C compiler; returns ``(path, identity)``.

    ``REPRO_QSS_CC`` pins (or masks) the compiler: when set, only that
    command is considered.  Otherwise ``CC``, then ``cc``/``gcc``/
    ``clang`` on ``PATH``.  The identity string (path, size, mtime) goes
    into the artifact hash — deliberately computed from ``stat`` rather
    than ``--version`` so that a warm cache needs zero compiler
    invocations.  Raises :class:`NativeUnavailableError` when nothing
    resolves.
    """
    key = _probe_key()
    if key not in _probe_cache:
        pinned = os.environ.get("REPRO_QSS_CC")
        if pinned:
            candidates = [pinned]
        else:
            candidates = []
            if os.environ.get("CC"):
                candidates.append(os.environ["CC"])
            candidates.extend(["cc", "gcc", "clang"])
        found: Optional[Tuple[str, str]] = None
        for candidate in candidates:
            path = shutil.which(candidate)
            if path is None:
                continue
            try:
                st = os.stat(path)
            except OSError:
                continue
            found = (path, f"{path}|{st.st_size}|{st.st_mtime_ns}")
            break
        _probe_cache[key] = found
    found = _probe_cache[key]
    if found is None:
        raise NativeUnavailableError(
            "no C compiler found (tried REPRO_QSS_CC, CC, cc, gcc, clang)"
        )
    return found


def native_available() -> bool:
    """True when a C compiler is available for the native tier."""
    try:
        find_compiler()
    except NativeUnavailableError:
        return False
    return True


def cache_root() -> Path:
    """Artifact cache directory (``REPRO_QSS_CACHE_DIR`` overrides)."""
    override = os.environ.get("REPRO_QSS_CACHE_DIR")
    if override:
        return Path(override)
    return Path(os.path.expanduser("~")) / ".cache" / "repro-qss"


def _compile_flags() -> List[str]:
    flags = list(_BASE_CFLAGS)
    extra = os.environ.get("REPRO_QSS_CFLAGS")
    if extra:
        flags.extend(shlex.split(extra))
    return flags


def _run_compiler(command: Sequence[str]) -> "subprocess.CompletedProcess[str]":
    """Single seam through which every compiler invocation goes (the
    cache tests count calls by patching this)."""
    return subprocess.run(command, capture_output=True, text=True)


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def artifact_key(source: str) -> str:
    """Content hash identifying the cached artifact for ``source``."""
    _, compiler_id = find_compiler()
    digest = hashlib.sha256()
    for part in (f"repro-qss-native/{ABI_VERSION}", compiler_id, " ".join(_compile_flags()), source):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:32]


def build_shared_library(source: str, directory: Optional[Path] = None) -> Path:
    """Compile ``source`` to a cached shared library; return its path.

    A cache hit returns immediately without invoking the compiler.  The
    build is atomic (compile to a temp name, ``os.replace`` into place)
    so concurrent builders cannot observe a partial artifact.
    """
    compiler, _ = find_compiler()
    key = artifact_key(source)
    root = directory if directory is not None else cache_root()
    artifact = root / f"qss_{key}.so"
    if artifact.exists():
        return artifact
    root.mkdir(parents=True, exist_ok=True)
    source_path = root / f"qss_{key}.c"
    _atomic_write_text(source_path, source)
    tmp_artifact = root / f"qss_{key}.{os.getpid()}.so.tmp"
    command = [compiler, *_compile_flags(), "-o", str(tmp_artifact), str(source_path)]
    try:
        result = _run_compiler(command)
    except OSError as err:
        raise NativeBuildError(f"failed to run C compiler {compiler!r}: {err}") from err
    if result.returncode != 0:
        tail = (result.stderr or result.stdout or "").strip().splitlines()[-8:]
        raise NativeBuildError(
            "C compilation failed (exit %d):\n%s" % (result.returncode, "\n".join(tail))
        )
    os.replace(tmp_artifact, artifact)
    return artifact


# --------------------------------------------------------------------------
# driver generation
# --------------------------------------------------------------------------


@dataclass
class _Layout:
    """Index spaces shared between the generated driver and Python."""

    task_names: List[str]
    transition_names: List[str]  # index == choice macro value == fire id
    choice_places: List[str]
    counters: List[Tuple[str, str, int]]  # (task, place, initial marking)


def _layout_for(program: Program, emission: CEmission) -> _Layout:
    counters: List[Tuple[str, str, int]] = []
    for task in program.tasks:
        for place in sorted(task.counters):
            counters.append((task.name, place, task.counters[place]))
    return _Layout(
        task_names=[task.name for task in program.tasks],
        transition_names=list(emission.names.transitions),
        choice_places=list(emission.names.choice_places),
        counters=counters,
    )


def _driver_source(program: Program, emission: CEmission, layout: _Layout) -> str:
    names = emission.names
    n_tasks = len(layout.task_names)
    n_choices = len(layout.choice_places)
    n_counters = len(layout.counters)
    lines: List[str] = []
    out = lines.append
    out("")
    out("/* ==== repro-qss native driver (generated; not part of the paper's")
    out("   Section 4 listing — it makes the synthesized code observable and")
    out("   callable from the Python harness). ==== */")
    out("")
    out("#include <stdlib.h>")
    out("#include <string.h>")
    out("")
    out("long long qss_cycles = 0;")
    out("long long qss_call_cycles = 0;")
    out("long long qss_test_cycles = 0;")
    out("long long qss_counter_cycles = 0;")
    out("long long qss_tr_unit = 0;")
    out("")
    out(f"static int qss_choice_current[{max(n_choices, 1)}];")
    out("static int (*qss_choice_hook)(int) = 0;")
    out("static int *qss_trace = 0;")
    out("static long qss_trace_cap = 0;")
    out("static long qss_trace_used = 0;")
    out("static int qss_trace_on = 1;")
    out("static int qss_trace_oom = 0;")
    out("")
    out("static void qss_trace_put(int kind, int a, int b)")
    out("{")
    out("    if (!qss_trace_on || qss_trace_oom) return;")
    out("    if (qss_trace_used + 3 > qss_trace_cap) {")
    out("        long cap = qss_trace_cap ? qss_trace_cap * 2 : 4096;")
    out("        int *grown = (int *) realloc(qss_trace, (size_t) cap * sizeof(int));")
    out("        if (!grown) { qss_trace_oom = 1; return; }")
    out("        qss_trace = grown;")
    out("        qss_trace_cap = cap;")
    out("    }")
    out("    qss_trace[qss_trace_used] = kind;")
    out("    qss_trace[qss_trace_used + 1] = a;")
    out("    qss_trace[qss_trace_used + 2] = b;")
    out("    qss_trace_used += 3;")
    out("}")
    out("")
    out("/* transition bodies: record the firing (cycles are charged at the")
    out("   call site, where the per-transition cost is known statically) */")
    for index, transition in enumerate(layout.transition_names):
        out(f"void {names.transitions[transition]}(void)")
        out("{")
        out(f"    qss_trace_put({_TRACE_FIRE}, {index}, 0);")
        out("}")
        out("")
    out("/* choice readers: scripted value or Python hook, both traced */")
    for index, place in enumerate(layout.choice_places):
        out(f"int {names.choice_places[place]}(void)")
        out("{")
        out("    int value;")
        out(f"    if (qss_choice_hook) value = qss_choice_hook({index});")
        out(f"    else value = qss_choice_current[{index}];")
        out(f"    qss_trace_put({_TRACE_CHOICE}, {index}, value);")
        out("    return value;")
        out("}")
        out("")
    out(f"int repro_qss_abi(void) {{ return {ABI_VERSION}; }}")
    out(f"int repro_qss_task_count(void) {{ return {n_tasks}; }}")
    out(f"int repro_qss_choice_count(void) {{ return {n_choices}; }}")
    out(f"int repro_qss_transition_count(void) {{ return {len(layout.transition_names)}; }}")
    out(f"int repro_qss_counter_count(void) {{ return {n_counters}; }}")
    out("")
    counter_idents = [
        names.counters[task][place] for task, place, _ in layout.counters
    ]
    out("void repro_qss_counters_read(int *out)")
    out("{")
    for index, ident in enumerate(counter_idents):
        out(f"    out[{index}] = {ident};")
    out("    (void) out;")
    out("}")
    out("")
    out("void repro_qss_counters_write(const int *in)")
    out("{")
    for index, ident in enumerate(counter_idents):
        out(f"    {ident} = in[{index}];")
    out("    (void) in;")
    out("}")
    out("")
    out("void repro_qss_reset(void)")
    out("{")
    for (task, place, initial), ident in zip(layout.counters, counter_idents):
        out(f"    {ident} = {initial};")
    out("    qss_cycles = 0;")
    out("    qss_trace_used = 0;")
    out("    qss_trace_oom = 0;")
    out("}")
    out("")
    out("void repro_qss_set_costs(long long call, long long test, long long counter,")
    out("                         long long transition_unit)")
    out("{")
    out("    qss_call_cycles = call;")
    out("    qss_test_cycles = test;")
    out("    qss_counter_cycles = counter;")
    out("    qss_tr_unit = transition_unit;")
    out("}")
    out("")
    out("void repro_qss_set_choice_hook(int (*hook)(int)) { qss_choice_hook = hook; }")
    out("void repro_qss_set_trace(int on) { qss_trace_on = on; }")
    out("long repro_qss_trace_len(void) { return qss_trace_used; }")
    out("void repro_qss_trace_clear(void) { qss_trace_used = 0; qss_trace_oom = 0; }")
    out("long long repro_qss_cycles(void) { return qss_cycles; }")
    out("")
    out("void repro_qss_trace_copy(int *out)")
    out("{")
    out("    if (qss_trace_used)")
    out("        memcpy(out, qss_trace, (size_t) qss_trace_used * sizeof(int));")
    out("}")
    out("")
    out("int repro_qss_run(int task, long n, const int *script, long long *cycles_out)")
    out("{")
    out("    long i;")
    out(f"    if (task < 0 || task >= {n_tasks}) return -1;")
    out("    for (i = 0; i < n; i++) {")
    out("        long long before;")
    if n_choices:
        out("        if (script) {")
        out("            int j;")
        out(f"            for (j = 0; j < {n_choices}; j++)")
        out(f"                qss_choice_current[j] = script[i * {n_choices} + j];")
        out("        }")
    else:
        out("        (void) script;")
    out(f"        qss_trace_put({_TRACE_ACTIVATION}, (int) i, 0);")
    out("        before = qss_cycles;")
    out("        switch (task) {")
    for index, task_name in enumerate(layout.task_names):
        out(f"        case {index}: {names.tasks[task_name]}(); break;")
    out("        }")
    out("        if (cycles_out) cycles_out[i] = qss_cycles - before;")
    out("        if (qss_trace_oom) return -2;")
    out("    }")
    out("    return 0;")
    out("}")
    return "\n".join(lines) + "\n"


def native_source(program: Program) -> str:
    """The complete native translation unit: instrumented emission plus
    the generated driver (what ``repro-qss emit --driver`` writes)."""
    emission = emit_c(
        program, EmitOptions(instrument=True, explicit_choice_tail=True)
    )
    layout = _layout_for(program, emission)
    return emission.source + _driver_source(program, emission, layout)


def task_choice_branches(task: TaskProgram) -> Dict[str, Tuple[str, ...]]:
    """Choice places evaluated by ``task`` mapped to their branch
    transitions — the alphabet a scripted choice stream must cover."""
    branches: Dict[str, Set[str]] = {}

    def walk(block: Block) -> None:
        for statement in block:
            if isinstance(statement, Guarded):
                walk(statement.body)
            elif isinstance(statement, ChoiceIf):
                bucket = branches.setdefault(statement.place, set())
                for choice, branch in statement.branches:
                    bucket.add(choice)
                    walk(branch)

    for fragment in task.fragments.values():
        walk(fragment.body)
    return {place: tuple(sorted(options)) for place, options in sorted(branches.items())}


# --------------------------------------------------------------------------
# library loading
# --------------------------------------------------------------------------

_HOOK_T = ctypes.CFUNCTYPE(ctypes.c_int, ctypes.c_int)

_INT_P = ctypes.POINTER(ctypes.c_int)
_LONGLONG_P = ctypes.POINTER(ctypes.c_longlong)


class _AbiMismatch(Exception):
    pass


def _load_private(artifact: Path) -> ctypes.CDLL:
    """dlopen a *private copy* of the artifact.

    ``dlopen`` dedupes by path, so loading the cached ``.so`` twice
    would share one set of static counters between executors.  Each
    load therefore copies the artifact to a fresh temp file, opens it,
    and unlinks the copy (the mapping survives the unlink on POSIX).
    """
    fd, tmp_name = tempfile.mkstemp(prefix="repro-qss-", suffix=".so")
    try:
        with os.fdopen(fd, "wb") as tmp:
            with open(artifact, "rb") as src:
                shutil.copyfileobj(src, tmp)
        return ctypes.CDLL(tmp_name)
    finally:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - best effort
            pass


def _bind(lib: ctypes.CDLL, layout: _Layout) -> ctypes.CDLL:
    lib.repro_qss_abi.restype = ctypes.c_int
    lib.repro_qss_task_count.restype = ctypes.c_int
    lib.repro_qss_choice_count.restype = ctypes.c_int
    lib.repro_qss_transition_count.restype = ctypes.c_int
    lib.repro_qss_counter_count.restype = ctypes.c_int
    lib.repro_qss_counters_read.argtypes = [_INT_P]
    lib.repro_qss_counters_write.argtypes = [_INT_P]
    lib.repro_qss_reset.restype = None
    lib.repro_qss_set_costs.argtypes = [
        ctypes.c_longlong,
        ctypes.c_longlong,
        ctypes.c_longlong,
        ctypes.c_longlong,
    ]
    lib.repro_qss_set_choice_hook.argtypes = [_HOOK_T]
    lib.repro_qss_set_trace.argtypes = [ctypes.c_int]
    lib.repro_qss_trace_len.restype = ctypes.c_long
    lib.repro_qss_trace_copy.argtypes = [_INT_P]
    lib.repro_qss_cycles.restype = ctypes.c_longlong
    lib.repro_qss_run.argtypes = [ctypes.c_int, ctypes.c_long, _INT_P, _LONGLONG_P]
    lib.repro_qss_run.restype = ctypes.c_int
    if lib.repro_qss_abi() != ABI_VERSION:
        raise _AbiMismatch("driver ABI mismatch")
    if (
        lib.repro_qss_task_count() != len(layout.task_names)
        or lib.repro_qss_choice_count() != len(layout.choice_places)
        or lib.repro_qss_transition_count() != len(layout.transition_names)
        or lib.repro_qss_counter_count() != len(layout.counters)
    ):
        raise _AbiMismatch("driver layout mismatch")
    return lib


# --------------------------------------------------------------------------
# executors
# --------------------------------------------------------------------------

# imported lazily where needed to avoid a cycle with interpreter.py
def _activation_result(task: str, cycles: int, fired, choices) -> "ActivationResult":
    from .interpreter import ActivationResult

    return ActivationResult(task=task, cycles=cycles, fired=fired, choices_taken=choices)


class NativeBatchResult:
    """Outcome of a scripted multi-activation run.

    The raw trace (a flat ``(kind, a, b)`` int32 array) and the
    per-activation cycle counts are captured eagerly; the per-activation
    :class:`~repro.codegen.interpreter.ActivationResult` list is
    materialized lazily on first access to :attr:`results` — sustained
    runs that only need aggregate numbers skip the Python-object cost
    entirely (same idea as the frontier engine's lazy named views).
    """

    def __init__(
        self,
        task_name: str,
        layout: _Layout,
        trace: np.ndarray,
        cycles: np.ndarray,
        choice_names: Sequence[Optional[Mapping[str, str]]],
    ) -> None:
        self.task_name = task_name
        self._layout = layout
        self.trace = trace.reshape(-1, 3)
        self.cycles = cycles
        self._choice_names = choice_names
        self._results: Optional[List] = None

    def __len__(self) -> int:
        return len(self.cycles)

    @property
    def total_cycles(self) -> int:
        return int(self.cycles.sum())

    def fired_counts(self) -> Dict[str, int]:
        """Aggregate firing counts per transition (no materialization)."""
        fires = self.trace[self.trace[:, 0] == _TRACE_FIRE, 1]
        counts = np.bincount(fires, minlength=len(self._layout.transition_names))
        return {
            name: int(count)
            for name, count in zip(self._layout.transition_names, counts)
            if count
        }

    @property
    def results(self) -> List:
        """Per-activation :class:`ActivationResult` list (lazy)."""
        if self._results is not None:
            return self._results
        transition_names = self._layout.transition_names
        choice_places = self._layout.choice_places
        kinds = self.trace[:, 0]
        boundaries = np.flatnonzero(kinds == _TRACE_ACTIVATION)
        ends = np.append(boundaries[1:], len(kinds))
        results = []
        for index, (start, stop) in enumerate(zip(boundaries, ends)):
            fired: List[str] = []
            choices: Dict[str, str] = {}
            provided = self._choice_names[index] if self._choice_names is not None else None
            for kind, a, b in self.trace[start + 1 : stop]:
                if kind == _TRACE_FIRE:
                    fired.append(transition_names[a])
                elif kind == _TRACE_CHOICE:
                    place = choice_places[a]
                    if 0 <= b < len(transition_names):
                        choices[place] = transition_names[b]
                    elif provided is not None and place in provided:
                        choices[place] = provided[place]
            results.append(
                _activation_result(
                    self.task_name, int(self.cycles[index]), fired, choices
                )
            )
        self._results = results
        return results


class NativeProgram:
    """A synthesized program compiled to a shared library.

    One instance owns one private copy of the library (its own static
    counter state) plus the Python-side index maps; per-task access goes
    through :meth:`task_backend`.
    """

    def __init__(
        self,
        program: Program,
        cost_model: Optional[CostModel] = None,
        directory: Optional[Path] = None,
    ) -> None:
        self.program = program
        self.cost = cost_model or CostModel()
        emission = emit_c(
            program, EmitOptions(instrument=True, explicit_choice_tail=True)
        )
        self.emission = emission
        self.layout = _layout_for(program, emission)
        self.source = emission.source + _driver_source(program, emission, self.layout)
        self.artifact = build_shared_library(self.source, directory)
        try:
            self._lib = _bind(_load_private(self.artifact), self.layout)
        except (OSError, _AbiMismatch) as err:
            # corrupt or stale artifact: quarantine and rebuild once
            try:
                self.artifact.unlink()
            except OSError:  # pragma: no cover - best effort
                pass
            self.artifact = build_shared_library(self.source, directory)
            try:
                self._lib = _bind(_load_private(self.artifact), self.layout)
            except (OSError, _AbiMismatch) as second:
                raise NativeBuildError(
                    f"artifact failed to load even after a rebuild: {second}"
                ) from err
        self._task_ids = {name: i for i, name in enumerate(self.layout.task_names)}
        self._choice_ids = {p: i for i, p in enumerate(self.layout.choice_places)}
        self._choice_values = emission.names.choice_values
        self._counter_slices: Dict[str, slice] = {}
        start = 0
        for task in program.tasks:
            width = len(task.counters)
            self._counter_slices[task.name] = slice(start, start + width)
            start += width
        self._counter_places = [place for _, place, _ in self.layout.counters]
        self._initials = np.array(
            [initial for _, _, initial in self.layout.counters], dtype=np.int32
        )
        self._n_counters = len(self.layout.counters)
        self._hook_error: Optional[BaseException] = None
        self._hook_fn: Optional[Callable[[str], str]] = None
        self._hook_memo: Dict[str, int] = {}
        self._hook_records: Dict[str, str] = {}
        # one persistent ctypes trampoline; installed only for the
        # duration of resolver-driven activations
        self._trampoline = _HOOK_T(self._dispatch_choice)
        self._null_hook = ctypes.cast(None, _HOOK_T)
        self.set_cost_model(self.cost)

    # -- configuration -----------------------------------------------------
    def set_cost_model(self, cost_model: CostModel) -> None:
        self.cost = cost_model
        self._lib.repro_qss_set_costs(
            cost_model.call_cycles,
            cost_model.test_cycles,
            cost_model.counter_cycles,
            cost_model.transition_cycles,
        )

    # -- state -------------------------------------------------------------
    def read_counters(self) -> np.ndarray:
        buffer = np.zeros(max(self._n_counters, 1), dtype=np.int32)
        self._lib.repro_qss_counters_read(buffer.ctypes.data_as(_INT_P))
        return buffer[: self._n_counters]

    def write_counters(self, values: np.ndarray) -> None:
        buffer = np.ascontiguousarray(values, dtype=np.int32)
        self._lib.repro_qss_counters_write(buffer.ctypes.data_as(_INT_P))

    def reset(self) -> None:
        self._lib.repro_qss_reset()

    # -- execution ---------------------------------------------------------
    def _dispatch_choice(self, place_index: int) -> int:
        place = self.layout.choice_places[place_index]
        if place in self._hook_memo:
            return self._hook_memo[place]
        try:
            chosen = self._hook_fn(place)
        except BaseException as exc:  # noqa: BLE001 - re-raised after the run
            if self._hook_error is None:
                self._hook_error = exc
            return _CHOICE_ERROR
        value = self._choice_values.get(chosen, _CHOICE_UNKNOWN)
        self._hook_memo[place] = value
        self._hook_records[place] = chosen
        return value

    def _run(
        self, task_id: int, n: int, script: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Invoke the driver loop; returns ``(trace, per-activation cycles)``."""
        lib = self._lib
        lib.repro_qss_trace_clear()
        cycles = np.zeros(n, dtype=np.int64)
        script_ptr = (
            script.ctypes.data_as(_INT_P) if script is not None else _INT_P()
        )
        status = lib.repro_qss_run(
            task_id, n, script_ptr, cycles.ctypes.data_as(_LONGLONG_P)
        )
        if status == -2:
            raise MemoryError("native trace buffer allocation failed")
        if status != 0:  # pragma: no cover - defensive
            raise RuntimeError(f"native driver returned status {status}")
        length = lib.repro_qss_trace_len()
        trace = np.zeros(max(length, 1), dtype=np.int32)
        if length:
            lib.repro_qss_trace_copy(trace.ctypes.data_as(_INT_P))
        return trace[:length], cycles

    def task_backend(self, task_name: str) -> "NativeTaskBackend":
        task = self.program.task(task_name)
        return NativeTaskBackend(self, task)


class NativeTaskBackend:
    """Per-task view of a :class:`NativeProgram`: the native counterpart
    of :class:`~repro.codegen.interpreter.TaskExecutor`'s storage and
    activation machinery."""

    def __init__(self, native: NativeProgram, task: TaskProgram) -> None:
        self.native = native
        self.task = task
        self.task_id = native._task_ids[task.name]
        self._slice = native._counter_slices[task.name]
        self._places = native._counter_places[self._slice]
        self._place_ids = {place: i for i, place in enumerate(self._places)}

    # -- state -------------------------------------------------------------
    @property
    def counters(self) -> Dict[str, int]:
        values = self.native.read_counters()[self._slice]
        return {place: int(value) for place, value in zip(self._places, values)}

    @counters.setter
    def counters(self, values: Mapping[str, int]) -> None:
        current = self.native.read_counters()
        mine = np.zeros(len(self._places), dtype=np.int32)
        for place, value in values.items():
            mine[self._place_ids[place]] = value
        current[self._slice] = mine
        self.native.write_counters(current)

    def reset(self) -> None:
        current = self.native.read_counters()
        current[self._slice] = self.native._initials[self._slice]
        self.native.write_counters(current)

    # -- execution ---------------------------------------------------------
    def activate(self, resolve_choice: Callable[[str], str]):
        """One resolver-driven activation (interpreter-compatible)."""
        native = self.native
        native._hook_fn = resolve_choice
        native._hook_error = None
        native._hook_memo = {}
        native._hook_records = {}
        native._lib.repro_qss_set_choice_hook(native._trampoline)
        try:
            trace, cycles = native._run(self.task_id, 1, None)
        finally:
            native._lib.repro_qss_set_choice_hook(native._null_hook)
            native._hook_fn = None
        if native._hook_error is not None:
            raise native._hook_error
        records = dict(native._hook_records)
        fired = [
            native.layout.transition_names[entry[1]]
            for entry in trace.reshape(-1, 3)
            if entry[0] == _TRACE_FIRE
        ]
        return _activation_result(
            self.task.name, int(cycles[0]), fired, records
        )

    def encode_script(
        self, choice_maps: Sequence[Mapping[str, str]]
    ) -> np.ndarray:
        """Pack per-activation choice resolutions into the driver's
        scripted form (one int32 row per activation, one column per
        choice place of the whole program)."""
        native = self.native
        places = native.layout.choice_places
        values = native._choice_values
        script = np.full((len(choice_maps), max(len(places), 1)), _CHOICE_MISSING, dtype=np.int32)
        for row, mapping in enumerate(choice_maps):
            for place, chosen in mapping.items():
                column = native._choice_ids.get(place)
                if column is not None:
                    script[row, column] = values.get(chosen, _CHOICE_UNKNOWN)
        return script

    def run_scripted(
        self,
        script: Union[np.ndarray, Sequence[Mapping[str, str]]],
        choice_names: Optional[Sequence[Mapping[str, str]]] = None,
    ) -> NativeBatchResult:
        """Run a batch of scripted activations in one native call.

        ``script`` is either a sequence of per-activation
        ``{place: transition}`` maps or a pre-encoded int32 array from
        :meth:`encode_script` (benchmarks pre-encode outside the timed
        region).  Raises ``KeyError`` — like
        :func:`~repro.codegen.interpreter.make_resolver` — if an
        activation consults a choice place its map does not resolve,
        after the batch completes.
        """
        if isinstance(script, np.ndarray):
            encoded = np.ascontiguousarray(script, dtype=np.int32)
        else:
            choice_names = script if choice_names is None else choice_names
            encoded = self.encode_script(script)
        n = len(encoded)
        trace, cycles = self.native._run(self.task_id, n, encoded)
        rows = trace.reshape(-1, 3)
        missing = (rows[:, 0] == _TRACE_CHOICE) & (rows[:, 2] == _CHOICE_MISSING)
        if missing.any():
            place = self.native.layout.choice_places[int(rows[missing][0, 1])]
            raise KeyError(f"no resolution provided for choice place {place!r}")
        return NativeBatchResult(
            self.task.name, self.native.layout, trace, cycles, choice_names
        )

    def activate_many(self, choice_maps: Sequence[Mapping[str, str]]) -> List:
        """Scripted batch, materialized to per-activation results."""
        return self.run_scripted(choice_maps).results


def native_task_backend(
    task: TaskProgram,
    cost_model: Optional[CostModel] = None,
    directory: Optional[Path] = None,
) -> NativeTaskBackend:
    """Compile a single task (wrapped in a one-task program) and return
    its backend — the entry point :class:`TaskExecutor` uses."""
    program = Program(name=f"{task.name}.solo", tasks=[task])
    return NativeProgram(program, cost_model, directory).task_backend(task.name)
