"""Intermediate representation of synthesized task code.

The C code generation algorithm of Section 4 turns a valid schedule into
structured code: plain statements for transitions, ``if/then/else`` for
choice places, counting variables with ``if``/``while`` tests for
multirate arcs, and shared fragments for merge places (the paper uses
labels and ``goto``; we use shared fragments, which are emitted either
inline, as labelled code, or as helper functions — see
:mod:`repro.codegen.emit_c`).

The same IR is consumed by two backends:

* :mod:`repro.codegen.emit_c` pretty-prints compilable C and measures the
  generated code size (the "lines of C code" column of Table I);
* :mod:`repro.codegen.interpreter` executes the IR against a cycle cost
  model, standing in for the paper's target processor (the "clock
  cycles" column of Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union


@dataclass
class FireTransition:
    """Execute the computation associated with a transition."""

    transition: str
    cost: int = 1


@dataclass
class IncCount:
    """``count_<place> += amount`` — tokens produced into a buffer."""

    place: str
    amount: int


@dataclass
class DecCount:
    """``count_<place> -= amount`` — tokens consumed from a buffer."""

    place: str
    amount: int


@dataclass
class CallFragment:
    """Invoke the code fragment of another transition.

    Fragments realize the paper's code sharing at merge places: the
    fragment of a transition reachable from several producers is
    generated once and referenced from every producer site.
    """

    fragment: str


@dataclass
class Guarded:
    """Counter-guarded execution.

    ``kind`` is ``"if"`` (fires at most once — consumer rate >= producer
    rate) or ``"while"`` (may fire several times — producer rate >
    consumer rate).  ``conditions`` lists ``(place, threshold)`` pairs
    that must all hold (several pairs model a join transition).
    """

    kind: str
    conditions: Tuple[Tuple[str, int], ...]
    body: "Block"


@dataclass
class ChoiceIf:
    """Data-dependent branch on the token value in a choice place.

    ``branches`` maps each alternative successor transition to the block
    executed when the run-time data selects it; the generated C reads the
    choice outcome through ``choice_<place>()``.
    """

    place: str
    branches: Tuple[Tuple[str, "Block"], ...]


@dataclass
class Comment:
    """A generated source comment (traceability back to the net)."""

    text: str


Statement = Union[FireTransition, IncCount, DecCount, CallFragment, Guarded, ChoiceIf, Comment]


@dataclass
class Block:
    """A sequence of statements."""

    statements: List[Statement] = field(default_factory=list)

    def append(self, statement: Statement) -> None:
        self.statements.append(statement)

    def extend(self, statements: Sequence[Statement]) -> None:
        self.statements.extend(statements)

    def __iter__(self):
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)


@dataclass
class Fragment:
    """The code fragment of one transition: fire it, then propagate tokens."""

    name: str
    transition: str
    body: Block
    call_count: int = 0


@dataclass
class TaskProgram:
    """The synthesized code of one software task.

    Attributes
    ----------
    name:
        Task (function) name.
    source_transitions:
        The environment inputs that trigger the task.
    counters:
        ``{place: initial value}`` for every counting variable of the task.
    fragments:
        All transition fragments, keyed by fragment name.
    entry_fragments:
        Fragment names executed when the task is activated (one per
        triggering source transition).
    """

    name: str
    source_transitions: Tuple[str, ...]
    counters: Dict[str, int] = field(default_factory=dict)
    fragments: Dict[str, Fragment] = field(default_factory=dict)
    entry_fragments: Tuple[str, ...] = ()

    def fragment(self, name: str) -> Fragment:
        return self.fragments[name]

    def statement_count(self) -> int:
        """Total number of IR statements across all fragments."""

        def count_block(block: Block) -> int:
            total = 0
            for statement in block:
                total += 1
                if isinstance(statement, Guarded):
                    total += count_block(statement.body)
                elif isinstance(statement, ChoiceIf):
                    for _, branch in statement.branches:
                        total += count_block(branch)
            return total

        return sum(count_block(f.body) for f in self.fragments.values())


@dataclass
class Program:
    """A complete synthesized implementation: a set of tasks."""

    name: str
    tasks: List[TaskProgram] = field(default_factory=list)

    @property
    def task_count(self) -> int:
        return len(self.tasks)

    def task(self, name: str) -> TaskProgram:
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(f"no task named {name!r}")

    def statement_count(self) -> int:
        return sum(task.statement_count() for task in self.tasks)
