"""Code generation: from a task partition to structured task code.

This is the implementation of Section 4 of the paper.  The synthesized
code for a task is obtained by traversing the task's portion of the net
(the transitions of the T-invariants triggered by the task's input),
starting from the source transition and propagating tokens downstream:

* a transition becomes a plain statement (a call to the user-provided
  function implementing the computation);
* a choice place becomes an ``if/then/else`` on the run-time data;
* a rate mismatch between producer and consumer (weighted arcs) becomes
  a counting variable plus an ``if`` test (consumer slower to enable:
  ``f(t_i) < f(t_{i-1})``) or a ``while`` loop (consumer fires several
  times: ``f(t_i) > f(t_{i-1})``), exactly the rules of the paper's
  ``Task`` routine;
* a merge place (a transition reachable from several producers — code
  shared between branches or between tasks) becomes a shared fragment
  referenced from every producer site, the structured equivalent of the
  paper's label/``goto`` sharing.

The generated :class:`~repro.codegen.ir.Program` is backend independent:
it can be pretty-printed to C or executed directly by the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..petrinet import PetriNet
from ..qss.schedule import ValidSchedule
from ..qss.tasks import TaskDefinition, TaskPartition, partition_tasks
from .ir import (
    Block,
    CallFragment,
    ChoiceIf,
    Comment,
    DecCount,
    FireTransition,
    Fragment,
    Guarded,
    IncCount,
    Program,
    TaskProgram,
)


class CodegenError(Exception):
    """Raised when a task subnet cannot be turned into structured code."""


@dataclass
class CodegenOptions:
    """Tunable aspects of code generation.

    Attributes
    ----------
    share_merges:
        When True (default, the paper's behaviour) the fragment of a
        transition referenced from several producer sites is emitted once
        and called from each site; when False the fragment is duplicated
        inline at every site.  Turning sharing off is used by the
        code-size ablation benchmark.
    emit_comments:
        Include traceability comments mapping statements back to net
        nodes.
    """

    share_merges: bool = True
    emit_comments: bool = False


class _TaskGenerator:
    """Generates the fragments of a single task."""

    def __init__(
        self,
        net: PetriNet,
        task: TaskDefinition,
        options: CodegenOptions,
    ) -> None:
        self.net = net
        self.task = task
        self.options = options
        self.task_transitions = set(task.transitions)
        self.task_places = set(task.places)
        self.counters: Dict[str, int] = {}
        self.fragments: Dict[str, Fragment] = {}
        initial = net.initial_marking
        self._initial = initial

    # -- helpers -----------------------------------------------------------
    def _consumers_in_task(self, place: str) -> List[str]:
        return [
            t for t in self.net.postset_names(place) if t in self.task_transitions
        ]

    def _producers_in_task(self, place: str) -> List[str]:
        return [
            t for t in self.net.preset_names(place) if t in self.task_transitions
        ]

    def _needs_counter(self, place: str, consumer: str) -> bool:
        """A place needs a counting variable unless it is a plain 1-to-1
        link: single producer, single consumer, equal weights, no initial
        tokens, and the consumer has no other input place."""
        producers = self._producers_in_task(place)
        if len(producers) != 1:
            return True
        if self._initial[place] != 0:
            return True
        produce = self.net.arc_weight(producers[0], place)
        consume = self.net.arc_weight(place, consumer)
        if produce != consume:
            return True
        if len(self.net.preset(consumer)) != 1:
            return True
        return False

    def _ensure_counter(self, place: str) -> None:
        if place not in self.counters:
            self.counters[place] = self._initial[place]

    # -- fragment construction ----------------------------------------------
    def fragment_for(self, transition: str, stack: Tuple[str, ...] = ()) -> str:
        """Return the fragment name for ``transition``, creating it if needed."""
        name = transition
        if name in self.fragments:
            return name
        if transition in stack:
            # cycle in the task net: reference the fragment being built
            return name
        fragment = Fragment(name=name, transition=transition, body=Block())
        self.fragments[name] = fragment
        fragment.body = self._build_body(transition, stack + (transition,))
        return name

    def _build_body(self, transition: str, stack: Tuple[str, ...]) -> Block:
        body = Block()
        if self.options.emit_comments:
            body.append(Comment(f"transition {transition}"))
        body.append(
            FireTransition(
                transition=transition, cost=self.net.transition(transition).cost
            )
        )
        # 1. Produce into all downstream places first (so that join
        #    transitions see every token produced by this firing).
        productions: List[Tuple[str, int, List[str]]] = []
        for place, weight in self.net.postset(transition).items():
            consumers = self._consumers_in_task(place)
            if not consumers:
                continue
            productions.append((place, weight, consumers))

        handled_consumers: Set[str] = set()
        deferred: List[Tuple[str, List[str]]] = []
        for place, weight, consumers in productions:
            if len(consumers) > 1:
                # data-dependent choice: handled in step 2
                deferred.append((place, consumers))
                continue
            consumer = consumers[0]
            if self._needs_counter(place, consumer):
                self._ensure_counter(place)
                body.append(IncCount(place=place, amount=weight))
            deferred.append((place, consumers))

        # 2. Then attempt every distinct downstream consumer once.
        for place, consumers in deferred:
            if len(consumers) > 1:
                body.append(self._choice_statement(place, consumers, stack))
                continue
            consumer = consumers[0]
            if consumer in handled_consumers:
                continue
            handled_consumers.add(consumer)
            body.extend(self._consumer_statements(place, consumer, stack))
        return body

    def _choice_statement(
        self, place: str, consumers: Sequence[str], stack: Tuple[str, ...]
    ) -> ChoiceIf:
        """An if/then/else resolving the data-dependent choice at ``place``."""
        for consumer in consumers:
            if self.net.arc_weight(place, consumer) != 1:
                raise CodegenError(
                    f"choice place {place!r} has a weighted output arc to "
                    f"{consumer!r}; weighted choices are not supported by the "
                    "structured code generator"
                )
        branches = []
        for consumer in consumers:
            branch = Block()
            branch.extend(self._call_statements(consumer, stack))
            branches.append((consumer, branch))
        return ChoiceIf(place=place, branches=tuple(branches))

    def _consumer_statements(
        self, place: str, consumer: str, stack: Tuple[str, ...]
    ) -> List:
        """Code that attempts to fire ``consumer`` after tokens arrived in
        ``place``."""
        if not self._needs_counter(place, consumer):
            return list(self._call_statements(consumer, stack))
        # counting-variable pattern: guard on every input place of the
        # consumer that lies in this task (a join needs them all).
        conditions: List[Tuple[str, int]] = []
        for input_place, weight in self.net.preset(consumer).items():
            if input_place in self.task_places:
                self._ensure_counter(input_place)
                conditions.append((input_place, weight))
        produce = max(
            (self.net.arc_weight(p, place) for p in self._producers_in_task(place)),
            default=1,
        )
        consume = self.net.arc_weight(place, consumer)
        kind = "while" if produce > consume or self._initial[place] > consume else "if"
        guard_body = Block()
        for input_place, weight in conditions:
            guard_body.append(DecCount(place=input_place, amount=weight))
        guard_body.extend(self._call_statements(consumer, stack))
        return [Guarded(kind=kind, conditions=tuple(conditions), body=guard_body)]

    def _call_statements(self, transition: str, stack: Tuple[str, ...]) -> List:
        """Reference (or inline) the fragment of ``transition``."""
        name = self.fragment_for(transition, stack)
        return [CallFragment(fragment=name)]

    # -- entry point ----------------------------------------------------------
    def generate(self) -> TaskProgram:
        entries = []
        for source in self.task.source_transitions:
            entries.append(self.fragment_for(source))
        # record call counts for the emitter's inline-vs-shared decision
        self._count_calls()
        return TaskProgram(
            name=self.task.name,
            source_transitions=tuple(self.task.source_transitions),
            counters=dict(self.counters),
            fragments=self.fragments,
            entry_fragments=tuple(entries),
        )

    def _count_calls(self) -> None:
        def walk(block: Block) -> None:
            for statement in block:
                if isinstance(statement, CallFragment):
                    self.fragments[statement.fragment].call_count += 1
                elif isinstance(statement, Guarded):
                    walk(statement.body)
                elif isinstance(statement, ChoiceIf):
                    for _, branch in statement.branches:
                        walk(branch)

        for fragment in self.fragments.values():
            walk(fragment.body)
        for entry in set(
            e for e in self.fragments if e in self.task.source_transitions
        ):
            self.fragments[entry].call_count += 1


def generate_task_program(
    net: PetriNet, task: TaskDefinition, options: Optional[CodegenOptions] = None
) -> TaskProgram:
    """Generate the structured code of one task."""
    return _TaskGenerator(net, task, options or CodegenOptions()).generate()


def generate_program(
    partition: TaskPartition, options: Optional[CodegenOptions] = None
) -> Program:
    """Generate the structured code of every task of a partition."""
    options = options or CodegenOptions()
    program = Program(name=partition.net.name)
    for task in partition.tasks:
        program.tasks.append(generate_task_program(partition.net, task, options))
    return program


def synthesize(
    schedule: ValidSchedule,
    rate_groups: Optional[Sequence[Sequence[str]]] = None,
    task_names: Optional[Dict[str, str]] = None,
    options: Optional[CodegenOptions] = None,
) -> Program:
    """End-to-end software synthesis from a valid schedule.

    Convenience wrapper combining task partitioning
    (:func:`repro.qss.tasks.partition_tasks`) and code generation; this is
    the function the examples and benchmarks call after
    :func:`repro.qss.compute_valid_schedule`.
    """
    partition = partition_tasks(schedule, rate_groups=rate_groups, task_names=task_names)
    return generate_program(partition, options)
