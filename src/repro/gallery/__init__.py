"""Gallery of the nets appearing in the paper's figures.

Each constructor returns a fresh :class:`~repro.petrinet.net.PetriNet`
reproducing one of the figures of Sgroi et al. (DAC 1999); the expected
analysis results quoted in the paper (T-invariants, valid schedules,
schedulability verdicts) are asserted by the test suite and regenerated
by the per-figure benchmarks.
"""

from .figures import (
    analyse_figure,
    gallery_nets,
    figure1a_free_choice,
    figure1b_not_free_choice,
    figure2_sdf_chain,
    figure3a_schedulable,
    figure3b_unschedulable,
    figure4_weighted,
    figure5_two_inputs,
    figure7_unschedulable,
    paper_figures,
)

__all__ = [
    "analyse_figure",
    "gallery_nets",
    "figure1a_free_choice",
    "figure1b_not_free_choice",
    "figure2_sdf_chain",
    "figure3a_schedulable",
    "figure3b_unschedulable",
    "figure4_weighted",
    "figure5_two_inputs",
    "figure7_unschedulable",
    "paper_figures",
]
