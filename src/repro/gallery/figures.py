"""Programmatic reconstructions of the paper's figure nets.

Every net below is reconstructed from the figure drawings and from the
quantitative facts stated in the text (T-invariants, valid schedules,
arc weights), so the analysis results quoted in the paper can be
regenerated exactly:

* Figure 1a/1b — free-choice vs non-free-choice example.
* Figure 2 — multirate SDF chain with repetition vector (4, 2, 1).
* Figure 3a — schedulable FCPN, valid schedule {(t1 t2 t4), (t1 t3 t5)}.
* Figure 3b — non-schedulable FCPN (branches of a choice must
  synchronize downstream).
* Figure 4 — schedulable FCPN with weighted arcs, valid schedule
  {(t1 t2 t1 t2 t4), (t1 t3 t5 t5)}.
* Figure 5 — two-input FCPN used to illustrate T-allocations and
  T-reductions; T-invariants of R1 are (1,1,0,2,0,4,0,0,0) and
  (0,0,0,0,0,1,0,1,1); a valid schedule is
  {(t1 t2 t4 t4 t6 t6 t6 t6 t8 t9 t6), (t1 t3 t5 t7 t7 t8 t9 t6)}.
* Figure 7 — non-schedulable FCPN whose two T-reductions are both
  inconsistent (each keeps a source place with no producer).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

from ..petrinet import ENGINE_COMPILED, NetBuilder, PetriNet

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from ..qss.scheduler import SchedulabilityReport


def figure1a_free_choice() -> PetriNet:
    """Figure 1a: a choice place whose successors have a single input each.

    The net is free-choice: whenever one of ``t1``/``t2`` is enabled, both
    are, so the choice can be resolved purely on data values.
    """
    return (
        NetBuilder("figure1a")
        .place("p1", tokens=1)
        .arc("p1", "t1")
        .arc("p1", "t2")
        .build()
    )


def figure1b_not_free_choice() -> PetriNet:
    """Figure 1b: not free-choice.

    ``t2`` has a second input place ``p2``, so there is a marking (one
    token in ``p1`` only) in which ``t3`` is enabled and ``t2`` is not —
    the defining violation of the free-choice property.
    """
    return (
        NetBuilder("figure1b")
        .place("p1", tokens=1)
        .place("p2", tokens=0)
        .arc("p1", "t2")
        .arc("p1", "t3")
        .arc("p2", "t2")
        .build()
    )


def figure2_sdf_chain() -> PetriNet:
    """Figure 2: a multirate SDF chain ``t1 -(1)-> p1 -(2)-> t2 -(1)-> p2 -(2)-> t3``.

    Its minimal T-invariant is ``f = (4, 2, 1)`` and a static schedule is
    the finite complete cycle ``t1 t1 t1 t1 t2 t2 t3`` repeated forever.
    """
    return (
        NetBuilder("figure2")
        .source("t1")
        .arc("t1", "p1")
        .arc("p1", "t2", weight=2)
        .arc("t2", "p2")
        .arc("p2", "t3", weight=2)
        .build()
    )


def figure3a_schedulable() -> PetriNet:
    """Figure 3a: schedulable FCPN.

    A source feeds a binary choice; each branch ends in its own sink.
    Valid schedule: ``{(t1 t2 t4), (t1 t3 t5)}``; the T-invariant space
    is spanned by ``a(1,1,0,1,0) + b(1,0,1,0,1)``.
    """
    return (
        NetBuilder("figure3a")
        .source("t1")
        .arc("t1", "p1")
        .arc("p1", "t2")
        .arc("t2", "p2")
        .arc("p2", "t4")
        .arc("p1", "t3")
        .arc("t3", "p3")
        .arc("p3", "t5")
        .build()
    )


def figure3b_unschedulable() -> PetriNet:
    """Figure 3b: non-schedulable FCPN.

    The two branches of the choice both feed transition ``t4``, which
    needs a token from each.  If the data always resolve the choice the
    same way, tokens accumulate without bound in the starved branch, so
    no valid schedule exists.
    """
    return (
        NetBuilder("figure3b")
        .source("t1")
        .arc("t1", "p1")
        .arc("p1", "t2")
        .arc("t2", "p2")
        .arc("p1", "t3")
        .arc("t3", "p3")
        .arc("p2", "t4")
        .arc("p3", "t4")
        .build()
    )


def figure4_weighted() -> PetriNet:
    """Figure 4: schedulable FCPN with weighted arcs.

    ``t4`` needs two tokens from ``p2`` (two firings of ``t2``), while
    ``t3`` produces two tokens into ``p3`` that ``t5`` drains one at a
    time.  A valid schedule is ``{(t1 t2 t1 t2 t4), (t1 t3 t5 t5)}``.
    The section-4 C code listing of the paper is generated from this net.
    """
    return (
        NetBuilder("figure4")
        .source("t1")
        .arc("t1", "p1")
        .arc("p1", "t2")
        .arc("t2", "p2")
        .arc("p2", "t4", weight=2)
        .arc("p1", "t3")
        .arc("t3", "p3", weight=2)
        .arc("p3", "t5")
        .build()
    )


def figure5_two_inputs() -> PetriNet:
    """Figure 5: the two-input FCPN used for T-allocations/T-reductions.

    Reconstruction notes
    --------------------
    The topology is recovered from the figure and from the quantitative
    facts in Section 3:

    * two T-allocations, ``A1`` containing ``t2`` and ``A2`` containing
      ``t3`` (one binary choice at ``p1``);
    * the T-invariants of the reduction ``R1`` are
      ``(1,1,0,2,0,4,0,0,0)`` and ``(0,0,0,0,0,1,0,1,1)`` over
      ``(t1..t9)``;
    * a valid schedule is ``{(t1 t2 t4 t4 t6 t6 t6 t6 t8 t9 t6),
      (t1 t3 t5 t7 t7 t8 t9 t6)}``.

    These pin down the arc weights: ``t2 -(2)-> p2``, ``t4 -(2)-> p4``,
    ``t5 -(2)-> p5`` and ``t5 -(2)-> p6``; ``t8`` is a second source
    transition whose stream (``t8 -> p7 -> t9 -> p4``) merges into the
    shared transition ``t6`` — the pattern the paper uses to illustrate
    code shared between tasks.
    """
    return (
        NetBuilder("figure5")
        .source("t1")
        .arc("t1", "p1")
        # choice at p1
        .arc("p1", "t2")
        .arc("p1", "t3")
        # branch through t2
        .arc("t2", "p2", weight=2)
        .arc("p2", "t4")
        .arc("t4", "p4", weight=2)
        .arc("p4", "t6")
        # branch through t3
        .arc("t3", "p3")
        .arc("p3", "t5")
        .arc("t5", "p5", weight=2)
        .arc("t5", "p6", weight=2)
        .arc("p5", "t7")
        .arc("p6", "t7")
        # second input stream merging into t6 through p4
        .source("t8")
        .arc("t8", "p7")
        .arc("p7", "t9")
        .arc("t9", "p4")
        .build()
    )


def figure7_unschedulable() -> PetriNet:
    """Figure 7: non-schedulable FCPN with inconsistent T-reductions.

    ``t6`` synchronizes the two branches of the choice at ``p1`` (it needs
    tokens from both ``p4`` and ``p5``), so each T-reduction keeps a
    source place with no producer and is inconsistent: firing
    ``t1 t2 t4 t6`` forever would require infinitely many tokens from the
    removed branch.
    """
    return (
        NetBuilder("figure7")
        .source("t1")
        .arc("t1", "p1")
        .arc("p1", "t2")
        .arc("p1", "t3")
        .arc("t2", "p2")
        .arc("p2", "t4")
        .arc("t3", "p3")
        .arc("p3", "t5")
        .arc("t4", "p4")
        .arc("t5", "p5")
        .arc("t5", "p6")
        .arc("p4", "t6")
        .arc("p5", "t6")
        .arc("p6", "t7")
        .build()
    )


def paper_figures() -> Dict[str, Callable[[], PetriNet]]:
    """All figure constructors keyed by a short identifier."""
    return {
        "figure1a": figure1a_free_choice,
        "figure1b": figure1b_not_free_choice,
        "figure2": figure2_sdf_chain,
        "figure3a": figure3a_schedulable,
        "figure3b": figure3b_unschedulable,
        "figure4": figure4_weighted,
        "figure5": figure5_two_inputs,
        "figure7": figure7_unschedulable,
    }


def gallery_nets() -> List[Tuple[str, PetriNet]]:
    """All figure nets, instantiated, as ``(figure id, net)`` pairs.

    The differential property tests and the scenario corpus both sweep
    the whole gallery; this helper instantiates every constructor once,
    in the stable key order of :func:`paper_figures`.
    """
    return [(figure, ctor()) for figure, ctor in paper_figures().items()]


def analyse_figure(
    figure: str, engine: str = ENGINE_COMPILED
) -> "SchedulabilityReport":
    """Run the QSS analysis on one of the paper's figure nets.

    ``engine`` selects the execution core (``"compiled"`` or
    ``"legacy"``); the CLI's ``gallery --analyse`` threads its
    ``--engine`` flag through here, so every figure can exercise either
    path.

    Raises ``KeyError`` for an unknown figure id and
    :class:`~repro.petrinet.exceptions.NotFreeChoiceError` for figures
    outside the FCPN class (figure1b).
    """
    from ..qss.scheduler import analyse

    figures = paper_figures()
    if figure not in figures:
        raise KeyError(
            f"unknown figure {figure!r}; available: {', '.join(sorted(figures))}"
        )
    return analyse(figures[figure](), engine=engine)
