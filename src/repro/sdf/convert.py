"""Conversions between SDF graphs and (marked-graph) Petri nets.

Section 2 of the paper: "Synchronous Dataflow networks are a special
case of Petri Nets, since they can be mapped into Marked Graphs where
actors are transitions and arcs places."  The forward conversion realizes
exactly that mapping; the reverse conversion recovers an SDF graph from
any marked-graph Petri net, which is how the QSS machinery reuses the
SDF scheduling theory on its conflict-free components.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..petrinet import PetriNet
from ..petrinet.structure import is_marked_graph
from .graph import SDFError, SDFGraph


def sdf_to_petri(graph: SDFGraph, name: Optional[str] = None) -> PetriNet:
    """Convert an SDF graph to a marked-graph Petri net.

    Each actor becomes a transition, each channel becomes a place whose
    input arc weight is the channel's production rate, output arc weight
    its consumption rate, and initial marking its delay tokens.
    """
    net = PetriNet(name=name or graph.name)
    for actor in graph.actors:
        net.add_transition(actor.name, label=actor.label, cost=actor.cost)
    for index, edge in enumerate(graph.edges):
        place = f"ch_{index}_{edge.source}_{edge.target}"
        net.add_place(place, tokens=edge.initial_tokens, label=edge.channel_name)
        net.add_arc(edge.source, place, weight=edge.production)
        net.add_arc(place, edge.target, weight=edge.consumption)
    return net


def petri_to_sdf(net: PetriNet, name: Optional[str] = None) -> SDFGraph:
    """Convert a marked-graph Petri net back into an SDF graph.

    Raises
    ------
    SDFError
        If the net is not a marked graph (some place has more than one
        producer or consumer) — such a net has conflicts and cannot be
        represented as a plain SDF graph.
    """
    if not is_marked_graph(net):
        raise SDFError(
            f"net {net.name!r} is not a marked graph; only marked graphs "
            "map onto SDF graphs"
        )
    graph = SDFGraph(name=name or net.name)
    for transition in net.transitions:
        graph.add_actor(transition.name, cost=transition.cost, label=transition.label)
    initial = net.initial_marking
    for place in net.places:
        producers = net.preset(place.name)
        consumers = net.postset(place.name)
        if not producers or not consumers:
            # dangling places (pure sources/sinks of the environment) have
            # no SDF counterpart; they do not constrain the schedule of a
            # marked graph, so they are dropped with their tokens.
            continue
        (producer, production), = producers.items()
        (consumer, consumption), = consumers.items()
        graph.add_edge(
            producer,
            consumer,
            production=production,
            consumption=consumption,
            initial_tokens=initial[place.name],
            name=place.label or place.name,
        )
    return graph
