"""Balance equations and repetition vectors for SDF graphs.

The repetition vector ``q`` of an SDF graph is the smallest positive
integer solution of the balance equations
``production(e) * q[source(e)] = consumption(e) * q[target(e)]`` for
every edge ``e``.  Firing each actor ``q`` times returns every channel
to its initial token count, so ``q`` plays exactly the role of the
minimal T-invariant in the Petri net view (Section 2 of the paper).
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, Optional

from .graph import SDFError, SDFGraph


class InconsistentSDFError(SDFError):
    """The balance equations admit only the trivial solution.

    An inconsistent SDF graph cannot execute forever in bounded memory —
    the dataflow analogue of an inconsistent Petri net.
    """


def _lcm(a: int, b: int) -> int:
    return a * b // gcd(a, b)


def repetition_vector(graph: SDFGraph) -> Dict[str, int]:
    """Compute the minimal repetition vector of ``graph``.

    Raises
    ------
    InconsistentSDFError
        If the balance equations have no positive solution (sample-rate
        inconsistency).
    SDFError
        If the graph has no actors.

    Notes
    -----
    The solution is computed per connected component by propagating
    rational rates along edges and checking consistency on cycles, then
    scaling each component independently to the smallest integer vector.
    Disconnected components are each normalized to their own minimal
    vector (matching the convention that independent subgraphs iterate
    independently).
    """
    if not graph.actor_names:
        raise SDFError("cannot compute a repetition vector for an empty graph")

    rates: Dict[str, Optional[Fraction]] = {a: None for a in graph.actor_names}
    adjacency: Dict[str, list] = {a: [] for a in graph.actor_names}
    for edge in graph.edges:
        # q[target] = q[source] * production / consumption
        ratio = Fraction(edge.production, edge.consumption)
        adjacency[edge.source].append((edge.target, ratio))
        adjacency[edge.target].append((edge.source, 1 / ratio))

    for start in graph.actor_names:
        if rates[start] is not None:
            continue
        rates[start] = Fraction(1)
        stack = [start]
        component = [start]
        while stack:
            actor = stack.pop()
            for neighbour, ratio in adjacency[actor]:
                expected = rates[actor] * ratio
                if rates[neighbour] is None:
                    rates[neighbour] = expected
                    component.append(neighbour)
                    stack.append(neighbour)
                elif rates[neighbour] != expected:
                    raise InconsistentSDFError(
                        f"balance equations are inconsistent at actor "
                        f"{neighbour!r}: {rates[neighbour]} vs {expected}"
                    )
        # scale the component to the smallest integer vector
        denominators = [rates[a].denominator for a in component]
        scale = 1
        for d in denominators:
            scale = _lcm(scale, d)
        numerators = [int(rates[a] * scale) for a in component]
        divisor = 0
        for n in numerators:
            divisor = gcd(divisor, n)
        for actor in component:
            rates[actor] = Fraction(int(rates[actor] * scale) // divisor)

    return {a: int(r) for a, r in rates.items()}


def is_sample_rate_consistent(graph: SDFGraph) -> bool:
    """True if the balance equations have a positive solution."""
    try:
        repetition_vector(graph)
    except InconsistentSDFError:
        return False
    return True


def iteration_token_change(graph: SDFGraph) -> Dict[str, int]:
    """Net token change per channel over one iteration of the repetition
    vector.  Always zero for consistent graphs; exposed for tests."""
    q = repetition_vector(graph)
    change: Dict[str, int] = {}
    for edge in graph.edges:
        delta = edge.production * q[edge.source] - edge.consumption * q[edge.target]
        change[edge.channel_name] = delta
    return change
