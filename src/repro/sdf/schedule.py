"""Static scheduling of SDF graphs (PASS construction).

Lee's result used in Section 2 of the paper: once the repetition vector
``q`` exists, it suffices to *simulate* the firing of each actor ``q[a]``
times; if the simulation never blocks, the resulting sequence is a
Periodic Admissible Sequential Schedule (PASS) — a finite complete cycle
in Petri net terms.  If the simulation blocks, no schedule exists for the
given delays (deadlock due to insufficient initial tokens).

The simulation takes the stack-wide ``engine="compiled"`` (default) /
``engine="legacy"`` switch: the compiled engine maps actors and channels
to dense integer ids once and fires against int64 token vectors with
vectorized can-fire tests; the legacy engine is the original string-keyed
dict loop.  Both produce the identical firing sequence and buffer bounds
(the demand-driven "first fireable actor in declaration order" rule is
deterministic either way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..petrinet.compiled import ENGINE_LEGACY, ENGINE_COMPILED, validate_engine
from .balance import repetition_vector
from .graph import SDFError, SDFGraph


class DeadlockError(SDFError):
    """The graph is sample-rate consistent but deadlocks (not enough delays)."""


@dataclass
class StaticSchedule:
    """A fully static (compile-time) schedule of an SDF graph.

    Attributes
    ----------
    sequence:
        Actor firing order for one iteration (one finite complete cycle).
    repetition:
        The repetition vector the sequence realizes.
    buffer_bounds:
        Maximum tokens observed on each channel during the iteration —
        the static buffer sizes a software implementation must allocate.
    cost:
        Total abstract execution cost of one iteration (sum of actor
        costs weighted by the repetition counts).
    """

    sequence: List[str]
    repetition: Dict[str, int]
    buffer_bounds: Dict[str, int]
    cost: int

    def iterations(self, count: int) -> List[str]:
        """The firing sequence for ``count`` back-to-back iterations."""
        return list(self.sequence) * count


def simulate_schedule(
    graph: SDFGraph,
    repetition: Optional[Dict[str, int]] = None,
    engine: str = ENGINE_COMPILED,
) -> Tuple[List[str], Dict[str, int]]:
    """Simulate one iteration and return ``(sequence, buffer_bounds)``.

    The simulator repeatedly fires any actor that still has remaining
    firings and enough input tokens; demand-driven order (actors earlier
    in the topological/insertion order first) keeps buffer bounds small
    but any admissible order would do for correctness.  ``engine``
    selects the integer-indexed vectorized simulation (``"compiled"``,
    default) or the string-keyed dict loop (``"legacy"``); results are
    identical.

    Raises
    ------
    DeadlockError
        If no actor can fire before all repetition counts are exhausted.
    """
    validate_engine(engine)
    if repetition is None:
        repetition = repetition_vector(graph)
    if engine == ENGINE_COMPILED:
        return _simulate_schedule_compiled(graph, repetition)
    remaining = dict(repetition)
    tokens: Dict[str, int] = {e.channel_name: e.initial_tokens for e in graph.edges}
    bounds: Dict[str, int] = dict(tokens)
    sequence: List[str] = []

    def can_fire(actor: str) -> bool:
        if remaining.get(actor, 0) <= 0:
            return False
        for edge in graph.in_edges(actor):
            if tokens[edge.channel_name] < edge.consumption:
                return False
        return True

    def fire(actor: str) -> None:
        for edge in graph.in_edges(actor):
            tokens[edge.channel_name] -= edge.consumption
        for edge in graph.out_edges(actor):
            tokens[edge.channel_name] += edge.production
            bounds[edge.channel_name] = max(
                bounds[edge.channel_name], tokens[edge.channel_name]
            )
        remaining[actor] -= 1
        sequence.append(actor)

    total = sum(remaining.values())
    for _ in range(total):
        fired = False
        for actor in graph.actor_names:
            if can_fire(actor):
                fire(actor)
                fired = True
                break
        if not fired:
            blocked = [a for a, r in remaining.items() if r > 0]
            raise DeadlockError(
                f"SDF graph {graph.name!r} deadlocks with actors still to "
                f"fire: {blocked}"
            )
    return sequence, bounds


def _simulate_schedule_compiled(
    graph: SDFGraph, repetition: Dict[str, int]
) -> Tuple[List[str], Dict[str, int]]:
    """Integer-indexed PASS simulation (identical results to the dict loop).

    Actors and channels get dense ids; one iteration step is a vectorized
    can-fire test (``remaining > 0`` and ``tokens >= consumption`` on
    every in-channel) followed by an incidence-row update of the token
    vector — ``argmax`` of the boolean mask reproduces the legacy
    "first fireable actor in declaration order" rule exactly.
    """
    actors = list(graph.actor_names)
    actor_index = {a: i for i, a in enumerate(actors)}
    edges = list(graph.edges)
    channels = [e.channel_name for e in edges]
    n_a, n_c = len(actors), len(edges)

    consumption = np.zeros((n_a, n_c), dtype=np.int64)
    production = np.zeros((n_a, n_c), dtype=np.int64)
    for j, edge in enumerate(edges):
        consumption[actor_index[edge.target], j] += edge.consumption
        production[actor_index[edge.source], j] += edge.production
    incidence = production - consumption

    tokens = np.array([e.initial_tokens for e in edges], dtype=np.int64)
    bounds = tokens.copy()
    remaining = np.array([repetition.get(a, 0) for a in actors], dtype=np.int64)
    sequence: List[str] = []

    for _ in range(int(remaining.sum())):
        fireable = (remaining > 0) & np.all(tokens >= consumption, axis=1)
        if not fireable.any():
            blocked = [a for a, left in zip(actors, remaining) if left > 0]
            raise DeadlockError(
                f"SDF graph {graph.name!r} deadlocks with actors still to "
                f"fire: {blocked}"
            )
        actor = int(fireable.argmax())
        tokens += incidence[actor]
        np.maximum(bounds, tokens, out=bounds)
        remaining[actor] -= 1
        sequence.append(actors[actor])
    return sequence, {channels[j]: int(bounds[j]) for j in range(n_c)}


def static_schedule(graph: SDFGraph, engine: str = ENGINE_COMPILED) -> StaticSchedule:
    """Compute a PASS for ``graph``.

    ``engine`` selects the simulation core (``"compiled"`` integer ids /
    ``"legacy"`` string dicts); the schedule is identical either way.

    Raises :class:`~repro.sdf.balance.InconsistentSDFError` when the
    balance equations have no solution and :class:`DeadlockError` when
    the graph is consistent but has insufficient initial tokens.
    """
    repetition = repetition_vector(graph)
    sequence, bounds = simulate_schedule(graph, repetition, engine=engine)
    cost = sum(graph.actor(a).cost * n for a, n in repetition.items())
    return StaticSchedule(
        sequence=sequence, repetition=repetition, buffer_bounds=bounds, cost=cost
    )


def is_statically_schedulable(graph: SDFGraph, engine: str = ENGINE_COMPILED) -> bool:
    """True if the graph admits a PASS (consistent and deadlock-free).

    ``engine`` is forwarded to :func:`static_schedule`.
    """
    try:
        static_schedule(graph, engine=engine)
    except SDFError:
        return False
    return True


# ----------------------------------------------------------------------
# Looped (single appearance style) schedule compaction
# ----------------------------------------------------------------------
@dataclass
class LoopedSchedule:
    """A run-length compressed schedule, e.g. ``(4 t1)(2 t2)(1 t3)``.

    Looped schedules are what code generators emit as ``for`` loops; the
    flat sequence is recovered with :meth:`flatten`.
    """

    entries: List[Tuple[int, str]] = field(default_factory=list)

    def flatten(self) -> List[str]:
        result: List[str] = []
        for count, actor in self.entries:
            result.extend([actor] * count)
        return result

    def __str__(self) -> str:
        return "".join(f"({count} {actor})" for count, actor in self.entries)


def compact_schedule(sequence: Sequence[str]) -> LoopedSchedule:
    """Run-length encode a firing sequence into a looped schedule."""
    entries: List[Tuple[int, str]] = []
    for actor in sequence:
        if entries and entries[-1][1] == actor:
            entries[-1] = (entries[-1][0] + 1, actor)
        else:
            entries.append((1, actor))
    return LoopedSchedule(entries=entries)


def total_buffer_requirement(schedule: StaticSchedule) -> int:
    """Sum of the per-channel buffer bounds (the memory cost of the schedule)."""
    return sum(schedule.buffer_bounds.values())
