"""Synchronous Dataflow (SDF) graph model.

SDF graphs (Lee & Messerschmitt 1987) are the fully static special case
that quasi-static scheduling generalizes: actors fire with fixed token
production/consumption rates, so a periodic schedule can be computed
entirely at compile time.  The paper observes that SDF graphs are Petri
nets — they map onto marked graphs (Section 2); :mod:`repro.sdf.convert`
implements that mapping in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class SDFError(Exception):
    """Base error for the SDF subsystem."""


@dataclass(frozen=True)
class Actor:
    """An SDF actor (a computation fired atomically).

    ``cost`` is the abstract execution cost charged by the runtime cost
    model, mirroring :class:`~repro.petrinet.net.Transition`.
    """

    name: str
    cost: int = 1
    label: Optional[str] = None


@dataclass(frozen=True)
class Edge:
    """A directed FIFO channel between two actors.

    Attributes
    ----------
    source / target:
        Producer and consumer actor names.
    production / consumption:
        Tokens produced per source firing / consumed per target firing.
    initial_tokens:
        Delay tokens present on the channel before the first iteration.
    name:
        Optional explicit channel name (defaults to ``source->target``).
    """

    source: str
    target: str
    production: int = 1
    consumption: int = 1
    initial_tokens: int = 0
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.production <= 0 or self.consumption <= 0:
            raise SDFError(
                f"edge {self.source}->{self.target}: rates must be positive"
            )
        if self.initial_tokens < 0:
            raise SDFError(
                f"edge {self.source}->{self.target}: negative initial tokens"
            )

    @property
    def channel_name(self) -> str:
        return self.name or f"{self.source}->{self.target}"


class SDFGraph:
    """A synchronous dataflow graph."""

    def __init__(self, name: str = "sdf") -> None:
        self.name = name
        self._actors: Dict[str, Actor] = {}
        self._edges: List[Edge] = []

    # -- construction -----------------------------------------------------
    def add_actor(self, name: str, cost: int = 1, label: Optional[str] = None) -> Actor:
        if name in self._actors:
            raise SDFError(f"actor {name!r} already exists")
        actor = Actor(name=name, cost=cost, label=label)
        self._actors[name] = actor
        return actor

    def add_edge(
        self,
        source: str,
        target: str,
        production: int = 1,
        consumption: int = 1,
        initial_tokens: int = 0,
        name: Optional[str] = None,
    ) -> Edge:
        for endpoint in (source, target):
            if endpoint not in self._actors:
                raise SDFError(f"unknown actor {endpoint!r}")
        edge = Edge(
            source=source,
            target=target,
            production=production,
            consumption=consumption,
            initial_tokens=initial_tokens,
            name=name,
        )
        self._edges.append(edge)
        return edge

    # -- queries ------------------------------------------------------------
    @property
    def actors(self) -> List[Actor]:
        return list(self._actors.values())

    @property
    def actor_names(self) -> List[str]:
        return list(self._actors.keys())

    @property
    def edges(self) -> List[Edge]:
        return list(self._edges)

    def actor(self, name: str) -> Actor:
        try:
            return self._actors[name]
        except KeyError:
            raise SDFError(f"unknown actor {name!r}") from None

    def in_edges(self, actor: str) -> List[Edge]:
        return [e for e in self._edges if e.target == actor]

    def out_edges(self, actor: str) -> List[Edge]:
        return [e for e in self._edges if e.source == actor]

    def sources(self) -> List[str]:
        """Actors with no incoming edges."""
        return [a for a in self._actors if not self.in_edges(a)]

    def sinks(self) -> List[str]:
        """Actors with no outgoing edges."""
        return [a for a in self._actors if not self.out_edges(a)]

    def is_connected(self) -> bool:
        """True if the underlying undirected graph is connected."""
        if not self._actors:
            return True
        names = list(self._actors)
        adjacency: Dict[str, List[str]] = {a: [] for a in names}
        for edge in self._edges:
            adjacency[edge.source].append(edge.target)
            adjacency[edge.target].append(edge.source)
        seen = set()
        stack = [names[0]]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(n for n in adjacency[node] if n not in seen)
        return len(seen) == len(names)

    def __repr__(self) -> str:
        return (
            f"SDFGraph(name={self.name!r}, actors={len(self._actors)}, "
            f"edges={len(self._edges)})"
        )
