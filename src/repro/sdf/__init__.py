"""Synchronous Dataflow substrate: graphs, balance equations and static schedules.

The PASS simulation behind :func:`static_schedule` /
:func:`simulate_schedule` / :func:`is_statically_schedulable` takes the
stack-wide ``engine="compiled"`` (default) / ``engine="legacy"`` switch:
integer-indexed actors/channels with vectorized can-fire tests versus the
original string-keyed dict loop, with identical schedules either way
(`tests/test_runtime_compiled_differential.py` cross-checks them).  The
balance equations (:mod:`repro.sdf.balance`) already run on integer
matrices and need no switch.
"""

from .balance import (
    InconsistentSDFError,
    is_sample_rate_consistent,
    iteration_token_change,
    repetition_vector,
)
from .convert import petri_to_sdf, sdf_to_petri
from .graph import Actor, Edge, SDFError, SDFGraph
from .schedule import (
    DeadlockError,
    LoopedSchedule,
    StaticSchedule,
    compact_schedule,
    is_statically_schedulable,
    simulate_schedule,
    static_schedule,
    total_buffer_requirement,
)

__all__ = [
    "SDFGraph",
    "Actor",
    "Edge",
    "SDFError",
    "InconsistentSDFError",
    "DeadlockError",
    "repetition_vector",
    "is_sample_rate_consistent",
    "iteration_token_change",
    "static_schedule",
    "simulate_schedule",
    "is_statically_schedulable",
    "StaticSchedule",
    "LoopedSchedule",
    "compact_schedule",
    "total_buffer_requirement",
    "sdf_to_petri",
    "petri_to_sdf",
]
