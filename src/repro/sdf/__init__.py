"""Synchronous Dataflow substrate: graphs, balance equations and static schedules."""

from .balance import (
    InconsistentSDFError,
    is_sample_rate_consistent,
    iteration_token_change,
    repetition_vector,
)
from .convert import petri_to_sdf, sdf_to_petri
from .graph import Actor, Edge, SDFError, SDFGraph
from .schedule import (
    DeadlockError,
    LoopedSchedule,
    StaticSchedule,
    compact_schedule,
    is_statically_schedulable,
    simulate_schedule,
    static_schedule,
    total_buffer_requirement,
)

__all__ = [
    "SDFGraph",
    "Actor",
    "Edge",
    "SDFError",
    "InconsistentSDFError",
    "DeadlockError",
    "repetition_vector",
    "is_sample_rate_consistent",
    "iteration_token_change",
    "static_schedule",
    "simulate_schedule",
    "is_statically_schedulable",
    "StaticSchedule",
    "LoopedSchedule",
    "compact_schedule",
    "total_buffer_requirement",
    "sdf_to_petri",
    "petri_to_sdf",
]
