"""Aggregate statistics over a scenario-corpus run.

:func:`summarize_corpus` condenses the per-net records produced by
:mod:`repro.petrinet.corpus` into the ``summary`` block of the corpus
JSON (counts by family and net class, property fractions, timing), and
:func:`render_corpus_summary` formats that block as the aligned text
table the ``repro-qss corpus`` subcommand prints.

Both functions operate on plain record dicts (the JSON form), so they
work on freshly analysed corpora and on summaries reloaded from disk
alike.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Iterable, List, Mapping


def _verdict_counts(records: List[Mapping[str, Any]], field: str) -> Dict[str, int]:
    """Count True / False / undecided verdicts of one property.

    ``None`` verdicts and records whose analysis raised (``error`` set —
    any field still at its default is meaningless there) both count as
    undecided.
    """
    counts = {"true": 0, "false": 0, "undecided": 0}
    for record in records:
        value = record.get(field)
        if value is None or record.get("error") is not None:
            counts["undecided"] += 1
        elif value:
            counts["true"] += 1
        else:
            counts["false"] += 1
    return counts


def summarize_corpus(records: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Aggregate a corpus into the JSON ``summary`` block.

    Returns counts by family and net class, True/False/undecided tallies
    for every property verdict, size extremes and wall-clock totals.
    All values are plain JSON types.
    """
    records = list(records)
    by_family = Counter(record["family"] for record in records)
    by_class = Counter(record["net_class"] for record in records if record["net_class"])
    elapsed = [float(record["elapsed_ms"]) for record in records]
    allocations = [
        int(r["allocations"]) for r in records if r.get("allocations") is not None
    ]
    reductions = [
        int(r["reductions"]) for r in records if r.get("reductions") is not None
    ]
    cycle_lengths = [
        int(length)
        for r in records
        for length in (r.get("cycle_lengths") or ())
    ]
    fleet_records = [r for r in records if r.get("fleet_instances")]
    return {
        "total": len(records),
        "by_family": dict(sorted(by_family.items())),
        "by_class": dict(sorted(by_class.items())),
        "properties": {
            "bounded": _verdict_counts(records, "bounded"),
            "deadlock_free": _verdict_counts(records, "deadlock_free"),
            "live": _verdict_counts(records, "live"),
            "schedulable": _verdict_counts(records, "schedulable"),
        },
        "free_choice": sum(1 for r in records if r.get("free_choice")),
        "errors": sum(1 for r in records if r.get("error") is not None),
        "largest_net": max(
            (int(r["places"]) + int(r["transitions"]) for r in records), default=0
        ),
        "qss": {
            "swept": len(reductions),
            "allocations_total": sum(allocations),
            "allocations_max": max(allocations, default=0),
            "reductions_total": sum(reductions),
            "reductions_max": max(reductions, default=0),
            "cycles_total": len(cycle_lengths),
            "cycle_length_max": max(cycle_lengths, default=0),
            "cycle_length_mean": (
                round(sum(cycle_lengths) / len(cycle_lengths), 3)
                if cycle_lengths
                else 0.0
            ),
        },
        "runtime": {
            "swept": len(fleet_records),
            "events_total": sum(int(r["fleet_events"]) for r in fleet_records),
            "cycles_total": sum(
                int(r["fleet_cycles_total"]) for r in fleet_records
            ),
            "budget_stops_total": sum(
                int(r["fleet_budget_stops"]) for r in fleet_records
            ),
            "cycles_p95_max": max(
                (float(r["fleet_cycles_p95"]) for r in fleet_records),
                default=0.0,
            ),
        },
        "analysis_ms_total": round(sum(elapsed), 3),
        "analysis_ms_max": round(max(elapsed), 3) if elapsed else 0.0,
    }


def render_corpus_summary(summary: Mapping[str, Any]) -> str:
    """Format a summary block as the aligned table the CLI prints."""
    lines = [f"corpus: {summary['total']} nets"]
    lines.append("  by family:")
    for family, count in summary["by_family"].items():
        lines.append(f"    {family:<24} {count:>4}")
    if summary["by_class"]:
        lines.append("  by class:")
        for net_class, count in summary["by_class"].items():
            lines.append(f"    {net_class:<24} {count:>4}")
    lines.append("  properties (true / false / undecided):")
    for prop, counts in summary["properties"].items():
        lines.append(
            f"    {prop:<24} {counts['true']:>4} / {counts['false']:>4} "
            f"/ {counts['undecided']:>4}"
        )
    lines.append(
        f"  free-choice nets: {summary['free_choice']}/{summary['total']}, "
        f"errors: {summary['errors']}, largest net: {summary['largest_net']} nodes"
    )
    qss = summary.get("qss")
    if qss and qss.get("swept"):
        lines.append(
            f"  qss sweep: {qss['swept']} nets, "
            f"{qss['allocations_total']} allocations "
            f"(max {qss['allocations_max']}), "
            f"{qss['reductions_total']} reductions "
            f"(max {qss['reductions_max']}), "
            f"cycle length max {qss['cycle_length_max']} "
            f"mean {qss['cycle_length_mean']:.1f}"
        )
    runtime = summary.get("runtime")
    if runtime and runtime.get("swept"):
        lines.append(
            f"  runtime sweep: {runtime['swept']} nets, "
            f"{runtime['events_total']} events served, "
            f"{runtime['cycles_total']} cycles, "
            f"{runtime['budget_stops_total']} budget stop(s), "
            f"worst p95 {runtime['cycles_p95_max']:.0f} cycles"
        )
    lines.append(
        f"  analysis time: {summary['analysis_ms_total']:.1f} ms total, "
        f"{summary['analysis_ms_max']:.1f} ms worst net"
    )
    return "\n".join(lines)
