"""Analysis helpers: Table-I comparisons, buffer metrics, trade-offs, corpus stats."""

from .corpus_stats import render_corpus_summary, summarize_corpus
from .metrics import (
    ComparisonTable,
    ImplementationMetrics,
    build_comparison,
    functional_metrics,
    qss_metrics,
    schedule_buffer_bounds,
    total_buffer_tokens,
)
from .tradeoffs import TradeoffPoint, overhead_sensitivity, sharing_tradeoff

__all__ = [
    "ImplementationMetrics",
    "ComparisonTable",
    "qss_metrics",
    "functional_metrics",
    "build_comparison",
    "schedule_buffer_bounds",
    "total_buffer_tokens",
    "TradeoffPoint",
    "sharing_tradeoff",
    "overhead_sensitivity",
    "summarize_corpus",
    "render_corpus_summary",
]
