"""Implementation metrics and the Table I comparison builder.

Table I of the paper compares two software implementations of the ATM
server — QSS and functional task partitioning — on three metrics:
number of tasks, lines of C code, and clock cycles over a testbench of
50 ATM cells.  This module computes the same three metrics for any
schedulable net, plus buffer-size metrics used by the trade-off
exploration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..baselines.functional_partitioning import (
    QUEUE_BOILERPLATE_LINES,
    TASK_BOILERPLATE_LINES,
    build_functional_implementation,
)
from ..codegen.emit_c import EmitOptions, emit_c
from ..codegen.generator import CodegenOptions, synthesize
from ..codegen.ir import Program
from ..petrinet import ENGINE_COMPILED, ENGINE_NATIVE, PetriNet
from ..qss.scheduler import compute_valid_schedule
from ..qss.schedule import ValidSchedule
from ..runtime.cost import CostModel
from ..runtime.events import Event
from ..runtime.rtos import RTOS, ExecutionStats


@dataclass
class ImplementationMetrics:
    """The Table I row of one implementation."""

    name: str
    tasks: int
    lines_of_code: int
    clock_cycles: int
    activations: int = 0
    queue_cycles: int = 0

    def as_row(self) -> Tuple[str, int, int, int]:
        return (self.name, self.tasks, self.lines_of_code, self.clock_cycles)


@dataclass
class ComparisonTable:
    """A Table-I style comparison between implementations."""

    title: str
    rows: List[ImplementationMetrics] = field(default_factory=list)

    def row(self, name: str) -> ImplementationMetrics:
        for entry in self.rows:
            if entry.name == name:
                return entry
        raise KeyError(f"no row named {name!r}")

    def ratio(self, metric: str, name_a: str, name_b: str) -> float:
        """``metric(name_b) / metric(name_a)`` — e.g. how much bigger the
        baseline is relative to QSS."""
        a = getattr(self.row(name_a), metric)
        b = getattr(self.row(name_b), metric)
        if a == 0:
            raise ZeroDivisionError(f"metric {metric!r} of {name_a!r} is zero")
        return b / a

    def render(self) -> str:
        """Render the table in the layout of the paper's Table I."""
        names = [row.name for row in self.rows]
        lines = [self.title]
        header = "Sw implementation".ljust(26) + "".join(n.ljust(30) for n in names)
        lines.append(header)
        lines.append(
            "Number of tasks".ljust(26)
            + "".join(str(row.tasks).ljust(30) for row in self.rows)
        )
        lines.append(
            "Lines of C code".ljust(26)
            + "".join(str(row.lines_of_code).ljust(30) for row in self.rows)
        )
        lines.append(
            "Clock cycles".ljust(26)
            + "".join(str(row.clock_cycles).ljust(30) for row in self.rows)
        )
        return "\n".join(lines)


def qss_metrics(
    net: PetriNet,
    events: Sequence[Event],
    cost_model: Optional[CostModel] = None,
    schedule: Optional[ValidSchedule] = None,
    rate_groups: Optional[Sequence[Sequence[str]]] = None,
    name: str = "QSS",
    engine: str = ENGINE_COMPILED,
) -> Tuple[ImplementationMetrics, Program]:
    """Synthesize the QSS implementation of ``net`` and measure it.

    Returns the metrics together with the generated program (so callers
    can also inspect or emit the C source).  ``engine`` selects the
    execution core for both the schedule synthesis and the RTOS/IR
    interpretation of the testbench.  ``"native"`` runs the testbench
    on the compiled shared library; the schedule synthesis (an analysis,
    not an execution) then uses the compiled engine.
    """
    if schedule is None:
        analysis_engine = ENGINE_COMPILED if engine == ENGINE_NATIVE else engine
        schedule = compute_valid_schedule(net, engine=analysis_engine)
    program = synthesize(schedule, rate_groups=rate_groups)
    emission = emit_c(
        program, EmitOptions(boilerplate_lines_per_task=TASK_BOILERPLATE_LINES)
    )
    rtos = RTOS(program, cost_model, engine=engine)
    stats = rtos.run(events)
    metrics = ImplementationMetrics(
        name=name,
        tasks=program.task_count,
        lines_of_code=emission.lines_of_code,
        clock_cycles=stats.total_cycles,
        activations=stats.total_activations,
        queue_cycles=stats.queue_cycles,
    )
    return metrics, program


def functional_metrics(
    net: PetriNet,
    modules: Mapping[str, Sequence[str]],
    events: Sequence[Event],
    cost_model: Optional[CostModel] = None,
    name: str = "Functional task partitioning",
    engine: str = ENGINE_COMPILED,
) -> ImplementationMetrics:
    """Measure the one-task-per-module baseline implementation.

    ``engine`` selects the reactive simulator core executing the
    testbench (identical stats on either).  The baseline interprets the
    net directly — there is no synthesized C to compile — so
    ``"native"`` maps to the compiled simulator core.
    """
    implementation = build_functional_implementation(net, modules)
    simulator_engine = ENGINE_COMPILED if engine == ENGINE_NATIVE else engine
    stats = implementation.run(events, cost_model, engine=simulator_engine)
    return ImplementationMetrics(
        name=name,
        tasks=implementation.task_count,
        lines_of_code=implementation.lines_of_code(),
        clock_cycles=stats.total_cycles,
        activations=stats.total_activations,
        queue_cycles=stats.queue_cycles,
    )


def build_comparison(
    net: PetriNet,
    modules: Mapping[str, Sequence[str]],
    events: Sequence[Event],
    cost_model: Optional[CostModel] = None,
    title: str = "Table I",
    engine: str = ENGINE_COMPILED,
) -> ComparisonTable:
    """Build the full Table I comparison for ``net``.

    ``engine`` selects the execution core for both rows: the QSS
    schedule synthesis and the baseline's reactive simulation.
    """
    table = ComparisonTable(title=title)
    qss_row, _ = qss_metrics(net, events, cost_model, engine=engine)
    table.rows.append(qss_row)
    table.rows.append(
        functional_metrics(net, modules, events, cost_model, engine=engine)
    )
    return table


# ----------------------------------------------------------------------
# Buffer metrics (memory side of the trade-off)
# ----------------------------------------------------------------------
def schedule_buffer_bounds(schedule: ValidSchedule) -> Dict[str, int]:
    """Static buffer bound per place when the valid schedule is followed."""
    return schedule.max_buffer_bounds()


def total_buffer_tokens(schedule: ValidSchedule) -> int:
    """Total statically allocated buffer slots implied by the schedule."""
    return sum(schedule_buffer_bounds(schedule).values())
