"""Schedule/implementation trade-off exploration.

The paper's conclusions point to future work: "explore different
schedules, evaluating tradeoffs between code and buffer size".  This
module provides that exploration on top of the reproduction:

* code size with and without merge-fragment sharing (the structured
  counterpart of the paper's goto sharing);
* code size versus statically allocated buffer slots for each candidate
  implementation;
* sensitivity of the cycle count to the RTOS activation overhead, which
  is the knob that determines how much a coarser task partition wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..codegen.emit_c import EmitOptions, emit_c
from ..codegen.generator import CodegenOptions, synthesize
from ..petrinet import PetriNet
from ..qss.schedule import ValidSchedule
from ..qss.scheduler import compute_valid_schedule
from ..runtime.cost import CostModel
from ..runtime.events import Event
from ..runtime.rtos import RTOS
from .metrics import schedule_buffer_bounds


@dataclass
class TradeoffPoint:
    """One point in the code-size / buffer-size / cycles design space."""

    label: str
    lines_of_code: int
    buffer_slots: int
    clock_cycles: Optional[int] = None


def sharing_tradeoff(
    net: PetriNet,
    schedule: Optional[ValidSchedule] = None,
    events: Optional[Sequence[Event]] = None,
    cost_model: Optional[CostModel] = None,
) -> List[TradeoffPoint]:
    """Compare implementations with and without shared merge fragments.

    Sharing reduces code size (common suffixes are emitted once) at the
    cost of an extra call per activation; duplication does the opposite —
    the trade-off the paper's ``goto`` sharing addresses.
    """
    if schedule is None:
        schedule = compute_valid_schedule(net)
    buffers = sum(schedule_buffer_bounds(schedule).values())
    points: List[TradeoffPoint] = []
    for label, share in (("shared merges", True), ("duplicated merges", False)):
        program = synthesize(schedule, options=CodegenOptions(share_merges=share))
        emission = emit_c(program, EmitOptions(inline_all=not share))
        cycles = None
        if events is not None:
            cycles = RTOS(program, cost_model).run(events).total_cycles
        points.append(
            TradeoffPoint(
                label=label,
                lines_of_code=emission.lines_of_code,
                buffer_slots=buffers,
                clock_cycles=cycles,
            )
        )
    return points


def overhead_sensitivity(
    net: PetriNet,
    events: Sequence[Event],
    activation_cycles: Sequence[int],
    run_baseline,
    cost_model: Optional[CostModel] = None,
    schedule: Optional[ValidSchedule] = None,
) -> List[Dict[str, float]]:
    """Sweep the RTOS activation overhead and report QSS vs baseline cycles.

    Parameters
    ----------
    run_baseline:
        Callable ``(events, cost_model) -> ExecutionStats`` executing the
        baseline implementation (e.g.
        ``FunctionalImplementation(...).run``).

    Returns one record per overhead value with the absolute cycle counts
    and the baseline/QSS ratio; the ratio grows with the overhead, which
    is the mechanism behind Table I.
    """
    if schedule is None:
        schedule = compute_valid_schedule(net)
    program = synthesize(schedule)
    base_model = cost_model or CostModel()
    records: List[Dict[str, float]] = []
    for overhead in activation_cycles:
        model = base_model.with_activation(overhead)
        qss_cycles = RTOS(program, model).run(events).total_cycles
        baseline_cycles = run_baseline(events, model).total_cycles
        records.append(
            {
                "activation_cycles": float(overhead),
                "qss_cycles": float(qss_cycles),
                "baseline_cycles": float(baseline_cycles),
                "ratio": baseline_cycles / qss_cycles if qss_cycles else float("inf"),
            }
        )
    return records
