"""Reachability, coverability, boundedness, deadlock and liveness analysis.

The paper lists reachability, boundedness, deadlock-freedom and liveness
as the decidable Petri net properties relevant to software synthesis
(Section 2).  The QSS algorithm itself only needs T-invariants and
constrained simulation, but the exploratory analyses here are used by

* tests, to independently confirm what QSS claims (e.g. that a net
  declared unschedulable really can exceed any bound under an
  adversarial choice policy),
* the diagnostics produced for unschedulable specifications,
* the example applications, as a model sanity check.

For bounded nets the reachability graph is finite and explored
exhaustively; for possibly-unbounded nets the Karp–Miller coverability
tree with omega-acceleration is used.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import compress
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from .exceptions import UnknownNodeError

from .compiled import (
    ENGINE_COMPILED,
    ENGINE_FRONTIER,
    ENGINE_LEGACY,
    OMEGA,
    SEARCH_ENGINES,
    CompiledNet,
    validate_engine,
)
from .frontier import FrontierExploration, explore_frontier
from .marking import Marking
from .net import PetriNet


class ReachabilityGraph:
    """Explicit reachability graph of a (bounded portion of a) net.

    Attributes
    ----------
    markings:
        All distinct markings discovered.
    edges:
        ``(source marking index, transition, target marking index)``.
    complete:
        True if exploration finished without hitting the node limit; the
        boundedness/deadlock/liveness answers are only exact when the
        graph is complete.

    Graphs built by the frontier engine
    (:meth:`from_exploration`) keep the discovered markings as one
    ``(N, P)`` integer matrix and the edges as three parallel arrays;
    the named ``markings``/``edges`` views above materialize lazily on
    first access, so analyses that only need counts or the integer
    structure (deadlock detection, liveness) never pay for N ``Marking``
    dictionaries.  Either way the materialized views are identical to
    what the compiled engine builds eagerly.
    """

    def __init__(
        self,
        markings: Optional[List[Marking]] = None,
        edges: Optional[List[Tuple[int, str, int]]] = None,
        complete: bool = True,
    ) -> None:
        self._markings: List[Marking] = list(markings) if markings is not None else []
        self._edges: List[Tuple[int, str, int]] = (
            list(edges) if edges is not None else []
        )
        self.complete = complete
        self._index: Dict[Marking, int] = {}
        # successors() adjacency cache (rebuilt lazily when `edges` or
        # `markings` grew since it was built — see successors())
        self._adjacency: Optional[List[List[Tuple[str, int]]]] = None
        self._adjacency_shape: Tuple[int, int] = (-1, -1)
        # lazy (frontier) storage; None on eagerly-built graphs
        self._compiled: Optional[CompiledNet] = None
        self._exploration: Optional[FrontierExploration] = None

    @classmethod
    def from_exploration(
        cls, compiled: CompiledNet, exploration: FrontierExploration
    ) -> "ReachabilityGraph":
        """Wrap a frontier exploration without materializing named views."""
        graph = cls(complete=exploration.complete)
        graph._compiled = compiled
        graph._exploration = exploration
        return graph

    # ------------------------------------------------------------------
    # Lazy materialization
    # ------------------------------------------------------------------
    @property
    def num_markings(self) -> int:
        """Number of discovered markings, without materializing them."""
        if self._exploration is not None and not self._markings:
            return self._exploration.node_count
        return len(self._markings)

    @property
    def num_edges(self) -> int:
        """Number of discovered edges, without materializing them."""
        if self._exploration is not None and not self._edges:
            return self._exploration.edge_count
        return len(self._edges)

    @property
    def markings(self) -> List[Marking]:
        if self._exploration is not None and not self._markings:
            compiled = self._compiled
            assert compiled is not None
            places = compiled.places
            from_clean = Marking._from_clean
            self._markings = [
                from_clean(dict(zip(compress(places, m), compress(m, m))))
                for m in self._exploration.matrix.tolist()
            ]
        return self._markings

    @property
    def edges(self) -> List[Tuple[int, str, int]]:
        exploration = self._exploration
        if exploration is not None and not self._edges and exploration.edge_count:
            compiled = self._compiled
            assert compiled is not None
            names = compiled.transitions
            self._edges = list(
                zip(
                    exploration.edge_src.tolist(),
                    [names[t] for t in exploration.edge_transition.tolist()],
                    exploration.edge_dst.tolist(),
                )
            )
        return self._edges

    @property
    def initial(self) -> Marking:
        if self._exploration is not None and not self._markings:
            compiled = self._compiled
            assert compiled is not None
            return compiled.marking_from_tuple(self._exploration.matrix[0])
        return self._markings[0]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _ensure_index(self) -> Dict[Marking, int]:
        # built lazily: graphs constructed from a finished exploration
        # only pay for the hash map when a lookup is actually needed
        if not self._index and self.markings:
            self._index = {m: i for i, m in enumerate(self.markings)}
        return self._index

    def add_marking(self, marking: Marking) -> int:
        """Append a marking (must be new) and return its index."""
        index_map = self._ensure_index()
        markings = self.markings
        index = len(markings)
        markings.append(marking)
        index_map[marking] = index
        return index

    def index_of(self, marking: Marking) -> Optional[int]:
        return self._ensure_index().get(marking)

    def successors(self, index: int) -> List[Tuple[str, int]]:
        """Outgoing ``(transition, target index)`` edges of one marking.

        Backed by an adjacency list built once and reused — repeated
        calls (liveness/deadlock sweeps touch every node) are O(degree)
        instead of a fresh O(E) scan per call.  The cache notices when
        ``edges`` or ``markings`` grew since it was built and rebuilds
        lazily.
        """
        edges = self.edges
        shape = (self.num_markings, len(edges))
        if self._adjacency is None or self._adjacency_shape != shape:
            adjacency: List[List[Tuple[str, int]]] = [[] for _ in range(shape[0])]
            for src, transition, dst in edges:
                adjacency[src].append((transition, dst))
            self._adjacency = adjacency
            self._adjacency_shape = shape
        return list(self._adjacency[index])

    def deadlock_markings(self) -> List[Marking]:
        """Markings with no outgoing edge (no enabled transition)."""
        exploration = self._exploration
        if exploration is not None and not self._markings and not self._edges:
            # frontier graphs answer from the integer arrays and only
            # decompile the deadlocked markings themselves
            compiled = self._compiled
            assert compiled is not None
            has_out = np.zeros(exploration.node_count, dtype=bool)
            has_out[exploration.edge_src] = True
            return [
                compiled.marking_from_tuple(exploration.matrix[i])
                for i in np.flatnonzero(~has_out)
            ]
        with_successors = {src for src, _, _ in self.edges}
        return [
            marking
            for i, marking in enumerate(self.markings)
            if i not in with_successors
        ]

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReachabilityGraph):
            return NotImplemented
        return (
            self.complete == other.complete
            and self.markings == other.markings
            and self.edges == other.edges
        )

    def __repr__(self) -> str:
        return (
            f"ReachabilityGraph(markings={self.num_markings}, "
            f"edges={self.num_edges}, complete={self.complete})"
        )


def _validate_outofcore_args(
    engine: str,
    memory_budget: Optional[object],
    spill_dir: Optional[object],
    symmetry: Optional[object],
) -> None:
    """Out-of-core knobs belong to the frontier engine exclusively."""
    if engine != ENGINE_FRONTIER and (
        memory_budget is not None
        or spill_dir is not None
        or symmetry is not None
    ):
        raise ValueError(
            "memory_budget/spill_dir/symmetry require engine="
            f"'{ENGINE_FRONTIER}' (got engine={engine!r})"
        )


def build_reachability_graph(
    net: Union[PetriNet, CompiledNet],
    max_markings: int = 100_000,
    marking: Optional[Marking] = None,
    engine: str = ENGINE_COMPILED,
    memory_budget: Optional[object] = None,
    spill_dir: Optional[object] = None,
    symmetry: Optional[object] = None,
) -> ReachabilityGraph:
    """Breadth-first exploration of the reachable markings.

    Exploration stops (and ``complete`` is set to False) when
    ``max_markings`` distinct markings have been discovered, which is the
    only way to terminate on unbounded nets.

    ``engine`` selects the execution core: ``"compiled"`` (default)
    explores integer marking tuples on the net's
    :class:`~repro.petrinet.compiled.CompiledNet` view and decompiles
    the discovered markings at the end; ``"frontier"`` explores whole
    BFS levels as ``(N, P)`` numpy matrices
    (:mod:`repro.petrinet.frontier`) and materializes the named
    markings/edges lazily; ``"legacy"`` runs the original dict-based
    token game.  All engines visit the same markings in the same BFS
    order, so the resulting graphs are identical.

    The frontier engine additionally accepts ``memory_budget`` (bytes
    or ``"256MB"``-style strings) and ``spill_dir``, routing the
    exploration through the out-of-core engine
    (:mod:`repro.petrinet.outofcore`) — the graph is still bit-identical,
    only its storage is memory-mapped — and ``symmetry`` (``"auto"`` or
    :class:`~repro.petrinet.symmetry.SymmetryGroup` s), which returns
    the canonical *quotient* graph of the symmetry instead.
    """
    validate_engine(engine, SEARCH_ENGINES)
    _validate_outofcore_args(engine, memory_budget, spill_dir, symmetry)
    if isinstance(net, CompiledNet):
        if engine == ENGINE_LEGACY:
            raise ValueError(
                "engine='legacy' needs a PetriNet; pass net.decompile() to "
                "run the dict-based exploration on a compiled net"
            )
        if engine == ENGINE_FRONTIER:
            return _build_reachability_graph_frontier(
                net,
                max_markings=max_markings,
                marking=marking,
                memory_budget=memory_budget,
                spill_dir=spill_dir,
                symmetry=symmetry,
            )
        return _build_reachability_graph_compiled(
            net, max_markings=max_markings, marking=marking
        )
    if engine == ENGINE_FRONTIER:
        return _build_reachability_graph_frontier(
            net.compile(),
            max_markings=max_markings,
            marking=marking,
            memory_budget=memory_budget,
            spill_dir=spill_dir,
            symmetry=symmetry,
        )
    if engine == ENGINE_COMPILED:
        return _build_reachability_graph_compiled(
            net.compile(), max_markings=max_markings, marking=marking
        )
    start = marking if marking is not None else net.initial_marking
    graph = ReachabilityGraph(markings=[start])
    queue = deque([0])
    while queue:
        current_index = queue.popleft()
        current = graph.markings[current_index]
        for transition in net.enabled_transitions(current):
            successor = net.fire(transition, current)
            successor_index = graph.index_of(successor)
            if successor_index is None:
                if len(graph.markings) >= max_markings:
                    graph.complete = False
                    return graph
                successor_index = graph.add_marking(successor)
                queue.append(successor_index)
            graph.edges.append((current_index, transition, successor_index))
    return graph


def _build_reachability_graph_compiled(
    compiled: CompiledNet, max_markings: int, marking: Optional[Marking]
) -> ReachabilityGraph:
    """BFS over compiled marking tuples with a marking->index hash map.

    The hot primitive is the net-specialized
    :attr:`~repro.petrinet.compiled.CompiledNet.expander`, which yields
    every enabled transition and its successor marking in one generated
    straight-line function.  The visit order — and therefore the node
    numbering, the edge list and the ``max_markings`` cutoff point — is
    identical to the legacy one-marking-at-a-time exploration.
    """
    start = (
        compiled.marking_to_tuple(marking)
        if marking is not None
        else compiled.initial
    )
    markings: List[Tuple[int, ...]] = [start]
    index: Dict[Tuple[int, ...], int] = {start: 0}
    edges: List[Tuple[int, str, int]] = []
    complete = True
    transition_names = compiled.transitions
    expand = compiled.expander
    queue = deque([0])
    count = 1
    index_get = index.get
    append_edge = edges.append
    append_marking = markings.append
    append_queue = queue.append
    popleft = queue.popleft
    while queue:
        current_index = popleft()
        current = markings[current_index]
        for transition, successor in expand(current):
            successor_index = index_get(successor)
            if successor_index is None:
                if count >= max_markings:
                    complete = False
                    queue.clear()
                    break
                successor_index = count
                index[successor] = count
                append_marking(successor)
                append_queue(count)
                count += 1
            append_edge(
                (current_index, transition_names[transition], successor_index)
            )
        if not complete:
            break
    # bulk decompile: compiled tuples hold plain non-negative ints, so the
    # Marking dicts can be assembled entirely in C (compress drops zeros)
    places = compiled.places
    from_clean = Marking._from_clean
    decompiled = [
        from_clean(dict(zip(compress(places, m), compress(m, m))))
        for m in markings
    ]
    return ReachabilityGraph(markings=decompiled, edges=edges, complete=complete)


def _build_reachability_graph_frontier(
    compiled: CompiledNet,
    max_markings: int,
    marking: Optional[Marking],
    memory_budget: Optional[object] = None,
    spill_dir: Optional[object] = None,
    symmetry: Optional[object] = None,
) -> ReachabilityGraph:
    """Frontier-batched BFS (see :mod:`repro.petrinet.frontier`).

    Visits markings in exactly the compiled engine's order — same node
    numbering, same edge list, same cutoff point — but keeps the graph
    in integer-array form; the named views materialize on demand.  Any
    out-of-core knob set routes through
    :func:`repro.petrinet.outofcore.explore_budgeted`.
    """
    start = (
        compiled.marking_to_tuple(marking) if marking is not None else None
    )
    exploration = explore_frontier(
        compiled,
        start=start,
        max_markings=max_markings,
        memory_budget=memory_budget,
        spill_dir=spill_dir,
        symmetry=symmetry,
    )
    return ReachabilityGraph.from_exploration(compiled, exploration)


def is_reachable(
    net: Union[PetriNet, CompiledNet],
    target: Marking,
    marking: Optional[Marking] = None,
    max_markings: int = 100_000,
    engine: str = ENGINE_COMPILED,
) -> bool:
    """True if ``target`` is reachable from ``marking`` (exact for bounded
    nets explored within the limit).

    The frontier engine answers without building a graph: the
    exploration stops as soon as the target marking is discovered, so
    positive answers on large state spaces return early.
    """
    validate_engine(engine, SEARCH_ENGINES)
    if engine == ENGINE_FRONTIER:
        compiled = net if isinstance(net, CompiledNet) else net.compile()
        try:
            target_tuple = compiled.marking_to_tuple(target)
        except UnknownNodeError:
            # tokens on a place this net does not have: unreachable, the
            # same verdict the graph-membership engines give
            return False
        start = (
            compiled.marking_to_tuple(marking) if marking is not None else None
        )
        exploration = explore_frontier(
            compiled,
            start=start,
            max_markings=max_markings,
            target=target_tuple,
            stop_on_target=True,
            collect_edges=False,
        )
        return exploration.target_index is not None
    graph = build_reachability_graph(
        net, max_markings=max_markings, marking=marking, engine=engine
    )
    return graph.index_of(target) is not None


# ----------------------------------------------------------------------
# Coverability (Karp–Miller) for boundedness on possibly-unbounded nets
# ----------------------------------------------------------------------
@dataclass
class CoverabilityResult:
    """Outcome of the Karp–Miller coverability construction.

    ``unbounded_places`` lists the places that can accumulate an
    unbounded number of tokens under *some* firing sequence; the net is
    bounded iff this list is empty.

    ``complete`` is False when the construction stopped at the
    ``max_nodes`` cap.  Places already accelerated to omega are
    genuinely unbounded regardless, but a truncated run may have missed
    further unbounded places — so ``bounded=True`` is only a proof when
    ``complete`` is also True.
    """

    bounded: bool
    unbounded_places: List[str]
    node_count: int
    place_bounds: Dict[str, int]
    complete: bool = True


def _omega_add(a: int, b: int) -> int:
    if a == OMEGA or b == OMEGA:
        return OMEGA
    return a + b


def _covers(big: Tuple[int, ...], small: Tuple[int, ...]) -> bool:
    for x, y in zip(big, small):
        if y == OMEGA and x != OMEGA:
            return False
        if x != OMEGA and y != OMEGA and x < y:
            return False
    return True


def coverability_analysis(
    net: Union[PetriNet, CompiledNet],
    marking: Optional[Marking] = None,
    max_nodes: int = 200_000,
    engine: str = ENGINE_COMPILED,
    memory_budget: Optional[object] = None,
    spill_dir: Optional[object] = None,
    symmetry: Optional[object] = None,
) -> CoverabilityResult:
    """Karp–Miller coverability tree with omega acceleration.

    Whenever a new node strictly covers one of its ancestors, the strictly
    larger components are accelerated to omega, which makes the tree
    finite and identifies exactly the places that can grow without bound.

    ``engine`` selects the execution core: ``"compiled"`` (default) runs
    on numpy omega-vectors over the net's integer place ids,
    ``"legacy"`` on the original name-keyed token game.  Both engines
    expand the same nodes in the same depth-first order (Karp–Miller
    trees are sensitive to exploration order), so the results —
    boundedness, unbounded places, node count and place bounds — are
    identical and cross-checkable.

    ``"frontier"`` first runs the batched plain-reachability exploration
    as a *bounded-prefix fast path*: if the whole state space fits
    within ``max_nodes`` the net is bounded and the per-place bounds
    are the exact column maxima of the marking matrix (on bounded nets
    the Karp–Miller construction never accelerates, so its node set and
    bounds coincide with plain reachability).  If the prefix is
    truncated — the net is unbounded, or simply bigger than the cap —
    the engine defers to the compiled Karp–Miller construction, whose
    omega verdict is the only finite way to prove unboundedness.

    The frontier fast path honours ``memory_budget``/``spill_dir``
    (out-of-core prefix exploration; identical verdicts) and
    ``symmetry`` (the prefix is the canonical quotient — per-place
    bounds are lifted back to true bounds over each block orbit, and
    ``node_count`` counts canonical states).  The Karp–Miller fallback
    for truncated prefixes runs in RAM regardless: omega acceleration
    needs the ancestor chains resident.
    """
    validate_engine(engine, SEARCH_ENGINES)
    _validate_outofcore_args(engine, memory_budget, spill_dir, symmetry)
    if isinstance(net, CompiledNet):
        if engine == ENGINE_LEGACY:
            raise ValueError(
                "engine='legacy' needs a PetriNet; pass net.decompile() to "
                "run the dict-based coverability on a compiled net"
            )
        if engine == ENGINE_FRONTIER:
            return _coverability_analysis_frontier(
                net, marking, max_nodes, memory_budget, spill_dir, symmetry
            )
        return _coverability_analysis_compiled(net, marking, max_nodes)
    if engine == ENGINE_FRONTIER:
        return _coverability_analysis_frontier(
            net.compile(), marking, max_nodes, memory_budget, spill_dir, symmetry
        )
    if engine == ENGINE_COMPILED:
        return _coverability_analysis_compiled(net.compile(), marking, max_nodes)
    places = tuple(net.place_names)
    start_marking = marking if marking is not None else net.initial_marking
    start = tuple(start_marking[p] for p in places)

    place_index = {p: i for i, p in enumerate(places)}

    def enabled(vector: Tuple[int, ...], transition: str) -> bool:
        for place, weight in net.preset(transition).items():
            value = vector[place_index[place]]
            if value != OMEGA and value < weight:
                return False
        return True

    def fire(vector: Tuple[int, ...], transition: str) -> Tuple[int, ...]:
        result = list(vector)
        for place, weight in net.preset(transition).items():
            i = place_index[place]
            if result[i] != OMEGA:
                result[i] -= weight
        for place, weight in net.postset(transition).items():
            i = place_index[place]
            result[i] = _omega_add(result[i], weight)
        return tuple(result)

    # Each stack entry carries the node and its ancestor chain for the
    # acceleration test.
    seen: Set[Tuple[int, ...]] = {start}
    stack: List[Tuple[Tuple[int, ...], Tuple[Tuple[int, ...], ...]]] = [(start, ())]
    unbounded: Set[str] = set()
    bounds: Dict[str, int] = {p: start[i] for i, p in enumerate(places)}
    node_count = 1

    while stack:
        vector, ancestors = stack.pop()
        for transition in net.transition_names:
            if not enabled(vector, transition):
                continue
            successor = list(fire(vector, transition))
            # omega acceleration against every ancestor and the current node
            for ancestor in ancestors + (vector,):
                if _covers(tuple(successor), ancestor) and tuple(successor) != ancestor:
                    for i in range(len(places)):
                        anc_value = ancestor[i]
                        succ_value = successor[i]
                        if succ_value == OMEGA:
                            continue
                        if anc_value != OMEGA and succ_value > anc_value:
                            successor[i] = OMEGA
            successor_t = tuple(successor)
            for i, value in enumerate(successor_t):
                if value == OMEGA:
                    unbounded.add(places[i])
                else:
                    bounds[places[i]] = max(bounds[places[i]], value)
            if successor_t not in seen:
                if node_count >= max_nodes:
                    # conservative: report what has been found so far
                    return CoverabilityResult(
                        bounded=not unbounded,
                        unbounded_places=sorted(unbounded),
                        node_count=node_count,
                        place_bounds=bounds,
                        complete=False,
                    )
                seen.add(successor_t)
                node_count += 1
                stack.append((successor_t, ancestors + (vector,)))
    return CoverabilityResult(
        bounded=not unbounded,
        unbounded_places=sorted(unbounded),
        node_count=node_count,
        place_bounds=bounds,
    )


def _coverability_analysis_frontier(
    compiled: CompiledNet,
    marking: Optional[Marking],
    max_nodes: int,
    memory_budget: Optional[object] = None,
    spill_dir: Optional[object] = None,
    symmetry: Optional[object] = None,
) -> CoverabilityResult:
    """Bounded-prefix fast path backed by the frontier exploration.

    A complete plain-reachability exploration within ``max_nodes`` *is*
    a boundedness proof: no reachable marking was truncated, so every
    place's exact bound is the column maximum of the marking matrix.
    On bounded nets the Karp–Miller tree never accelerates (a strict
    cover would pump tokens without bound), so node count and bounds
    agree with the compiled engine exactly.  A truncated prefix proves
    nothing — unbounded nets never finish — and defers to the compiled
    Karp–Miller construction wholesale, making the frontier verdicts
    identical to the compiled ones on every net.

    Under ``symmetry`` the prefix explores canonical representatives
    only; the orbit of every canonical marking is reachable, so a
    place's true bound is the maximum over its position across all
    blocks of its group (:func:`repro.petrinet.symmetry.orbit_place_bounds`)
    — boundedness and per-place bounds stay exact while ``node_count``
    shrinks to the quotient.
    """
    start = (
        compiled.marking_to_tuple(marking) if marking is not None else None
    )
    groups = ()
    if symmetry is not None:
        from .symmetry import resolve_symmetry

        # resolve once: the exploration revalidates cheaply, and the
        # bounds lift below needs the concrete groups
        groups = resolve_symmetry(compiled, symmetry)
    exploration = explore_frontier(
        compiled,
        start=start,
        max_markings=max_nodes,
        collect_edges=False,
        memory_budget=memory_budget,
        spill_dir=spill_dir,
        symmetry=groups or None,
    )
    if not exploration.complete:
        return _coverability_analysis_compiled(compiled, marking, max_nodes)
    bounds = np.asarray(exploration.matrix.max(axis=0), dtype=np.int64)
    if groups:
        from .symmetry import orbit_place_bounds

        bounds = orbit_place_bounds(bounds, groups)
    return CoverabilityResult(
        bounded=True,
        unbounded_places=[],
        node_count=exploration.node_count,
        place_bounds={
            place: int(bound) for place, bound in zip(compiled.places, bounds)
        },
        complete=True,
    )


def _coverability_analysis_compiled(
    compiled: CompiledNet, marking: Optional[Marking], max_nodes: int
) -> CoverabilityResult:
    """Karp–Miller on numpy omega-vectors indexed by compiled place ids.

    The traversal mirrors the legacy engine move for move — same DFS
    stack discipline, same transition order (insertion order), same
    root-to-parent acceleration sweep — so both engines build the same
    tree node for node; only the per-node work is vectorized:
    enabledness of all transitions in one ``(T, P)`` comparison
    (:meth:`CompiledNet.omega_enabled_mask`), firing via the incidence
    row (:meth:`CompiledNet.omega_fire`) and the cover/acceleration
    tests as whole-vector masks.
    """
    places = compiled.places
    start = np.array(
        compiled.marking_to_tuple(marking) if marking is not None else compiled.initial,
        dtype=np.int64,
    )
    enabled_mask = compiled.omega_enabled_mask
    omega_fire = compiled.omega_fire

    seen: Set[bytes] = {start.tobytes()}
    # Each stack entry carries the node and its ancestor chain (root
    # first) for the acceleration test.
    stack: List[Tuple[np.ndarray, Tuple[np.ndarray, ...]]] = [(start, ())]
    unbounded = np.zeros(len(places), dtype=bool)
    bounds = start.copy()
    node_count = 1

    def result(complete: bool) -> CoverabilityResult:
        return CoverabilityResult(
            bounded=not bool(unbounded.any()),
            unbounded_places=sorted(compress(places, unbounded)),
            node_count=node_count,
            place_bounds={p: int(bounds[i]) for i, p in enumerate(places)},
            complete=complete,
        )

    while stack:
        vector, ancestors = stack.pop()
        # The ancestor chain (root first, current node last) as one
        # (depth, P) matrix, so the per-ancestor acceleration sweep of the
        # legacy engine becomes a whole-chain vectorized test.
        chain_matrix = np.vstack(ancestors + (vector,))
        chain_omega = chain_matrix == OMEGA
        chain_finite = ~chain_omega
        for transition in np.flatnonzero(enabled_mask(vector)):
            successor = omega_fire(transition, vector)
            # Omega acceleration, equivalent to the legacy root-to-parent
            # sweep: an ancestor only changes the successor when it is
            # covered AND some finite component strictly grew (equal or
            # omega-for-omega covers mutate nothing), so it suffices to
            # jump straight to the first such ancestor, accelerate, and
            # re-scan the remaining suffix with the updated successor —
            # at most P accelerations per successor, each one vectorized
            # matrix pass instead of O(depth) scalar cover tests.
            position = 0
            depth = chain_matrix.shape[0]
            while position < depth:
                sub_matrix = chain_matrix[position:]
                sub_omega = chain_omega[position:]
                sub_finite = chain_finite[position:]
                succ_omega = successor == OMEGA
                covers = np.all(
                    np.where(
                        sub_omega, succ_omega, succ_omega | (successor >= sub_matrix)
                    ),
                    axis=1,
                )
                growth = sub_finite & ~succ_omega & (successor > sub_matrix)
                accelerating = covers & growth.any(axis=1)
                if not accelerating.any():
                    break
                first = int(np.argmax(accelerating))
                successor = np.where(growth[first], OMEGA, successor)
                position += first + 1
            succ_omega = successor == OMEGA
            unbounded |= succ_omega
            np.maximum(bounds, np.where(succ_omega, bounds, successor), out=bounds)
            key = successor.tobytes()
            if key not in seen:
                if node_count >= max_nodes:
                    # conservative: report what has been found so far
                    return result(complete=False)
                seen.add(key)
                node_count += 1
                stack.append((successor, ancestors + (vector,)))
    return result(complete=True)


def is_bounded(
    net: Union[PetriNet, CompiledNet],
    marking: Optional[Marking] = None,
    engine: str = ENGINE_COMPILED,
) -> bool:
    """True if no place can accumulate an unbounded number of tokens.

    Raises ``RuntimeError`` when the Karp–Miller construction was
    truncated before reaching a verdict: a truncated run that found
    omega places still proves unboundedness, but "no omega seen yet" is
    not a boundedness proof and is refused rather than guessed.
    """
    result = coverability_analysis(net, marking=marking, engine=engine)
    if result.unbounded_places:
        return False
    if result.complete:
        return True
    raise RuntimeError(
        "boundedness undecided: the Karp-Miller construction hit its node "
        "cap before finding an omega place or finishing"
    )


def is_k_bounded(
    net: Union[PetriNet, CompiledNet],
    k: int,
    marking: Optional[Marking] = None,
    engine: str = ENGINE_COMPILED,
) -> bool:
    """True if no reachable marking puts more than ``k`` tokens in a place.

    Like :func:`is_bounded`, raises ``RuntimeError`` when a truncated
    construction cannot decide; negative verdicts (an omega place, or an
    observed bound above ``k``) are sound even from a truncated run.
    """
    result = coverability_analysis(net, marking=marking, engine=engine)
    if result.unbounded_places:
        return False
    if any(bound > k for bound in result.place_bounds.values()):
        # coverability-tree token counts are reachable, so exceeding k is
        # definitive regardless of truncation
        return False
    if result.complete:
        return True
    raise RuntimeError(
        f"{k}-boundedness undecided: the Karp-Miller construction hit its "
        "node cap before finishing"
    )


def is_safe(
    net: Union[PetriNet, CompiledNet],
    marking: Optional[Marking] = None,
    engine: str = ENGINE_COMPILED,
) -> bool:
    """True if the net is 1-bounded (the assumption of Lin's method that
    the paper explicitly drops)."""
    return is_k_bounded(net, 1, marking=marking, engine=engine)


# ----------------------------------------------------------------------
# Deadlock and liveness (exact on bounded nets)
# ----------------------------------------------------------------------
def find_deadlocks(
    net: Union[PetriNet, CompiledNet],
    marking: Optional[Marking] = None,
    max_markings: int = 100_000,
    engine: str = ENGINE_COMPILED,
    memory_budget: Optional[object] = None,
    spill_dir: Optional[object] = None,
    symmetry: Optional[object] = None,
) -> List[Marking]:
    """Reachable markings with no enabled transition.

    The frontier engine accepts the out-of-core knobs of
    :func:`build_reachability_graph`.  Under ``symmetry`` each returned
    marking is the canonical representative of a deadlock orbit
    (automorphisms preserve enabledness, so a deadlock exists iff its
    representative deadlocks) — the *set of orbits* is exact, the
    concrete marking count is the quotient's.
    """
    graph = build_reachability_graph(
        net,
        max_markings=max_markings,
        marking=marking,
        engine=engine,
        memory_budget=memory_budget,
        spill_dir=spill_dir,
        symmetry=symmetry,
    )
    return graph.deadlock_markings()


def is_deadlock_free(
    net: Union[PetriNet, CompiledNet],
    marking: Optional[Marking] = None,
    max_markings: int = 100_000,
    engine: str = ENGINE_COMPILED,
    memory_budget: Optional[object] = None,
    spill_dir: Optional[object] = None,
    symmetry: Optional[object] = None,
) -> bool:
    """True if every reachable marking enables at least one transition."""
    return not find_deadlocks(
        net,
        marking=marking,
        max_markings=max_markings,
        engine=engine,
        memory_budget=memory_budget,
        spill_dir=spill_dir,
        symmetry=symmetry,
    )


def _strongly_connected_components(
    n: int, successors: List[List[int]]
) -> List[int]:
    """Iterative Tarjan SCC: returns the component id of every node.

    Component ids are assigned in reverse topological order of the
    condensation (a component's id is larger than those of the
    components it can reach), although :func:`is_live` only needs the
    partition itself.
    """
    index = [-1] * n
    lowlink = [0] * n
    on_stack = [False] * n
    component = [-1] * n
    scc_stack: List[int] = []
    counter = 0
    n_components = 0
    for root in range(n):
        if index[root] != -1:
            continue
        # explicit DFS stack of (node, next child position)
        work = [(root, 0)]
        while work:
            node, child = work[-1]
            if child == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                scc_stack.append(node)
                on_stack[node] = True
            advanced = False
            while child < len(successors[node]):
                succ = successors[node][child]
                child += 1
                if index[succ] == -1:
                    work[-1] = (node, child)
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack[succ]:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                while True:
                    member = scc_stack.pop()
                    on_stack[member] = False
                    component[member] = n_components
                    if member == node:
                        break
                n_components += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return component


def is_live(
    net: Union[PetriNet, CompiledNet],
    marking: Optional[Marking] = None,
    max_markings: int = 100_000,
    engine: str = ENGINE_COMPILED,
) -> bool:
    """True if from every reachable marking every transition can eventually
    fire again (exact for nets whose reachability graph fits in the limit).

    The verdict is computed on the condensation of the reachability
    graph: the net is live iff every *terminal* strongly connected
    component (one with no outgoing edge) fires every transition
    internally.  From any marking some terminal component is reachable,
    and once inside one the forward closure is exactly that component —
    so the terminal components are where liveness is decided.  This is
    O(V + E) instead of the quadratic per-marking forward closures.
    """
    graph = build_reachability_graph(
        net, max_markings=max_markings, marking=marking, engine=engine
    )
    if isinstance(net, CompiledNet):
        all_transitions = set(net.transitions)
    else:
        all_transitions = set(net.transition_names)
    return live_verdict(graph, all_transitions)


def live_verdict(graph: ReachabilityGraph, all_transitions: Set[str]) -> bool:
    """The liveness verdict on an already-built complete reachability graph.

    Exposed so pipelines that already hold the graph (e.g. the scenario
    corpus, which needs deadlocks *and* liveness from the same
    exploration) do not pay for a second exploration through
    :func:`is_live`.  Raises ``RuntimeError`` on incomplete graphs.
    """
    if not graph.complete:
        raise RuntimeError(
            "liveness is only decided exactly on nets whose reachability "
            "graph fits within the exploration limit"
        )
    n = graph.num_markings
    successors: List[List[int]] = [[] for _ in range(n)]
    for src, _, dst in graph.edges:
        successors[src].append(dst)
    component = _strongly_connected_components(n, successors)
    n_components = max(component) + 1 if component else 0
    has_exit = [False] * n_components
    internal: List[Set[str]] = [set() for _ in range(n_components)]
    for src, transition, dst in graph.edges:
        if component[src] == component[dst]:
            internal[component[src]].add(transition)
        else:
            has_exit[component[src]] = True
    return all(
        internal[c] == all_transitions
        for c in range(n_components)
        if not has_exit[c]
    )


def place_bounds(
    net: Union[PetriNet, CompiledNet],
    marking: Optional[Marking] = None,
    engine: str = ENGINE_COMPILED,
) -> Dict[str, Optional[int]]:
    """Per-place token bound, ``None`` meaning unbounded.

    For schedulable nets these bounds are what static buffer allocation
    in the generated C code relies upon.  ``engine`` selects the
    coverability core the bounds are read from.
    """
    result = coverability_analysis(net, marking=marking, engine=engine)
    if not result.complete:
        # these bounds size static buffers in the generated C code, so an
        # observed-so-far maximum from a truncated construction must never
        # masquerade as a real bound
        raise RuntimeError(
            "place bounds undecided: the Karp-Miller construction hit its "
            "node cap; only a finished construction yields exact bounds"
        )
    places = net.places if isinstance(net, CompiledNet) else net.place_names
    bounds: Dict[str, Optional[int]] = {}
    for place in places:
        if place in result.unbounded_places:
            bounds[place] = None
        else:
            bounds[place] = result.place_bounds.get(place, 0)
    return bounds
