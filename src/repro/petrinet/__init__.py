"""Petri net substrate: data model, structure theory, invariants and analysis.

This package provides everything the QSS algorithm (and the rest of the
library) needs from Petri net theory:

* :class:`~repro.petrinet.net.PetriNet`, :class:`~repro.petrinet.net.Place`,
  :class:`~repro.petrinet.net.Transition` — the weighted place/transition
  net model with an initial :class:`~repro.petrinet.marking.Marking`.
* :class:`~repro.petrinet.builder.NetBuilder` — fluent model construction.
* :mod:`~repro.petrinet.structure` — net-class predicates (marked graph,
  conflict-free, free-choice) and the equal conflict relation.
* :mod:`~repro.petrinet.incidence` / :mod:`~repro.petrinet.invariants` —
  state equation, T- and S-invariants, consistency.
* :mod:`~repro.petrinet.simulation` — token game, finite complete cycles.
* :mod:`~repro.petrinet.reachability` — reachability, boundedness
  (Karp–Miller), deadlock and liveness.
* :mod:`~repro.petrinet.outofcore` — memory-budgeted spill-to-disk
  frontier exploration (``engine="frontier"`` + ``memory_budget=``).
* :mod:`~repro.petrinet.symmetry` — validated symmetry groups and
  orbit canonicalization for quotient state spaces.
* :mod:`~repro.petrinet.generators` — parameterized net families.
"""

from .builder import NetBuilder
from .compiled import (
    ENGINE_COMPILED,
    ENGINE_FRONTIER,
    ENGINE_LEGACY,
    ENGINE_NATIVE,
    ENGINES,
    EXEC_ENGINES,
    OMEGA,
    SEARCH_ENGINES,
    CompiledNet,
    compile_net,
    validate_engine,
)
from .corpus import (
    CORPUS_ANALYSES,
    CORPUS_FAMILIES,
    CORPUS_SCHEMA,
    CorpusFamily,
    CorpusRecord,
    CorpusResult,
    NetSpec,
    analyse_spec,
    corpus_from_json_dict,
    corpus_to_csv,
    corpus_to_json_dict,
    generate_corpus,
    run_corpus,
    validate_corpus_analyse,
)
from .corpus_schema import (
    DOCUMENT_FIELDS,
    CorpusSchemaError,
    canonicalize_corpus_document,
    validate_corpus_document,
    validate_corpus_file,
    validate_corpus_record,
)
from .exceptions import (
    DuplicateNodeError,
    InconsistentNetError,
    InvalidArcError,
    InvalidMarkingError,
    NotConflictFreeError,
    NotEnabledError,
    NotFreeChoiceError,
    NotSchedulableError,
    PetriNetError,
    SerializationError,
    UnknownNodeError,
)
from .incidence import (
    IncidenceMatrices,
    apply_state_equation,
    incidence_matrices,
    is_firing_count_stationary,
    marking_change,
)
from .invariants import (
    combine_invariants,
    fast_minimal_semiflows,
    invariants_containing,
    is_conservative,
    is_consistent,
    minimal_positive_t_invariant,
    s_invariants,
    scale_invariant,
    t_invariants,
    uncovered_transitions,
)
from .frontier import (
    MAX_CYCLE_STATES,
    FrontierExploration,
    explore_frontier,
    frontier_firing_order,
)
from .marking import Marking
from .outofcore import (
    SpillStats,
    VisitedStore,
    explore_budgeted,
    parse_memory_budget,
)
from .net import Arc, PetriNet, Place, Transition
from .reachability import (
    CoverabilityResult,
    ReachabilityGraph,
    build_reachability_graph,
    coverability_analysis,
    find_deadlocks,
    is_bounded,
    is_deadlock_free,
    is_k_bounded,
    is_live,
    is_reachable,
    is_safe,
    live_verdict,
    place_bounds,
)
from .serialization import (
    load_net,
    net_from_dict,
    net_from_json,
    net_to_dict,
    net_to_json,
    save_net,
)
from .simulation import (
    CompiledSimulator,
    SimulationTrace,
    Simulator,
    find_finite_complete_cycle,
    find_firing_sequence,
    fire_sequence,
    is_finite_complete_cycle,
    is_fireable,
    make_adversarial_policy,
    make_random_policy,
    policy_first_enabled,
    search_firing_order,
    simulate_many,
)
from .symmetry import (
    SymmetryGroup,
    canonicalize,
    detect_symmetries,
    group_from_names,
    orbit_place_bounds,
    validate_group,
)
from .structure import (
    choice_sets,
    classify,
    clusters,
    conflicting_transitions,
    connected_components,
    equal_conflict_sets,
    in_equal_conflict,
    is_conflict_free,
    is_connected,
    is_extended_free_choice,
    is_free_choice,
    is_marked_graph,
    is_ordinary,
    is_strongly_connected,
    preset_vector,
)
from .dot import net_to_dot

__all__ = [
    # model
    "PetriNet",
    "Place",
    "Transition",
    "Arc",
    "Marking",
    "NetBuilder",
    # compiled engine
    "CompiledNet",
    "compile_net",
    "ENGINES",
    "SEARCH_ENGINES",
    "EXEC_ENGINES",
    "ENGINE_COMPILED",
    "ENGINE_LEGACY",
    "ENGINE_FRONTIER",
    "ENGINE_NATIVE",
    "OMEGA",
    "validate_engine",
    # frontier engine
    "FrontierExploration",
    "explore_frontier",
    "frontier_firing_order",
    "MAX_CYCLE_STATES",
    # out-of-core budgeted exploration
    "SpillStats",
    "VisitedStore",
    "explore_budgeted",
    "parse_memory_budget",
    # symmetry reduction
    "SymmetryGroup",
    "canonicalize",
    "detect_symmetries",
    "group_from_names",
    "orbit_place_bounds",
    "validate_group",
    # scenario corpus
    "CORPUS_ANALYSES",
    "CORPUS_FAMILIES",
    "CORPUS_SCHEMA",
    "validate_corpus_analyse",
    "CorpusFamily",
    "CorpusRecord",
    "CorpusResult",
    "NetSpec",
    "analyse_spec",
    "generate_corpus",
    "run_corpus",
    "corpus_to_json_dict",
    "corpus_from_json_dict",
    "corpus_to_csv",
    # corpus schema validation
    "CorpusSchemaError",
    "DOCUMENT_FIELDS",
    "validate_corpus_document",
    "validate_corpus_record",
    "validate_corpus_file",
    "canonicalize_corpus_document",
    # exceptions
    "PetriNetError",
    "DuplicateNodeError",
    "UnknownNodeError",
    "InvalidArcError",
    "NotEnabledError",
    "InvalidMarkingError",
    "NotFreeChoiceError",
    "NotConflictFreeError",
    "InconsistentNetError",
    "NotSchedulableError",
    "SerializationError",
    # structure
    "is_marked_graph",
    "is_conflict_free",
    "is_free_choice",
    "is_extended_free_choice",
    "is_ordinary",
    "classify",
    "in_equal_conflict",
    "equal_conflict_sets",
    "conflicting_transitions",
    "choice_sets",
    "clusters",
    "preset_vector",
    "is_connected",
    "is_strongly_connected",
    "connected_components",
    # incidence / invariants
    "IncidenceMatrices",
    "incidence_matrices",
    "apply_state_equation",
    "is_firing_count_stationary",
    "marking_change",
    "t_invariants",
    "s_invariants",
    "fast_minimal_semiflows",
    "is_consistent",
    "is_conservative",
    "uncovered_transitions",
    "invariants_containing",
    "combine_invariants",
    "scale_invariant",
    "minimal_positive_t_invariant",
    # simulation
    "Simulator",
    "CompiledSimulator",
    "simulate_many",
    "SimulationTrace",
    "fire_sequence",
    "is_fireable",
    "is_finite_complete_cycle",
    "find_firing_sequence",
    "find_finite_complete_cycle",
    "search_firing_order",
    "policy_first_enabled",
    "make_random_policy",
    "make_adversarial_policy",
    # reachability
    "ReachabilityGraph",
    "build_reachability_graph",
    "CoverabilityResult",
    "coverability_analysis",
    "is_reachable",
    "is_bounded",
    "is_k_bounded",
    "is_safe",
    "is_deadlock_free",
    "find_deadlocks",
    "is_live",
    "live_verdict",
    "place_bounds",
    # serialization / export
    "net_to_dict",
    "net_from_dict",
    "net_to_json",
    "net_from_json",
    "save_net",
    "load_net",
    "net_to_dot",
]
