"""Parameterized and random net generators.

These families are used by the property-based tests and by the
scalability benchmarks (experiment E10 in DESIGN.md): the number of
T-reductions of a free-choice net grows exponentially with the number of
independent choices, while static scheduling of each reduction and code
generation stay polynomial/linear.

All generators produce nets that are free-choice by construction, and —
unless stated otherwise — quasi-statically schedulable, so they can be
pushed through the full QSS + code generation pipeline.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .builder import NetBuilder
from .net import PetriNet


def pipeline_net(
    stages: int,
    rates: Optional[Sequence[int]] = None,
    name: Optional[str] = None,
) -> PetriNet:
    """A linear multirate pipeline (a marked graph / SDF chain).

    ``t0 -> p0 -> t1 -> p1 -> ... -> t_stages`` where ``rates[i]`` is the
    weight on the producing arc of place ``p_i`` (the consuming weight is
    1), mirroring the Figure 2 style of multirate chain.

    Parameters
    ----------
    stages:
        Number of internal places (the chain has ``stages + 1``
        transitions).
    rates:
        Production weight per stage; defaults to all 1 (a homogeneous
        chain).
    """
    if stages < 1:
        raise ValueError("a pipeline needs at least one stage")
    if rates is None:
        rates = [1] * stages
    if len(rates) != stages:
        raise ValueError("rates must have one entry per stage")
    builder = NetBuilder(name or f"pipeline_{stages}")
    builder.source("t0", label="input")
    for i in range(stages):
        builder.arc(f"t{i}", f"p{i}", weight=rates[i])
        builder.arc(f"p{i}", f"t{i + 1}")
    return builder.build()


def choice_fan_net(branches: int, name: Optional[str] = None) -> PetriNet:
    """One source, one choice place with ``branches`` alternatives.

    Each alternative is a short branch ``t_bi -> p_bi -> t_ei`` ending in
    a sink transition — the Figure 3a pattern generalized to ``branches``
    alternatives.  The net has exactly one choice place and ``branches``
    T-reductions.
    """
    if branches < 2:
        raise ValueError("a choice needs at least two branches")
    builder = NetBuilder(name or f"choice_fan_{branches}")
    builder.source("t_in").arc("t_in", "p_choice")
    for i in range(branches):
        builder.arc("p_choice", f"t_b{i}")
        builder.arc(f"t_b{i}", f"p_b{i}")
        builder.arc(f"p_b{i}", f"t_e{i}")
    return builder.build()


def independent_choices_net(
    choices: int, branches: int = 2, name: Optional[str] = None
) -> PetriNet:
    """``choices`` independent input streams, each with its own choice.

    Each stream is a copy of :func:`choice_fan_net` with its own source
    transition.  Because every stream appears in every finite complete
    cycle, the number of distinct T-reductions is ``branches ** choices``
    — the exponential family used by the scalability benchmark.
    """
    if choices < 1:
        raise ValueError("need at least one choice")
    builder = NetBuilder(name or f"independent_choices_{choices}x{branches}")
    for c in range(choices):
        builder.source(f"t_in{c}").arc(f"t_in{c}", f"p_c{c}")
        for b in range(branches):
            builder.arc(f"p_c{c}", f"t_{c}_b{b}")
            builder.arc(f"t_{c}_b{b}", f"p_{c}_b{b}")
            builder.arc(f"p_{c}_b{b}", f"t_{c}_e{b}")
    return builder.build()


def nested_choices_net(depth: int, name: Optional[str] = None) -> PetriNet:
    """A chain of nested binary choices of the given depth.

    Choice ``i + 1`` lies on one branch of choice ``i``, so the number of
    distinct T-reductions is ``depth + 1`` (linear) even though there are
    ``depth`` choice places and ``2 ** depth`` T-allocations — the family
    that demonstrates why reduction deduplication matters.
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    builder = NetBuilder(name or f"nested_choices_{depth}")
    builder.source("t_in").arc("t_in", "p_c0")
    for i in range(depth):
        # "stop" branch
        builder.arc(f"p_c{i}", f"t_stop{i}")
        builder.arc(f"t_stop{i}", f"p_stop{i}")
        builder.arc(f"p_stop{i}", f"t_out{i}")
        # "continue" branch
        builder.arc(f"p_c{i}", f"t_go{i}")
        if i + 1 < depth:
            builder.arc(f"t_go{i}", f"p_c{i + 1}")
        else:
            builder.arc(f"t_go{i}", f"p_last")
            builder.arc("p_last", "t_out_last")
    return builder.build()


def multirate_choice_net(
    rate_a: int = 2, rate_b: int = 2, name: Optional[str] = None
) -> PetriNet:
    """The Figure 4 pattern with parameterizable weights.

    A source feeds a binary choice; the first branch needs ``rate_a``
    firings of the branch transition before its consumer is enabled, the
    second branch produces ``rate_b`` tokens per firing that its consumer
    drains one at a time.
    """
    builder = NetBuilder(name or f"multirate_choice_{rate_a}_{rate_b}")
    builder.source("t1").arc("t1", "p1")
    builder.arc("p1", "t2").arc("t2", "p2").arc("p2", "t4", weight=rate_a)
    builder.arc("p1", "t3").arc("t3", "p3", weight=rate_b).arc("p3", "t5")
    return builder.build()


def unschedulable_merge_net(name: Optional[str] = None) -> PetriNet:
    """The Figure 3b pattern: a choice whose branches must synchronize.

    The downstream transition needs a token from *both* branches of the
    choice, so an adversary that always resolves the choice the same way
    accumulates tokens without bound — the canonical non-schedulable FCPN.
    """
    builder = NetBuilder(name or "unschedulable_merge")
    builder.source("t1").arc("t1", "p1")
    builder.arc("p1", "t2").arc("t2", "p2")
    builder.arc("p1", "t3").arc("t3", "p3")
    builder.arc("p2", "t4").arc("p3", "t4")
    return builder.build()


def random_free_choice_net(
    seed: int,
    n_choices: int = 3,
    max_branch_length: int = 3,
    max_weight: int = 3,
    name: Optional[str] = None,
) -> PetriNet:
    """A random schedulable free-choice net.

    The net is built as a set of independent streams, one per choice:
    source -> choice place -> two branches of random length and random
    (balanced) weights, each ending in a sink.  Because every branch is a
    self-contained chain, every T-reduction is consistent and
    deadlock-free, so the net is schedulable by construction; tests use
    this family to cross-check the QSS implementation against the
    coverability-based boundedness analysis.
    """
    rng = random.Random(seed)
    builder = NetBuilder(name or f"random_fc_{seed}")
    for c in range(n_choices):
        source = f"t_src{c}"
        choice_place = f"p_choice{c}"
        builder.source(source).arc(source, choice_place)
        for b in range(2):
            length = rng.randint(1, max_branch_length)
            previous = choice_place
            for k in range(length):
                transition = f"t_{c}_{b}_{k}"
                place = f"p_{c}_{b}_{k}"
                weight_out = rng.randint(1, max_weight)
                builder.arc(previous, transition)
                builder.arc(transition, place, weight=weight_out)
                # make the consumer drain exactly what is produced per firing
                consumer = f"t_{c}_{b}_{k}_drain"
                builder.arc(place, consumer, weight=weight_out)
                previous_place = f"p_{c}_{b}_{k}_next"
                if k + 1 < length:
                    builder.arc(consumer, previous_place)
                    previous = previous_place
    return builder.build()


def random_marked_graph(
    seed: int, n_transitions: int = 6, extra_places: int = 3, name: Optional[str] = None
) -> PetriNet:
    """A random strongly-connected marked graph with initial tokens.

    Built as a ring of ``n_transitions`` transitions (guaranteeing a
    T-invariant of all ones) plus ``extra_places`` chord places between
    random transitions, each chord carrying one initial token so no
    deadlock is introduced.
    """
    rng = random.Random(seed)
    builder = NetBuilder(name or f"random_mg_{seed}")
    for i in range(n_transitions):
        builder.transition(f"t{i}")
    for i in range(n_transitions):
        j = (i + 1) % n_transitions
        place = f"p_ring{i}"
        tokens = 1 if i == 0 else 0
        builder.place(place, tokens=tokens)
        builder.arc(f"t{i}", place).arc(place, f"t{j}")
    for k in range(extra_places):
        a = rng.randrange(n_transitions)
        b = rng.randrange(n_transitions)
        place = f"p_chord{k}"
        builder.place(place, tokens=1)
        builder.arc(f"t{a}", place).arc(place, f"t{b}")
    return builder.build()
