"""Parameterized and random net generators.

These families are used by the property-based tests and by the
scalability benchmarks (experiment E10 in DESIGN.md): the number of
T-reductions of a free-choice net grows exponentially with the number of
independent choices, while static scheduling of each reduction and code
generation stay polynomial/linear.

All generators produce nets that are free-choice by construction, and —
unless stated otherwise — quasi-statically schedulable, so they can be
pushed through the full QSS + code generation pipeline.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .builder import NetBuilder
from .net import PetriNet


def pipeline_net(
    stages: int,
    rates: Optional[Sequence[int]] = None,
    name: Optional[str] = None,
) -> PetriNet:
    """A linear multirate pipeline (a marked graph / SDF chain).

    ``t0 -> p0 -> t1 -> p1 -> ... -> t_stages`` where ``rates[i]`` is the
    weight on the producing arc of place ``p_i`` (the consuming weight is
    1), mirroring the Figure 2 style of multirate chain.

    Parameters
    ----------
    stages:
        Number of internal places (the chain has ``stages + 1``
        transitions).
    rates:
        Production weight per stage; defaults to all 1 (a homogeneous
        chain).
    """
    if stages < 1:
        raise ValueError("a pipeline needs at least one stage")
    if rates is None:
        rates = [1] * stages
    if len(rates) != stages:
        raise ValueError("rates must have one entry per stage")
    builder = NetBuilder(name or f"pipeline_{stages}")
    builder.source("t0", label="input")
    for i in range(stages):
        builder.arc(f"t{i}", f"p{i}", weight=rates[i])
        builder.arc(f"p{i}", f"t{i + 1}")
    return builder.build()


def choice_fan_net(branches: int, name: Optional[str] = None) -> PetriNet:
    """One source, one choice place with ``branches`` alternatives.

    Each alternative is a short branch ``t_bi -> p_bi -> t_ei`` ending in
    a sink transition — the Figure 3a pattern generalized to ``branches``
    alternatives.  The net has exactly one choice place and ``branches``
    T-reductions.
    """
    if branches < 2:
        raise ValueError("a choice needs at least two branches")
    builder = NetBuilder(name or f"choice_fan_{branches}")
    builder.source("t_in").arc("t_in", "p_choice")
    for i in range(branches):
        builder.arc("p_choice", f"t_b{i}")
        builder.arc(f"t_b{i}", f"p_b{i}")
        builder.arc(f"p_b{i}", f"t_e{i}")
    return builder.build()


def independent_choices_net(
    choices: int, branches: int = 2, name: Optional[str] = None
) -> PetriNet:
    """``choices`` independent input streams, each with its own choice.

    Each stream is a copy of :func:`choice_fan_net` with its own source
    transition.  Because every stream appears in every finite complete
    cycle, the number of distinct T-reductions is ``branches ** choices``
    — the exponential family used by the scalability benchmark.
    """
    if choices < 1:
        raise ValueError("need at least one choice")
    builder = NetBuilder(name or f"independent_choices_{choices}x{branches}")
    for c in range(choices):
        builder.source(f"t_in{c}").arc(f"t_in{c}", f"p_c{c}")
        for b in range(branches):
            builder.arc(f"p_c{c}", f"t_{c}_b{b}")
            builder.arc(f"t_{c}_b{b}", f"p_{c}_b{b}")
            builder.arc(f"p_{c}_b{b}", f"t_{c}_e{b}")
    return builder.build()


def nested_choices_net(depth: int, name: Optional[str] = None) -> PetriNet:
    """A chain of nested binary choices of the given depth.

    Choice ``i + 1`` lies on one branch of choice ``i``, so the number of
    distinct T-reductions is ``depth + 1`` (linear) even though there are
    ``depth`` choice places and ``2 ** depth`` T-allocations — the family
    that demonstrates why reduction deduplication matters.
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    builder = NetBuilder(name or f"nested_choices_{depth}")
    builder.source("t_in").arc("t_in", "p_c0")
    for i in range(depth):
        # "stop" branch
        builder.arc(f"p_c{i}", f"t_stop{i}")
        builder.arc(f"t_stop{i}", f"p_stop{i}")
        builder.arc(f"p_stop{i}", f"t_out{i}")
        # "continue" branch
        builder.arc(f"p_c{i}", f"t_go{i}")
        if i + 1 < depth:
            builder.arc(f"t_go{i}", f"p_c{i + 1}")
        else:
            builder.arc(f"t_go{i}", f"p_last")
            builder.arc("p_last", "t_out_last")
    return builder.build()


def multirate_choice_net(
    rate_a: int = 2, rate_b: int = 2, name: Optional[str] = None
) -> PetriNet:
    """The Figure 4 pattern with parameterizable weights.

    A source feeds a binary choice; the first branch needs ``rate_a``
    firings of the branch transition before its consumer is enabled, the
    second branch produces ``rate_b`` tokens per firing that its consumer
    drains one at a time.
    """
    builder = NetBuilder(name or f"multirate_choice_{rate_a}_{rate_b}")
    builder.source("t1").arc("t1", "p1")
    builder.arc("p1", "t2").arc("t2", "p2").arc("p2", "t4", weight=rate_a)
    builder.arc("p1", "t3").arc("t3", "p3", weight=rate_b).arc("p3", "t5")
    return builder.build()


def unschedulable_merge_net(name: Optional[str] = None) -> PetriNet:
    """The Figure 3b pattern: a choice whose branches must synchronize.

    The downstream transition needs a token from *both* branches of the
    choice, so an adversary that always resolves the choice the same way
    accumulates tokens without bound — the canonical non-schedulable FCPN.
    """
    builder = NetBuilder(name or "unschedulable_merge")
    builder.source("t1").arc("t1", "p1")
    builder.arc("p1", "t2").arc("t2", "p2")
    builder.arc("p1", "t3").arc("t3", "p3")
    builder.arc("p2", "t4").arc("p3", "t4")
    return builder.build()


def producer_consumer_ring(
    stations: int = 2, capacity: int = 2, name: Optional[str] = None
) -> PetriNet:
    """A producer/consumer chain with credit-based flow control.

    Station ``i`` moves a token from buffer ``b{i-1}`` to buffer ``b{i}``
    while consuming a credit from ``c{i}`` and returning one to
    ``c{i-1}``; the producer only spends credits, the final consumer only
    returns them.  Every credit place starts with ``capacity`` tokens,
    so ``b{i} + c{i} = capacity`` is a P-invariant of every station —
    the net is bounded by construction (and live, conflict-free and
    schedulable), which makes the family a reference point for the
    invariant-conservation and exact-bound property tests.
    """
    if stations < 1:
        raise ValueError("need at least one station")
    if capacity < 1:
        raise ValueError("capacity must be positive")
    builder = NetBuilder(name or f"producer_consumer_{stations}x{capacity}")
    for i in range(stations):
        builder.place(f"b{i}", tokens=0)
        builder.place(f"c{i}", tokens=capacity)
    # producer: spend a credit, emit into the first buffer
    builder.arc("c0", "t_prod").arc("t_prod", "b0")
    for i in range(1, stations):
        mover = f"t_move{i}"
        builder.arc(f"b{i - 1}", mover).arc(mover, f"b{i}")
        builder.arc(f"c{i}", mover).arc(mover, f"c{i - 1}")
    # consumer: drain the last buffer, return its credit
    builder.arc(f"b{stations - 1}", "t_cons").arc("t_cons", f"c{stations - 1}")
    return builder.build()


def fork_join_pipeline(
    branches: int = 3,
    depth: int = 2,
    closed: bool = False,
    name: Optional[str] = None,
) -> PetriNet:
    """A fork/join of ``branches`` parallel chains of length ``depth``.

    ``t_fork`` emits one token into every branch; each branch is a chain
    of ``depth`` transitions; ``t_join`` synchronizes all branches.  The
    net is a marked graph (no choices), so it has exactly one
    T-reduction and is schedulable.  With ``closed=False`` a source
    transition feeds the fork (the open, unbounded variant); with
    ``closed=True`` the join output loops back to the fork input with one
    initial token, giving a strongly connected, bounded, live net.
    """
    if branches < 2:
        raise ValueError("a fork needs at least two branches")
    if depth < 1:
        raise ValueError("depth must be at least 1")
    builder = NetBuilder(
        name
        or f"fork_join_{branches}x{depth}{'_closed' if closed else ''}"
    )
    if closed:
        builder.place("p_in", tokens=1)
    else:
        builder.source("t_src").arc("t_src", "p_in")
    builder.arc("p_in", "t_fork")
    for b in range(branches):
        previous = None
        for k in range(depth):
            place = f"p_{b}_{k}"
            builder.arc("t_fork" if previous is None else previous, place)
            transition = f"t_{b}_{k}"
            builder.arc(place, transition)
            previous = transition
        builder.arc(previous, f"p_{b}_join")
        builder.arc(f"p_{b}_join", "t_join")
    if closed:
        builder.arc("t_join", "p_in")
    else:
        builder.arc("t_join", "p_out").arc("p_out", "t_sink")
    return builder.build()


def unbalanced_choice_net(
    seed: int,
    branches: int = 2,
    max_weight: int = 4,
    merge: bool = False,
    name: Optional[str] = None,
) -> PetriNet:
    """A choice whose branches carry unbalanced production/consumption rates.

    Branch ``i`` produces ``w_prod`` tokens per firing into its place
    while the branch consumer drains ``w_cons`` per firing, with the two
    weights drawn independently (and usually unequal, hence
    "unbalanced").  Each branch is still rationally balanced, so with
    ``merge=False`` the net is schedulable multirate.  With
    ``merge=True`` every branch additionally feeds a shared ``t_merge``
    that needs a token from *all* branches — the weighted generalization
    of the Figure 3b synchronizing choice, which is unbounded under an
    adversarial choice policy and not quasi-statically schedulable.
    """
    if branches < 2:
        raise ValueError("a choice needs at least two branches")
    if max_weight < 1:
        raise ValueError("max_weight must be positive")
    rng = random.Random(seed)
    builder = NetBuilder(
        name or f"unbalanced_choice_{seed}_{branches}{'_merge' if merge else ''}"
    )
    builder.source("t_in").arc("t_in", "p_choice")
    for i in range(branches):
        w_prod = rng.randint(1, max_weight)
        w_cons = rng.randint(1, max_weight)
        builder.arc("p_choice", f"t_b{i}")
        builder.arc(f"t_b{i}", f"p_b{i}", weight=w_prod)
        builder.arc(f"p_b{i}", f"t_e{i}", weight=w_cons)
        if merge:
            builder.arc(f"t_e{i}", f"p_m{i}")
            builder.arc(f"p_m{i}", "t_merge")
    return builder.build()


def random_free_choice_net(
    seed: int,
    n_choices: int = 3,
    max_branch_length: int = 3,
    max_weight: int = 3,
    name: Optional[str] = None,
) -> PetriNet:
    """A random schedulable free-choice net.

    The net is built as a set of independent streams, one per choice:
    source -> choice place -> two branches of random length and random
    (balanced) weights, each ending in a sink.  Because every branch is a
    self-contained chain, every T-reduction is consistent and
    deadlock-free, so the net is schedulable by construction; tests use
    this family to cross-check the QSS implementation against the
    coverability-based boundedness analysis.
    """
    rng = random.Random(seed)
    builder = NetBuilder(name or f"random_fc_{seed}")
    for c in range(n_choices):
        source = f"t_src{c}"
        choice_place = f"p_choice{c}"
        builder.source(source).arc(source, choice_place)
        for b in range(2):
            length = rng.randint(1, max_branch_length)
            previous = choice_place
            for k in range(length):
                transition = f"t_{c}_{b}_{k}"
                place = f"p_{c}_{b}_{k}"
                weight_out = rng.randint(1, max_weight)
                builder.arc(previous, transition)
                builder.arc(transition, place, weight=weight_out)
                # make the consumer drain exactly what is produced per firing
                consumer = f"t_{c}_{b}_{k}_drain"
                builder.arc(place, consumer, weight=weight_out)
                previous_place = f"p_{c}_{b}_{k}_next"
                if k + 1 < length:
                    builder.arc(consumer, previous_place)
                    previous = previous_place
    return builder.build()


def random_marked_graph(
    seed: int, n_transitions: int = 6, extra_places: int = 3, name: Optional[str] = None
) -> PetriNet:
    """A random strongly-connected marked graph with initial tokens.

    Built as a ring of ``n_transitions`` transitions (guaranteeing a
    T-invariant of all ones) plus ``extra_places`` chord places between
    random transitions, each chord carrying one initial token so no
    deadlock is introduced.
    """
    rng = random.Random(seed)
    builder = NetBuilder(name or f"random_mg_{seed}")
    for i in range(n_transitions):
        builder.transition(f"t{i}")
    for i in range(n_transitions):
        j = (i + 1) % n_transitions
        place = f"p_ring{i}"
        tokens = 1 if i == 0 else 0
        builder.place(place, tokens=tokens)
        builder.arc(f"t{i}", place).arc(place, f"t{j}")
    for k in range(extra_places):
        a = rng.randrange(n_transitions)
        b = rng.randrange(n_transitions)
        place = f"p_chord{k}"
        builder.place(place, tokens=1)
        builder.arc(f"t{a}", place).arc(place, f"t{b}")
    return builder.build()
