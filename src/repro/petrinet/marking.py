"""Markings: token distributions over the places of a Petri net.

A marking is an n-vector assigning a non-negative number of tokens to
every place (Sgroi et al. 1999, Section 2).  The class below is an
immutable mapping-like value object; firing a transition produces a new
marking rather than mutating the old one, which makes markings usable as
dictionary keys in reachability graphs and as recorded states in
simulation traces.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from .exceptions import InvalidMarkingError


class Marking(Mapping[str, int]):
    """An immutable assignment of token counts to place names.

    Places with zero tokens may be omitted; lookups of unknown places
    return 0, mirroring the mathematical convention that the marking
    vector is defined over all places.
    """

    __slots__ = ("_tokens", "_hash")

    def __init__(self, tokens: Mapping[str, int] | Iterable[Tuple[str, int]] = ()) -> None:
        items = dict(tokens)
        for place, count in items.items():
            if count < 0:
                raise InvalidMarkingError(
                    f"place {place!r} has negative token count {count}"
                )
        # normalize: drop zero entries so equal markings hash equally
        self._tokens: Dict[str, int] = {p: c for p, c in items.items() if c}
        self._hash: int | None = None

    @classmethod
    def _from_clean(cls, tokens: Dict[str, int]) -> "Marking":
        """Internal fast constructor for already-normalized token dicts.

        ``tokens`` must contain no zero and no negative counts and must
        not be mutated by the caller afterwards.  Used by the compiled
        engine when decompiling marking tuples in bulk, where the
        validation pass of ``__init__`` would dominate.
        """
        marking = object.__new__(cls)
        marking._tokens = tokens
        marking._hash = None
        return marking

    # -- Mapping protocol ------------------------------------------------
    def __getitem__(self, place: str) -> int:
        return self._tokens.get(place, 0)

    def get(self, place: str, default: int = 0) -> int:  # type: ignore[override]
        return self._tokens.get(place, default)

    def __iter__(self) -> Iterator[str]:
        return iter(self._tokens)

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, place: object) -> bool:
        return place in self._tokens

    # -- value-object behaviour -------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Marking):
            return self._tokens == other._tokens
        if isinstance(other, Mapping):
            return self._tokens == {p: c for p, c in other.items() if c}
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._tokens.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{p}: {c}" for p, c in sorted(self._tokens.items()))
        return f"Marking({{{inner}}})"

    # -- arithmetic helpers -------------------------------------------------
    @property
    def tokens(self) -> Dict[str, int]:
        """A plain dict copy of the non-zero token counts."""
        return dict(self._tokens)

    def total(self) -> int:
        """Total number of tokens in the marking."""
        return sum(self._tokens.values())

    def add(self, place: str, count: int = 1) -> "Marking":
        """Return a new marking with ``count`` extra tokens in ``place``."""
        tokens = dict(self._tokens)
        tokens[place] = tokens.get(place, 0) + count
        return Marking(tokens)

    def remove(self, place: str, count: int = 1) -> "Marking":
        """Return a new marking with ``count`` tokens removed from ``place``."""
        tokens = dict(self._tokens)
        tokens[place] = tokens.get(place, 0) - count
        return Marking(tokens)

    def union_places(self, other: "Marking") -> Iterable[str]:
        """All places that carry tokens in either marking."""
        return set(self._tokens) | set(other._tokens)

    def covers(self, other: "Marking") -> bool:
        """True if this marking has at least as many tokens everywhere."""
        for place, count in other._tokens.items():
            if self._tokens.get(place, 0) < count:
                return False
        return True

    def strictly_covers(self, other: "Marking") -> bool:
        """True if this marking covers ``other`` and is different from it."""
        return self.covers(other) and self._tokens != other._tokens

    def restricted_to(self, places: Iterable[str]) -> "Marking":
        """Return the marking restricted to the given set of places."""
        keep = set(places)
        return Marking({p: c for p, c in self._tokens.items() if p in keep})

    def as_vector(self, place_order: Iterable[str]) -> Tuple[int, ...]:
        """Return the marking as a tuple following ``place_order``."""
        return tuple(self._tokens.get(p, 0) for p in place_order)

    @classmethod
    def from_vector(cls, place_order: Iterable[str], vector: Iterable[int]) -> "Marking":
        """Build a marking from a vector aligned with ``place_order``."""
        return cls(dict(zip(place_order, vector)))
