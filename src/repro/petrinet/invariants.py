"""T-invariant and S-invariant computation.

A **T-invariant** is a non-negative integer vector ``f`` indexed by
transitions such that ``f^T . D = 0`` where ``D`` is the incidence
matrix: firing every transition ``t`` exactly ``f[t]`` times (in any
fireable order) returns the net to the marking it started from.  The
existence of a positive T-invariant is the *consistency* condition of
Definition 2.1 in the paper, and T-invariants are the algebraic skeleton
of finite complete cycles.

An **S-invariant** (place invariant) is the dual: a non-negative integer
vector ``y`` over places with ``D . y = 0``; the weighted token count
``m . y`` is then preserved by every firing.

Minimal-support semiflows are computed with the classical
Fourier–Motzkin / Farkas style elimination algorithm (Colom &
Silva 1990) on exact integer arithmetic, so no floating point round-off
can produce spurious invariants.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .incidence import IncidenceMatrices, incidence_matrices
from .net import PetriNet


def _normalize_row(row: np.ndarray) -> np.ndarray:
    """Divide an integer vector by the gcd of its entries (gcd of 0s is 1)."""
    values = [int(v) for v in row if v != 0]
    if not values:
        return row
    divisor = 0
    for value in values:
        divisor = gcd(divisor, abs(value))
    if divisor > 1:
        return row // divisor
    return row


def _minimal_semiflows(matrix: np.ndarray, max_rows: int = 200_000) -> List[np.ndarray]:
    """Return the minimal-support non-negative integer solutions of
    ``x^T . matrix = 0`` (rows of the identity tableau are candidate
    solutions ``x``).

    Parameters
    ----------
    matrix:
        Integer matrix with one row per variable (the unknown vector
        ``x`` has one entry per row of ``matrix``).
    max_rows:
        Safety cap on the intermediate tableau size; exceeded only by
        pathological nets, in which case a ``RuntimeError`` is raised
        rather than silently truncating the result.
    """
    n_vars, n_cols = matrix.shape
    # Tableau [A | I]: each row is (current combination applied to A, the
    # combination coefficients over the original variables).
    tableau = np.hstack(
        [matrix.astype(object), np.eye(n_vars, dtype=object)]
    )
    rows: List[np.ndarray] = [tableau[i].copy() for i in range(n_vars)]

    for col in range(n_cols):
        positives = [r for r in rows if r[col] > 0]
        negatives = [r for r in rows if r[col] < 0]
        zeros = [r for r in rows if r[col] == 0]
        new_rows: List[np.ndarray] = list(zeros)
        for rp in positives:
            for rn in negatives:
                coeff_p = -int(rn[col])
                coeff_n = int(rp[col])
                combined = coeff_p * rp + coeff_n * rn
                combined = _normalize_row(np.array(combined, dtype=object))
                new_rows.append(combined)
        rows = new_rows
        if len(rows) > max_rows:
            raise RuntimeError(
                "semiflow computation exceeded the safety cap "
                f"({len(rows)} intermediate rows)"
            )
        # prune rows whose support is a strict superset of another row's
        rows = _prune_non_minimal(rows, n_cols, n_vars)

    solutions = []
    for row in rows:
        support = row[n_cols:]
        if any(v != 0 for v in support):
            solutions.append(np.array([int(v) for v in support], dtype=np.int64))
    return solutions


def _prune_non_minimal(
    rows: List[np.ndarray], n_cols: int, n_vars: int
) -> List[np.ndarray]:
    """Drop rows whose coefficient support strictly contains another row's."""
    supports = []
    for row in rows:
        support = frozenset(
            i for i in range(n_vars) if row[n_cols + i] != 0
        )
        supports.append(support)
    keep: List[np.ndarray] = []
    for i, row in enumerate(rows):
        minimal = True
        for j, other_support in enumerate(supports):
            if i == j:
                continue
            if other_support < supports[i]:
                minimal = False
                break
            if other_support == supports[i] and j < i:
                # identical support: keep only the first occurrence
                minimal = False
                break
        if minimal:
            keep.append(row)
    return keep


#: Magnitude guard for the vectorized int64 elimination: combinations
#: multiply two tableau entries, so values must stay below sqrt(2^63)/2
#: for the sum of two products to be exactly representable.
_INT64_SAFE = 1 << 30


def fast_minimal_semiflows(
    matrix: np.ndarray, max_rows: int = 200_000
) -> List[np.ndarray]:
    """Vectorized int64 variant of :func:`_minimal_semiflows`.

    Runs the same Fourier–Motzkin / Farkas elimination with the same
    column order, combination order, gcd normalization and
    minimal-support pruning, but on whole int64 numpy tableaus instead
    of per-row Python object arithmetic — the form used by the
    mask-based QSS pipeline, where the input is a submatrix of a
    compiled net's incidence matrix.  Produces exactly the same
    solution set as the exact object-dtype implementation; if any
    intermediate value grows large enough that an int64 product could
    overflow (never observed on real nets, whose entries are small arc
    weights), the computation transparently falls back to the exact
    implementation.
    """
    n_vars, n_cols = matrix.shape
    if n_vars == 0:
        return []
    rows = np.hstack(
        [np.asarray(matrix, dtype=np.int64), np.eye(n_vars, dtype=np.int64)]
    )
    for col in range(n_cols):
        if rows.size and int(np.abs(rows).max()) > _INT64_SAFE:
            return _minimal_semiflows(matrix, max_rows=max_rows)
        c = rows[:, col]
        pos = np.flatnonzero(c > 0)
        neg = np.flatnonzero(c < 0)
        zero = np.flatnonzero(c == 0)
        if len(pos) and len(neg):
            # combined[i, j] = (-c[neg[j]]) * rows[pos[i]] + c[pos[i]] * rows[neg[j]],
            # flattened with the positive row as the outer loop — the same
            # pair order as the reference implementation.
            combined = (
                (-c[neg])[np.newaxis, :, np.newaxis] * rows[pos][:, np.newaxis, :]
                + (c[pos])[:, np.newaxis, np.newaxis] * rows[neg][np.newaxis, :, :]
            ).reshape(-1, rows.shape[1])
            divisor = np.gcd.reduce(np.abs(combined), axis=1)
            divisor[divisor == 0] = 1
            combined //= divisor[:, np.newaxis]
            rows = np.vstack([rows[zero], combined])
        else:
            rows = rows[zero]
        if len(rows) > max_rows:
            raise RuntimeError(
                "semiflow computation exceeded the safety cap "
                f"({len(rows)} intermediate rows)"
            )
        rows = _prune_non_minimal_vectorized(rows, n_cols)
    supports = rows[:, n_cols:]
    return [
        supports[i].copy() for i in range(len(supports)) if np.any(supports[i])
    ]


#: Above this many tableau rows the pairwise n x n subset matrix of the
#: vectorized prune would dominate memory (n^2 int64), so the O(n)-memory
#: reference loop takes over instead.
_PRUNE_VECTOR_LIMIT = 4096


def _prune_non_minimal_vectorized(rows: np.ndarray, n_cols: int) -> np.ndarray:
    """Vectorized equivalent of :func:`_prune_non_minimal`.

    Drops rows whose coefficient support strictly contains another
    row's, and all but the first of any group with identical support —
    the same keep set, in the same order, as the reference loop.
    """
    n = len(rows)
    if n <= 1:
        return rows
    if n > _PRUNE_VECTOR_LIMIT:
        n_vars = rows.shape[1] - n_cols
        kept = _prune_non_minimal([rows[i] for i in range(n)], n_cols, n_vars)
        return np.vstack(kept) if kept else rows[:0]
    support = rows[:, n_cols:] != 0
    sizes = support.sum(axis=1)
    inter = support.astype(np.int64) @ support.astype(np.int64).T
    # subset[j, i]: support_j is a (non-strict) subset of support_i
    subset = inter == sizes[:, np.newaxis]
    strict = subset & (sizes[:, np.newaxis] < sizes[np.newaxis, :])
    drop = strict.any(axis=0)
    order = np.arange(n)
    duplicate = subset & subset.T & (order[:, np.newaxis] < order[np.newaxis, :])
    drop |= duplicate.any(axis=0)
    return rows[~drop]


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def t_invariants(net: PetriNet) -> List[Dict[str, int]]:
    """Return the minimal-support T-invariants of ``net``.

    Each invariant is a ``{transition: count}`` mapping with positive
    counts only.  Transitions absent from the mapping fire zero times.
    """
    matrices = incidence_matrices(net)
    if not matrices.transitions:
        return []
    solutions = _minimal_semiflows(matrices.incidence)
    invariants = [matrices.counts_from_vector(v) for v in solutions]
    invariants.sort(key=lambda inv: sorted(inv.items()))
    return invariants


def s_invariants(net: PetriNet) -> List[Dict[str, int]]:
    """Return the minimal-support S-invariants (place invariants)."""
    matrices = incidence_matrices(net)
    if not matrices.places:
        return []
    solutions = _minimal_semiflows(matrices.incidence.T)
    invariants = []
    for vector in solutions:
        invariants.append(
            {p: int(vector[i]) for i, p in enumerate(matrices.places) if vector[i]}
        )
    invariants.sort(key=lambda inv: sorted(inv.items()))
    return invariants


def is_consistent(net: PetriNet) -> bool:
    """Return True if the net admits a positive T-invariant.

    Definition 2.1 of the paper: a net is consistent iff there exists
    ``f > 0`` with ``f^T . D = 0``.  Equivalently, the union of the
    supports of the minimal T-invariants covers every transition
    (non-negative combinations of semiflows are semiflows).
    """
    names = set(net.transition_names)
    if not names:
        return True
    covered: set = set()
    for invariant in t_invariants(net):
        covered.update(invariant)
        if covered == names:
            return True
    return covered == names


def is_conservative(net: PetriNet) -> bool:
    """Return True if the net admits a positive S-invariant (every place is
    covered by some place invariant)."""
    names = set(net.place_names)
    if not names:
        return True
    covered: set = set()
    for invariant in s_invariants(net):
        covered.update(invariant)
        if covered == names:
            return True
    return covered == names


def uncovered_transitions(net: PetriNet) -> List[str]:
    """Transitions not covered by any minimal T-invariant.

    A non-empty result explains *why* a net (typically a T-reduction) is
    inconsistent and therefore not schedulable; it is used to produce
    designer-facing diagnostics.
    """
    covered: set = set()
    for invariant in t_invariants(net):
        covered.update(invariant)
    return [t for t in net.transition_names if t not in covered]


def invariants_containing(
    net: PetriNet, transition: str, invariants: Optional[List[Dict[str, int]]] = None
) -> List[Dict[str, int]]:
    """Return the minimal T-invariants whose support contains ``transition``."""
    if invariants is None:
        invariants = t_invariants(net)
    return [inv for inv in invariants if transition in inv]


def combine_invariants(invariants: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Sum a collection of T-invariants into a single firing-count vector."""
    total: Dict[str, int] = {}
    for invariant in invariants:
        for transition, count in invariant.items():
            total[transition] = total.get(transition, 0) + count
    return total


def scale_invariant(invariant: Dict[str, int], factor: int) -> Dict[str, int]:
    """Multiply every component of a T-invariant by ``factor``."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    return {t: c * factor for t, c in invariant.items()}


def minimal_positive_t_invariant(net: PetriNet) -> Optional[Dict[str, int]]:
    """Return the component-wise smallest positive T-invariant, if any.

    For consistent conflict-free nets (the T-reductions used by QSS and
    the marked graphs obtained from SDF graphs) the minimal positive
    invariant is the sum of the minimal-support invariants, each scaled
    to the smallest common repetition (for a connected SDF graph the
    T-invariant space is one dimensional and the result coincides with
    the SDF repetition vector).  Returns ``None`` when the net is not
    consistent.
    """
    if not is_consistent(net):
        return None
    invariants = t_invariants(net)
    names = list(net.transition_names)
    # Greedy cover: add minimal invariants until every transition is covered.
    covered: set = set()
    chosen: List[Dict[str, int]] = []
    for invariant in invariants:
        if not set(invariant) <= covered:
            chosen.append(invariant)
            covered.update(invariant)
        if covered == set(names):
            break
    return combine_invariants(chosen)
