"""Core Petri net data model.

A Petri net is a triple ``(P, T, F)`` where ``P`` is a finite set of
places, ``T`` a finite set of transitions and ``F`` a weighted flow
relation between places and transitions (Murata 1989, Sgroi et al. 1999
Section 2).  This module provides the mutable :class:`PetriNet` container
together with the lightweight :class:`Place`, :class:`Transition` and
:class:`Arc` records.

Design notes
------------
* Nodes are identified by their (unique) string name.  All query methods
  accept either the node object or its name; internally everything is
  keyed by name so nets serialize naturally.
* The flow relation is stored twice (by source and by target) so preset
  and postset lookups are O(degree).
* The net owns the *initial marking*; transient markings produced during
  simulation are separate :class:`~repro.petrinet.marking.Marking` values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from .compiled import CompiledNet

from .exceptions import (
    DuplicateNodeError,
    InvalidArcError,
    InvalidMarkingError,
    UnknownNodeError,
)
from .marking import Marking

NodeRef = Union[str, "Place", "Transition"]


@dataclass(frozen=True)
class Place:
    """A place of a Petri net.

    Attributes
    ----------
    name:
        Unique identifier of the place within its net.
    capacity:
        Optional capacity bound used by analyses that model finite
        buffers.  ``None`` means unbounded (the standard Petri net
        semantics used throughout the paper).
    label:
        Optional human readable label (e.g. the channel name in the
        functional specification).
    """

    name: str
    capacity: Optional[int] = None
    label: Optional[str] = None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Transition:
    """A transition of a Petri net.

    Attributes
    ----------
    name:
        Unique identifier of the transition within its net.
    label:
        Optional human readable label (e.g. the name of the C function
        the transition stands for during code generation).
    cost:
        Execution cost in abstract clock cycles charged by the runtime
        cost model when the transition body runs.
    is_source_hint / is_sink_hint:
        Explicit environment-interaction markers.  A transition with an
        empty preset is structurally a source; the hints let models mark
        environment transitions even when the net is later embedded in a
        larger one.
    """

    name: str
    label: Optional[str] = None
    cost: int = 1
    is_source_hint: bool = False
    is_sink_hint: bool = False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Arc:
    """A weighted arc of the flow relation.

    ``source`` and ``target`` are node *names*; exactly one of them is a
    place and the other a transition.  ``weight`` is the value of
    ``F(source, target)`` and is always positive.
    """

    source: str
    target: str
    weight: int = 1

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise InvalidArcError(
                f"arc {self.source} -> {self.target} must have positive "
                f"weight, got {self.weight}"
            )


class PetriNet:
    """A weighted place/transition net with an initial marking.

    The class is deliberately mutable: model builders add places,
    transitions and arcs incrementally.  Analyses that require a frozen
    view should either copy the net (:meth:`copy`) or rely on the
    immutable matrices produced by :mod:`repro.petrinet.incidence`.

    Parameters
    ----------
    name:
        Optional name used in reports, DOT output and serialization.
    """

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._places: Dict[str, Place] = {}
        self._transitions: Dict[str, Transition] = {}
        # arcs keyed by (source, target)
        self._arcs: Dict[Tuple[str, str], Arc] = {}
        # adjacency: node name -> {neighbour name: weight}
        self._succ: Dict[str, Dict[str, int]] = {}
        self._pred: Dict[str, Dict[str, int]] = {}
        self._initial_tokens: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_place(
        self,
        name: str,
        tokens: int = 0,
        capacity: Optional[int] = None,
        label: Optional[str] = None,
    ) -> Place:
        """Add a place and return it.

        ``tokens`` is the number of tokens in the initial marking.
        """
        self._check_new_name(name)
        if tokens < 0:
            raise InvalidMarkingError(f"place {name!r}: negative token count {tokens}")
        place = Place(name=name, capacity=capacity, label=label)
        self._places[name] = place
        self._succ[name] = {}
        self._pred[name] = {}
        if tokens:
            self._initial_tokens[name] = tokens
        return place

    def add_transition(
        self,
        name: str,
        label: Optional[str] = None,
        cost: int = 1,
        is_source_hint: bool = False,
        is_sink_hint: bool = False,
    ) -> Transition:
        """Add a transition and return it."""
        self._check_new_name(name)
        transition = Transition(
            name=name,
            label=label,
            cost=cost,
            is_source_hint=is_source_hint,
            is_sink_hint=is_sink_hint,
        )
        self._transitions[name] = transition
        self._succ[name] = {}
        self._pred[name] = {}
        return transition

    def add_arc(self, source: NodeRef, target: NodeRef, weight: int = 1) -> Arc:
        """Add an arc ``F(source, target) = weight``.

        The arc must connect a place to a transition or a transition to a
        place.  Adding an arc that already exists replaces its weight.
        """
        src = self._name_of(source)
        dst = self._name_of(target)
        if src not in self._succ:
            raise UnknownNodeError(f"unknown node {src!r}")
        if dst not in self._succ:
            raise UnknownNodeError(f"unknown node {dst!r}")
        src_is_place = src in self._places
        dst_is_place = dst in self._places
        if src_is_place == dst_is_place:
            raise InvalidArcError(
                f"arc {src!r} -> {dst!r} must connect a place and a transition"
            )
        arc = Arc(source=src, target=dst, weight=weight)
        self._arcs[(src, dst)] = arc
        self._succ[src][dst] = weight
        self._pred[dst][src] = weight
        return arc

    def remove_arc(self, source: NodeRef, target: NodeRef) -> None:
        """Remove the arc ``source -> target`` (no-op if absent)."""
        src = self._name_of(source)
        dst = self._name_of(target)
        self._arcs.pop((src, dst), None)
        if src in self._succ:
            self._succ[src].pop(dst, None)
        if dst in self._pred:
            self._pred[dst].pop(src, None)

    def remove_place(self, place: NodeRef) -> None:
        """Remove a place together with all its arcs and initial tokens."""
        name = self._name_of(place)
        if name not in self._places:
            raise UnknownNodeError(f"unknown place {name!r}")
        self._remove_node(name)
        del self._places[name]
        self._initial_tokens.pop(name, None)

    def remove_transition(self, transition: NodeRef) -> None:
        """Remove a transition together with all its arcs."""
        name = self._name_of(transition)
        if name not in self._transitions:
            raise UnknownNodeError(f"unknown transition {name!r}")
        self._remove_node(name)
        del self._transitions[name]

    def set_initial_tokens(self, place: NodeRef, tokens: int) -> None:
        """Set the number of tokens of ``place`` in the initial marking."""
        name = self._name_of(place)
        if name not in self._places:
            raise UnknownNodeError(f"unknown place {name!r}")
        if tokens < 0:
            raise InvalidMarkingError(f"place {name!r}: negative token count {tokens}")
        if tokens:
            self._initial_tokens[name] = tokens
        else:
            self._initial_tokens.pop(name, None)

    def _remove_node(self, name: str) -> None:
        for succ in list(self._succ.get(name, ())):
            self._arcs.pop((name, succ), None)
            self._pred[succ].pop(name, None)
        for pred in list(self._pred.get(name, ())):
            self._arcs.pop((pred, name), None)
            self._succ[pred].pop(name, None)
        self._succ.pop(name, None)
        self._pred.pop(name, None)

    def _check_new_name(self, name: str) -> None:
        if not name:
            raise DuplicateNodeError("node name must be a non-empty string")
        if name in self._places or name in self._transitions:
            raise DuplicateNodeError(f"node {name!r} already exists")

    @staticmethod
    def _name_of(node: NodeRef) -> str:
        if isinstance(node, (Place, Transition)):
            return node.name
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def places(self) -> List[Place]:
        """All places, in insertion order."""
        return list(self._places.values())

    @property
    def transitions(self) -> List[Transition]:
        """All transitions, in insertion order."""
        return list(self._transitions.values())

    @property
    def arcs(self) -> List[Arc]:
        """All arcs, in insertion order."""
        return list(self._arcs.values())

    @property
    def place_names(self) -> List[str]:
        return list(self._places.keys())

    @property
    def transition_names(self) -> List[str]:
        return list(self._transitions.keys())

    def has_node(self, node: NodeRef) -> bool:
        name = self._name_of(node)
        return name in self._places or name in self._transitions

    def has_place(self, node: NodeRef) -> bool:
        return self._name_of(node) in self._places

    def has_transition(self, node: NodeRef) -> bool:
        return self._name_of(node) in self._transitions

    def place(self, name: str) -> Place:
        try:
            return self._places[name]
        except KeyError:
            raise UnknownNodeError(f"unknown place {name!r}") from None

    def transition(self, name: str) -> Transition:
        try:
            return self._transitions[name]
        except KeyError:
            raise UnknownNodeError(f"unknown transition {name!r}") from None

    def arc_weight(self, source: NodeRef, target: NodeRef) -> int:
        """Return ``F(source, target)``, or 0 if there is no such arc."""
        src = self._name_of(source)
        dst = self._name_of(target)
        return self._succ.get(src, {}).get(dst, 0)

    def preset(self, node: NodeRef) -> Dict[str, int]:
        """Return the preset of ``node`` as ``{predecessor: weight}``."""
        name = self._name_of(node)
        if name not in self._pred:
            raise UnknownNodeError(f"unknown node {name!r}")
        return dict(self._pred[name])

    def postset(self, node: NodeRef) -> Dict[str, int]:
        """Return the postset of ``node`` as ``{successor: weight}``."""
        name = self._name_of(node)
        if name not in self._succ:
            raise UnknownNodeError(f"unknown node {name!r}")
        return dict(self._succ[name])

    def preset_names(self, node: NodeRef) -> List[str]:
        return list(self.preset(node).keys())

    def postset_names(self, node: NodeRef) -> List[str]:
        return list(self.postset(node).keys())

    @property
    def initial_marking(self) -> Marking:
        """The initial marking as a :class:`Marking` over the net's places."""
        return Marking(
            {name: self._initial_tokens.get(name, 0) for name in self._places}
        )

    def iter_arcs(self) -> Iterator[Arc]:
        return iter(self._arcs.values())

    # ------------------------------------------------------------------
    # Structural shortcuts used throughout the QSS algorithm
    # ------------------------------------------------------------------
    def source_transitions(self) -> List[str]:
        """Transitions with an empty preset (inputs from the environment)."""
        return [t for t in self._transitions if not self._pred[t]]

    def sink_transitions(self) -> List[str]:
        """Transitions with an empty postset (outputs to the environment)."""
        return [t for t in self._transitions if not self._succ[t]]

    def source_places(self) -> List[str]:
        """Places with an empty preset."""
        return [p for p in self._places if not self._pred[p]]

    def sink_places(self) -> List[str]:
        """Places with an empty postset."""
        return [p for p in self._places if not self._succ[p]]

    def choice_places(self) -> List[str]:
        """Places with more than one output transition (conflicts/choices)."""
        return [p for p in self._places if len(self._succ[p]) > 1]

    def merge_places(self) -> List[str]:
        """Places with more than one input transition."""
        return [p for p in self._places if len(self._pred[p]) > 1]

    # ------------------------------------------------------------------
    # Semantics helpers (used by Marking-independent callers)
    # ------------------------------------------------------------------
    def is_enabled(self, transition: NodeRef, marking: Mapping[str, int]) -> bool:
        """Return True if ``transition`` is enabled in ``marking``."""
        name = self._name_of(transition)
        if name not in self._transitions:
            raise UnknownNodeError(f"unknown transition {name!r}")
        for place, weight in self._pred[name].items():
            if marking.get(place, 0) < weight:
                return False
        return True

    def enabled_transitions(self, marking: Mapping[str, int]) -> List[str]:
        """All transitions enabled in ``marking``, in insertion order."""
        return [t for t in self._transitions if self.is_enabled(t, marking)]

    def fire(self, transition: NodeRef, marking: Marking) -> Marking:
        """Fire ``transition`` in ``marking`` and return the new marking.

        Raises :class:`~repro.petrinet.exceptions.NotEnabledError` if the
        transition is not enabled.
        """
        from .exceptions import NotEnabledError

        name = self._name_of(transition)
        if not self.is_enabled(name, marking):
            raise NotEnabledError(
                f"transition {name!r} is not enabled in marking {marking}"
            )
        tokens = dict(marking.tokens)
        for place, weight in self._pred[name].items():
            tokens[place] = tokens.get(place, 0) - weight
        for place, weight in self._succ[name].items():
            tokens[place] = tokens.get(place, 0) + weight
        return Marking(tokens)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self) -> "CompiledNet":
        """Compile the net into its frozen integer-indexed form.

        The returned :class:`~repro.petrinet.compiled.CompiledNet` is a
        snapshot: later mutations of this net are not reflected in it.
        All hot analyses (reachability, constrained simulation, QSS) run
        on the compiled view; see :mod:`repro.petrinet.compiled`.
        """
        from .compiled import CompiledNet

        return CompiledNet.from_net(self)

    # ------------------------------------------------------------------
    # Copy / combination
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "PetriNet":
        """Return a deep copy of the net (nodes are immutable and shared)."""
        clone = PetriNet(name=name or self.name)
        clone._places = dict(self._places)
        clone._transitions = dict(self._transitions)
        clone._arcs = dict(self._arcs)
        clone._succ = {k: dict(v) for k, v in self._succ.items()}
        clone._pred = {k: dict(v) for k, v in self._pred.items()}
        clone._initial_tokens = dict(self._initial_tokens)
        return clone

    def subnet(
        self,
        places: Iterable[str],
        transitions: Iterable[str],
        name: Optional[str] = None,
    ) -> "PetriNet":
        """Return the subnet induced by the given node subsets.

        Arcs are kept when both endpoints survive; initial tokens of the
        kept places are preserved.
        """
        keep_places = set(places)
        keep_transitions = set(transitions)
        sub = PetriNet(name=name or f"{self.name}_sub")
        for pname in self._places:
            if pname in keep_places:
                original = self._places[pname]
                sub.add_place(
                    pname,
                    tokens=self._initial_tokens.get(pname, 0),
                    capacity=original.capacity,
                    label=original.label,
                )
        for tname in self._transitions:
            if tname in keep_transitions:
                original = self._transitions[tname]
                sub.add_transition(
                    tname,
                    label=original.label,
                    cost=original.cost,
                    is_source_hint=original.is_source_hint,
                    is_sink_hint=original.is_sink_hint,
                )
        for (src, dst), arc in self._arcs.items():
            if sub.has_node(src) and sub.has_node(dst):
                sub.add_arc(src, dst, arc.weight)
        return sub

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeRef) -> bool:
        return self.has_node(node)

    def __len__(self) -> int:
        return len(self._places) + len(self._transitions)

    def __repr__(self) -> str:
        return (
            f"PetriNet(name={self.name!r}, places={len(self._places)}, "
            f"transitions={len(self._transitions)}, arcs={len(self._arcs)})"
        )

    def summary(self) -> str:
        """Return a one-paragraph human readable description of the net."""
        return (
            f"net {self.name!r}: {len(self._places)} places, "
            f"{len(self._transitions)} transitions, {len(self._arcs)} arcs, "
            f"{len(self.choice_places())} choice places, "
            f"{len(self.source_transitions())} source transitions, "
            f"{len(self.sink_transitions())} sink transitions"
        )
