"""Memory-budgeted, spill-to-disk frontier exploration.

PR 5's frontier engine batches BFS levels into numpy matrices, which
is fast — and RAM-bound: near 10^7 markings the marking matrix, the
sorted visited tables and the per-level successor arrays together
outgrow small machines.  This module re-runs the *same* BFS under an
explicit ``memory_budget`` (bytes), following the external-memory
search discipline of explicit-state model checkers (Murφ/SPIN-style
disk-based search):

* **Marking and edge logs** stream to flat little-endian int64 files
  in ``spill_dir`` as they are discovered (row-major ``(N, P)`` for
  markings, one file per edge column).  The BFS frontier is never a
  resident matrix — each level is *read back in chunks* from the
  marking log, so a level wider than the budget costs chunk-sized RAM.
* **VisitedStore** keeps the sorted (hash1, hash2, BFS-index) dedup
  tables in RAM only up to a budget share; beyond it the current
  sorted segment is spilled as an immutable shard file and the RAM
  segment restarts empty.  Membership of a level's successor hashes is
  a k-way :func:`numpy.searchsorted` — one binary search per memory-
  mapped shard plus one against the RAM segment, touching O(log n)
  pages per shard and never materializing a merged table.
* **Chunked frontiers**: successor generation, hashing, deduplication
  and edge recording all happen per chunk, with the chunk size derived
  from the budget — no single level allocates beyond it.
* Optionally, a **symmetry-reduction pass**
  (:mod:`repro.petrinet.symmetry`) canonicalizes every successor row
  before hashing/storage, so families with interchangeable instances
  (fork/join branches, replicated choices) shrink the *explored* space
  before the *stored* space.

The unreduced budgeted exploration visits markings in exactly the
in-RAM engine's BFS order — same node numbering, same edge list, same
``max_markings`` cutoff — because chunking only splits the per-level
pair enumeration; cross-chunk duplicates are caught by the visited
store, and first-occurrence discovery order is preserved.  The
differential suite (:mod:`tests.test_outofcore_differential`) pins
this bit-for-bit.  With ``symmetry`` groups the result is a quotient
graph (smaller node count; deadlock/boundedness verdicts preserved,
per-transition liveness and bit-identity deliberately not).

Caveats, by design:

* hash-collision fallback: like the in-RAM engine, any 64-bit hash
  disagreement (probability ~2^-128 per pair) restarts on the exact
  dictionary explorer, which does not honor the budget — correctness
  outranks the budget in that astronomically unlikely case;
* the budget bounds the *exploration working set* (frontier chunks,
  visited tables); returned matrices are read-only memory maps over
  the spill files, so downstream consumers page in only what they
  touch.
"""

from __future__ import annotations

import os
import re
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .compiled import CompiledNet
from .symmetry import SymmetrySpec, canonicalize, resolve_symmetry

__all__ = [
    "SpillStats",
    "VisitedStore",
    "explore_budgeted",
    "parse_memory_budget",
]

_ITEM = 8  # everything spilled is little-endian int64

#: Floors keeping degenerate budgets functional: the visited RAM
#: segment never shrinks below this many entries, a frontier chunk
#: never below this many rows.  The segment floor is deliberately tiny
#: so the differential suite can force spilling on small nets.
_MIN_SEGMENT_ENTRIES = 64
_MIN_CHUNK_ROWS = 64

_UNIT_BYTES = {
    "": 1,
    "b": 1,
    "k": 2**10,
    "kb": 2**10,
    "kib": 2**10,
    "m": 2**20,
    "mb": 2**20,
    "mib": 2**20,
    "g": 2**30,
    "gb": 2**30,
    "gib": 2**30,
}

_BUDGET_RE = re.compile(r"^\s*([0-9][0-9_]*\.?[0-9]*)\s*([a-zA-Z]*)\s*$")


def parse_memory_budget(value: Union[None, int, str]) -> Optional[int]:
    """Normalize a memory budget to bytes.

    Accepts ``None`` (no budget), a positive int (bytes) or a string
    with a binary-unit suffix: ``"64MB"``, ``"1.5GiB"``, ``"4096"``,
    ``"512k"`` (K/M/G and their *B/iB forms all mean 2^10/2^20/2^30).
    """
    if value is None:
        return None
    if isinstance(value, str):
        match = _BUDGET_RE.match(value)
        if not match or match.group(2).lower() not in _UNIT_BYTES:
            raise ValueError(
                f"unparseable memory budget {value!r}; expected e.g. "
                "'268435456', '256MB' or '4GiB'"
            )
        number = float(match.group(1).replace("_", ""))
        result = int(number * _UNIT_BYTES[match.group(2).lower()])
    else:
        result = int(value)
    if result <= 0:
        raise ValueError(f"memory budget must be positive, got {value!r}")
    return result


@dataclass
class SpillStats:
    """What one budgeted exploration spilled and how it was chunked."""

    budget_bytes: Optional[int]
    spill_dir: str
    #: immutable sorted visited shards written (0 = everything fit in RAM)
    shard_count: int
    #: bytes of visited shards on disk
    shard_bytes: int
    #: bytes of the streamed marking/edge logs on disk
    log_bytes: int
    #: frontier chunks processed (>= level count; > it when chunking split a level)
    chunk_count: int
    #: BFS levels processed
    level_count: int
    #: True when a symmetry reduction canonicalized the exploration
    canonical: bool


class _ArrayLog:
    """Append-only flat int64 array file with memory-mapped read-back.

    ``columns == 0`` stores a 1-D array, otherwise row-major ``(N,
    columns)``.  Rows stream out through the OS page cache
    (``file.write`` of contiguous buffers); :meth:`view` hands back a
    read-only ``np.memmap`` window, so the exploration can re-read a
    finished BFS level chunk by chunk without the log ever being
    resident in RAM.
    """

    def __init__(self, path: Path, columns: int = 0) -> None:
        self.path = path
        self.columns = columns
        self.rows = 0
        self._file = open(path, "wb")

    @property
    def row_bytes(self) -> int:
        return _ITEM * (self.columns or 1)

    def append(self, array: np.ndarray) -> None:
        if array.size == 0:
            return
        array = np.ascontiguousarray(array, dtype=np.int64)
        self._file.write(array)
        self.rows += array.shape[0] if array.ndim > 1 else array.size

    def view(self, start: int, stop: int) -> np.ndarray:
        """Read-only memmap of rows ``[start, stop)`` (flush first)."""
        self._file.flush()
        count = stop - start
        if count <= 0:
            shape: Tuple[int, ...] = (
                (0, self.columns) if self.columns else (0,)
            )
            return np.empty(shape, dtype=np.int64)
        shape = (count, self.columns) if self.columns else (count,)
        return np.memmap(
            self.path,
            dtype=np.int64,
            mode="r",
            offset=start * self.row_bytes,
            shape=shape,
        )

    def finalize(self) -> np.ndarray:
        """Close the writer and return the whole log as a read-only map."""
        full = self.view(0, self.rows)
        self._file.close()
        return full

    @property
    def nbytes(self) -> int:
        return self.rows * self.row_bytes


class VisitedStore:
    """Budgeted sorted (hash1, hash2, index) membership table.

    The live segment is a sorted in-RAM triple grown by
    :func:`numpy.insert`, exactly like the in-RAM engine's visited
    tables — until it exceeds ``segment_entries``, at which point it is
    written out as one immutable sorted shard (layout ``h1 | h2 |
    idx``, each a contiguous int64 run) and the RAM segment restarts
    empty.  :meth:`lookup` answers membership with one
    :func:`numpy.searchsorted` per shard over the memory-mapped hash
    run plus one against the RAM segment — a k-way merge against the
    query batch that never materializes a combined table.  Every hash
    is inserted exactly once, so at most one segment can answer for it.
    """

    def __init__(self, spill_dir: Path, segment_entries: int) -> None:
        self.spill_dir = spill_dir
        self.segment_entries = max(_MIN_SEGMENT_ENTRIES, int(segment_entries))
        self._h1 = np.empty(0, dtype=np.int64)
        self._h2 = np.empty(0, dtype=np.int64)
        self._idx = np.empty(0, dtype=np.int64)
        self._shards: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._shard_paths: List[Path] = []

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shard_bytes(self) -> int:
        return sum(3 * _ITEM * shard[0].size for shard in self._shards)

    def lookup(
        self, queries: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Membership of sorted unique ``queries`` across all segments.

        Returns ``(found, index, h2)``: for each query hash, whether it
        is stored, the BFS index it maps to and the stored second hash
        (callers confirm it against their own — a first-hash match with
        second-hash disagreement must fall back to the exact engine).
        """
        found = np.zeros(queries.size, dtype=bool)
        index = np.empty(queries.size, dtype=np.int64)
        h2_out = np.empty(queries.size, dtype=np.int64)
        for shard_h1, shard_h2, shard_idx in self._segments():
            if shard_h1.size == 0:
                continue
            pos = np.minimum(
                np.searchsorted(shard_h1, queries), shard_h1.size - 1
            )
            hit = (shard_h1[pos] == queries) & ~found
            if hit.any():
                found[hit] = True
                index[hit] = shard_idx[pos[hit]]
                h2_out[hit] = shard_h2[pos[hit]]
        return found, index, h2_out

    def insert(
        self, h1: np.ndarray, h2: np.ndarray, index: np.ndarray
    ) -> None:
        """Insert sorted new hashes, spilling the segment past budget."""
        if h1.size:
            at = np.searchsorted(self._h1, h1)
            self._h1 = np.insert(self._h1, at, h1)
            self._h2 = np.insert(self._h2, at, h2)
            self._idx = np.insert(self._idx, at, index)
        if self._h1.size >= self.segment_entries:
            self._spill_segment()

    def _spill_segment(self) -> None:
        path = self.spill_dir / f"visited-{len(self._shards):05d}.bin"
        size = self._h1.size
        with open(path, "wb") as handle:
            handle.write(np.ascontiguousarray(self._h1))
            handle.write(np.ascontiguousarray(self._h2))
            handle.write(np.ascontiguousarray(self._idx))
        self._shards.append(
            tuple(
                np.memmap(
                    path,
                    dtype=np.int64,
                    mode="r",
                    offset=i * size * _ITEM,
                    shape=(size,),
                )
                for i in range(3)
            )
        )
        self._shard_paths.append(path)
        self._h1 = np.empty(0, dtype=np.int64)
        self._h2 = np.empty(0, dtype=np.int64)
        self._idx = np.empty(0, dtype=np.int64)

    def _segments(self):
        yield from self._shards
        yield (self._h1, self._h2, self._idx)

    def release(self) -> None:
        """Unlink shard files (mapped pages stay valid until GC'd)."""
        for path in self._shard_paths:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self._shard_paths = []


# ----------------------------------------------------------------------
# The budgeted explorer
# ----------------------------------------------------------------------
def _chunk_rows_for(
    budget: Optional[int], n_places: int, n_transitions: int
) -> int:
    """Frontier rows per chunk so one chunk's working set fits the budget.

    Worst case per frontier row: ``T`` enabledness bools, up to ``T``
    successor pairs each carrying a handful of int64 scratch columns
    (hashes, unique/inverse/sort indices, edge triple) and up to ``T``
    new ``P``-wide rows.  Half the budget goes to this working set (the
    other half covers the visited RAM segment and the insert churn).
    """
    if budget is None:
        return 2**31
    per_row = n_transitions * (1 + 7 * _ITEM) + max(
        2 * n_places * _ITEM, n_transitions * n_places * _ITEM // 4
    )
    return max(_MIN_CHUNK_ROWS, (budget // 2) // max(1, per_row))


def explore_budgeted(
    compiled: CompiledNet,
    start: Optional[Sequence[int]] = None,
    max_markings: int = 100_000,
    target: Optional[Sequence[int]] = None,
    stop_on_target: bool = False,
    collect_edges: bool = True,
    memory_budget: Union[None, int, str] = None,
    spill_dir: Union[None, str, Path] = None,
    symmetry: SymmetrySpec = None,
):
    """Budgeted (and/or symmetry-reduced) frontier exploration.

    Same contract as :func:`repro.petrinet.frontier.explore_frontier`
    (which dispatches here whenever ``memory_budget``, ``spill_dir`` or
    ``symmetry`` is given): returns a
    :class:`~repro.petrinet.frontier.FrontierExploration` whose
    ``matrix``/edge arrays are read-only memory maps over the spill
    files, with :class:`SpillStats` attached as ``.spill``.  Without
    symmetry the result is bit-identical to the in-RAM engine; with
    symmetry it is the canonical quotient.
    """
    from .frontier import _HashDisagreement, _explore_exact

    budget = parse_memory_budget(memory_budget)
    groups = resolve_symmetry(compiled, symmetry)
    owns_dir = spill_dir is None
    if owns_dir:
        directory = Path(tempfile.mkdtemp(prefix="repro-qss-ooc-"))
    else:
        directory = Path(spill_dir)
        directory.mkdir(parents=True, exist_ok=True)
    try:
        return _explore_spilling(
            compiled,
            start,
            max_markings,
            target,
            stop_on_target,
            collect_edges,
            budget,
            directory,
            owns_dir,
            groups,
        )
    except _HashDisagreement:
        # 2^-128-likely court of appeal: correctness outranks the budget
        if owns_dir:
            shutil.rmtree(directory, ignore_errors=True)
        if groups:
            return _explore_exact_canonical(
                compiled, start, max_markings, target, stop_on_target,
                collect_edges, groups,
            )
        return _explore_exact(
            compiled, start, max_markings, target, stop_on_target,
            collect_edges,
        )
    except BaseException:
        if owns_dir:
            shutil.rmtree(directory, ignore_errors=True)
        raise


def _explore_spilling(
    compiled: CompiledNet,
    start: Optional[Sequence[int]],
    max_markings: int,
    target: Optional[Sequence[int]],
    stop_on_target: bool,
    collect_edges: bool,
    budget: Optional[int],
    directory: Path,
    owns_dir: bool,
    groups: Tuple,
):
    from .frontier import (
        FrontierExploration,
        _HashDisagreement,
        _start_vector,
        _tables_for,
    )

    n_places = len(compiled.places)
    n_transitions = len(compiled.transitions)
    incidence = compiled.incidence
    tables = _tables_for(compiled)
    mix1, inc_h1 = tables.mix1, tables.inc_h1
    mix2, inc_h2 = tables.mix2, tables.inc_h2
    enabled_fn = tables.enabled

    segment_entries = (
        2**62 if budget is None else max(
            _MIN_SEGMENT_ENTRIES, budget // 4 // (3 * _ITEM)
        )
    )
    chunk_rows = _chunk_rows_for(budget, n_places, n_transitions)

    start_vector = _start_vector(compiled, start)
    if groups:
        start_vector = canonicalize(start_vector, groups)
    target_vector = (
        None
        if target is None
        else canonicalize(np.array(tuple(target), dtype=np.int64), groups)
    )
    target_index: Optional[int] = None
    if target_vector is not None and np.array_equal(start_vector, target_vector):
        target_index = 0

    markings = _ArrayLog(directory / "markings.bin", columns=n_places)
    edge_logs = (
        tuple(
            _ArrayLog(directory / f"edge-{name}.bin")
            for name in ("src", "transition", "dst")
        )
        if collect_edges
        else ()
    )
    store = VisitedStore(directory, segment_entries)

    markings.append(start_vector[np.newaxis, :])
    store.insert(
        np.asarray([start_vector @ mix1], dtype=np.int64),
        np.asarray([start_vector @ mix2], dtype=np.int64),
        np.zeros(1, dtype=np.int64),
    )
    count = 1
    level_start, level_end = 0, 1
    complete = True
    levels = 0
    chunks = 0
    done = False

    # like the in-RAM engine, a found target only stops the search at a
    # level boundary (the level it appears in is processed in full), so
    # stop_on_target runs stay bit-identical too
    while level_start < level_end and not done and not (
        stop_on_target and target_index is not None
    ):
        levels += 1
        for chunk_at in range(level_start, level_end, chunk_rows):
            chunk_stop = min(chunk_at + chunk_rows, level_end)
            # the frontier chunk is re-read from the marking log: one
            # chunk-sized copy is the only frontier RAM this level uses
            chunk = np.array(markings.view(chunk_at, chunk_stop))
            chunks += 1
            src_local, trans = np.nonzero(enabled_fn(chunk))
            if src_local.size == 0:
                continue
            if groups:
                # canonicalization needs the successor rows themselves;
                # hash the canonical forms directly
                succ = canonicalize(
                    chunk[src_local] + incidence[trans], groups
                )
                h1 = succ @ mix1
                h2 = succ @ mix2
            else:
                succ = None
                # linearity shortcut, identical arithmetic to in-RAM:
                # hash(successor) = hash(frontier row) + hash(incidence row)
                h1 = (chunk @ mix1)[src_local] + inc_h1[trans]
                h2 = (chunk @ mix2)[src_local] + inc_h2[trans]
            unique_h, first, inverse = np.unique(
                h1, return_index=True, return_inverse=True
            )
            if not np.array_equal(h2, h2[first[inverse]]):
                raise _HashDisagreement
            found, found_idx, found_h2 = store.lookup(unique_h)
            unique_index = np.empty(unique_h.size, dtype=np.int64)
            found_pos = np.flatnonzero(found)
            if found_pos.size:
                if not np.array_equal(h2[first[found_pos]], found_h2[found_pos]):
                    raise _HashDisagreement
                unique_index[found_pos] = found_idx[found_pos]
            new_pos = np.flatnonzero(~found)
            new_first = first[new_pos]
            discovery = np.argsort(new_first, kind="stable")
            n_new = new_pos.size
            if count + n_new > max_markings:
                complete = False
                allowed = max(0, max_markings - count)
                cutoff = int(new_first[discovery[allowed]])
            else:
                allowed = n_new
                cutoff = -1
            kept = discovery[:allowed]
            new_ids = np.full(n_new, -1, dtype=np.int64)
            new_ids[kept] = count + np.arange(allowed, dtype=np.int64)
            unique_index[new_pos] = new_ids
            kept_first = new_first[kept]
            if succ is not None:
                new_rows = succ[kept_first]
            else:
                new_rows = chunk[src_local[kept_first]] + incidence[trans[kept_first]]
            markings.append(new_rows)
            if target_vector is not None and target_index is None and allowed:
                hits = np.flatnonzero((new_rows == target_vector).all(axis=1))
                if hits.size:
                    target_index = count + int(hits[0])
            kept_mask = new_ids >= 0
            kept_unique = new_pos[kept_mask]
            store.insert(
                unique_h[kept_unique],
                h2[first[kept_unique]],
                new_ids[kept_mask],
            )
            if collect_edges:
                dst = unique_index[inverse]
                src = src_local + chunk_at
                stop_at = cutoff if cutoff >= 0 else src.size
                edge_logs[0].append(src[:stop_at])
                edge_logs[1].append(trans[:stop_at])
                edge_logs[2].append(dst[:stop_at])
            count += allowed
            if cutoff >= 0:
                done = True
                break
        level_start, level_end = level_end, count

    if stop_on_target and target_index is not None:
        # stopped at the target: the graph is (potentially) a prefix
        complete = False

    matrix = markings.finalize()
    if collect_edges:
        edge_src, edge_t, edge_dst = (log.finalize() for log in edge_logs)
    else:
        edge_src = edge_t = edge_dst = np.empty(0, dtype=np.int64)
    stats = SpillStats(
        budget_bytes=budget,
        spill_dir=str(directory),
        shard_count=store.shard_count,
        shard_bytes=store.shard_bytes,
        log_bytes=markings.nbytes + sum(log.nbytes for log in edge_logs),
        chunk_count=chunks,
        level_count=levels,
        canonical=bool(groups),
    )
    if owns_dir:
        # POSIX: unlinked files stay readable through their live maps,
        # so the temp dir can disappear while the memmaps are in use
        store.release()
        for log in (markings, *edge_logs):
            try:
                log.path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        try:
            directory.rmdir()
        except OSError:  # pragma: no cover - stray files: leave the dir
            pass
    return FrontierExploration(
        matrix=matrix,
        edge_src=edge_src,
        edge_transition=edge_t,
        edge_dst=edge_dst,
        complete=complete,
        target_index=target_index,
        spill=stats,
    )


def _explore_exact_canonical(
    compiled: CompiledNet,
    start: Optional[Sequence[int]],
    max_markings: int,
    target: Optional[Sequence[int]],
    stop_on_target: bool,
    collect_edges: bool,
    groups: Tuple,
):
    """Collision-free scalar quotient BFS (symmetry's court of appeal)."""
    from collections import deque

    from .frontier import FrontierExploration, _start_vector

    start_row = canonicalize(_start_vector(compiled, start), groups)
    start_tuple = tuple(int(v) for v in start_row)
    target_tuple = (
        None
        if target is None
        else tuple(
            int(v)
            for v in canonicalize(np.array(tuple(target), dtype=np.int64), groups)
        )
    )
    target_index: Optional[int] = None
    if target_tuple is not None and start_tuple == target_tuple:
        target_index = 0

    rows: List[Tuple[int, ...]] = [start_tuple]
    index = {start_tuple: 0}
    edge_src: List[int] = []
    edge_t: List[int] = []
    edge_dst: List[int] = []
    complete = True
    expand = compiled.expander
    queue = deque([0])
    count = 1

    while queue and not (stop_on_target and target_index is not None):
        current_index = queue.popleft()
        current = rows[current_index]
        for transition, successor in expand(current):
            successor = tuple(
                int(v)
                for v in canonicalize(
                    np.array(successor, dtype=np.int64), groups
                )
            )
            successor_index = index.get(successor)
            if successor_index is None:
                if count >= max_markings:
                    complete = False
                    queue.clear()
                    break
                successor_index = count
                index[successor] = count
                rows.append(successor)
                queue.append(count)
                count += 1
                if target_tuple is not None and successor == target_tuple:
                    target_index = successor_index
            if collect_edges:
                edge_src.append(current_index)
                edge_t.append(transition)
                edge_dst.append(successor_index)
        if not complete:
            break

    if stop_on_target and target_index is not None:
        complete = False

    return FrontierExploration(
        matrix=np.array(rows, dtype=np.int64).reshape(
            count, len(compiled.places)
        ),
        edge_src=np.array(edge_src, dtype=np.int64),
        edge_transition=np.array(edge_t, dtype=np.int64),
        edge_dst=np.array(edge_dst, dtype=np.int64),
        complete=complete,
        target_index=target_index,
    )
