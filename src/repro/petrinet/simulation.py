"""Token-game simulation of Petri nets.

Two kinds of simulation are needed by the paper's algorithms:

1. **Constrained simulation** (:func:`find_firing_sequence`): given a
   firing-count vector (typically a T-invariant), find an ordering of the
   firings that is actually executable from the initial marking — this is
   the "verify by simulation that the net does not deadlock" step of
   Section 2 (and condition (3) of Definition 3.5).  The sequence found,
   if any, is a finite complete cycle.

2. **Free simulation** (:class:`Simulator`): execute the net step by step
   under a pluggable choice policy; used by the runtime substrate, by the
   adversarial boundedness experiments and by tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .exceptions import NotEnabledError
from .marking import Marking
from .net import PetriNet

ChoicePolicy = Callable[[PetriNet, Marking, List[str]], str]


@dataclass
class SimulationTrace:
    """Record of a simulation run.

    Attributes
    ----------
    fired:
        The sequence of transitions fired, in order.
    markings:
        The marking after each firing; ``markings[0]`` is the initial
        marking, so ``len(markings) == len(fired) + 1``.
    deadlocked:
        True if the run stopped because no transition was enabled.
    """

    fired: List[str] = field(default_factory=list)
    markings: List[Marking] = field(default_factory=list)
    deadlocked: bool = False

    @property
    def final_marking(self) -> Marking:
        return self.markings[-1]

    def max_tokens(self) -> Dict[str, int]:
        """Maximum number of tokens observed in each place across the run."""
        peak: Dict[str, int] = {}
        for marking in self.markings:
            for place, count in marking.tokens.items():
                if count > peak.get(place, 0):
                    peak[place] = count
        return peak

    def firing_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for transition in self.fired:
            counts[transition] = counts.get(transition, 0) + 1
        return counts


def fire_sequence(
    net: PetriNet, sequence: Sequence[str], marking: Optional[Marking] = None
) -> Marking:
    """Fire ``sequence`` from ``marking`` (default: the initial marking)
    and return the resulting marking.

    Raises :class:`~repro.petrinet.exceptions.NotEnabledError` if any
    transition in the sequence is not enabled when its turn comes.
    """
    current = marking if marking is not None else net.initial_marking
    for transition in sequence:
        current = net.fire(transition, current)
    return current


def is_fireable(
    net: PetriNet, sequence: Sequence[str], marking: Optional[Marking] = None
) -> bool:
    """True if ``sequence`` can be fired from ``marking`` without blocking."""
    try:
        fire_sequence(net, sequence, marking)
    except NotEnabledError:
        return False
    return True


def is_finite_complete_cycle(
    net: PetriNet, sequence: Sequence[str], marking: Optional[Marking] = None
) -> bool:
    """True if ``sequence`` is fireable and returns the net to ``marking``.

    This is the defining property of a finite complete cycle (Section 2):
    the period of a static or quasi-static schedule.
    """
    start = marking if marking is not None else net.initial_marking
    try:
        end = fire_sequence(net, sequence, start)
    except NotEnabledError:
        return False
    return end == start


def find_firing_sequence(
    net: PetriNet,
    firing_counts: Mapping[str, int],
    marking: Optional[Marking] = None,
) -> Optional[List[str]]:
    """Find an executable ordering of the given firing counts.

    Given a firing-count vector (e.g. a T-invariant), search for a
    sequence that fires each transition exactly ``firing_counts[t]``
    times starting from ``marking`` without ever blocking.  Returns the
    sequence, or ``None`` if no such ordering exists (the net would
    deadlock for these counts, so the counts do not correspond to a
    finite complete cycle).

    The search is a depth-first search over remaining-count states with
    memoization of failed states; for conflict-free nets (the only nets
    this is applied to by the QSS algorithm) a greedy strategy succeeds
    without backtracking in the common case, so the worst-case
    exponential behaviour is not observed in practice.
    """
    start = marking if marking is not None else net.initial_marking
    remaining = {t: int(c) for t, c in firing_counts.items() if c > 0}
    if not remaining:
        return []

    failed: set = set()

    def state_key(current: Marking, counts: Dict[str, int]) -> Tuple:
        return (current, tuple(sorted(counts.items())))

    sequence: List[str] = []

    def search(current: Marking, counts: Dict[str, int]) -> bool:
        if not counts:
            return True
        key = state_key(current, counts)
        if key in failed:
            return False
        candidates = [
            t for t in counts if net.is_enabled(t, current)
        ]
        for transition in candidates:
            next_marking = net.fire(transition, current)
            next_counts = dict(counts)
            next_counts[transition] -= 1
            if next_counts[transition] == 0:
                del next_counts[transition]
            sequence.append(transition)
            if search(next_marking, next_counts):
                return True
            sequence.pop()
        failed.add(key)
        return False

    if search(start, remaining):
        return sequence
    return None


def find_finite_complete_cycle(
    net: PetriNet,
    firing_counts: Mapping[str, int],
    marking: Optional[Marking] = None,
) -> Optional[List[str]]:
    """Find a finite complete cycle realizing ``firing_counts``.

    This combines :func:`find_firing_sequence` with the check that the
    final marking equals the starting one (it always does when the counts
    satisfy the state equation, but the check guards against callers
    passing non-stationary vectors).
    """
    start = marking if marking is not None else net.initial_marking
    sequence = find_firing_sequence(net, firing_counts, start)
    if sequence is None:
        return None
    if fire_sequence(net, sequence, start) != start:
        return None
    return sequence


# ----------------------------------------------------------------------
# Free simulation under a choice policy
# ----------------------------------------------------------------------
def policy_first_enabled(net: PetriNet, marking: Marking, enabled: List[str]) -> str:
    """Deterministic policy: fire the first enabled transition in net order."""
    return enabled[0]


def make_random_policy(seed: int = 0) -> ChoicePolicy:
    """Return a reproducible uniformly-random choice policy."""
    rng = random.Random(seed)

    def policy(net: PetriNet, marking: Marking, enabled: List[str]) -> str:
        return rng.choice(enabled)

    return policy


def make_adversarial_policy(preferred: Sequence[str]) -> ChoicePolicy:
    """Return a policy that always picks a preferred transition when it can.

    This models the scheduling "adversary" of Section 3 who resolves
    conflicts so as to accumulate tokens; tests use it to demonstrate the
    unbounded behaviour of non-schedulable nets such as Figure 3b.
    """
    preference = list(preferred)

    def policy(net: PetriNet, marking: Marking, enabled: List[str]) -> str:
        for transition in preference:
            if transition in enabled:
                return transition
        return enabled[0]

    return policy


class Simulator:
    """Step-by-step token game simulator with a pluggable choice policy."""

    def __init__(
        self,
        net: PetriNet,
        marking: Optional[Marking] = None,
        policy: ChoicePolicy = policy_first_enabled,
    ) -> None:
        self.net = net
        self.marking = marking if marking is not None else net.initial_marking
        self.policy = policy
        self.trace = SimulationTrace(markings=[self.marking])

    def enabled(self) -> List[str]:
        """Transitions enabled in the current marking."""
        return self.net.enabled_transitions(self.marking)

    def step(self) -> Optional[str]:
        """Fire one transition chosen by the policy.

        Returns the fired transition name, or ``None`` if the net is
        deadlocked (no transition enabled).
        """
        enabled = self.enabled()
        if not enabled:
            self.trace.deadlocked = True
            return None
        transition = self.policy(self.net, self.marking, enabled)
        self.marking = self.net.fire(transition, self.marking)
        self.trace.fired.append(transition)
        self.trace.markings.append(self.marking)
        return transition

    def run(self, max_steps: int) -> SimulationTrace:
        """Fire up to ``max_steps`` transitions (stopping early on deadlock)."""
        for _ in range(max_steps):
            if self.step() is None:
                break
        return self.trace
