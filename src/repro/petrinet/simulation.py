"""Token-game simulation of Petri nets.

Two kinds of simulation are needed by the paper's algorithms:

1. **Constrained simulation** (:func:`find_firing_sequence`): given a
   firing-count vector (typically a T-invariant), find an ordering of the
   firings that is actually executable from the initial marking — this is
   the "verify by simulation that the net does not deadlock" step of
   Section 2 (and condition (3) of Definition 3.5).  The sequence found,
   if any, is a finite complete cycle.

2. **Free simulation** (:class:`Simulator`): execute the net step by step
   under a pluggable choice policy; used by the runtime substrate, by the
   adversarial boundedness experiments and by tests.

Both kinds run on the integer-indexed
:class:`~repro.petrinet.compiled.CompiledNet` core by default (pass
``engine="legacy"`` or use :class:`Simulator` for the original
dict-based token game).  :class:`CompiledSimulator` and
:func:`simulate_many` expose the compiled engine directly for
scenario fan-out: one compilation, many cheap runs over marking tuples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .compiled import (
    ENGINE_COMPILED,
    ENGINE_FRONTIER,
    ENGINE_LEGACY,
    SEARCH_ENGINES,
    CompiledNet,
    MarkingTuple,
    compile_net,
    validate_engine,
)
from .frontier import named_firing_order
from .exceptions import NotEnabledError
from .marking import Marking
from .net import PetriNet

#: A choice policy picks one of the enabled transitions (by name).  The
#: first argument is the net being simulated — a :class:`PetriNet` under
#: :class:`Simulator` and a :class:`CompiledNet` under
#: :class:`CompiledSimulator` (where the second argument is the compiled
#: marking tuple rather than a :class:`Marking`).  The bundled policies
#: only look at the enabled list, so they work under either engine.
ChoicePolicy = Callable[..., str]

NetLike = Union[PetriNet, CompiledNet]


@dataclass
class SimulationTrace:
    """Record of a simulation run.

    Attributes
    ----------
    fired:
        The sequence of transitions fired, in order.
    markings:
        The marking after each firing; ``markings[0]`` is the initial
        marking, so ``len(markings) == len(fired) + 1``.
    deadlocked:
        True if the run stopped because no transition was enabled.
    """

    fired: List[str] = field(default_factory=list)
    markings: List[Marking] = field(default_factory=list)
    deadlocked: bool = False

    @property
    def final_marking(self) -> Marking:
        return self.markings[-1]

    def max_tokens(self) -> Dict[str, int]:
        """Maximum number of tokens observed in each place across the run."""
        peak: Dict[str, int] = {}
        for marking in self.markings:
            for place, count in marking.tokens.items():
                if count > peak.get(place, 0):
                    peak[place] = count
        return peak

    def firing_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for transition in self.fired:
            counts[transition] = counts.get(transition, 0) + 1
        return counts


def fire_sequence(
    net: NetLike, sequence: Sequence[str], marking: Optional[Marking] = None
) -> Marking:
    """Fire ``sequence`` from ``marking`` (default: the initial marking)
    and return the resulting marking.

    Accepts either a :class:`PetriNet` or a :class:`CompiledNet`; the
    result is always a named :class:`Marking`.

    Raises :class:`~repro.petrinet.exceptions.NotEnabledError` if any
    transition in the sequence is not enabled when its turn comes.
    """
    if isinstance(net, CompiledNet):
        current = (
            net.marking_to_tuple(marking) if marking is not None else net.initial
        )
        for transition in sequence:
            current = net.fire_by_name(transition, current)
        return net.marking_from_tuple(current)
    state = marking if marking is not None else net.initial_marking
    for transition in sequence:
        state = net.fire(transition, state)
    return state


def is_fireable(
    net: NetLike, sequence: Sequence[str], marking: Optional[Marking] = None
) -> bool:
    """True if ``sequence`` can be fired from ``marking`` without blocking."""
    try:
        fire_sequence(net, sequence, marking)
    except NotEnabledError:
        return False
    return True


def is_finite_complete_cycle(
    net: NetLike, sequence: Sequence[str], marking: Optional[Marking] = None
) -> bool:
    """True if ``sequence`` is fireable and returns the net to ``marking``.

    This is the defining property of a finite complete cycle (Section 2):
    the period of a static or quasi-static schedule.
    """
    if marking is None:
        marking = net.initial_marking
    try:
        end = fire_sequence(net, sequence, marking)
    except NotEnabledError:
        return False
    return end == marking


def search_firing_order(start, remaining, is_enabled, fire) -> Optional[list]:
    """Explicit-stack DFS over remaining-count states shared by every engine.

    ``start`` is a hashable marking (a :class:`Marking` or a compiled
    tuple), ``remaining`` a ``{transition: count}`` dict with positive
    counts, and ``is_enabled(t, m)`` / ``fire(t, m)`` the token-game
    primitives of the calling engine.  Candidates are tried in
    ``remaining`` insertion order and failed ``(marking, counts)``
    states are memoized, exactly like the recursive search this
    replaces — but the stack is explicit, so a cycle with more firings
    than ``sys.getrecursionlimit()`` (e.g. a multirate net with large
    rates scaled by ``MAX_CYCLE_SCALE``) no longer raises
    ``RecursionError``: the depth of the search equals the total firing
    count, not a bounded constant.

    Returns the firing sequence (in the caller's transition domain), or
    ``None`` when no executable ordering of the counts exists.
    """
    if not remaining:
        return []
    failed: set = set()
    sequence: list = []
    # frame layout: [marking, counts, candidates, next_candidate_index, key]
    frames: List[list] = [
        [start, remaining, list(remaining), 0, (start, tuple(sorted(remaining.items())))]
    ]
    while frames:
        frame = frames[-1]
        marking, counts, candidates = frame[0], frame[1], frame[2]
        if frame[3] == 0 and frame[4] in failed:
            # entering a state already known to be a dead end: backtrack
            frames.pop()
            if sequence:
                sequence.pop()
            continue
        advanced = False
        while frame[3] < len(candidates):
            transition = candidates[frame[3]]
            frame[3] += 1
            if not is_enabled(transition, marking):
                continue
            next_marking = fire(transition, marking)
            next_counts = dict(counts)
            next_counts[transition] -= 1
            if next_counts[transition] == 0:
                del next_counts[transition]
            sequence.append(transition)
            if not next_counts:
                return sequence
            frames.append(
                [
                    next_marking,
                    next_counts,
                    list(next_counts),
                    0,
                    (next_marking, tuple(sorted(next_counts.items()))),
                ]
            )
            advanced = True
            break
        if advanced:
            continue
        failed.add(frame[4])
        frames.pop()
        if sequence:
            sequence.pop()
    return None


def find_firing_sequence(
    net: NetLike,
    firing_counts: Mapping[str, int],
    marking: Optional[Marking] = None,
    engine: str = ENGINE_COMPILED,
) -> Optional[List[str]]:
    """Find an executable ordering of the given firing counts.

    Given a firing-count vector (e.g. a T-invariant), search for a
    sequence that fires each transition exactly ``firing_counts[t]``
    times starting from ``marking`` without ever blocking.  Returns the
    sequence, or ``None`` if no such ordering exists (the net would
    deadlock for these counts, so the counts do not correspond to a
    finite complete cycle).

    The search is a depth-first search over remaining-count states with
    memoization of failed states (:func:`search_firing_order`, an
    explicit-stack DFS so long cycles cannot overflow the interpreter
    recursion limit); for conflict-free nets (the only nets this is
    applied to by the QSS algorithm) a greedy strategy succeeds without
    backtracking in the common case, so the worst-case exponential
    behaviour is not observed in practice.

    By default the search runs on the net's compiled view (marking
    tuples and integer transition ids); candidates are tried in the
    order of ``firing_counts``, so both engines return the same
    sequence.  Passing a :class:`CompiledNet` skips the compilation.

    ``engine="frontier"`` searches with the level-synchronous batched
    BFS of :func:`repro.petrinet.frontier.frontier_firing_order`
    instead of the sequential DFS.  It finds an ordering exactly when
    the DFS does (both searches are complete), so feasibility verdicts
    agree across all engines; the *sequence* returned may be a
    different — equally valid — interleaving of the same counts.  When
    the BFS exhausts its state budget the search falls back to the DFS,
    so the verdict is always exact.
    """
    validate_engine(engine, SEARCH_ENGINES)
    if isinstance(net, CompiledNet):
        if engine == ENGINE_LEGACY:
            raise ValueError(
                "engine='legacy' needs a PetriNet; pass net.decompile() to "
                "run the dict-based search on a compiled net"
            )
        if engine == ENGINE_FRONTIER:
            return _find_firing_sequence_frontier(net, firing_counts, marking)
        return _find_firing_sequence_compiled(net, firing_counts, marking)
    if engine == ENGINE_FRONTIER:
        return _find_firing_sequence_frontier(net.compile(), firing_counts, marking)
    if engine == ENGINE_COMPILED:
        return _find_firing_sequence_compiled(net.compile(), firing_counts, marking)

    start = marking if marking is not None else net.initial_marking
    remaining = {t: int(c) for t, c in firing_counts.items() if c > 0}
    return search_firing_order(start, remaining, net.is_enabled, net.fire)


def _find_firing_sequence_compiled(
    compiled: CompiledNet,
    firing_counts: Mapping[str, int],
    marking: Optional[Marking],
) -> Optional[List[str]]:
    """Compiled-core DFS mirroring the legacy search exactly.

    Candidate transitions are tried in ``firing_counts`` order (as in
    the legacy engine), so both engines find the same sequence.
    """
    start = (
        compiled.marking_to_tuple(marking)
        if marking is not None
        else compiled.initial
    )
    remaining: Dict[int, int] = {}
    for name, count in firing_counts.items():
        if count > 0:
            remaining[compiled.transition_id(name)] = int(count)
    sequence = search_firing_order(
        start, remaining, compiled.is_enabled, compiled.fire_unchecked
    )
    if sequence is None:
        return None
    names = compiled.transitions
    return [names[t] for t in sequence]


def _find_firing_sequence_frontier(
    compiled: CompiledNet,
    firing_counts: Mapping[str, int],
    marking: Optional[Marking],
) -> Optional[List[str]]:
    """Batched BFS over ``(marking, remaining counts)`` states.

    Selects the preset/incidence rows of the counted transitions (in
    ``firing_counts`` order) and runs the frontier search on that
    submatrix; an exhausted state budget falls back to the compiled
    DFS, which decides exactly.
    """
    start = (
        compiled.marking_to_tuple(marking)
        if marking is not None
        else compiled.initial
    )
    names = [name for name, count in firing_counts.items() if count > 0]
    if not names:
        return []
    t_ids = np.array([compiled.transition_id(n) for n in names], dtype=np.int64)
    sequence, decided = named_firing_order(
        compiled.pre[t_ids], compiled.incidence[t_ids], start, names, firing_counts
    )
    if not decided:
        return _find_firing_sequence_compiled(compiled, firing_counts, marking)
    return sequence


def find_finite_complete_cycle(
    net: NetLike,
    firing_counts: Mapping[str, int],
    marking: Optional[Marking] = None,
    engine: str = ENGINE_COMPILED,
) -> Optional[List[str]]:
    """Find a finite complete cycle realizing ``firing_counts``.

    This combines :func:`find_firing_sequence` with the check that the
    final marking equals the starting one (it always does when the counts
    satisfy the state equation, but the check guards against callers
    passing non-stationary vectors).
    """
    if marking is None:
        marking = net.initial_marking
    sequence = find_firing_sequence(net, firing_counts, marking, engine=engine)
    if sequence is None:
        return None
    if fire_sequence(net, sequence, marking) != marking:
        return None
    return sequence


# ----------------------------------------------------------------------
# Free simulation under a choice policy
# ----------------------------------------------------------------------
def policy_first_enabled(net: PetriNet, marking: Marking, enabled: List[str]) -> str:
    """Deterministic policy: fire the first enabled transition in net order."""
    return enabled[0]


def make_random_policy(seed: int = 0) -> ChoicePolicy:
    """Return a reproducible uniformly-random choice policy."""
    rng = random.Random(seed)

    def policy(net: PetriNet, marking: Marking, enabled: List[str]) -> str:
        return rng.choice(enabled)

    return policy


def make_adversarial_policy(preferred: Sequence[str]) -> ChoicePolicy:
    """Return a policy that always picks a preferred transition when it can.

    This models the scheduling "adversary" of Section 3 who resolves
    conflicts so as to accumulate tokens; tests use it to demonstrate the
    unbounded behaviour of non-schedulable nets such as Figure 3b.
    """
    preference = list(preferred)

    def policy(net: PetriNet, marking: Marking, enabled: List[str]) -> str:
        for transition in preference:
            if transition in enabled:
                return transition
        return enabled[0]

    return policy


class Simulator:
    """Step-by-step token game simulator with a pluggable choice policy."""

    def __init__(
        self,
        net: PetriNet,
        marking: Optional[Marking] = None,
        policy: ChoicePolicy = policy_first_enabled,
    ) -> None:
        self.net = net
        self.marking = marking if marking is not None else net.initial_marking
        self.policy = policy
        self.trace = SimulationTrace(markings=[self.marking])

    def enabled(self) -> List[str]:
        """Transitions enabled in the current marking."""
        return self.net.enabled_transitions(self.marking)

    def step(self) -> Optional[str]:
        """Fire one transition chosen by the policy.

        Returns the fired transition name, or ``None`` if the net is
        deadlocked (no transition enabled).
        """
        enabled = self.enabled()
        if not enabled:
            self.trace.deadlocked = True
            return None
        transition = self.policy(self.net, self.marking, enabled)
        self.marking = self.net.fire(transition, self.marking)
        self.trace.fired.append(transition)
        self.trace.markings.append(self.marking)
        return transition

    def run(self, max_steps: int) -> SimulationTrace:
        """Fire up to ``max_steps`` transitions (stopping early on deadlock)."""
        for _ in range(max_steps):
            if self.step() is None:
                break
        return self.trace


class CompiledSimulator:
    """Token-game simulator running on the compiled integer-indexed core.

    Mirrors :class:`Simulator` — same trace format, same policy protocol
    (the bundled policies work unchanged) — but keeps the marking as an
    integer tuple and fires through the compiled delta tables, which is
    what makes large scenario fan-outs affordable.

    Parameters
    ----------
    net:
        A :class:`PetriNet` (compiled on the fly) or a pre-compiled
        :class:`CompiledNet` (shared across simulators for fan-out).
    record_markings:
        When True (default) the trace records the marking after every
        firing, exactly like :class:`Simulator`.  When False only the
        initial and current/final markings are kept, so long runs do not
        accumulate memory; ``len(trace.markings)`` is then at most 2.
    """

    def __init__(
        self,
        net: NetLike,
        marking: Optional[Marking] = None,
        policy: ChoicePolicy = policy_first_enabled,
        record_markings: bool = True,
    ) -> None:
        self.compiled = compile_net(net)
        self._marking: MarkingTuple = (
            self.compiled.marking_to_tuple(marking)
            if marking is not None
            else self.compiled.initial
        )
        self.policy = policy
        self.record_markings = record_markings
        self.trace = SimulationTrace(
            markings=[self.compiled.marking_from_tuple(self._marking)]
        )

    @property
    def marking(self) -> Marking:
        """The current marking, decompiled to a named :class:`Marking`."""
        return self.compiled.marking_from_tuple(self._marking)

    @property
    def marking_tuple(self) -> MarkingTuple:
        """The current marking in compiled (tuple) form."""
        return self._marking

    def enabled(self) -> List[str]:
        """Names of the transitions enabled in the current marking."""
        names = self.compiled.transitions
        return [
            names[t] for t in self.compiled.enabled_transitions(self._marking)
        ]

    def step(self) -> Optional[str]:
        """Fire one transition chosen by the policy.

        Returns the fired transition name, or ``None`` if the net is
        deadlocked (no transition enabled).
        """
        compiled = self.compiled
        enabled_ids = compiled.enabled_transitions(self._marking)
        if not enabled_ids:
            self.trace.deadlocked = True
            return None
        names = compiled.transitions
        enabled = [names[t] for t in enabled_ids]
        transition = self.policy(compiled, self._marking, enabled)
        self._marking = compiled.fire_unchecked(
            enabled_ids[enabled.index(transition)], self._marking
        )
        self.trace.fired.append(transition)
        if self.record_markings:
            self.trace.markings.append(compiled.marking_from_tuple(self._marking))
        return transition

    def run(self, max_steps: int) -> SimulationTrace:
        """Fire up to ``max_steps`` transitions (stopping early on deadlock).

        With ``record_markings=False`` the trace's ``markings`` hold just
        the initial and the final marking after the run.
        """
        for _ in range(max_steps):
            if self.step() is None:
                break
        if not self.record_markings:
            final = self.compiled.marking_from_tuple(self._marking)
            if len(self.trace.markings) > 1:
                self.trace.markings[-1] = final
            else:
                self.trace.markings.append(final)
        return self.trace


def simulate_many(
    net: NetLike,
    runs: int,
    max_steps: int,
    policy: Optional[ChoicePolicy] = None,
    seed: Optional[int] = None,
    marking: Optional[Marking] = None,
    record_markings: bool = False,
) -> List[SimulationTrace]:
    """Batched multi-run simulation for scenario fan-out.

    Compiles ``net`` once and runs ``runs`` independent simulations of up
    to ``max_steps`` firings each on the shared compiled core.

    Parameters
    ----------
    policy / seed:
        When ``seed`` is given, run ``i`` uses a fresh random policy
        seeded ``seed + i`` (reproducible, decorrelated scenarios) and
        ``policy`` must be None.  Otherwise every run uses ``policy``
        (default: :func:`policy_first_enabled`).
    record_markings:
        Passed to :class:`CompiledSimulator`; off by default because
        fan-out workloads typically only need firing counts and final
        markings.
    """
    if runs < 0:
        raise ValueError("runs must be non-negative")
    if seed is not None and policy is not None:
        raise ValueError("pass either a policy or a seed, not both")
    compiled = compile_net(net)
    traces: List[SimulationTrace] = []
    for run in range(runs):
        run_policy: ChoicePolicy
        if seed is not None:
            run_policy = make_random_policy(seed + run)
        else:
            run_policy = policy or policy_first_enabled
        simulator = CompiledSimulator(
            compiled,
            marking=marking,
            policy=run_policy,
            record_markings=record_markings,
        )
        traces.append(simulator.run(max_steps))
    return traces
