"""Strict schema validation for ``repro-qss.corpus/3`` documents.

The corpus JSON summary (:mod:`repro.petrinet.corpus`) is the artifact
other tooling consumes — CI trend jobs, the golden-corpus tests, ad-hoc
notebooks — so a silently malformed document is worse than a loud one.
This module is the single authority on what a well-formed document looks
like: exact top-level keys, the exact per-record field set of
:data:`~repro.petrinet.corpus.RECORD_FIELDS`, and per-field types that
match the module docstring of :mod:`repro.petrinet.corpus` (including
the nullable columns).  No third-party JSON-schema engine is involved;
the checks are hand-rolled so the error messages can carry the precise
path and expectation::

    records[3].bounded: expected bool or null, got 'yes' (str)

Validation is *strict*: unknown keys are rejected at both the document
and the record level, because an unexpected key is how schema drift
first shows up.

:func:`canonicalize_corpus_document` produces the deterministic form of
a document used by the committed golden corpora under ``tests/golden/``:
wall-clock measurements are zeroed, the worker count is pinned and the
``summary`` block is recomputed from the canonical records, so two runs
of the same corpus on different machines canonicalize to byte-identical
JSON.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Tuple

from .corpus import CORPUS_ANALYSES, CORPUS_SCHEMA, RECORD_FIELDS
from .compiled import SEARCH_ENGINES


class CorpusSchemaError(ValueError):
    """A corpus document violated the ``repro-qss.corpus/3`` schema.

    ``path`` locates the offending value (e.g. ``records[3].bounded``)
    and is always the prefix of ``str(error)``.
    """

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}")


def _type_name(value: Any) -> str:
    if value is None:
        return "null"
    return type(value).__name__


def _fail(path: str, expected: str, value: Any) -> None:
    raise CorpusSchemaError(
        path, f"expected {expected}, got {value!r} ({_type_name(value)})"
    )


# A checker takes (value, path) and raises CorpusSchemaError on mismatch.
Checker = Callable[[Any, str], None]


def _is_int(value: Any) -> bool:
    # bool is a subclass of int; an int column holding True is a bug
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value: Any) -> bool:
    return _is_int(value) or isinstance(value, float)


def _str(value: Any, path: str) -> None:
    if not isinstance(value, str):
        _fail(path, "str", value)


def _int(value: Any, path: str) -> None:
    if not _is_int(value):
        _fail(path, "int", value)


def _bool(value: Any, path: str) -> None:
    if not isinstance(value, bool):
        _fail(path, "bool", value)


def _number(value: Any, path: str) -> None:
    if not _is_number(value):
        _fail(path, "number", value)


def _nullable(checker: Checker, expected: str) -> Checker:
    def check(value: Any, path: str) -> None:
        if value is None:
            return
        try:
            checker(value, path)
        except CorpusSchemaError:
            _fail(path, f"{expected} or null", value)

    return check


def _str_list(value: Any, path: str) -> None:
    if not isinstance(value, list):
        _fail(path, "list of str", value)
    for i, item in enumerate(value):
        if not isinstance(item, str):
            _fail(f"{path}[{i}]", "str", item)


def _int_list(value: Any, path: str) -> None:
    if not isinstance(value, list):
        _fail(path, "list of int", value)
    for i, item in enumerate(value):
        if not _is_int(item):
            _fail(f"{path}[{i}]", "int", item)


def _params(value: Any, path: str) -> None:
    if not isinstance(value, dict):
        _fail(path, "object of generator parameters", value)
    for key, item in value.items():
        if not isinstance(key, str):
            _fail(path, "object with str keys", key)
        if not (
            isinstance(item, (bool, str)) or _is_int(item)
        ):
            _fail(f"{path}.{key}", "int, bool or str", item)


#: checker and human-readable expectation per record field, in
#: :data:`RECORD_FIELDS` order.
_RECORD_CHECKERS: Dict[str, Checker] = {
    "family": _str,
    "seed": _int,
    "params": _params,
    "net_name": _str,
    "places": _int,
    "transitions": _int,
    "arcs": _int,
    "net_class": _str,
    "free_choice": _nullable(_bool, "bool"),
    "bounded": _nullable(_bool, "bool"),
    "unbounded_places": _str_list,
    "max_place_bound": _nullable(_int, "int"),
    "coverability_nodes": _int,
    "coverability_complete": _bool,
    "reachable_markings": _nullable(_int, "int"),
    "exploration_complete": _bool,
    "deadlocks": _nullable(_int, "int"),
    "deadlock_free": _nullable(_bool, "bool"),
    "live": _nullable(_bool, "bool"),
    "schedulable": _nullable(_bool, "bool"),
    "allocations": _nullable(_int, "int"),
    "reductions": _nullable(_int, "int"),
    "cycle_lengths": _nullable(_int_list, "list of int"),
    "fleet_instances": _nullable(_int, "int"),
    "fleet_events": _nullable(_int, "int"),
    "fleet_cycles_total": _nullable(_int, "int"),
    "fleet_cycles_p50": _nullable(_number, "number"),
    "fleet_cycles_p95": _nullable(_number, "number"),
    "fleet_budget_stops": _nullable(_int, "int"),
    "fleet_throughput_eps": _nullable(_number, "number"),
    "error": _nullable(_str, "str"),
    "elapsed_ms": _number,
}

assert set(_RECORD_CHECKERS) == set(RECORD_FIELDS), (
    "corpus_schema is out of sync with RECORD_FIELDS"
)

#: The exact top-level key set of a corpus document.
DOCUMENT_FIELDS: Tuple[str, ...] = (
    "schema",
    "n",
    "workers",
    "engine",
    "analyse",
    "elapsed_seconds",
    "records",
    "summary",
)


def validate_corpus_record(record: Any, path: str = "record") -> None:
    """Validate one record object; raise :class:`CorpusSchemaError`.

    The field set must match :data:`RECORD_FIELDS` exactly — missing
    fields and unknown keys are both rejected — and every value must
    satisfy its documented type (nullable columns accept ``None``).
    """
    if not isinstance(record, dict):
        _fail(path, "record object", record)
    missing = [name for name in RECORD_FIELDS if name not in record]
    if missing:
        raise CorpusSchemaError(
            path, f"missing field(s): {', '.join(missing)}"
        )
    unknown = sorted(set(record) - set(RECORD_FIELDS))
    if unknown:
        raise CorpusSchemaError(
            path,
            f"unknown field(s): {', '.join(unknown)} "
            "(the record schema is closed; see RECORD_FIELDS)",
        )
    for name in RECORD_FIELDS:
        _RECORD_CHECKERS[name](record[name], f"{path}.{name}")
    if record["places"] < 0 or record["transitions"] < 0 or record["arcs"] < 0:
        raise CorpusSchemaError(path, "net size fields must be non-negative")
    if record["elapsed_ms"] < 0:
        raise CorpusSchemaError(
            f"{path}.elapsed_ms", "must be non-negative"
        )


def validate_corpus_document(doc: Any) -> Mapping[str, Any]:
    """Validate a full corpus JSON document, returning it unchanged.

    Checks the schema tag, the exact top-level key set, every record via
    :func:`validate_corpus_record` and the cross-field invariant
    ``n == len(records)``.  Raises :class:`CorpusSchemaError` with the
    offending path on the first violation.
    """
    if not isinstance(doc, dict):
        _fail("document", "corpus document object", doc)
    if "schema" not in doc:
        raise CorpusSchemaError("document", "missing field(s): schema")
    if doc["schema"] != CORPUS_SCHEMA:
        raise CorpusSchemaError(
            "schema",
            f"expected {CORPUS_SCHEMA!r}, got {doc['schema']!r} "
            "(other schema versions are not supported by this validator)",
        )
    missing = [name for name in DOCUMENT_FIELDS if name not in doc]
    if missing:
        raise CorpusSchemaError(
            "document", f"missing field(s): {', '.join(missing)}"
        )
    unknown = sorted(set(doc) - set(DOCUMENT_FIELDS))
    if unknown:
        raise CorpusSchemaError(
            "document",
            f"unknown field(s): {', '.join(unknown)} "
            "(the document schema is closed; see DOCUMENT_FIELDS)",
        )
    if not _is_int(doc["n"]) or doc["n"] < 0:
        _fail("n", "non-negative int", doc["n"])
    if not _is_int(doc["workers"]) or doc["workers"] < 1:
        _fail("workers", "positive int", doc["workers"])
    if doc["engine"] not in SEARCH_ENGINES:
        _fail("engine", f"one of {', '.join(SEARCH_ENGINES)}", doc["engine"])
    if doc["analyse"] not in CORPUS_ANALYSES:
        _fail(
            "analyse", f"one of {', '.join(CORPUS_ANALYSES)}", doc["analyse"]
        )
    if not _is_number(doc["elapsed_seconds"]) or doc["elapsed_seconds"] < 0:
        _fail("elapsed_seconds", "non-negative number", doc["elapsed_seconds"])
    if not isinstance(doc["records"], list):
        _fail("records", "list of record objects", doc["records"])
    for i, record in enumerate(doc["records"]):
        validate_corpus_record(record, path=f"records[{i}]")
    if doc["n"] != len(doc["records"]):
        raise CorpusSchemaError(
            "n",
            f"expected len(records) == {len(doc['records'])}, got {doc['n']}",
        )
    if not isinstance(doc["summary"], dict):
        _fail("summary", "summary object", doc["summary"])
    total = doc["summary"].get("total")
    if total is not None and total != doc["n"]:
        raise CorpusSchemaError(
            "summary.total", f"expected n == {doc['n']}, got {total}"
        )
    return doc


def validate_corpus_file(path: str) -> Mapping[str, Any]:
    """Load ``path`` as JSON and validate it as a corpus document."""
    import json

    with open(path, "r", encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as error:
            raise CorpusSchemaError("document", f"not valid JSON: {error}")
    return validate_corpus_document(doc)


def canonicalize_corpus_document(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """The deterministic form of a corpus document, for golden comparison.

    Wall-clock measurements are machine noise and are zeroed
    (``elapsed_seconds``, per-record ``elapsed_ms``,
    ``fleet_throughput_eps`` — kept as ``0.0`` when the runtime sweep
    ran, so swept and unswept records stay distinguishable), and
    ``workers`` is pinned to 1 (the pool size does not change any
    verdict).  The ``summary`` block is recomputed from the canonical
    records so its timing aggregates are deterministic too.  Everything
    else — every verdict, count and parameter — is preserved verbatim,
    which is exactly what makes the committed goldens meaningful.
    """
    from ..analysis.corpus_stats import summarize_corpus

    validate_corpus_document(doc)
    records = []
    for record in doc["records"]:
        canonical = dict(record)
        canonical["elapsed_ms"] = 0.0
        if canonical["fleet_throughput_eps"] is not None:
            canonical["fleet_throughput_eps"] = 0.0
        records.append(canonical)
    return {
        "schema": doc["schema"],
        "n": doc["n"],
        "workers": 1,
        "engine": doc["engine"],
        "analyse": doc["analyse"],
        "elapsed_seconds": 0.0,
        "records": records,
        "summary": summarize_corpus(records),
    }
