"""Fluent builder for Petri nets.

Model construction code (the figure gallery, the ATM server, tests)
reads better with a small fluent layer on top of :class:`PetriNet`:

>>> net = (NetBuilder("figure3a")
...        .source("t1")
...        .place("p1")
...        .arc("t1", "p1")
...        .choice("p1", ["t2", "t3"])
...        .build())

The builder creates nodes on demand: referencing an unknown name in
``arc``/``chain`` creates it, inferring the kind (place or transition)
from the naming convention ``p*`` / ``t*`` unless declared explicitly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .exceptions import PetriNetError
from .net import PetriNet


class NetBuilder:
    """Incrementally construct a :class:`PetriNet`."""

    def __init__(self, name: str = "net") -> None:
        self._net = PetriNet(name=name)

    # -- node declaration ------------------------------------------------
    def place(
        self,
        name: str,
        tokens: int = 0,
        capacity: Optional[int] = None,
        label: Optional[str] = None,
    ) -> "NetBuilder":
        """Declare a place (idempotent when the tokens/capacity match)."""
        if not self._net.has_place(name):
            self._net.add_place(name, tokens=tokens, capacity=capacity, label=label)
        elif tokens:
            self._net.set_initial_tokens(name, tokens)
        return self

    def transition(
        self,
        name: str,
        label: Optional[str] = None,
        cost: int = 1,
    ) -> "NetBuilder":
        """Declare a transition (idempotent)."""
        if not self._net.has_transition(name):
            self._net.add_transition(name, label=label, cost=cost)
        return self

    def source(self, name: str, label: Optional[str] = None, cost: int = 1) -> "NetBuilder":
        """Declare a source transition (environment input)."""
        if not self._net.has_transition(name):
            self._net.add_transition(
                name, label=label, cost=cost, is_source_hint=True
            )
        return self

    def sink(self, name: str, label: Optional[str] = None, cost: int = 1) -> "NetBuilder":
        """Declare a sink transition (environment output)."""
        if not self._net.has_transition(name):
            self._net.add_transition(name, label=label, cost=cost, is_sink_hint=True)
        return self

    def tokens(self, place: str, count: int) -> "NetBuilder":
        """Set the initial token count of an existing place."""
        self._net.set_initial_tokens(place, count)
        return self

    # -- arc declaration ---------------------------------------------------
    def arc(self, source: str, target: str, weight: int = 1) -> "NetBuilder":
        """Add a weighted arc, creating missing endpoints by name convention.

        Names starting with ``p`` are created as places, anything else as
        a transition.  Mixed models should declare nodes explicitly first.
        """
        self._ensure_node(source, prefer_place=source.startswith("p"))
        self._ensure_node(target, prefer_place=target.startswith("p"))
        self._net.add_arc(source, target, weight)
        return self

    def chain(self, *nodes: Union[str, Tuple[str, int]]) -> "NetBuilder":
        """Add a linear chain of arcs.

        Each element is a node name or ``(name, weight)`` where the weight
        applies to the arc *into* that node:

        >>> builder.chain("t1", "p1", ("t2", 2))   # t1 -> p1 -> t2 with weight 2 on p1->t2
        """
        previous: Optional[str] = None
        for node in nodes:
            if isinstance(node, tuple):
                name, weight = node
            else:
                name, weight = node, 1
            if previous is not None:
                self.arc(previous, name, weight)
            else:
                self._ensure_node(name, prefer_place=name.startswith("p"))
            previous = name
        return self

    def choice(self, place: str, transitions: Sequence[str]) -> "NetBuilder":
        """Connect a choice place to each of its alternative successors."""
        self._ensure_node(place, prefer_place=True)
        for transition in transitions:
            self._ensure_node(transition, prefer_place=False)
            self._net.add_arc(place, transition)
        return self

    def merge(self, transitions: Sequence[str], place: str) -> "NetBuilder":
        """Connect several producer transitions into one merge place."""
        self._ensure_node(place, prefer_place=True)
        for transition in transitions:
            self._ensure_node(transition, prefer_place=False)
            self._net.add_arc(transition, place)
        return self

    def _ensure_node(self, name: str, prefer_place: bool) -> None:
        if self._net.has_node(name):
            return
        if prefer_place:
            self._net.add_place(name)
        else:
            self._net.add_transition(name)

    # -- finalization ------------------------------------------------------
    def build(self) -> PetriNet:
        """Return the constructed net."""
        return self._net

    @property
    def net(self) -> PetriNet:
        return self._net
