"""Exception hierarchy for the Petri net substrate.

All errors raised by :mod:`repro.petrinet` derive from
:class:`PetriNetError` so callers can catch substrate-level failures with a
single ``except`` clause while still distinguishing the specific condition
when needed.
"""

from __future__ import annotations


class PetriNetError(Exception):
    """Base class for all Petri net related errors."""


class DuplicateNodeError(PetriNetError):
    """A place or transition with the same name already exists in the net."""


class UnknownNodeError(PetriNetError):
    """A referenced place or transition does not exist in the net."""


class InvalidArcError(PetriNetError):
    """An arc was declared between two nodes of the same kind or with a
    non-positive weight."""


class NotEnabledError(PetriNetError):
    """A transition was fired from a marking in which it is not enabled."""


class InvalidMarkingError(PetriNetError):
    """A marking assigns a negative token count or references unknown places."""


class NotFreeChoiceError(PetriNetError):
    """An operation that requires a Free-Choice net was applied to a net
    that is not free-choice."""


class NotConflictFreeError(PetriNetError):
    """An operation that requires a Conflict-Free net was applied to a net
    containing conflicts."""


class InconsistentNetError(PetriNetError):
    """The net admits no positive T-invariant (the state equation
    ``f^T . D = 0`` has no positive solution)."""


class NotSchedulableError(PetriNetError):
    """The net (or one of its T-reductions) is not quasi-statically
    schedulable."""


class SerializationError(PetriNetError):
    """A net description could not be parsed or emitted."""
