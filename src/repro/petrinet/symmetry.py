"""Structural symmetry reduction for state-space exploration.

Net families built from interchangeable instances — the parallel
branches of :func:`~repro.petrinet.generators.fork_join_pipeline`, the
identical alternatives of a choice fan, replicated stations of a
producer/consumer ring — have reachability graphs whose states come in
orbits: permuting the instances of a marking yields another reachable
marking with the same future.  Exploring one *canonical representative*
per orbit shrinks the explored space by up to ``k!`` for ``k``
interchangeable instances, which is exactly the lever the out-of-core
engine (:mod:`repro.petrinet.outofcore`) wants: the explored space
shrinks before the stored space does.

The reduction is the classical *scalarset* symmetry of explicit-state
model checkers (Murφ, SPIN), expressed structurally:

* a :class:`SymmetryGroup` is a set of ``k`` interchangeable
  *blocks* — parallel tuples of place ids and transition ids — such
  that swapping any two blocks (places and transitions together) maps
  the net onto itself (same ``pre``/``post`` matrices, same costs);
* :func:`validate_group` proves that property by checking every
  adjacent block transposition against the compiled matrices (adjacent
  transpositions generate the full symmetric group on the blocks);
* :func:`canonicalize` maps a marking matrix to canonical form by
  sorting each group's block sub-vectors lexicographically — any
  deterministic, permutation-invariant order works, and a sort is one
  vectorized pass over a whole frontier;
* :func:`detect_symmetries` finds candidate groups automatically by
  color refinement (1-dimensional Weisfeiler–Lehman on the bipartite
  place/transition graph, arc weights as edge labels) followed by an
  alignment pass that threads same-color nodes into consistent blocks.
  Every detected group is validated before it is returned, so
  detection can be incomplete but never unsound.

Soundness: each group's block swaps are validated net automorphisms,
so for any marking ``m`` the canonical form ``canon(m)`` is in the
orbit of ``m`` and ``m → m'`` implies ``canon(m) → σ(m')`` for the
permutation σ that canonicalized ``m``.  By induction the canonical
exploration visits at least one representative of every reachable
orbit: deadlock-freedom, boundedness and orbit-wise reachability are
preserved.  What is *not* preserved: per-transition distinctions
(liveness of ``t_0`` vs its sibling ``t_1``) and the node numbering of
the full graph — a canonical graph is a quotient, never bit-identical
to the unreduced one.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .compiled import CompiledNet

__all__ = [
    "SymmetryGroup",
    "canonicalize",
    "detect_symmetries",
    "group_from_names",
    "orbit_place_bounds",
    "resolve_symmetry",
    "validate_group",
]


@dataclass(frozen=True)
class SymmetryGroup:
    """``k`` interchangeable blocks of place ids and transition ids.

    ``place_blocks[i][j]`` is the place of block ``i`` in position
    ``j``; swapping blocks ``i`` and ``i'`` exchanges position ``j`` of
    both for every ``j`` (and likewise for ``transition_blocks``).  All
    blocks of one kind have equal width; one of the two kinds may be
    empty (e.g. identical parallel transitions between the same
    places).  Construct via :func:`detect_symmetries` or
    :func:`group_from_names` — both validate the automorphism property.
    """

    place_blocks: Tuple[Tuple[int, ...], ...]
    transition_blocks: Tuple[Tuple[int, ...], ...]

    @property
    def k(self) -> int:
        """Number of interchangeable blocks."""
        return len(self.place_blocks) or len(self.transition_blocks)

    def __post_init__(self) -> None:
        widths_p = {len(b) for b in self.place_blocks}
        widths_t = {len(b) for b in self.transition_blocks}
        if len(widths_p) > 1 or len(widths_t) > 1:
            raise ValueError("all blocks of one kind must have equal width")
        if (
            self.place_blocks
            and self.transition_blocks
            and len(self.place_blocks) != len(self.transition_blocks)
        ):
            raise ValueError(
                "place and transition blocks must come in the same count"
            )
        if self.k < 2:
            raise ValueError("a symmetry group needs at least two blocks")


def validate_group(compiled: CompiledNet, group: SymmetryGroup) -> None:
    """Prove ``group`` is a net symmetry; raise ``ValueError`` otherwise.

    Checks every adjacent block transposition: permuting places and
    transitions blockwise must leave ``pre``, ``post`` and the
    transition costs invariant.  Adjacent transpositions generate the
    full symmetric group on the blocks, so passing here means *every*
    block permutation is an automorphism.
    """
    n_places = len(compiled.places)
    n_transitions = len(compiled.transitions)
    flat_p = [p for block in group.place_blocks for p in block]
    flat_t = [t for block in group.transition_blocks for t in block]
    if len(set(flat_p)) != len(flat_p) or len(set(flat_t)) != len(flat_t):
        raise ValueError("symmetry blocks overlap")
    if flat_p and not all(0 <= p < n_places for p in flat_p):
        raise ValueError("place id out of range in symmetry group")
    if flat_t and not all(0 <= t < n_transitions for t in flat_t):
        raise ValueError("transition id out of range in symmetry group")
    costs = np.asarray(compiled.costs, dtype=np.int64)
    for i in range(group.k - 1):
        pperm = np.arange(n_places)
        tperm = np.arange(n_transitions)
        if group.place_blocks:
            a = np.asarray(group.place_blocks[i], dtype=np.int64)
            b = np.asarray(group.place_blocks[i + 1], dtype=np.int64)
            pperm[a], pperm[b] = b, a
        if group.transition_blocks:
            a = np.asarray(group.transition_blocks[i], dtype=np.int64)
            b = np.asarray(group.transition_blocks[i + 1], dtype=np.int64)
            tperm[a], tperm[b] = b, a
        if not (
            np.array_equal(compiled.pre[tperm][:, pperm], compiled.pre)
            and np.array_equal(compiled.post[tperm][:, pperm], compiled.post)
            and np.array_equal(costs[tperm], costs)
        ):
            raise ValueError(
                f"blocks {i} and {i + 1} are not interchangeable: swapping "
                "them does not map the net onto itself"
            )


def group_from_names(
    compiled: CompiledNet,
    place_blocks: Sequence[Sequence[str]],
    transition_blocks: Sequence[Sequence[str]] = (),
) -> SymmetryGroup:
    """Build and validate a :class:`SymmetryGroup` from node names."""
    group = SymmetryGroup(
        place_blocks=tuple(
            tuple(compiled.place_index[p] for p in block)
            for block in place_blocks
        ),
        transition_blocks=tuple(
            tuple(compiled.transition_index[t] for t in block)
            for block in transition_blocks
        ),
    )
    validate_group(compiled, group)
    return group


# ----------------------------------------------------------------------
# Canonicalization
# ----------------------------------------------------------------------
def canonicalize(
    matrix: np.ndarray, groups: Sequence[SymmetryGroup]
) -> np.ndarray:
    """Canonical representative of each row's orbit (copy; rows or 1-D).

    Per group, the ``(k, w)`` block sub-vectors of every row are sorted
    lexicographically by token counts — a composition of validated
    block swaps, so the result is in the input's orbit.  Groups are
    node-disjoint (enforced at detection/validation), hence the passes
    commute and the representative is deterministic.
    """
    out = np.array(matrix, dtype=np.int64)
    if not groups:
        return out
    rows = out[np.newaxis, :] if out.ndim == 1 else out
    for group in groups:
        if not group.place_blocks:
            continue  # transition-only symmetry leaves markings unchanged
        ids = np.asarray(group.place_blocks, dtype=np.int64)  # (k, w)
        k, w = ids.shape
        sub = rows[:, ids.reshape(-1)].reshape(rows.shape[0], k, w)
        # lexsort's *last* key is primary: feed columns w-1 .. 0
        order = np.lexsort(sub.transpose(2, 0, 1)[::-1], axis=-1)
        sub = np.take_along_axis(sub, order[:, :, np.newaxis], axis=1)
        rows[:, ids.reshape(-1)] = sub.reshape(rows.shape[0], k * w)
    return rows[0] if out.ndim == 1 else rows


def orbit_place_bounds(
    bounds: np.ndarray, groups: Sequence[SymmetryGroup]
) -> np.ndarray:
    """Lift per-place column maxima of a *canonical* matrix to true bounds.

    Canonical form sorts blocks, so position ``j`` of a low-sorted
    block under-reports what that concrete place can reach — but the
    orbit of every canonical marking is reachable, so the true bound of
    a place at position ``j`` of any block is the max over position
    ``j`` of *all* blocks in its group.  Places outside every group are
    exact as-is.
    """
    out = np.array(bounds, dtype=np.int64)
    for group in groups:
        if not group.place_blocks:
            continue
        ids = np.asarray(group.place_blocks, dtype=np.int64)  # (k, w)
        out[ids.reshape(-1)] = np.repeat(
            out[ids].max(axis=0)[np.newaxis, :], ids.shape[0], axis=0
        ).reshape(-1)
    return out


# ----------------------------------------------------------------------
# Automatic detection: color refinement + block alignment
# ----------------------------------------------------------------------
def _refine_colors(compiled: CompiledNet) -> Tuple[List[int], List[int]]:
    """1-WL color refinement on the bipartite place/transition graph.

    Places start in one color, transitions are split by cost; each
    round recolors a node by the multiset of (arc weight, direction,
    neighbor color) around it, until the partition is stable.  Two
    nodes that any net automorphism exchanges necessarily share a final
    color (the converse may fail — which is why detected groups are
    validated, not trusted).
    """
    pre = compiled.pre
    post = compiled.post
    n_transitions, n_places = pre.shape
    pcol = [0] * n_places
    cost_rank = {c: i for i, c in enumerate(sorted(set(compiled.costs)))}
    tcol = [cost_rank[c] for c in compiled.costs]
    p_arcs: List[List[Tuple[int, int, int]]] = [[] for _ in range(n_places)]
    t_arcs: List[List[Tuple[int, int, int]]] = [[] for _ in range(n_transitions)]
    for t in range(n_transitions):
        for p in np.flatnonzero(pre[t]):
            w = int(pre[t, p])
            p_arcs[p].append((0, w, t))  # consumed by t
            t_arcs[t].append((0, w, p))
        for p in np.flatnonzero(post[t]):
            w = int(post[t, p])
            p_arcs[p].append((1, w, t))  # produced by t
            t_arcs[t].append((1, w, p))
    while True:
        psig = [
            (pcol[p], tuple(sorted((d, w, tcol[t]) for d, w, t in p_arcs[p])))
            for p in range(n_places)
        ]
        tsig = [
            (tcol[t], tuple(sorted((d, w, pcol[p]) for d, w, p in t_arcs[t])))
            for t in range(n_transitions)
        ]
        new_pcol = _rank(psig)
        new_tcol = _rank(tsig)
        if new_pcol == pcol and new_tcol == tcol:
            return pcol, tcol
        pcol, tcol = new_pcol, new_tcol


def _rank(signatures: list) -> List[int]:
    order = {sig: i for i, sig in enumerate(sorted(set(signatures)))}
    return [order[sig] for sig in signatures]


def detect_symmetries(compiled: CompiledNet) -> Tuple[SymmetryGroup, ...]:
    """Find validated symmetry groups of ``compiled`` automatically.

    Candidate orbits come from color refinement; a same-color class of
    size ``k ≥ 2`` seeds ``k`` blocks, and an alignment fixpoint
    threads every other size-``k`` class through them (a node joins
    block ``i`` when exactly one member of its class is adjacent — with
    matching arc weight and direction — to an already-aligned block-
    ``i`` node).  Fully aligned classes become the block positions;
    each assembled group is kept only if :func:`validate_group` proves
    it.  Detection is deliberately conservative: nested or wreathed
    symmetries (interchangeable branches *inside* interchangeable
    streams) surface at most one level, and ambiguous alignments are
    dropped rather than guessed.
    """
    pcol, tcol = _refine_colors(compiled)
    pre = compiled.pre
    post = compiled.post
    n_transitions, n_places = pre.shape

    place_classes: Dict[int, List[int]] = defaultdict(list)
    trans_classes: Dict[int, List[int]] = defaultdict(list)
    for p in range(n_places):
        place_classes[pcol[p]].append(p)
    for t in range(n_transitions):
        trans_classes[tcol[t]].append(t)

    # seeds, deterministically: place classes first, then transitions,
    # each ordered by smallest member
    seeds: List[Tuple[str, List[int]]] = [
        ("p", members)
        for _, members in sorted(
            place_classes.items(), key=lambda kv: kv[1][0]
        )
        if len(members) >= 2
    ] + [
        ("t", members)
        for _, members in sorted(
            trans_classes.items(), key=lambda kv: kv[1][0]
        )
        if len(members) >= 2
    ]

    used_p: set = set()
    used_t: set = set()
    groups: List[SymmetryGroup] = []

    for kind, members in seeds:
        if kind == "p" and any(p in used_p for p in members):
            continue
        if kind == "t" and any(t in used_t for t in members):
            continue
        k = len(members)
        group = _align_group(
            compiled, kind, members, k, pcol, tcol,
            place_classes, trans_classes, used_p, used_t,
        )
        if group is None:
            continue
        try:
            validate_group(compiled, group)
        except ValueError:
            continue
        groups.append(group)
        used_p.update(p for block in group.place_blocks for p in block)
        used_t.update(t for block in group.transition_blocks for t in block)
    return tuple(groups)


def _align_group(
    compiled: CompiledNet,
    seed_kind: str,
    seed_members: List[int],
    k: int,
    pcol: List[int],
    tcol: List[int],
    place_classes: Dict[int, List[int]],
    trans_classes: Dict[int, List[int]],
    used_p: set,
    used_t: set,
) -> Optional[SymmetryGroup]:
    """Thread same-color classes into ``k`` consistent blocks."""
    pre = compiled.pre
    post = compiled.post
    align_p: Dict[int, int] = {}
    align_t: Dict[int, int] = {}
    if seed_kind == "p":
        for i, p in enumerate(sorted(seed_members)):
            align_p[p] = i
    else:
        for i, t in enumerate(sorted(seed_members)):
            align_t[t] = i

    def class_of(kind: str, node: int) -> List[int]:
        if kind == "p":
            return place_classes[pcol[node]]
        return trans_classes[tcol[node]]

    changed = True
    while changed:
        changed = False
        # propagate place -> adjacent transitions
        for p, block in list(align_p.items()):
            for matrix in (pre, post):
                for t in np.flatnonzero(matrix[:, p]):
                    t = int(t)
                    if t in align_t or t in used_t:
                        continue
                    cls = class_of("t", t)
                    if len(cls) != k:
                        continue
                    w = matrix[t, p]
                    cands = [z for z in cls if matrix[z, p] == w]
                    if len(cands) == 1:
                        align_t[cands[0]] = block
                        changed = True
        # propagate transition -> adjacent places
        for t, block in list(align_t.items()):
            for matrix in (pre, post):
                for p in np.flatnonzero(matrix[t]):
                    p = int(p)
                    if p in align_p or p in used_p:
                        continue
                    cls = class_of("p", p)
                    if len(cls) != k:
                        continue
                    w = matrix[t, p]
                    cands = [z for z in cls if matrix[t, z] == w]
                    if len(cands) == 1:
                        align_p[cands[0]] = block
                        changed = True

    # keep only classes whose k members aligned to k distinct blocks
    place_blocks: List[List[int]] = [[] for _ in range(k)]
    trans_blocks: List[List[int]] = [[] for _ in range(k)]
    for classes, align, blocks in (
        (place_classes, align_p, place_blocks),
        (trans_classes, align_t, trans_blocks),
    ):
        for _, members in sorted(classes.items(), key=lambda kv: kv[1][0]):
            if len(members) != k:
                continue
            assignment = {align.get(m) for m in members}
            if None in assignment or len(assignment) != k:
                continue
            for m in members:
                blocks[align[m]].append(m)
    if not any(place_blocks) and not any(trans_blocks):
        return None
    try:
        return SymmetryGroup(
            place_blocks=(
                tuple(tuple(b) for b in place_blocks)
                if any(place_blocks)
                else ()
            ),
            transition_blocks=(
                tuple(tuple(b) for b in trans_blocks)
                if any(trans_blocks)
                else ()
            ),
        )
    except ValueError:
        return None


# ----------------------------------------------------------------------
# Resolution helper shared by the exploration entry points
# ----------------------------------------------------------------------
SymmetrySpec = Union[None, str, SymmetryGroup, Iterable[SymmetryGroup]]


def resolve_symmetry(
    compiled: CompiledNet, symmetry: SymmetrySpec
) -> Tuple[SymmetryGroup, ...]:
    """Normalize a ``symmetry=`` argument to a validated group tuple.

    ``None`` → no reduction; ``"auto"`` → :func:`detect_symmetries`;
    a single group or an iterable of groups → validated as-is.
    """
    if symmetry is None:
        return ()
    if isinstance(symmetry, str):
        if symmetry != "auto":
            raise ValueError(
                f"unknown symmetry spec {symmetry!r}; expected None, 'auto', "
                "a SymmetryGroup or an iterable of SymmetryGroups"
            )
        return detect_symmetries(compiled)
    if isinstance(symmetry, SymmetryGroup):
        groups: Tuple[SymmetryGroup, ...] = (symmetry,)
    else:
        groups = tuple(symmetry)
    seen_p: set = set()
    seen_t: set = set()
    for group in groups:
        validate_group(compiled, group)
        flat_p = {p for block in group.place_blocks for p in block}
        flat_t = {t for block in group.transition_blocks for t in block}
        if flat_p & seen_p or flat_t & seen_t:
            raise ValueError("symmetry groups must be node-disjoint")
        seen_p |= flat_p
        seen_t |= flat_t
    return groups
