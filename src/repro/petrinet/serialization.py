"""JSON (de)serialization of Petri nets.

Nets are exchanged as plain dictionaries so that models can be stored
alongside experiments, diffed in code review and loaded without running
model-construction code.  The format is deliberately simple:

.. code-block:: json

    {
      "name": "figure3a",
      "places": [{"name": "p1", "tokens": 0}],
      "transitions": [{"name": "t1", "cost": 1}],
      "arcs": [{"source": "t1", "target": "p1", "weight": 1}]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from .exceptions import SerializationError
from .net import PetriNet


def net_to_dict(net: PetriNet) -> Dict[str, Any]:
    """Serialize a net (including its initial marking) to a plain dict."""
    initial = net.initial_marking
    places = []
    for place in net.places:
        entry: Dict[str, Any] = {"name": place.name}
        tokens = initial[place.name]
        if tokens:
            entry["tokens"] = tokens
        if place.capacity is not None:
            entry["capacity"] = place.capacity
        if place.label is not None:
            entry["label"] = place.label
        places.append(entry)
    transitions = []
    for transition in net.transitions:
        entry = {"name": transition.name}
        if transition.label is not None:
            entry["label"] = transition.label
        if transition.cost != 1:
            entry["cost"] = transition.cost
        if transition.is_source_hint:
            entry["is_source_hint"] = True
        if transition.is_sink_hint:
            entry["is_sink_hint"] = True
        transitions.append(entry)
    arcs = []
    for arc in net.arcs:
        entry = {"source": arc.source, "target": arc.target}
        if arc.weight != 1:
            entry["weight"] = arc.weight
        arcs.append(entry)
    return {
        "name": net.name,
        "places": places,
        "transitions": transitions,
        "arcs": arcs,
    }


def net_from_dict(data: Dict[str, Any]) -> PetriNet:
    """Deserialize a net from the dict format produced by :func:`net_to_dict`."""
    try:
        net = PetriNet(name=data.get("name", "net"))
        for place in data.get("places", []):
            net.add_place(
                place["name"],
                tokens=place.get("tokens", 0),
                capacity=place.get("capacity"),
                label=place.get("label"),
            )
        for transition in data.get("transitions", []):
            net.add_transition(
                transition["name"],
                label=transition.get("label"),
                cost=transition.get("cost", 1),
                is_source_hint=transition.get("is_source_hint", False),
                is_sink_hint=transition.get("is_sink_hint", False),
            )
        for arc in data.get("arcs", []):
            net.add_arc(arc["source"], arc["target"], arc.get("weight", 1))
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed net description: {exc}") from exc
    return net


def net_to_json(net: PetriNet, indent: int = 2) -> str:
    """Serialize a net to a JSON string."""
    return json.dumps(net_to_dict(net), indent=indent)


def net_from_json(text: str) -> PetriNet:
    """Deserialize a net from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return net_from_dict(data)


def save_net(net: PetriNet, path: Union[str, Path]) -> None:
    """Write a net to a JSON file."""
    Path(path).write_text(net_to_json(net), encoding="utf-8")


def load_net(path: Union[str, Path]) -> PetriNet:
    """Read a net from a JSON file."""
    return net_from_json(Path(path).read_text(encoding="utf-8"))
