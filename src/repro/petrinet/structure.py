"""Structural classification of Petri nets.

This module implements the net-class predicates used by the QSS
algorithm (Sgroi et al. 1999, Section 2):

* **Marked Graph** — every place has at most one input and one output
  transition (models concurrency/synchronization, no conflict).
* **Conflict-Free net** — every place has at most one output transition.
* **Free-Choice net** — every arc from a place is either the unique
  outgoing arc of that place or the unique incoming arc of its target
  transition; equivalently, whenever one output transition of a place is
  enabled, all of them are.
* **Equal Conflict Relation** — two transitions are in equal conflict if
  they have identical, non-null preset weight vectors (Teruel 1994).

It also provides connectivity helpers (underlying undirected
connectivity, strong connectivity) and conflict *cluster* computation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from .net import PetriNet


def is_marked_graph(net: PetriNet) -> bool:
    """Return True if every place has at most one input and one output
    transition."""
    for place in net.place_names:
        if len(net.preset(place)) > 1 or len(net.postset(place)) > 1:
            return False
    return True


def is_conflict_free(net: PetriNet) -> bool:
    """Return True if every place has at most one output transition."""
    for place in net.place_names:
        if len(net.postset(place)) > 1:
            return False
    return True


def is_free_choice(net: PetriNet) -> bool:
    """Return True if the net is a Free-Choice net.

    The definition used by the paper: every arc from a place is either
    the unique outgoing arc of that place, or the unique incoming arc of
    the transition it points to.  This guarantees that whenever one
    output transition of a choice place is enabled, all of them are, so
    choice outcomes depend on token *values*, never on token arrival
    times.
    """
    for place in net.place_names:
        successors = net.postset_names(place)
        if len(successors) <= 1:
            continue
        for transition in successors:
            if len(net.preset(transition)) != 1:
                return False
    return True


def is_extended_free_choice(net: PetriNet) -> bool:
    """Return True if the net is an Extended Free-Choice net.

    Two places sharing an output transition must have identical postsets.
    Every free-choice net is extended free-choice; the converse does not
    hold.  The QSS algorithm itself only requires the (ordinary)
    free-choice property, but the predicate is useful when validating
    model transformations.
    """
    for p1 in net.place_names:
        post1 = set(net.postset_names(p1))
        if not post1:
            continue
        for p2 in net.place_names:
            if p1 >= p2:
                continue
            post2 = set(net.postset_names(p2))
            if post1 & post2 and post1 != post2:
                return False
    return True


def is_ordinary(net: PetriNet) -> bool:
    """Return True if every arc has weight one."""
    return all(arc.weight == 1 for arc in net.arcs)


def classify(net: PetriNet) -> str:
    """Return the most specific class name for ``net``.

    The classes are checked from the most restrictive to the most
    general: ``"marked-graph"``, ``"conflict-free"``, ``"free-choice"``,
    ``"extended-free-choice"``, ``"general"``.
    """
    if is_marked_graph(net):
        return "marked-graph"
    if is_conflict_free(net):
        return "conflict-free"
    if is_free_choice(net):
        return "free-choice"
    if is_extended_free_choice(net):
        return "extended-free-choice"
    return "general"


# ----------------------------------------------------------------------
# Equal conflict relation
# ----------------------------------------------------------------------
def preset_vector(net: PetriNet, transition: str) -> Tuple[Tuple[str, int], ...]:
    """Return the preset weight vector ``Pre[P, t]`` as a sorted tuple."""
    return tuple(sorted(net.preset(transition).items()))


def in_equal_conflict(net: PetriNet, t1: str, t2: str) -> bool:
    """Return True if ``t1`` and ``t2`` are in Equal Conflict Relation.

    Two transitions are in equal conflict iff their preset weight vectors
    are identical and non-null (``Pre[P, t] = Pre[P, t'] != 0``).  In a
    free-choice net this coincides with "successors of the same choice
    place".  Every transition with a non-empty preset is in equal
    conflict with itself.
    """
    v1 = preset_vector(net, t1)
    v2 = preset_vector(net, t2)
    return bool(v1) and v1 == v2


def equal_conflict_sets(net: PetriNet) -> List[FrozenSet[str]]:
    """Partition the transitions into equal conflict sets.

    Transitions with an empty preset (source transitions) each form a
    singleton set.  The returned list is ordered by the first transition
    of each set in net insertion order.
    """
    groups: Dict[Tuple[Tuple[str, int], ...], List[str]] = {}
    order: List[Tuple[Tuple[str, int], ...]] = []
    singletons: List[FrozenSet[str]] = []
    for transition in net.transition_names:
        vector = preset_vector(net, transition)
        if not vector:
            singletons.append(frozenset({transition}))
            continue
        if vector not in groups:
            groups[vector] = []
            order.append(vector)
        groups[vector].append(transition)
    result = [frozenset(groups[v]) for v in order]
    return result + singletons


def conflicting_transitions(net: PetriNet, transition: str) -> List[str]:
    """Return all transitions (other than ``transition``) in equal conflict
    with it."""
    return [
        other
        for other in net.transition_names
        if other != transition and in_equal_conflict(net, transition, other)
    ]


def choice_sets(net: PetriNet) -> Dict[str, List[str]]:
    """Return ``{choice place: [output transitions]}`` for every choice."""
    return {p: net.postset_names(p) for p in net.choice_places()}


# ----------------------------------------------------------------------
# Clusters (used by free-choice theory and by diagnostics)
# ----------------------------------------------------------------------
def clusters(net: PetriNet) -> List[FrozenSet[str]]:
    """Compute the conflict clusters of the net.

    The cluster of a node is the smallest set containing it that is
    closed under (a) adding the postset transitions of any place in the
    set and (b) adding the preset places of any transition in the set.
    Clusters partition the nodes of the net and, in a free-choice net,
    every cluster contains at most one choice place "shape".
    """
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for name in net.place_names + net.transition_names:
        parent[name] = name
    for place in net.place_names:
        for transition in net.postset_names(place):
            union(place, transition)
    groups: Dict[str, Set[str]] = {}
    for name in parent:
        groups.setdefault(find(name), set()).add(name)
    return [frozenset(group) for group in groups.values()]


# ----------------------------------------------------------------------
# Connectivity
# ----------------------------------------------------------------------
def is_connected(net: PetriNet) -> bool:
    """Return True if the underlying undirected graph is connected.

    The empty net is considered connected.
    """
    nodes = net.place_names + net.transition_names
    if not nodes:
        return True
    seen: Set[str] = set()
    stack = [nodes[0]]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(n for n in net.postset_names(node) if n not in seen)
        stack.extend(n for n in net.preset_names(node) if n not in seen)
    return len(seen) == len(nodes)


def is_strongly_connected(net: PetriNet) -> bool:
    """Return True if the net graph is strongly connected.

    Nets modelling embedded reactive systems typically are *not*
    strongly connected because source and sink transitions model the
    environment (Sgroi et al., Section 3); the predicate is provided for
    completeness and for checking the preconditions of Hack's original
    MG-decomposition theorems.
    """
    nodes = net.place_names + net.transition_names
    if not nodes:
        return True

    def reachable(start: str, forward: bool) -> Set[str]:
        seen: Set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            neighbours = (
                net.postset_names(node) if forward else net.preset_names(node)
            )
            stack.extend(n for n in neighbours if n not in seen)
        return seen

    start = nodes[0]
    return len(reachable(start, True)) == len(nodes) and len(
        reachable(start, False)
    ) == len(nodes)


def connected_components(net: PetriNet) -> List[Tuple[List[str], List[str]]]:
    """Return the weakly connected components as ``(places, transitions)``
    pairs, each in net insertion order."""
    nodes = net.place_names + net.transition_names
    seen: Set[str] = set()
    components: List[Set[str]] = []
    for start in nodes:
        if start in seen:
            continue
        component: Set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in component:
                continue
            component.add(node)
            stack.extend(net.postset_names(node))
            stack.extend(net.preset_names(node))
        seen |= component
        components.append(component)
    result = []
    for component in components:
        places = [p for p in net.place_names if p in component]
        transitions = [t for t in net.transition_names if t in component]
        result.append((places, transitions))
    return result
