"""Scenario corpus: generate net populations and stress-analyse them in parallel.

Every PR to this codebase faces the same question — "does the change
still hold on weird nets?".  This module turns that question into one
command: it draws a reproducible corpus of nets across all generator
families (plus the paper's figure gallery), runs the full property
pipeline on each — net class, boundedness via Karp–Miller coverability,
deadlocks, liveness, place bounds and QSS schedulability, all on the
compiled engine — and aggregates the verdicts into a JSON/CSV summary.

The pipeline is embarrassingly parallel, so :func:`run_corpus` fans the
specs out over a :mod:`multiprocessing` pool; each worker regenerates
its nets from the compact :class:`NetSpec` (cheaper and more robust than
pickling nets) and keeps a per-process cache of compiled views so every
property check of a net shares one :class:`CompiledNet`.

Three analysis modes are offered (the ``analyse`` argument / CLI flag):

* ``"properties"`` (default) — the full property pipeline: net class,
  boundedness via Karp–Miller coverability, deadlocks, liveness, place
  bounds and QSS schedulability.
* ``"qss"`` — the schedulability sweep: only the structural summary plus
  the full mask-based QSS analysis per free-choice net (schedulable
  verdict, T-allocation and T-reduction counts, finite-complete-cycle
  lengths), skipping the reachability/coverability passes so large
  sweeps stay cheap.
* ``"runtime"`` — the execution throughput sweep: drive a small fleet of
  instances of each net (:class:`~repro.runtime.fleet.FleetSimulator`,
  synthetic per-instance event streams on every source transition,
  uniform choice resolutions) and record the served events, cycle
  percentiles and events-per-second throughput.  Nets without source
  transitions cannot be event-driven and keep ``null`` fleet columns;
  a per-event firing budget (``on_budget="stop"``) keeps nets that
  never quiesce total.

JSON schema (``schema`` = ``repro-qss.corpus/3``)::

    {
      "schema": "repro-qss.corpus/3",
      "n": <number of records>,
      "workers": <pool size used>,
      "engine": "compiled" | "legacy" | "frontier",
      "analyse": "properties" | "qss",
      "elapsed_seconds": <wall-clock of the whole run>,
      "records": [
        {
          "family": str, "seed": int, "params": {str: int|bool|str},
          "net_name": str, "places": int, "transitions": int, "arcs": int,
          "net_class": str, "free_choice": bool | null,
          "bounded": bool | null,               # null: Karp-Miller truncated, no omega found
          "unbounded_places": [str],            # omega places are certain even when truncated
          "max_place_bound": int | null,        # null unless the construction completed
          "coverability_nodes": int,
          "coverability_complete": bool,        # false when the max_nodes cap was hit
          "reachable_markings": int | null,     # null when exploration hit the cap
          "exploration_complete": bool,
          "deadlocks": int | null, "deadlock_free": bool | null,
          "live": bool | null,                  # null when undecidable within the cap
          "schedulable": bool | null,           # null for non-free-choice nets
          "allocations": int | null,            # T-allocation count (product of choice out-degrees)
          "reductions": int | null,             # distinct T-reduction count
          "cycle_lengths": [int] | null,        # per-reduction finite-complete-cycle lengths
          "fleet_instances": int | null,        # runtime sweep: fleet size
          "fleet_events": int | null,           # events served across the fleet
          "fleet_cycles_total": int | null,     # simulated cycles across the fleet
          "fleet_cycles_p50": float | null,     # per-instance cycle percentiles
          "fleet_cycles_p95": float | null,
          "fleet_budget_stops": int | null,     # events stopped by the firing budget
          "fleet_throughput_eps": float | null, # served events per wall-clock second
          "error": str | null,                  # analysis exception, if any
          "elapsed_ms": float
        }, ...
      ],
      "summary": <aggregates from repro.analysis.corpus_stats.summarize_corpus>
    }

In ``"qss"`` mode the coverability/reachability fields keep their
defaults (``null`` / 0 / false); in ``"properties"`` mode every field
except the ``fleet_*`` columns is filled, including the QSS sweep
columns (the report is computed anyway); in ``"runtime"`` mode only the
structural summary and the ``fleet_*`` columns are filled.  Note that
``fleet_throughput_eps`` is a wall-clock measurement and therefore the
one record field that is not bit-reproducible across runs.
"""

from __future__ import annotations

import csv
import random
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .compiled import (
    ENGINE_COMPILED,
    ENGINE_FRONTIER,
    ENGINE_LEGACY,
    SEARCH_ENGINES,
    CompiledNet,
    compile_net,
    validate_engine,
)
from .generators import (
    choice_fan_net,
    fork_join_pipeline,
    independent_choices_net,
    multirate_choice_net,
    nested_choices_net,
    pipeline_net,
    producer_consumer_ring,
    random_free_choice_net,
    random_marked_graph,
    unbalanced_choice_net,
    unschedulable_merge_net,
)
from .net import PetriNet

#: Version tag of the JSON summary documented in the module docstring.
#: Bumped to /2 when the schedulability sweep columns (``allocations``,
#: ``cycle_lengths``) and the top-level ``analyse`` mode were added, and
#: to /3 when the runtime sweep (``fleet_*`` columns) landed.
CORPUS_SCHEMA = "repro-qss.corpus/3"

#: The analysis modes accepted by :func:`analyse_spec` / :func:`run_corpus`.
CORPUS_ANALYSES = ("properties", "qss", "runtime")

#: Fleet shape of the ``"runtime"`` sweep: instances per net, events per
#: instance, and the per-event firing budget that keeps never-quiescing
#: nets total (their events are cut off and counted in
#: ``fleet_budget_stops`` instead of erroring the record).
FLEET_SWEEP_INSTANCES = 16
FLEET_SWEEP_EVENTS = 20
FLEET_SWEEP_BUDGET = 256


def validate_corpus_analyse(analyse: str) -> str:
    """Validate an ``analyse=`` mode argument, returning it unchanged."""
    if analyse not in CORPUS_ANALYSES:
        raise ValueError(
            f"unknown corpus analysis mode {analyse!r}; expected one of "
            f"{', '.join(CORPUS_ANALYSES)}"
        )
    return analyse


# ----------------------------------------------------------------------
# Specs and the family registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NetSpec:
    """A compact, picklable recipe for one corpus net.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so specs are
    hashable (they key the per-worker compiled-net cache) and serialize
    to a stable JSON object.
    """

    family: str
    seed: int
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def build(self) -> PetriNet:
        """Regenerate the net this spec describes."""
        if self.family not in CORPUS_FAMILIES:
            raise KeyError(f"unknown corpus family {self.family!r}")
        return CORPUS_FAMILIES[self.family].build(self.seed, self.param_dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"family": self.family, "seed": self.seed, "params": self.param_dict}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NetSpec":
        return cls(
            family=data["family"],
            seed=int(data["seed"]),
            params=tuple(sorted(dict(data.get("params", {})).items())),
        )


@dataclass(frozen=True)
class CorpusFamily:
    """One generator family: randomized parameters plus a builder."""

    name: str
    draw_params: Callable[[random.Random], Dict[str, Any]]
    build: Callable[[int, Dict[str, Any]], PetriNet]

    def spec(self, seed: int) -> NetSpec:
        # string seed: hashed with sha512 by random.seed, so the stream is
        # stable across processes (tuple seeds would go through the
        # PYTHONHASHSEED-salted hash() and break reproducibility)
        rng = random.Random(f"{self.name}:{seed}")
        return NetSpec(
            family=self.name,
            seed=seed,
            params=tuple(sorted(self.draw_params(rng).items())),
        )


def _gallery_figure_ids() -> List[str]:
    from ..gallery import paper_figures  # local import: gallery imports petrinet

    return sorted(paper_figures())


def _build_gallery(seed: int, params: Dict[str, Any]) -> PetriNet:
    from ..gallery import paper_figures

    return paper_figures()[params["figure"]]()


def _build_router(seed: int, params: Dict[str, Any]) -> PetriNet:
    from ..apps.router import build_router_net  # local import: apps imports petrinet

    return build_router_net()


def _build_heating(seed: int, params: Dict[str, Any]) -> PetriNet:
    from ..apps.heating import build_heating_net  # local import: apps imports petrinet

    return build_heating_net()


def _draw_pipeline_params(rng: random.Random) -> Dict[str, Any]:
    stages = rng.randint(2, 5)
    rates = "-".join(str(rng.randint(1, 3)) for _ in range(stages))
    return {"stages": stages, "rates": rates}


def _registry() -> Dict[str, CorpusFamily]:
    families = [
        CorpusFamily(
            "pipeline",
            _draw_pipeline_params,
            lambda seed, p: pipeline_net(
                p["stages"], rates=[int(r) for r in p["rates"].split("-")]
            ),
        ),
        CorpusFamily(
            "choice_fan",
            lambda rng: {"branches": rng.randint(2, 5)},
            lambda seed, p: choice_fan_net(p["branches"]),
        ),
        CorpusFamily(
            "independent_choices",
            lambda rng: {"choices": rng.randint(1, 3), "branches": rng.randint(2, 3)},
            lambda seed, p: independent_choices_net(p["choices"], p["branches"]),
        ),
        CorpusFamily(
            "nested_choices",
            lambda rng: {"depth": rng.randint(1, 4)},
            lambda seed, p: nested_choices_net(p["depth"]),
        ),
        CorpusFamily(
            "multirate_choice",
            lambda rng: {"rate_a": rng.randint(1, 3), "rate_b": rng.randint(1, 3)},
            lambda seed, p: multirate_choice_net(p["rate_a"], p["rate_b"]),
        ),
        CorpusFamily(
            "unschedulable_merge",
            lambda rng: {},
            lambda seed, p: unschedulable_merge_net(),
        ),
        CorpusFamily(
            "random_free_choice",
            lambda rng: {
                "n_choices": rng.randint(1, 3),
                "max_branch_length": rng.randint(1, 3),
                "max_weight": rng.randint(1, 3),
            },
            lambda seed, p: random_free_choice_net(
                seed,
                n_choices=p["n_choices"],
                max_branch_length=p["max_branch_length"],
                max_weight=p["max_weight"],
            ),
        ),
        CorpusFamily(
            "random_marked_graph",
            lambda rng: {
                "n_transitions": rng.randint(3, 7),
                "extra_places": rng.randint(0, 4),
            },
            lambda seed, p: random_marked_graph(
                seed,
                n_transitions=p["n_transitions"],
                extra_places=p["extra_places"],
            ),
        ),
        CorpusFamily(
            "producer_consumer_ring",
            lambda rng: {
                "stations": rng.randint(1, 4),
                "capacity": rng.randint(1, 3),
            },
            lambda seed, p: producer_consumer_ring(p["stations"], p["capacity"]),
        ),
        CorpusFamily(
            "fork_join_pipeline",
            lambda rng: {
                "branches": rng.randint(2, 4),
                "depth": rng.randint(1, 3),
                "closed": rng.random() < 0.5,
            },
            lambda seed, p: fork_join_pipeline(
                p["branches"], p["depth"], closed=p["closed"]
            ),
        ),
        CorpusFamily(
            "unbalanced_choice",
            lambda rng: {
                "branches": rng.randint(2, 3),
                "max_weight": 4,
                "merge": rng.random() < 0.25,
            },
            lambda seed, p: unbalanced_choice_net(
                seed,
                branches=p["branches"],
                max_weight=p["max_weight"],
                merge=p["merge"],
            ),
        ),
        CorpusFamily(
            "gallery",
            lambda rng: {"figure": rng.choice(_gallery_figure_ids())},
            _build_gallery,
        ),
        # The application case studies are fixed nets (no drawn
        # parameters): every spec of the family builds the same model,
        # which keeps them cheap and makes the corpus exercise the
        # realistic topologies alongside the synthetic generators.
        CorpusFamily("router", lambda rng: {}, _build_router),
        CorpusFamily("heating", lambda rng: {}, _build_heating),
    ]
    return {f.name: f for f in families}


#: All registered families, keyed by name.
CORPUS_FAMILIES: Dict[str, CorpusFamily] = _registry()


def generate_corpus(
    n: int, seed: int = 0, families: Optional[Sequence[str]] = None
) -> List[NetSpec]:
    """Draw ``n`` reproducible net specs across the requested families.

    The family of each corpus slot is drawn uniformly with a
    ``random.Random(seed)`` stream and the slot index becomes the spec
    seed, so ``generate_corpus(n, seed)`` is fully determined by its
    arguments (and a prefix-stable superset of ``generate_corpus(m, seed)``
    for ``m < n``).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    names = list(families) if families is not None else sorted(CORPUS_FAMILIES)
    unknown = [f for f in names if f not in CORPUS_FAMILIES]
    if unknown:
        raise KeyError(
            f"unknown corpus families: {', '.join(unknown)}; "
            f"available: {', '.join(sorted(CORPUS_FAMILIES))}"
        )
    rng = random.Random(seed)
    return [CORPUS_FAMILIES[rng.choice(names)].spec(i) for i in range(n)]


# ----------------------------------------------------------------------
# Per-net analysis
# ----------------------------------------------------------------------
#: Per-record field order, shared by the CSV writer and the docs.
RECORD_FIELDS = (
    "family",
    "seed",
    "params",
    "net_name",
    "places",
    "transitions",
    "arcs",
    "net_class",
    "free_choice",
    "bounded",
    "unbounded_places",
    "max_place_bound",
    "coverability_nodes",
    "coverability_complete",
    "reachable_markings",
    "exploration_complete",
    "deadlocks",
    "deadlock_free",
    "live",
    "schedulable",
    "allocations",
    "reductions",
    "cycle_lengths",
    "fleet_instances",
    "fleet_events",
    "fleet_cycles_total",
    "fleet_cycles_p50",
    "fleet_cycles_p95",
    "fleet_budget_stops",
    "fleet_throughput_eps",
    "error",
    "elapsed_ms",
)


@dataclass
class CorpusRecord:
    """The full property verdict for one corpus net (see module docstring)."""

    family: str
    seed: int
    params: Dict[str, Any]
    net_name: str = ""
    places: int = 0
    transitions: int = 0
    arcs: int = 0
    net_class: str = ""
    free_choice: Optional[bool] = None
    bounded: Optional[bool] = None
    unbounded_places: List[str] = field(default_factory=list)
    max_place_bound: Optional[int] = None
    coverability_nodes: int = 0
    coverability_complete: bool = False
    reachable_markings: Optional[int] = None
    exploration_complete: bool = False
    deadlocks: Optional[int] = None
    deadlock_free: Optional[bool] = None
    live: Optional[bool] = None
    schedulable: Optional[bool] = None
    allocations: Optional[int] = None
    reductions: Optional[int] = None
    cycle_lengths: Optional[List[int]] = None
    fleet_instances: Optional[int] = None
    fleet_events: Optional[int] = None
    fleet_cycles_total: Optional[int] = None
    fleet_cycles_p50: Optional[float] = None
    fleet_cycles_p95: Optional[float] = None
    fleet_budget_stops: Optional[int] = None
    fleet_throughput_eps: Optional[float] = None
    error: Optional[str] = None
    elapsed_ms: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in RECORD_FIELDS}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CorpusRecord":
        return cls(**{name: data[name] for name in RECORD_FIELDS})


# Per-process caches: spec -> built net, spec -> compiled view.  They
# live at module level so pool workers reuse nets and compilations across
# the analyses of one net (and across repeated runs inside one
# interpreter, e.g. the benchmarks).  The compiled view is built lazily
# so the legacy engine never pays for matrices it will not use.
_NET_CACHE: Dict[NetSpec, PetriNet] = {}
_COMPILED_CACHE: Dict[NetSpec, CompiledNet] = {}
_CACHE_LIMIT = 512


def clear_compiled_cache() -> None:
    """Drop the per-process net and compiled-net caches.

    Benchmarks call this before timed runs so a warm cache from an
    earlier pass (inherited by forked pool workers) cannot bias a
    sequential-vs-parallel comparison.
    """
    _NET_CACHE.clear()
    _COMPILED_CACHE.clear()


def _cached_net(spec: NetSpec) -> PetriNet:
    net = _NET_CACHE.get(spec)
    if net is None:
        if len(_NET_CACHE) >= _CACHE_LIMIT:
            clear_compiled_cache()
        net = spec.build()
        _NET_CACHE[spec] = net
    return net


def _cached_compiled(spec: NetSpec) -> CompiledNet:
    compiled = _COMPILED_CACHE.get(spec)
    if compiled is None:
        compiled = compile_net(_cached_net(spec))
        _COMPILED_CACHE[spec] = compiled
    return compiled


def analyse_spec(
    spec: NetSpec,
    max_markings: int = 2_000,
    max_nodes: int = 2_500,
    engine: str = ENGINE_COMPILED,
    analyse: str = "properties",
    memory_budget: Optional[object] = None,
    spill_dir: Optional[str] = None,
) -> CorpusRecord:
    """Run the requested analysis pipeline on one spec.

    ``analyse="properties"`` (default) runs the full property pipeline;
    ``analyse="qss"`` runs only the structural summary plus the QSS
    schedulability sweep (verdict, allocation/reduction counts, cycle
    lengths), skipping the coverability/reachability passes;
    ``analyse="runtime"`` runs only the structural summary plus the
    fleet throughput sweep (:data:`FLEET_SWEEP_INSTANCES` instances x
    :data:`FLEET_SWEEP_EVENTS` synthetic events on the requested
    engine, per-event firing budget :data:`FLEET_SWEEP_BUDGET`).

    Caps keep every net affordable: coverability stops after
    ``max_nodes`` Karp–Miller nodes, reachability-based checks
    (deadlocks, liveness) after ``max_markings`` markings.  Verdicts that
    are not exact within the caps are reported as ``None`` rather than
    guessed.  Analysis exceptions are captured in ``error`` so one
    degenerate net cannot sink a whole corpus run.

    ``memory_budget`` / ``spill_dir`` (frontier engine only) route the
    coverability and reachability passes through the out-of-core
    budgeted explorer (:mod:`repro.petrinet.outofcore`), bounding RAM
    by spilling visited-set shards and marking logs to disk.
    """
    from ..qss import analyse as qss_analyse  # local import: qss imports petrinet
    from .exceptions import PetriNetError
    from .reachability import (
        build_reachability_graph,
        coverability_analysis,
        live_verdict,
    )
    from .structure import classify, is_free_choice

    validate_engine(engine, SEARCH_ENGINES)
    validate_corpus_analyse(analyse)
    budget_kwargs: Dict[str, Any] = {}
    if memory_budget is not None or spill_dir is not None:
        # validated eagerly (same rule as reachability) so a bad
        # engine/budget combination fails the call, not one record
        if engine != ENGINE_FRONTIER:
            raise ValueError(
                "memory_budget/spill_dir require engine="
                f"{ENGINE_FRONTIER!r}, got {engine!r}"
            )
        budget_kwargs = {"memory_budget": memory_budget, "spill_dir": spill_dir}
    started = time.perf_counter()
    record = CorpusRecord(family=spec.family, seed=spec.seed, params=spec.param_dict)
    try:
        net = _cached_net(spec)
        record.net_name = net.name
        record.places = len(net.places)
        record.transitions = len(net.transitions)
        record.arcs = len(net.arcs)
        record.net_class = classify(net)
        record.free_choice = is_free_choice(net)

        if analyse == "properties":
            analysed: Any = (
                net if engine == ENGINE_LEGACY else _cached_compiled(spec)
            )
            coverability = coverability_analysis(
                analysed, max_nodes=max_nodes, engine=engine, **budget_kwargs
            )
            record.unbounded_places = list(coverability.unbounded_places)
            record.coverability_nodes = coverability.node_count
            record.coverability_complete = coverability.complete
            if coverability.unbounded_places:
                # omega places are unbounded regardless of the cap
                record.bounded = False
            elif coverability.complete:
                record.bounded = True
            # else: truncated run with no omega found — undecided (None)
            if coverability.complete:
                # only a finished construction yields exact finite bounds
                finite = [
                    bound
                    for place, bound in coverability.place_bounds.items()
                    if place not in coverability.unbounded_places
                ]
                record.max_place_bound = max(finite) if finite else None

            graph = build_reachability_graph(
                analysed, max_markings=max_markings, engine=engine, **budget_kwargs
            )
            record.exploration_complete = graph.complete
            if graph.complete:
                record.reachable_markings = graph.num_markings
                record.deadlocks = len(graph.deadlock_markings())
                record.deadlock_free = record.deadlocks == 0
                # the liveness verdict reuses the graph built above instead
                # of paying for a second exploration through is_live()
                record.live = live_verdict(graph, set(net.transition_names))
        if analyse == "runtime":
            _runtime_sweep(spec, record, engine)
        elif record.free_choice:
            report = qss_analyse(net, engine=engine)
            record.schedulable = report.schedulable
            record.allocations = report.allocation_count
            record.reductions = report.reduction_count
            record.cycle_lengths = [
                len(v.cycle) for v in report.verdicts if v.cycle is not None
            ]
    except (PetriNetError, RuntimeError, ValueError) as exc:
        record.error = f"{type(exc).__name__}: {exc}"
    record.elapsed_ms = (time.perf_counter() - started) * 1000.0
    return record


def _runtime_sweep(spec: NetSpec, record: CorpusRecord, engine: str) -> None:
    """Fill the ``fleet_*`` columns of ``record`` (runtime sweep mode).

    Nets without source transitions cannot be driven by events and keep
    their ``None`` fleet columns.
    """
    from ..runtime import FleetSimulator, ModuleAssignment, synthetic_streams

    net = _cached_net(spec)
    if not net.source_transitions():
        return
    streams = synthetic_streams(
        net, FLEET_SWEEP_INSTANCES, FLEET_SWEEP_EVENTS, seed=spec.seed
    )
    # the fleet is a token-game executor, not a search: the frontier
    # engine has nothing to add there and maps to the compiled core
    fleet_engine = ENGINE_COMPILED if engine == ENGINE_FRONTIER else engine
    target: Any = net if fleet_engine == ENGINE_LEGACY else _cached_compiled(spec)
    fleet = FleetSimulator(
        target,
        ModuleAssignment.single_task(net),
        max_firings_per_event=FLEET_SWEEP_BUDGET,
        engine=fleet_engine,
        on_budget="stop",
    )
    result = fleet.run(streams)
    record.fleet_instances = result.instances
    record.fleet_events = int(result.stats.events_processed)
    record.fleet_cycles_total = int(result.stats.total_cycles)
    record.fleet_cycles_p50 = result.percentile(50)
    record.fleet_cycles_p95 = result.percentile(95)
    record.fleet_budget_stops = int(result.stats.budget_stops)
    record.fleet_throughput_eps = round(result.throughput_eps, 1)


def _analyse_one(
    args: Tuple[NetSpec, int, int, str, str, Optional[object], Optional[str]]
) -> CorpusRecord:  # pragma: no cover - trivial pool shim
    spec, max_markings, max_nodes, engine, analyse, memory_budget, spill_dir = args
    return analyse_spec(
        spec,
        max_markings=max_markings,
        max_nodes=max_nodes,
        engine=engine,
        analyse=analyse,
        memory_budget=memory_budget,
        spill_dir=spill_dir,
    )


# ----------------------------------------------------------------------
# The parallel pipeline
# ----------------------------------------------------------------------
@dataclass
class CorpusResult:
    """Outcome of a corpus run: one record per spec, in spec order."""

    records: List[CorpusRecord]
    workers: int
    engine: str
    elapsed_seconds: float
    analyse: str = "properties"

    def __len__(self) -> int:
        return len(self.records)

    @property
    def errors(self) -> List[CorpusRecord]:
        return [r for r in self.records if r.error is not None]


def run_corpus(
    specs: Sequence[NetSpec],
    workers: int = 1,
    max_markings: int = 2_000,
    max_nodes: int = 2_500,
    engine: str = ENGINE_COMPILED,
    analyse: str = "properties",
    memory_budget: Optional[object] = None,
    spill_dir: Optional[str] = None,
) -> CorpusResult:
    """Analyse every spec, fanning out over a process pool when ``workers > 1``.

    ``workers <= 1`` runs sequentially in-process (no pool overhead) —
    the baseline the parallel path is benchmarked against.  Results come
    back in spec order either way.  ``analyse`` selects the pipeline per
    net: the full property pipeline (``"properties"``, default) or the
    QSS schedulability sweep (``"qss"``).  ``engine`` is any of the
    search engines (``compiled``/``legacy``/``frontier``).
    ``memory_budget`` / ``spill_dir`` (frontier only) bound exploration
    RAM per net by spilling to disk; each worker spills into its own
    private temp directory unless ``spill_dir`` pins one.
    """
    validate_engine(engine, SEARCH_ENGINES)
    validate_corpus_analyse(analyse)
    if (memory_budget is not None or spill_dir is not None) and (
        engine != ENGINE_FRONTIER
    ):
        raise ValueError(
            "memory_budget/spill_dir require engine="
            f"{ENGINE_FRONTIER!r}, got {engine!r}"
        )
    started = time.perf_counter()
    if workers <= 1 or len(specs) <= 1:
        records = [
            analyse_spec(
                spec,
                max_markings=max_markings,
                max_nodes=max_nodes,
                engine=engine,
                analyse=analyse,
                memory_budget=memory_budget,
                spill_dir=spill_dir,
            )
            for spec in specs
        ]
        effective_workers = 1
    else:
        import multiprocessing

        effective_workers = min(workers, len(specs))
        payload = [
            (spec, max_markings, max_nodes, engine, analyse, memory_budget, spill_dir)
            for spec in specs
        ]
        chunksize = max(1, len(specs) // (effective_workers * 4))
        with multiprocessing.Pool(effective_workers) as pool:
            records = pool.map(_analyse_one, payload, chunksize=chunksize)
    return CorpusResult(
        records=records,
        workers=effective_workers,
        engine=engine,
        elapsed_seconds=time.perf_counter() - started,
        analyse=analyse,
    )


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def corpus_to_json_dict(result: CorpusResult) -> Dict[str, Any]:
    """The JSON-ready summary documented in the module docstring."""
    from ..analysis.corpus_stats import summarize_corpus

    records = [record.to_dict() for record in result.records]
    return {
        "schema": CORPUS_SCHEMA,
        "n": len(records),
        "workers": result.workers,
        "engine": result.engine,
        "analyse": result.analyse,
        "elapsed_seconds": result.elapsed_seconds,
        "records": records,
        "summary": summarize_corpus(records),
    }


def corpus_from_json_dict(data: Mapping[str, Any]) -> CorpusResult:
    """Rebuild a :class:`CorpusResult` from its JSON summary.

    ``corpus_to_json_dict(corpus_from_json_dict(d)) == d`` for any
    dictionary produced by :func:`corpus_to_json_dict` — the round-trip
    contract the CLI tests pin down.
    """
    if data.get("schema") != CORPUS_SCHEMA:
        raise ValueError(
            f"unsupported corpus schema {data.get('schema')!r}; "
            f"expected {CORPUS_SCHEMA!r}"
        )
    return CorpusResult(
        records=[CorpusRecord.from_dict(r) for r in data["records"]],
        workers=int(data["workers"]),
        engine=data["engine"],
        elapsed_seconds=float(data["elapsed_seconds"]),
        analyse=data.get("analyse", "properties"),
    )


def corpus_to_csv(result: CorpusResult, path: str) -> None:
    """Write one CSV row per record; list/dict fields are JSON-encoded."""
    import json

    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=RECORD_FIELDS)
        writer.writeheader()
        for record in result.records:
            row = record.to_dict()
            row["params"] = json.dumps(row["params"], sort_keys=True)
            row["unbounded_places"] = json.dumps(row["unbounded_places"])
            if row["cycle_lengths"] is not None:
                row["cycle_lengths"] = json.dumps(row["cycle_lengths"])
            writer.writerow(row)
