"""Graphviz DOT export of Petri nets.

The export is purely textual (no graphviz dependency); it renders places
as circles (annotated with their initial token count), transitions as
boxes, choice places shaded, and arc weights greater than one as edge
labels — the visual conventions of the paper's figures.
"""

from __future__ import annotations

from typing import Optional

from .net import PetriNet


def _quote(name: str) -> str:
    return '"' + name.replace('"', '\\"') + '"'


def net_to_dot(net: PetriNet, rankdir: str = "LR", title: Optional[str] = None) -> str:
    """Render ``net`` as a Graphviz DOT digraph string."""
    initial = net.initial_marking
    choices = set(net.choice_places())
    sources = set(net.source_transitions())
    sinks = set(net.sink_transitions())
    lines = [f"digraph {_quote(net.name)} {{"]
    lines.append(f"  rankdir={rankdir};")
    if title:
        lines.append(f"  label={_quote(title)};")
        lines.append("  labelloc=t;")
    lines.append("  node [fontsize=10];")
    for place in net.places:
        tokens = initial[place.name]
        label = place.name if not tokens else f"{place.name}\\n{tokens}"
        fill = ', style=filled, fillcolor="#ffe0b0"' if place.name in choices else ""
        lines.append(
            f"  {_quote(place.name)} [shape=circle, label={_quote(label)}{fill}];"
        )
    for transition in net.transitions:
        if transition.name in sources:
            fill = ', style=filled, fillcolor="#c8e6c9"'
        elif transition.name in sinks:
            fill = ', style=filled, fillcolor="#e1bee7"'
        else:
            fill = ""
        label = transition.label or transition.name
        lines.append(
            f"  {_quote(transition.name)} "
            f"[shape=box, height=0.3, label={_quote(label)}{fill}];"
        )
    for arc in net.arcs:
        attrs = ""
        if arc.weight != 1:
            attrs = f' [label="{arc.weight}"]'
        lines.append(f"  {_quote(arc.source)} -> {_quote(arc.target)}{attrs};")
    lines.append("}")
    return "\n".join(lines) + "\n"
