"""Frontier-batched state-space exploration (``engine="frontier"``).

The compiled engine of :mod:`repro.petrinet.reachability` already runs
the *per-marking* kernels at generated-code speed, but the search loop
itself still pops one marking at a time off a queue.  This module
batches the loop: each BFS level (the *frontier*) is one ``(N, P)``
int64 matrix, and every step of the exploration is a whole-frontier
numpy operation —

* enabledness of all transitions over the whole frontier in one pass
  (per-transition CSR column checks, cheaper than the dense
  ``(N, T, P)`` broadcast for the sparse presets of real nets);
* all successors of the whole frontier materialized in one vectorized
  ``frontier[src] + incidence[transition]`` step over the enabled
  ``(src, transition)`` pairs (row-major, i.e. exactly the visit order
  of the one-marking-at-a-time engines);
* deduplication with :func:`numpy.unique` over successor *hashes* plus
  a sorted visited ``hash -> index`` table queried with
  :func:`numpy.searchsorted` — no Python dictionary work on the hot
  path.

Hashes are 64-bit linear mixes ``marking @ mix`` with fixed random odd
weights.  Linearity is what makes the batch cheap: the hash of a
successor is ``hash(frontier_row) + hash(incidence_row)`` (mod 2^64),
so successor hashes are computed *without materializing the successor
matrix* — only genuinely new markings are ever gathered into rows.
Every equality the exploration relies on — a within-level merge of two
successors, or a cross-level match against the visited table — is
confirmed by a second, independent 64-bit hash; a disagreement between
the two hashes transparently restarts the exploration on
:func:`_explore_exact`, a bytes-keyed dictionary explorer that is
slower but collision-free.  A *silently* wrong merge therefore needs
two distinct markings colliding in both hashes at once (probability
~2^-128 per pair, far below hardware error rates); any single-hash
collision is detected and routed to the exact engine.

Both explorers visit markings in exactly the order of the compiled
engine's BFS — same node numbering, same edge list, same
``max_markings`` cutoff point — which is what makes the differential
suite (:mod:`tests.test_frontier_differential`) a bit-for-bit equality
check rather than a graph-isomorphism test.

The second half of the module (:func:`frontier_firing_order`) applies
the same frontier idea to the QSS cycle search: a level-synchronous BFS
over ``(marking, remaining firing counts)`` states on the masked
incidence submatrix of one T-reduction.  Because every firing decrements
the total remaining count by one, the level number *is* the number of
firings, states from different levels can never collide, and the whole
search deduplicates with one :func:`numpy.unique` per level.  The state
space of wide conflict-free nets can still explode combinatorially, so
the search carries a state budget and reports "undecided" instead of
thrashing — callers then fall back to the sequential DFS
(:func:`repro.petrinet.simulation.search_firing_order`), which shares
none of the BFS's memory behaviour.
"""

from __future__ import annotations

import weakref
from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .compiled import ENGINE_FRONTIER, CompiledNet, MarkingTuple  # noqa: F401

#: Seed of the fixed hash mix; one constant so every process (pool
#: workers included) explores identically.
_MIX_SEED = 0x9E3779B97F4A7C15

#: Default state budget of :func:`frontier_firing_order`; beyond it the
#: search reports "undecided" and the caller falls back to the DFS.
MAX_CYCLE_STATES = 50_000

#: Narrow-frontier bailout: when this many *consecutive* BFS levels
#: carry fewer than :data:`_NARROW_WIDTH` markings each, the per-level
#: numpy dispatch overhead dominates any vectorization win (a
#: single-token chain degenerates to one marking per level, i.e. one
#: whole batched round per node), so the exploration restarts on the
#: scalar exact explorer, which handles deep-narrow state spaces at the
#: compiled engine's cost.
_NARROW_STREAK = 64
_NARROW_WIDTH = 16


class _HashDisagreement(Exception):
    """Internal: a 64-bit hash check failed; rerun the exact explorer."""


class _NarrowFrontier(Exception):
    """Internal: levels stayed tiny; batching is pure overhead here."""


@dataclass
class FrontierExploration:
    """Raw result of a frontier exploration, still in compiled ids.

    Attributes
    ----------
    matrix:
        ``(N, P)`` int64 matrix of every discovered marking, row ``i``
        being the marking with BFS index ``i`` (row 0 is the start).
    edge_src / edge_transition / edge_dst:
        Parallel ``(E,)`` int64 arrays: edge ``j`` fires transition id
        ``edge_transition[j]`` from marking ``edge_src[j]`` to marking
        ``edge_dst[j]``, listed in the BFS visit order of the compiled
        engine.  Empty when the exploration ran with
        ``collect_edges=False``.
    complete:
        False when the ``max_markings`` cap truncated the exploration
        (or a ``stop_on_target`` search stopped at the target).
    target_index:
        BFS index of the target marking when one was given and found.
    spill:
        :class:`~repro.petrinet.outofcore.SpillStats` when the
        exploration ran under a memory budget (the matrix/edge arrays
        are then read-only memory maps); ``None`` for in-RAM runs.
    """

    matrix: np.ndarray
    edge_src: np.ndarray
    edge_transition: np.ndarray
    edge_dst: np.ndarray
    complete: bool
    target_index: Optional[int] = None
    spill: Optional[object] = None

    @property
    def node_count(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def edge_count(self) -> int:
        return int(self.edge_src.shape[0])


# ----------------------------------------------------------------------
# Per-net tables (cached per CompiledNet instance)
# ----------------------------------------------------------------------
class _FrontierTables:
    """Net-constant arrays shared by every exploration of one net.

    * ``enabled(frontier)`` — the batched enabledness function: one
      boolean ``(N, T)`` matrix from per-transition CSR column checks.
    * ``mix1``/``mix2`` — the two independent hash weight vectors.
    * ``inc_h1``/``inc_h2`` — per-transition hash deltas
      ``incidence @ mix`` (the linearity shortcut).
    """

    __slots__ = ("enabled", "mix1", "mix2", "inc_h1", "inc_h2")

    def __init__(self, compiled: CompiledNet) -> None:
        n_transitions = len(compiled.pre_lists)
        # transitions with exactly one preset place are checked for the
        # whole frontier in ONE comparison (they dominate real nets);
        # wider presets fall back to a per-transition column check
        single_t: List[int] = []
        single_p: List[int] = []
        single_w: List[int] = []
        multi: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for t, pairs in enumerate(compiled.pre_lists):
            if len(pairs) == 1:
                single_t.append(t)
                single_p.append(pairs[0][0])
                single_w.append(pairs[0][1])
            elif pairs:
                multi.append(
                    (
                        t,
                        np.array([p for p, _ in pairs], dtype=np.int64),
                        np.array([w for _, w in pairs], dtype=np.int64),
                    )
                )
        single_t_arr = np.array(single_t, dtype=np.int64)
        single_p_arr = np.array(single_p, dtype=np.int64)
        single_w_arr = np.array(single_w, dtype=np.int64)

        def enabled(frontier: np.ndarray) -> np.ndarray:
            out = np.ones((frontier.shape[0], n_transitions), dtype=bool)
            if single_t_arr.size:
                out[:, single_t_arr] = frontier[:, single_p_arr] >= single_w_arr
            for t, ids, weights in multi:
                out[:, t] = (frontier[:, ids] >= weights).all(axis=1)
            return out

        self.enabled: Callable[[np.ndarray], np.ndarray] = enabled
        rng = np.random.Generator(np.random.PCG64(_MIX_SEED))
        n_places = len(compiled.places)
        # odd weights: an odd multiplier is invertible mod 2^64, which
        # keeps single-place token changes from cancelling in the mix
        self.mix1 = rng.integers(
            -(2**62), 2**62, size=n_places, dtype=np.int64
        ) | np.int64(1)
        self.mix2 = rng.integers(
            -(2**62), 2**62, size=n_places, dtype=np.int64
        ) | np.int64(1)
        self.inc_h1 = compiled.incidence @ self.mix1
        self.inc_h2 = compiled.incidence @ self.mix2


_TABLES: "weakref.WeakKeyDictionary[CompiledNet, _FrontierTables]" = (
    weakref.WeakKeyDictionary()
)


def _tables_for(compiled: CompiledNet) -> _FrontierTables:
    tables = _TABLES.get(compiled)
    if tables is None:
        tables = _FrontierTables(compiled)
        _TABLES[compiled] = tables
    return tables


# ----------------------------------------------------------------------
# Reachability exploration
# ----------------------------------------------------------------------
def explore_frontier(
    compiled: CompiledNet,
    start: Optional[Sequence[int]] = None,
    max_markings: int = 100_000,
    target: Optional[Sequence[int]] = None,
    stop_on_target: bool = False,
    collect_edges: bool = True,
    memory_budget: Optional[object] = None,
    spill_dir: Optional[object] = None,
    symmetry: Optional[object] = None,
) -> FrontierExploration:
    """Breadth-first exploration with whole-level batching.

    ``start``/``target`` are compiled marking tuples (or arrays); the
    default start is the net's initial marking.  The discovered node
    numbering, edge list and ``max_markings`` cutoff are identical to
    the compiled engine's one-marking-at-a-time BFS.  With
    ``stop_on_target`` the exploration returns as soon as the target is
    discovered (used by the early-exit reachability query); with
    ``collect_edges=False`` the edge arrays stay empty (used by the
    boundedness fast path, which only needs the marking matrix).

    Any of ``memory_budget`` (bytes, or ``"256MB"``-style strings),
    ``spill_dir`` or ``symmetry`` routes the exploration through the
    out-of-core engine (:mod:`repro.petrinet.outofcore`): markings and
    edges stream to disk, the visited tables spill past the budget, and
    oversized frontiers are processed in budget-sized chunks — same
    BFS order bit for bit.  ``symmetry`` (``"auto"`` or validated
    :class:`~repro.petrinet.symmetry.SymmetryGroup` s) additionally
    canonicalizes markings, returning the quotient graph instead.
    """
    if memory_budget is not None or spill_dir is not None or symmetry is not None:
        from .outofcore import explore_budgeted

        return explore_budgeted(
            compiled,
            start=start,
            max_markings=max_markings,
            target=target,
            stop_on_target=stop_on_target,
            collect_edges=collect_edges,
            memory_budget=memory_budget,
            spill_dir=spill_dir,
            symmetry=symmetry,
        )
    try:
        return _explore_hashed(
            compiled, start, max_markings, target, stop_on_target, collect_edges
        )
    except (_HashDisagreement, _NarrowFrontier):
        return _explore_exact(
            compiled, start, max_markings, target, stop_on_target, collect_edges
        )


def _start_vector(
    compiled: CompiledNet, start: Optional[Sequence[int]]
) -> np.ndarray:
    vector = np.array(
        compiled.initial if start is None else tuple(start), dtype=np.int64
    )
    if vector.shape != (len(compiled.places),):
        raise ValueError(
            f"start marking has {vector.shape[0]} components, net has "
            f"{len(compiled.places)} places"
        )
    return vector


def _explore_hashed(
    compiled: CompiledNet,
    start: Optional[Sequence[int]],
    max_markings: int,
    target: Optional[Sequence[int]],
    stop_on_target: bool,
    collect_edges: bool,
) -> FrontierExploration:
    """The vectorized two-hash explorer (fast path)."""
    n_places = len(compiled.places)
    incidence = compiled.incidence
    tables = _tables_for(compiled)
    mix1, inc_h1 = tables.mix1, tables.inc_h1
    mix2, inc_h2 = tables.mix2, tables.inc_h2
    enabled_fn = tables.enabled

    start_vector = _start_vector(compiled, start)
    target_vector = (
        None if target is None else np.array(tuple(target), dtype=np.int64)
    )
    target_index: Optional[int] = None
    if target_vector is not None and np.array_equal(start_vector, target_vector):
        target_index = 0

    store = np.empty((1024, n_places), dtype=np.int64)
    store[0] = start_vector
    count = 1
    start_h1 = np.int64(start_vector @ mix1)
    start_h2 = np.int64(start_vector @ mix2)
    visited_h = np.array([start_h1], dtype=np.int64)
    visited_h2 = np.array([start_h2], dtype=np.int64)
    visited_idx = np.zeros(1, dtype=np.int64)

    frontier = start_vector[np.newaxis, :]
    # hashes of the frontier rows, carried level to level (a new row's
    # hashes are the successor hashes that discovered it)
    frontier_h1 = np.array([start_h1], dtype=np.int64)
    frontier_h2 = np.array([start_h2], dtype=np.int64)
    base = 0  # BFS index of the first frontier row (rows are contiguous)
    edge_src: List[np.ndarray] = []
    edge_t: List[np.ndarray] = []
    edge_dst: List[np.ndarray] = []
    complete = True
    narrow_streak = 0

    while frontier.shape[0] and not (stop_on_target and target_index is not None):
        if frontier.shape[0] < _NARROW_WIDTH:
            narrow_streak += 1
            if narrow_streak >= _NARROW_STREAK:
                # deep-narrow state space: per-level batching overhead is
                # O(levels) = O(markings) here and the visited-table
                # merges would turn quadratic — the scalar explorer is
                # the right engine (the short prefix redone is tiny)
                raise _NarrowFrontier
        else:
            narrow_streak = 0
        src_local, trans = np.nonzero(enabled_fn(frontier))
        if src_local.size == 0:
            break
        # successor hashes via linearity — no successor matrix yet
        h1 = frontier_h1[src_local] + inc_h1[trans]
        h2 = frontier_h2[src_local] + inc_h2[trans]
        unique_h, first, inverse = np.unique(
            h1, return_index=True, return_inverse=True
        )
        # within-level merge check: the second hash must agree wherever
        # the first merged two successor rows
        if not np.array_equal(h2, h2[first[inverse]]):
            raise _HashDisagreement
        # membership against everything discovered so far; a first-hash
        # match must be confirmed by the second hash or the exploration
        # falls back to the exact engine
        pos = np.minimum(np.searchsorted(visited_h, unique_h), visited_h.size - 1)
        found = visited_h[pos] == unique_h
        unique_index = np.empty(unique_h.size, dtype=np.int64)
        found_pos = np.flatnonzero(found)
        if found_pos.size:
            if not np.array_equal(h2[first[found_pos]], visited_h2[pos[found_pos]]):
                raise _HashDisagreement
            unique_index[found_pos] = visited_idx[pos[found_pos]]
        new_pos = np.flatnonzero(~found)
        new_first = first[new_pos]
        # discovery order of the new markings = order of first occurrence
        # in the row-major (src, transition) pair enumeration
        discovery = np.argsort(new_first, kind="stable")
        n_new = new_pos.size
        if count + n_new > max_markings:
            complete = False
            allowed = max(0, max_markings - count)
            cutoff = int(new_first[discovery[allowed]])
        else:
            allowed = n_new
            cutoff = -1
        kept = discovery[:allowed]
        new_ids = np.full(n_new, -1, dtype=np.int64)
        new_ids[kept] = count + np.arange(allowed, dtype=np.int64)
        unique_index[new_pos] = new_ids
        kept_first = new_first[kept]
        new_rows = frontier[src_local[kept_first]] + incidence[trans[kept_first]]
        while count + allowed > store.shape[0]:
            store = np.concatenate([store, np.empty_like(store)])
        store[count : count + allowed] = new_rows
        if target_vector is not None and target_index is None and allowed:
            hits = np.flatnonzero((new_rows == target_vector).all(axis=1))
            if hits.size:
                target_index = count + int(hits[0])
        # merge the kept new hashes into the sorted visited tables
        kept_mask = new_ids >= 0
        kept_unique = new_pos[kept_mask]
        new_h = unique_h[kept_unique]
        insert_at = np.searchsorted(visited_h, new_h)
        visited_h = np.insert(visited_h, insert_at, new_h)
        visited_h2 = np.insert(visited_h2, insert_at, h2[first[kept_unique]])
        visited_idx = np.insert(visited_idx, insert_at, new_ids[kept_mask])
        if collect_edges:
            dst = unique_index[inverse]
            src = src_local + base
            if cutoff >= 0:
                edge_src.append(src[:cutoff])
                edge_t.append(trans[:cutoff])
                edge_dst.append(dst[:cutoff])
            else:
                edge_src.append(src)
                edge_t.append(trans)
                edge_dst.append(dst)
        count += allowed
        if cutoff >= 0:
            break
        base = count - allowed
        frontier = new_rows
        frontier_h1 = h1[kept_first]
        frontier_h2 = h2[kept_first]

    if stop_on_target and target_index is not None:
        # stopped at the target: the graph is (potentially) a prefix
        complete = False

    def concatenated(chunks: List[np.ndarray]) -> np.ndarray:
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    if count < store.shape[0]:
        # release the doubling slack: the matrix may be held for the
        # lifetime of a lazily-viewed graph, the buffer must not be
        store = store[:count].copy()
    return FrontierExploration(
        matrix=store,
        edge_src=concatenated(edge_src),
        edge_transition=concatenated(edge_t),
        edge_dst=concatenated(edge_dst),
        complete=complete,
        target_index=target_index,
    )


def _explore_exact(
    compiled: CompiledNet,
    start: Optional[Sequence[int]],
    max_markings: int,
    target: Optional[Sequence[int]],
    stop_on_target: bool,
    collect_edges: bool,
) -> FrontierExploration:
    """Collision-free scalar fallback on the compiled successor function.

    The same one-marking-at-a-time BFS as the compiled engine
    (:attr:`CompiledNet.expander` plus a tuple-keyed visited dict),
    assembling the integer-array :class:`FrontierExploration` form at
    the end.  It serves two roles: the exact court of appeal when the
    hashed explorer detects a 64-bit collision, and the right engine
    outright for deep-narrow state spaces, where its per-marking cost
    beats any per-level batching.
    """
    start_vector = _start_vector(compiled, start)
    start_tuple = tuple(int(v) for v in start_vector)
    target_tuple = (
        None if target is None else tuple(int(v) for v in target)
    )
    target_index: Optional[int] = None
    if target_tuple is not None and start_tuple == target_tuple:
        target_index = 0

    markings: List[MarkingTuple] = [start_tuple]
    index: dict = {start_tuple: 0}
    edge_src: List[int] = []
    edge_t: List[int] = []
    edge_dst: List[int] = []
    complete = True
    expand = compiled.expander
    queue = deque([0])
    count = 1
    index_get = index.get

    while queue and not (stop_on_target and target_index is not None):
        current_index = queue.popleft()
        current = markings[current_index]
        for transition, successor in expand(current):
            successor_index = index_get(successor)
            if successor_index is None:
                if count >= max_markings:
                    complete = False
                    queue.clear()
                    break
                successor_index = count
                index[successor] = count
                markings.append(successor)
                queue.append(count)
                count += 1
                if target_tuple is not None and successor == target_tuple:
                    target_index = successor_index
            if collect_edges:
                edge_src.append(current_index)
                edge_t.append(transition)
                edge_dst.append(successor_index)
        if not complete:
            break

    if stop_on_target and target_index is not None:
        # stopped at the target: the graph is (potentially) a prefix
        complete = False

    return FrontierExploration(
        matrix=np.array(markings, dtype=np.int64).reshape(
            count, len(compiled.places)
        ),
        edge_src=np.array(edge_src, dtype=np.int64),
        edge_transition=np.array(edge_t, dtype=np.int64),
        edge_dst=np.array(edge_dst, dtype=np.int64),
        complete=complete,
        target_index=target_index,
    )


# ----------------------------------------------------------------------
# Frontier cycle search (the QSS schedulability simulation)
# ----------------------------------------------------------------------
def frontier_firing_order(
    pre: np.ndarray,
    incidence: np.ndarray,
    start: Sequence[int],
    counts: Sequence[int],
    max_states: int = MAX_CYCLE_STATES,
) -> Tuple[Optional[List[int]], bool]:
    """Level-synchronous search for an executable ordering of ``counts``.

    ``pre``/``incidence`` are the ``(K, P)`` preset and incidence rows
    of the K transitions with positive counts (for a T-reduction: the
    masked submatrix over its surviving transitions and places), and
    ``counts`` the required firing count per row.  Each BFS level fires
    one more transition, so level ``L`` holds exactly the distinct
    ``(marking, remaining)`` states reachable in ``L`` firings — states
    of different levels can never be equal, and one :func:`numpy.unique`
    per level (over a contiguous-bytes view of the concatenated state)
    is the entire dedup.

    Returns ``(order, decided)``: ``order`` is a list of row indices
    into ``pre`` realizing the counts (``None`` when no executable
    ordering exists), ``decided`` is False when the ``max_states``
    budget was exhausted first — the caller must then fall back to the
    sequential DFS, whose verdict is always exact.
    """
    pre = np.asarray(pre, dtype=np.int64)
    incidence = np.asarray(incidence, dtype=np.int64)
    counts_vector = np.asarray(tuple(counts), dtype=np.int64)
    total = int(counts_vector.sum())
    if total == 0:
        return [], True
    n_transitions, n_places = pre.shape
    state_bytes = np.dtype((np.void, 8 * (n_places + n_transitions)))

    markings = np.asarray(tuple(start), dtype=np.int64)[np.newaxis, :]
    remaining = counts_vector[np.newaxis, :]
    # per-level parent bookkeeping for path reconstruction: parent[i] is
    # the row index (in the previous level) of state i's predecessor,
    # fired[i] the transition row that produced it
    parent_levels: List[np.ndarray] = []
    fired_levels: List[np.ndarray] = []
    states_seen = 1

    for _ in range(total):
        enabled = (markings[:, np.newaxis, :] >= pre[np.newaxis, :, :]).all(
            axis=2
        ) & (remaining > 0)
        src, trans = np.nonzero(enabled)
        if src.size == 0:
            return None, True
        if states_seen + src.size > max_states:
            # bail BEFORE materializing the successor arrays: the pair
            # count bounds the level's states, and the budget exists
            # precisely to stop runaway allocations (conservative —
            # dedup might have fit — but the DFS fallback is exact)
            return None, False
        succ_m = markings[src] + incidence[trans]
        succ_r = remaining[src].copy()
        succ_r[np.arange(src.size), trans] -= 1
        state = np.ascontiguousarray(
            np.concatenate([succ_m, succ_r], axis=1)
        )
        keys = state.view(state_bytes).ravel()
        _, first = np.unique(keys, return_index=True)
        first.sort()  # keep states in first-occurrence (row-major) order
        states_seen += first.size
        markings = succ_m[first]
        remaining = succ_r[first]
        parent_levels.append(src[first])
        fired_levels.append(trans[first])

    # after `total` firings every surviving state has zero remaining
    # counts; reconstruct the path of the first one
    order: List[int] = []
    state_row = 0
    for level in range(total - 1, -1, -1):
        order.append(int(fired_levels[level][state_row]))
        state_row = int(parent_levels[level][state_row])
    order.reverse()
    return order, True


def named_firing_order(
    pre: np.ndarray,
    incidence: np.ndarray,
    start: Sequence[int],
    names: Sequence[str],
    firing_counts,
    max_states: int = MAX_CYCLE_STATES,
) -> Tuple[Optional[List[str]], bool]:
    """:func:`frontier_firing_order` in the caller's transition-name domain.

    ``names`` lists the counted transitions in the same order as the
    rows of ``pre``/``incidence``; ``firing_counts`` maps each name to
    its positive count.  Shared by the whole-net search
    (:func:`repro.petrinet.simulation.find_firing_sequence`) and the
    masked per-reduction search
    (:meth:`repro.qss.compiled_reduction.CompiledReduction.find_firing_sequence`),
    which differ only in how they slice the matrices.  Returns
    ``(sequence_or_None, decided)`` with the same fallback protocol as
    the row-index form.
    """
    counts = [int(firing_counts[name]) for name in names]
    order, decided = frontier_firing_order(
        pre, incidence, start, counts, max_states
    )
    if not decided or order is None:
        return None, decided
    return [names[k] for k in order], True
