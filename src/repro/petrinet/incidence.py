"""Incidence matrices and the state equation.

The QSS schedulability check relies on the *state equation*
``f(sigma)^T . D = 0`` (Sgroi et al. 1999, Section 2), where ``D`` is the
incidence matrix of the net and ``f(sigma)`` the firing-count vector of a
candidate cyclic sequence.  This module builds the input (``Pre``),
output (``Post``) and incidence (``D = Post - Pre``) matrices with a
fixed, documented row/column ordering so that vectors computed elsewhere
(T-invariants, firing counts) can be mapped back to transition names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .marking import Marking
from .net import PetriNet


@dataclass(frozen=True)
class IncidenceMatrices:
    """Pre/Post/incidence matrices of a net with their index maps.

    Rows are transitions, columns are places (the convention of the paper,
    where the state equation is written ``f^T . D = 0`` with ``f`` indexed
    by transitions).

    Attributes
    ----------
    transitions / places:
        Orderings of the matrix rows / columns.
    pre:
        ``pre[i, j] = F(p_j, t_i)`` — tokens consumed from place ``j`` by
        transition ``i``.
    post:
        ``post[i, j] = F(t_i, p_j)`` — tokens produced into place ``j`` by
        transition ``i``.
    incidence:
        ``post - pre``.
    """

    transitions: Tuple[str, ...]
    places: Tuple[str, ...]
    pre: np.ndarray
    post: np.ndarray
    incidence: np.ndarray

    @property
    def transition_index(self) -> Dict[str, int]:
        return {t: i for i, t in enumerate(self.transitions)}

    @property
    def place_index(self) -> Dict[str, int]:
        return {p: i for i, p in enumerate(self.places)}

    def firing_vector(self, counts: Mapping[str, int]) -> np.ndarray:
        """Convert a ``{transition: count}`` mapping to a row vector."""
        vector = np.zeros(len(self.transitions), dtype=np.int64)
        index = self.transition_index
        for transition, count in counts.items():
            vector[index[transition]] = count
        return vector

    def counts_from_vector(self, vector: Sequence[int]) -> Dict[str, int]:
        """Convert a row vector back to a ``{transition: count}`` mapping,
        dropping zero entries."""
        return {
            t: int(vector[i]) for i, t in enumerate(self.transitions) if vector[i]
        }

    def marking_vector(self, marking: Marking) -> np.ndarray:
        """Convert a marking to a column vector aligned with ``places``."""
        return np.array([marking[p] for p in self.places], dtype=np.int64)

    def marking_from_vector(self, vector: Sequence[int]) -> Marking:
        return Marking({p: int(vector[i]) for i, p in enumerate(self.places)})


def incidence_matrices(net: PetriNet) -> IncidenceMatrices:
    """Build the Pre, Post and incidence matrices of ``net``."""
    transitions = tuple(net.transition_names)
    places = tuple(net.place_names)
    t_index = {t: i for i, t in enumerate(transitions)}
    p_index = {p: i for i, p in enumerate(places)}
    pre = np.zeros((len(transitions), len(places)), dtype=np.int64)
    post = np.zeros((len(transitions), len(places)), dtype=np.int64)
    for arc in net.arcs:
        if arc.source in p_index:
            # place -> transition: consumption
            pre[t_index[arc.target], p_index[arc.source]] = arc.weight
        else:
            # transition -> place: production
            post[t_index[arc.source], p_index[arc.target]] = arc.weight
    return IncidenceMatrices(
        transitions=transitions,
        places=places,
        pre=pre,
        post=post,
        incidence=post - pre,
    )


def apply_state_equation(
    net: PetriNet, marking: Marking, firing_counts: Mapping[str, int]
) -> Marking:
    """Return ``marking + f^T . D`` as a marking.

    This is the marking the net would reach from ``marking`` after firing
    each transition the given number of times *if* a fireable ordering
    exists; negative intermediate results raise
    :class:`~repro.petrinet.exceptions.InvalidMarkingError` through the
    :class:`Marking` constructor, signalling that no such ordering can
    exist for these counts.
    """
    matrices = incidence_matrices(net)
    m0 = matrices.marking_vector(marking)
    f = matrices.firing_vector(firing_counts)
    result = m0 + f @ matrices.incidence
    return matrices.marking_from_vector(result)


def is_firing_count_stationary(
    net: PetriNet, firing_counts: Mapping[str, int]
) -> bool:
    """True if the firing-count vector satisfies ``f^T . D = 0``.

    A stationary (cyclic) firing count returns any marking it is fired
    from to itself, which is the algebraic precondition for a finite
    complete cycle.
    """
    matrices = incidence_matrices(net)
    f = matrices.firing_vector(firing_counts)
    return bool(np.all(f @ matrices.incidence == 0))


def marking_change(
    net: PetriNet, firing_counts: Mapping[str, int]
) -> Dict[str, int]:
    """Return the net token change per place induced by ``firing_counts``."""
    matrices = incidence_matrices(net)
    f = matrices.firing_vector(firing_counts)
    delta = f @ matrices.incidence
    return {p: int(delta[i]) for i, p in enumerate(matrices.places) if delta[i]}
