"""Compiled (integer-indexed) view of a Petri net.

Every hot path of the reproduction — reachability exploration, the QSS
constrained simulation of each T-reduction and the schedule interpreter
— used to run on :class:`~repro.petrinet.net.PetriNet`'s string-keyed
dicts and immutable dict-backed :class:`~repro.petrinet.marking.Marking`
values, so enabledness checks and firing were dominated by string
hashing and dict churn.  :class:`CompiledNet` is the frozen, dense
representation those paths run on instead:

* places and transitions are mapped to dense integer ids (insertion
  order of the source net, so results are reproducible across engines);
* presets/postsets are stored twice: as flat CSR-style numpy arrays
  (``pre_indptr``/``pre_ids``/``pre_weights``) for vectorized analyses,
  and as plain Python tuples of ``(place_id, weight)`` pairs for the
  scalar token-game loops where numpy call overhead would dominate;
* ``pre``/``post``/``incidence`` are dense numpy matrices (rows are
  transitions, columns are places — the convention of
  :mod:`repro.petrinet.incidence`);
* markings are plain integer tuples aligned with ``places`` — hashable,
  O(1) index lookup, and an order of magnitude cheaper to copy and hash
  than dict-backed :class:`Marking` values.

The compiled view is a pure accelerator: it carries the full name
tables, so every id-level result decompiles back to named places and
transitions (:meth:`CompiledNet.decompile`, :meth:`marking_from_tuple`)
and the string-based public API of the library is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .exceptions import NotEnabledError, UnknownNodeError
from .marking import Marking
from .net import PetriNet, Place, Transition

#: The two execution engines offered by analyses that were refactored to
#: run on :class:`CompiledNet`.  ``"compiled"`` is the default; the
#: ``"legacy"`` dict-based path is kept for cross-checking and for the
#: compiled-vs-legacy benchmarks.
ENGINE_COMPILED = "compiled"
ENGINE_LEGACY = "legacy"
ENGINES = (ENGINE_COMPILED, ENGINE_LEGACY)

#: Third engine offered by the state-space searches (reachability,
#: coverability, the QSS cycle search): whole BFS frontiers as
#: ``(N, P)`` numpy matrices instead of one marking at a time.  See
#: :mod:`repro.petrinet.frontier`.  Analyses that are not searches
#: (simulators, the runtime) only accept :data:`ENGINES`.
ENGINE_FRONTIER = "frontier"
SEARCH_ENGINES = (ENGINE_COMPILED, ENGINE_LEGACY, ENGINE_FRONTIER)

#: Fourth engine, offered only by the execution tier (the IR
#: interpreter, the RTOS executive and the metrics built on them): the
#: synthesized C is compiled to a shared library and run natively; see
#: :mod:`repro.codegen.native`.  Falls back to ``"compiled"`` with a
#: warning when the machine has no C compiler.
ENGINE_NATIVE = "native"
EXEC_ENGINES = (ENGINE_COMPILED, ENGINE_LEGACY, ENGINE_NATIVE)

#: A marking in compiled form: token counts indexed by place id.
MarkingTuple = Tuple[int, ...]

#: Sentinel token count representing "unbounded" (omega) in coverability
#: vectors.  Kept negative so a plain ``>=`` comparison against an arc
#: weight is never accidentally true for an omega component; every omega
#: comparison must therefore go through the ``== OMEGA`` masks used by
#: :meth:`CompiledNet.omega_enabled_mask` / :meth:`CompiledNet.omega_fire`.
OMEGA = -1


def validate_engine(engine: str, engines: Tuple[str, ...] = ENGINES) -> str:
    """Validate an ``engine=`` argument, returning it unchanged.

    ``engines`` is the tuple of engines the calling analysis supports:
    :data:`ENGINES` (the default) for token-game/runtime paths, or
    :data:`SEARCH_ENGINES` for the state-space searches that also offer
    the frontier-batched engine.
    """
    if engine not in engines:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {', '.join(engines)}"
        )
    return engine


@dataclass(frozen=True, eq=False)
class CompiledNet:
    """A frozen, integer-indexed compilation of a :class:`PetriNet`.

    Attributes
    ----------
    name:
        Name of the source net (with a ``#compiled`` marker appended by
        :meth:`from_net` so reports can tell the views apart).
    places / transitions:
        Name tables: ``places[i]`` is the name of place id ``i``; both
        follow the insertion order of the source net.
    place_index / transition_index:
        Inverse maps ``{name: id}``.
    pre / post / incidence:
        Dense ``(T, P)`` int64 matrices; ``pre[t, p]`` is the weight of
        the arc ``p -> t``, ``post[t, p]`` of ``t -> p`` and
        ``incidence = post - pre`` (same convention as
        :class:`~repro.petrinet.incidence.IncidenceMatrices`).
    pre_indptr / pre_ids / pre_weights:
        CSR encoding of the transition presets: the input places of
        transition ``t`` are ``pre_ids[pre_indptr[t]:pre_indptr[t+1]]``
        with matching ``pre_weights``.  ``post_*`` encodes the postsets.
    initial:
        The initial marking as a :data:`MarkingTuple`.
    costs:
        Per-transition execution cost (for the runtime cost model).
    """

    name: str
    places: Tuple[str, ...]
    transitions: Tuple[str, ...]
    place_index: Mapping[str, int]
    transition_index: Mapping[str, int]
    pre: np.ndarray
    post: np.ndarray
    incidence: np.ndarray
    pre_indptr: np.ndarray
    pre_ids: np.ndarray
    pre_weights: np.ndarray
    post_indptr: np.ndarray
    post_ids: np.ndarray
    post_weights: np.ndarray
    initial: MarkingTuple
    costs: Tuple[int, ...]
    # scalar fast-path tables: per-transition tuples of (place_id, weight)
    # pairs, and the combined per-transition token delta applied by fire()
    pre_lists: Tuple[Tuple[Tuple[int, int], ...], ...]
    post_lists: Tuple[Tuple[Tuple[int, int], ...], ...]
    delta_lists: Tuple[Tuple[Tuple[int, int], ...], ...]
    # original node records, kept so decompile() restores metadata
    place_records: Tuple[Place, ...]
    transition_records: Tuple[Transition, ...]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_net(cls, net: PetriNet) -> "CompiledNet":
        """Compile ``net`` into its integer-indexed form."""
        place_records = tuple(net.places)
        transition_records = tuple(net.transitions)
        places = tuple(p.name for p in place_records)
        transitions = tuple(t.name for t in transition_records)
        place_index = {p: i for i, p in enumerate(places)}
        transition_index = {t: i for i, t in enumerate(transitions)}
        n_t, n_p = len(transitions), len(places)

        pre = np.zeros((n_t, n_p), dtype=np.int64)
        post = np.zeros((n_t, n_p), dtype=np.int64)
        for arc in net.arcs:
            if arc.source in place_index:
                pre[transition_index[arc.target], place_index[arc.source]] = arc.weight
            else:
                post[transition_index[arc.source], place_index[arc.target]] = arc.weight

        pre_lists: List[Tuple[Tuple[int, int], ...]] = []
        post_lists: List[Tuple[Tuple[int, int], ...]] = []
        delta_lists: List[Tuple[Tuple[int, int], ...]] = []
        for t_id, t_name in enumerate(transitions):
            ins = tuple(
                (place_index[p], w) for p, w in net.preset(t_name).items()
            )
            outs = tuple(
                (place_index[p], w) for p, w in net.postset(t_name).items()
            )
            delta: Dict[int, int] = {}
            for p_id, w in ins:
                delta[p_id] = delta.get(p_id, 0) - w
            for p_id, w in outs:
                delta[p_id] = delta.get(p_id, 0) + w
            pre_lists.append(ins)
            post_lists.append(outs)
            delta_lists.append(tuple((p, d) for p, d in delta.items() if d))

        def csr(lists: Sequence[Tuple[Tuple[int, int], ...]]):
            indptr = np.zeros(n_t + 1, dtype=np.int64)
            ids: List[int] = []
            weights: List[int] = []
            for t_id, pairs in enumerate(lists):
                for p_id, w in pairs:
                    ids.append(p_id)
                    weights.append(w)
                indptr[t_id + 1] = len(ids)
            return (
                indptr,
                np.array(ids, dtype=np.int64),
                np.array(weights, dtype=np.int64),
            )

        pre_indptr, pre_ids, pre_weights = csr(pre_lists)
        post_indptr, post_ids, post_weights = csr(post_lists)

        initial_marking = net.initial_marking
        initial = tuple(initial_marking[p] for p in places)
        return cls(
            name=net.name,
            places=places,
            transitions=transitions,
            place_index=place_index,
            transition_index=transition_index,
            pre=pre,
            post=post,
            incidence=post - pre,
            pre_indptr=pre_indptr,
            pre_ids=pre_ids,
            pre_weights=pre_weights,
            post_indptr=post_indptr,
            post_ids=post_ids,
            post_weights=post_weights,
            initial=initial,
            costs=tuple(t.cost for t in transition_records),
            pre_lists=tuple(pre_lists),
            post_lists=tuple(post_lists),
            delta_lists=tuple(delta_lists),
            place_records=place_records,
            transition_records=transition_records,
        )

    def decompile(self, name: Optional[str] = None) -> PetriNet:
        """Rebuild an equivalent :class:`PetriNet` for diagnostics.

        The result has the same nodes (with metadata), arcs and initial
        marking as the net this view was compiled from.
        """
        net = PetriNet(name=name or self.name)
        for record, tokens in zip(self.place_records, self.initial):
            net.add_place(
                record.name,
                tokens=tokens,
                capacity=record.capacity,
                label=record.label,
            )
        for record in self.transition_records:
            net.add_transition(
                record.name,
                label=record.label,
                cost=record.cost,
                is_source_hint=record.is_source_hint,
                is_sink_hint=record.is_sink_hint,
            )
        for t_id, t_name in enumerate(self.transitions):
            for p_id, weight in self.pre_lists[t_id]:
                net.add_arc(self.places[p_id], t_name, weight)
            for p_id, weight in self.post_lists[t_id]:
                net.add_arc(t_name, self.places[p_id], weight)
        return net

    # ------------------------------------------------------------------
    # Marking conversions
    # ------------------------------------------------------------------
    @property
    def initial_marking(self) -> Marking:
        """The initial marking decompiled to a :class:`Marking`."""
        return self.marking_from_tuple(self.initial)

    def marking_to_tuple(self, marking: Mapping[str, int]) -> MarkingTuple:
        """Convert a name-keyed marking to its compiled tuple form.

        Raises :class:`UnknownNodeError` if the marking puts tokens on a
        place this net does not have — silently dropping them would make
        the compiled engine diverge from the legacy one.
        """
        index = self.place_index
        for place, count in marking.items():
            if count and place not in index:
                raise UnknownNodeError(
                    f"marking has tokens on unknown place {place!r}"
                )
        get = marking.get
        return tuple(get(p, 0) for p in self.places)

    def marking_from_tuple(self, vector: Sequence[int]) -> Marking:
        """Decompile a token vector back to a named :class:`Marking`."""
        # compiled markings are non-negative by construction, so the
        # validating Marking constructor can be bypassed
        return Marking._from_clean(
            {p: int(c) for p, c in zip(self.places, vector) if c}
        )

    def marking_to_array(self, marking: Mapping[str, int]) -> np.ndarray:
        """Convert a name-keyed marking to a numpy token vector."""
        return np.array(self.marking_to_tuple(marking), dtype=np.int64)

    def tokens(self, marking: Sequence[int], place: Union[str, int]) -> int:
        """O(1) token lookup in a compiled marking, by place name or id."""
        if isinstance(place, str):
            place = self.place_index[place]
        return int(marking[place])

    # ------------------------------------------------------------------
    # Id/name translation
    # ------------------------------------------------------------------
    def transition_id(self, transition: str) -> int:
        try:
            return self.transition_index[transition]
        except KeyError:
            raise UnknownNodeError(f"unknown transition {transition!r}") from None

    def place_id(self, place: str) -> int:
        try:
            return self.place_index[place]
        except KeyError:
            raise UnknownNodeError(f"unknown place {place!r}") from None

    def transition_names(self, ids: Iterable[int]) -> List[str]:
        names = self.transitions
        return [names[i] for i in ids]

    def source_transition_ids(self) -> List[int]:
        """Ids of transitions with an empty preset."""
        return [t for t in range(len(self.transitions)) if not self.pre_lists[t]]

    def sink_transition_ids(self) -> List[int]:
        """Ids of transitions with an empty postset."""
        return [t for t in range(len(self.transitions)) if not self.post_lists[t]]

    # ------------------------------------------------------------------
    # Token-game semantics over compiled markings
    # ------------------------------------------------------------------
    def is_enabled(self, transition: int, marking: Sequence[int]) -> bool:
        """True if transition id ``transition`` is enabled in ``marking``."""
        for p_id, weight in self.pre_lists[transition]:
            if marking[p_id] < weight:
                return False
        return True

    @cached_property
    def _enabled_checker(self) -> Callable[[Sequence[int]], List[int]]:
        """Generated straight-line function listing enabled transition ids."""
        lines = ["def enabled(m):", "    out = []", "    a = out.append"]
        for t_id in range(len(self.transitions)):
            checks = " and ".join(
                f"m[{p}] >= {w}" for p, w in self.pre_lists[t_id]
            )
            if checks:
                lines.append(f"    if {checks}: a({t_id})")
            else:
                lines.append(f"    a({t_id})")
        lines.append("    return out")
        namespace: Dict[str, object] = {}
        exec("\n".join(lines), namespace)  # noqa: S102 - generated from ints only
        return namespace["enabled"]  # type: ignore[return-value]

    def enabled_transitions(self, marking: Sequence[int]) -> List[int]:
        """Ids of all enabled transitions, in id (= insertion) order."""
        return self._enabled_checker(marking)

    def enabled_mask(self, markings: Union[Sequence[int], np.ndarray]) -> np.ndarray:
        """Vectorized enabledness over one marking or a batch of markings.

        ``markings`` is a token vector of shape ``(P,)`` or a batch of
        shape ``(N, P)``; the result is a boolean array of shape ``(T,)``
        or ``(N, T)`` with ``True`` where the transition is enabled.

        Callers that already hold an int64 array (the fleet simulator,
        the frontier exploration engine) hit a zero-copy fast path; any
        other input pays exactly one :func:`numpy.asarray` conversion.
        Inputs of more than two dimensions are rejected rather than
        silently broadcast wrong.
        """
        if isinstance(markings, np.ndarray) and markings.dtype == np.int64:
            m = markings
        else:
            m = np.asarray(markings, dtype=np.int64)
        if m.ndim == 1:
            return np.all(m[np.newaxis, :] >= self.pre, axis=1)
        if m.ndim == 2:
            return np.all(m[:, np.newaxis, :] >= self.pre[np.newaxis, :, :], axis=2)
        raise ValueError(
            f"markings must be a (P,) vector or an (N, P) batch, got a "
            f"{m.ndim}-D array"
        )

    def fire(self, transition: int, marking: MarkingTuple) -> MarkingTuple:
        """Fire transition id ``transition``, returning the new marking.

        Raises :class:`NotEnabledError` (with the transition *name*, so
        diagnostics match the legacy engine) when not enabled.
        """
        if not self.is_enabled(transition, marking):
            raise NotEnabledError(
                f"transition {self.transitions[transition]!r} is not enabled "
                f"in marking {self.marking_from_tuple(marking)}"
            )
        return self.fire_unchecked(transition, marking)

    def fire_unchecked(self, transition: int, marking: MarkingTuple) -> MarkingTuple:
        """Fire without the enabledness check (caller guarantees it)."""
        result = list(marking)
        for p_id, delta in self.delta_lists[transition]:
            result[p_id] += delta
        return tuple(result)

    def fire_by_name(self, transition: str, marking: MarkingTuple) -> MarkingTuple:
        return self.fire(self.transition_id(transition), marking)

    @cached_property
    def expander(self) -> Callable[[MarkingTuple], List[Tuple[int, MarkingTuple]]]:
        """A net-specialized successor function, generated and ``exec``-compiled.

        ``expander(marking)`` returns ``[(transition_id, successor), ...]``
        for every enabled transition, in id order — one straight-line
        Python function with the preset checks unrolled into literal
        comparisons and each successor assembled from tuple slices, so
        the per-transition interpretation overhead of the table-driven
        loop disappears.  This is the hottest primitive of reachability
        exploration and free simulation.
        """
        lines = ["def expand(m):", "    out = []", "    a = out.append"]
        for t_id in range(len(self.transitions)):
            checks = " and ".join(
                f"m[{p}] >= {w}" for p, w in self.pre_lists[t_id]
            )
            deltas = sorted(self.delta_lists[t_id])
            # successor tuple from slices of m around the changed indices
            parts: List[str] = []
            cursor = 0
            i = 0
            while i < len(deltas):
                # merge runs of consecutive changed indices into one segment
                j = i
                while j + 1 < len(deltas) and deltas[j + 1][0] == deltas[j][0] + 1:
                    j += 1
                first = deltas[i][0]
                if first > cursor:
                    parts.append(f"m[{cursor}:{first}]")
                segment = ", ".join(
                    f"m[{p}] {'+' if d >= 0 else '-'} {abs(d)}"
                    for p, d in deltas[i : j + 1]
                )
                parts.append(f"({segment},)")
                cursor = deltas[j][0] + 1
                i = j + 1
            if cursor < len(self.places):
                parts.append(f"m[{cursor}:]")
            successor = " + ".join(parts) if parts else "m"
            body = f"a(({t_id}, {successor}))"
            if checks:
                lines.append(f"    if {checks}: {body}")
            else:
                lines.append(f"    {body}")
        lines.append("    return out")
        namespace: Dict[str, object] = {}
        exec("\n".join(lines), namespace)  # noqa: S102 - generated from ints only
        return namespace["expand"]  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Omega (coverability) semantics over numpy token vectors
    # ------------------------------------------------------------------
    def omega_enabled_mask(self, vector: np.ndarray) -> np.ndarray:
        """Vectorized enabledness of every transition in an omega-vector.

        ``vector`` is an int64 array of shape ``(P,)`` whose components
        are token counts or :data:`OMEGA`; an omega component satisfies
        every preset weight.  Returns a boolean array of shape ``(T,)``.
        """
        return np.all((vector >= self.pre) | (vector == OMEGA), axis=1)

    def omega_fire(self, transition: int, vector: np.ndarray) -> np.ndarray:
        """Fire transition id ``transition`` under omega semantics.

        Omega components absorb any finite delta (omega - w = omega + w =
        omega); finite components follow the ordinary incidence row.  The
        caller guarantees enabledness (see :meth:`omega_enabled_mask`).
        """
        return np.where(vector == OMEGA, OMEGA, vector + self.incidence[transition])

    def marking_after_counts(
        self, marking: Sequence[int], counts: Mapping[str, int]
    ) -> np.ndarray:
        """State equation: ``marking + f^T . incidence`` as a numpy vector."""
        f = np.zeros(len(self.transitions), dtype=np.int64)
        for transition, count in counts.items():
            f[self.transition_id(transition)] = count
        return np.asarray(marking, dtype=np.int64) + f @ self.incidence

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.places) + len(self.transitions)

    def __repr__(self) -> str:
        return (
            f"CompiledNet(name={self.name!r}, places={len(self.places)}, "
            f"transitions={len(self.transitions)}, "
            f"arcs={int(self.pre_indptr[-1] + self.post_indptr[-1])})"
        )


def compile_net(net: Union[PetriNet, CompiledNet]) -> CompiledNet:
    """Return the compiled view of ``net`` (no-op on compiled input)."""
    if isinstance(net, CompiledNet):
        return net
    return CompiledNet.from_net(net)
