"""Command-line interface to the synthesis flow.

The CLI exposes the complete paper flow on nets stored in the JSON format
of :mod:`repro.petrinet.serialization`, so the tool can be used without
writing Python:

.. code-block:: console

    $ repro-qss info model.json            # structural summary and class
    $ repro-qss analyse model.json         # schedulability + valid schedule
    $ repro-qss synthesize model.json -o model.c   # generate the C code
    $ repro-qss emit model.json --driver -o unit.c # C + native driver
    $ repro-qss dot model.json -o model.dot        # Graphviz export
    $ repro-qss gallery figure4 -o fig4.json       # dump a paper figure net
    $ repro-qss atm-table1 --cells 50      # reproduce Table I
    $ repro-qss corpus --n 200 --workers 4 --json corpus.json
                                           # stress-analyse 200 generated nets
    $ repro-qss corpus --n 200 --workers 4 --analyse qss --csv sweep.csv
                                           # parallel schedulability sweep
    $ repro-qss serve --instances 1000 --events 50
                                           # execute an ATM server fleet

Every subcommand returns a process exit code of 0 on success, 1 when the
analysis reports a negative result (e.g. the net is not schedulable) and
2 on usage errors, so the tool composes with shell scripts and CI jobs.

Analysis subcommands accept ``--engine`` (default ``compiled``):
``compiled`` runs on the integer-indexed
:class:`~repro.petrinet.compiled.CompiledNet` core and ``legacy`` on
the original dict-based token game.  The state-space subcommands
(``analyse``, ``synthesize``, ``gallery``, ``corpus``) additionally
accept ``frontier`` — the batched vectorized exploration engine of
:mod:`repro.petrinet.frontier` — and the execution subcommand
(``atm-table1``) accepts ``native`` — the synthesized C compiled to a
shared library (:mod:`repro.codegen.native`), falling back to
``compiled`` with a warning when no C compiler is available.  All
engines produce identical verdicts; the flag exists so each path can
be exercised (and timed) from the shell.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .analysis import build_comparison, render_corpus_summary
from .apps import atm, heating, router
from .codegen import EmitOptions, emit_c, native_source, synthesize
from .gallery import paper_figures
from .petrinet import (
    ENGINE_COMPILED,
    ENGINE_FRONTIER,
    ENGINE_NATIVE,
    ENGINES,
    EXEC_ENGINES,
    SEARCH_ENGINES,
    classify,
    is_free_choice,
    load_net,
    net_to_dot,
    save_net,
)
from .petrinet.corpus import (
    CORPUS_ANALYSES,
    CORPUS_FAMILIES,
    CORPUS_SCHEMA,
    corpus_to_csv,
    corpus_to_json_dict,
    generate_corpus,
    run_corpus,
)
from .petrinet.corpus_schema import (
    CorpusSchemaError,
    validate_corpus_document,
    validate_corpus_file,
)
from .petrinet.exceptions import PetriNetError
from .qss import analyse, partition_tasks
from .runtime import (
    ARRIVAL_PROCESSES,
    FleetSimulator,
    ModuleAssignment,
    parse_timing,
    synthetic_streams,
)


def _load(path: str):
    try:
        return load_net(path)
    except (OSError, PetriNetError) as error:
        raise SystemExit(f"error: cannot load net from {path}: {error}")


def _write_or_print(text: str, output: Optional[str]) -> None:
    if output:
        Path(output).write_text(text, encoding="utf-8")
    else:
        print(text)


def cmd_info(args: argparse.Namespace) -> int:
    net = _load(args.net)
    print(net.summary())
    print(f"class           : {classify(net)}")
    print(f"free choice     : {is_free_choice(net)}")
    print(f"source inputs   : {net.source_transitions()}")
    print(f"choice places   : {net.choice_places()}")
    return 0


def cmd_analyse(args: argparse.Namespace) -> int:
    net = _load(args.net)
    report = analyse(
        net,
        engine=args.engine,
        fail_fast=args.fail_fast,
        workers=args.workers,
    )
    print(report.explain())
    if report.schedulable and report.schedule is not None:
        if args.show_schedule:
            print(report.schedule.describe())
        partition = partition_tasks(report.schedule)
        print(partition.describe())
    return 0 if report.schedulable else 1


def cmd_synthesize(args: argparse.Namespace) -> int:
    net = _load(args.net)
    report = analyse(net, engine=args.engine)
    if not report.schedulable or report.schedule is None:
        print(report.explain(), file=sys.stderr)
        return 1
    program = synthesize(report.schedule)
    emission = emit_c(
        program, EmitOptions(standalone_loop=args.standalone_loop)
    )
    _write_or_print(emission.source, args.output)
    print(
        f"synthesized {program.task_count} task(s), "
        f"{emission.lines_of_code} lines of C",
        file=sys.stderr,
    )
    return 0


def cmd_emit(args: argparse.Namespace) -> int:
    net = _load(args.net)
    report = analyse(net, engine=args.engine)
    if not report.schedulable or report.schedule is None:
        print(report.explain(), file=sys.stderr)
        return 1
    program = synthesize(report.schedule)
    if args.driver:
        if args.standalone_loop:
            print(
                "error: --driver emits RTOS-callable entry points; "
                "drop --standalone-loop",
                file=sys.stderr,
            )
            return 2
        text = native_source(program)
        what = "C translation unit with native driver"
    else:
        emission = emit_c(
            program, EmitOptions(standalone_loop=args.standalone_loop)
        )
        text = emission.source
        what = f"{emission.lines_of_code} lines of C"
    _write_or_print(text, args.output)
    print(
        f"emitted {program.task_count} task(s), {what}",
        file=sys.stderr,
    )
    return 0


def cmd_dot(args: argparse.Namespace) -> int:
    net = _load(args.net)
    _write_or_print(net_to_dot(net, title=args.title or net.name), args.output)
    return 0


def cmd_gallery(args: argparse.Namespace) -> int:
    figures = paper_figures()
    if args.figure == "list" or args.figure not in figures:
        print("available figures:", ", ".join(sorted(figures)))
        return 0 if args.figure == "list" else 2
    net = figures[args.figure]()
    if args.analyse:
        if args.output:
            print(
                "error: --analyse does not write a net; drop -o/--output",
                file=sys.stderr,
            )
            return 2
        try:
            report = analyse(net, engine=args.engine)
        except PetriNetError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(report.explain())
        return 0 if report.schedulable else 1
    if args.output:
        save_net(net, args.output)
        print(f"wrote {args.figure} to {args.output}")
    else:
        from .petrinet import net_to_json

        print(net_to_json(net))
    return 0


def cmd_atm_table1(args: argparse.Namespace) -> int:
    net = atm.build_atm_server_net()
    events = atm.make_testbench(cells=args.cells, seed=args.seed)
    table = build_comparison(
        net,
        atm.MODULE_PARTITION,
        events,
        title="Table I (reproduced)",
        engine=args.engine,
    )
    print(table.render())
    ratio = table.ratio("clock_cycles", "QSS", "Functional task partitioning")
    print(f"functional / QSS clock-cycle ratio: {ratio:.3f}")
    return 0


def _parse_family_args(text: str, parser: argparse.ArgumentParser):
    """Parse the ``k=v,k=v`` tail of ``--family NAME:ARGS``."""
    overrides = {}
    for pair in text.split(","):
        if not pair:
            continue
        key, sep, value = pair.partition("=")
        if not sep or not key:
            parser.error(
                f"argument --family: bad parameter {pair!r} (expected key=value)"
            )
        if value.lower() in ("true", "false"):
            overrides[key] = value.lower() == "true"
        else:
            try:
                overrides[key] = int(value)
            except ValueError:
                overrides[key] = value
    return overrides


#: The built-in application case studies: builder, functional-module
#: partition, native arrival process, and per-fleet testbench maker
#: (the ``--events`` count maps to the family's driving input: ATM
#: cells, router packets, heating samples).
_APP_FAMILIES = {
    "atm": (
        atm.build_atm_server_net,
        atm.MODULE_PARTITION,
        "exponential",
        lambda instances, events, seed, arrival: atm.make_fleet_testbench(
            instances, cells=events, seed=seed, arrival=arrival
        ),
    ),
    "router": (
        router.build_router_net,
        router.MODULE_PARTITION,
        "bursty",
        lambda instances, events, seed, arrival: router.make_fleet_testbench(
            instances, packets=events, seed=seed, arrival=arrival
        ),
    ),
    "heating": (
        heating.build_heating_net,
        heating.MODULE_PARTITION,
        "diurnal",
        lambda instances, events, seed, arrival: heating.make_fleet_testbench(
            instances, samples=events, seed=seed, arrival=arrival
        ),
    ),
}


def _serve_family_names() -> List[str]:
    # the app families shadow their same-named corpus entries (the serve
    # path uses the realistic testbenches, not synthetic streams)
    return sorted(set(_APP_FAMILIES) | set(CORPUS_FAMILIES))


def _serve_workload(args: argparse.Namespace, parser: argparse.ArgumentParser):
    """Resolve ``--family`` into (net, assignment, per-instance streams)."""
    name, _, argstr = args.family.partition(":")
    app = _APP_FAMILIES.get(name)
    if app is not None:
        if argstr:
            parser.error(
                f"argument --family: the built-in {name!r} family takes no "
                "parameters"
            )
        build, partition_groups, native_arrival, bench = app
        net = build()
        arrival = args.arrival or native_arrival
        streams = bench(args.instances, args.events, args.seed, arrival)
        if args.partition == "modules":
            assignment = ModuleAssignment.from_groups(partition_groups)
        else:
            assignment = ModuleAssignment.single_task(net)
        return net, assignment, streams
    family = CORPUS_FAMILIES.get(name)
    if family is None:
        valid = ", ".join(_serve_family_names())
        parser.error(
            f"argument --family: unknown family {name!r} (valid: {valid})"
        )
    params = family.spec(args.seed).param_dict
    overrides = _parse_family_args(argstr, parser) if argstr else {}
    unknown = set(overrides) - set(params)
    if unknown:
        parser.error(
            f"argument --family: unknown parameter(s) "
            f"{', '.join(sorted(unknown))} for family {name!r} "
            f"(valid: {', '.join(sorted(params))})"
        )
    params.update(overrides)
    net = family.build(args.seed, params)
    streams = synthetic_streams(
        net,
        args.instances,
        args.events,
        seed=args.seed,
        arrival=args.arrival or "exponential",
    )
    return net, ModuleAssignment.single_task(net), streams


def _validate_serve_args(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> None:
    """Up-front validation of serve flag combinations (exit code 2)."""
    service_mode = (
        args.shards is not None
        or args.listen is not None
        or args.duration is not None
        or args.telemetry is not None
    )
    if args.instances < 0 or (args.instances == 0 and args.listen is None):
        # with --listen the generated testbench is not fed; instances
        # register lazily as events arrive, so an empty fleet is fine
        parser.error("argument --instances: must be positive")
    if args.events <= 0 and not args.listen:
        parser.error("argument --events: must be positive")
    if args.workers <= 0:
        parser.error("argument --workers: must be positive")
    if args.shards is not None and args.shards <= 0:
        parser.error("argument --shards: must be positive")
    if args.workers > 1 and service_mode:
        parser.error(
            "argument --workers: shards the one-shot batch run over a "
            "process pool; use --shards (and --backend process) for the "
            "always-on service"
        )
    if args.inbox_limit is not None and args.inbox_limit <= 0:
        parser.error("argument --inbox-limit: must be positive")
    if args.inbox_limit is not None and not service_mode:
        parser.error(
            "argument --inbox-limit: only meaningful in service mode "
            "(use --shards, --listen or --telemetry)"
        )
    if args.duration is not None and args.duration <= 0:
        parser.error("argument --duration: must be positive")
    if args.duration is not None and args.listen is None:
        parser.error(
            "argument --duration: only meaningful with --listen (the "
            "in-process service drains its generated streams and stops)"
        )
    if service_mode and args.engine != ENGINE_COMPILED:
        parser.error(
            "argument --engine: the service runs on the compiled kernel; "
            "legacy is only available for the one-shot batch run"
        )
    family_name = args.family.partition(":")[0]
    if family_name not in _APP_FAMILIES and family_name not in CORPUS_FAMILIES:
        valid = ", ".join(_serve_family_names())
        parser.error(
            f"argument --family: unknown family {family_name!r} "
            f"(valid: {valid})"
        )
    if args.partition == "modules" and family_name not in _APP_FAMILIES:
        parser.error(
            "argument --partition: the 'modules' partition needs an "
            "application family "
            f"({', '.join(sorted(_APP_FAMILIES))}); corpus families run "
            "with --partition single"
        )
    if args.partition is None:
        args.partition = "modules" if family_name in _APP_FAMILIES else "single"
    if args.listen is not None:
        host, sep, port = args.listen.rpartition(":")
        if not sep or not host:
            parser.error(
                "argument --listen: expected HOST:PORT "
                "(e.g. 127.0.0.1:9500)"
            )
        try:
            args.listen_host, args.listen_port = host, int(port)
        except ValueError:
            parser.error(f"argument --listen: bad port {port!r}")


async def _serve_service(
    args: argparse.Namespace, net, assignment, streams, timing
) -> int:
    import asyncio as aio
    import time as time_mod

    from .service import (
        DEFAULT_INBOX_LIMIT,
        TELEMETRY_SCHEMA,
        FleetSupervisor,
        IngestServer,
        InjectBatch,
        TelemetryWriter,
        events_to_injects,
    )

    shards = args.shards or 1
    supervisor = FleetSupervisor(
        net,
        assignment,
        shards=shards,
        backend=args.backend,
        inbox_limit=(
            args.inbox_limit
            if args.inbox_limit is not None
            else DEFAULT_INBOX_LIMIT
        ),
        timing=timing,
    )
    await supervisor.start()
    started = time_mod.monotonic()
    telemetry = TelemetryWriter(args.telemetry) if args.telemetry else None
    last_events: dict = {}

    async def sample() -> None:
        snapshot = await supervisor.snapshot()
        elapsed = time_mod.monotonic() - started
        records = [
            {
                "schema": TELEMETRY_SCHEMA,
                "kind": "shard",
                "shard": s.shard,
                "elapsed_seconds": elapsed,
                "instances": s.instances,
                "events": s.events,
                "events_delta": s.events - last_events.get(s.shard, 0),
                "throughput_eps": s.throughput_eps,
                "queue_depth": s.queue_depth,
                "budget_stops": s.budget_stops,
                "cycle_percentiles": dict(s.percentiles),
            }
            for s in snapshot.shards
        ]
        for s in snapshot.shards:
            last_events[s.shard] = s.events
        records.append(
            {
                "schema": TELEMETRY_SCHEMA,
                "kind": "aggregate",
                "elapsed_seconds": elapsed,
                "instances": snapshot.instances,
                "events": snapshot.events,
                "events_delta": snapshot.events
                - last_events.get("aggregate", 0),
                "throughput_eps": (
                    snapshot.events / elapsed if elapsed > 0 else 0.0
                ),
                "queue_depth": sum(s.queue_depth for s in snapshot.shards),
                "budget_stops": snapshot.budget_stops,
                "cycle_percentiles": {},
            }
        )
        last_events["aggregate"] = snapshot.events
        for record in records:
            telemetry.emit(record)
        telemetry.flush()  # one buffered write per sampling tick

    async def sampler() -> None:
        while True:
            await aio.sleep(args.telemetry_interval)
            await sample()

    sampler_task = aio.create_task(sampler()) if telemetry else None
    try:
        if args.listen is not None:
            server = IngestServer(
                supervisor, host=args.listen_host, port=args.listen_port
            )
            host, port = await server.start()
            print(f"listening on {host}:{port} ({shards} shard(s))", flush=True)
            try:
                waiter = aio.create_task(server.shutdown_requested.wait())
                try:
                    await aio.wait_for(aio.shield(waiter), timeout=args.duration)
                except aio.TimeoutError:
                    waiter.cancel()
            finally:
                await server.stop()
        else:
            injects = events_to_injects(streams)
            for i in range(0, len(injects), 512):
                await supervisor.inject(
                    InjectBatch(events=tuple(injects[i : i + 512]))
                )
    finally:
        if sampler_task is not None:
            sampler_task.cancel()
            try:
                await sampler_task
            except aio.CancelledError:
                pass
        if telemetry is not None:
            await sample()
        result = await supervisor.stop(drain=True)
        if telemetry is not None:
            telemetry.close()
    print(result.describe())
    print(
        f"served {result.stats.events_processed} events across "
        f"{result.instances} instance(s) in {result.elapsed_seconds:.3f}s "
        f"({shards} shard(s), {args.backend} backend, "
        f"{args.partition} partition)"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    parser = args.serve_parser
    _validate_serve_args(args, parser)
    net, assignment, streams = _serve_workload(args, parser)
    try:
        timing = parse_timing(args.timing, net, seed=args.seed)
    except ValueError as error:
        parser.error(f"argument --timing: {error}")
    service_mode = (
        args.shards is not None
        or args.listen is not None
        or args.telemetry is not None
    )
    if service_mode:
        import asyncio

        return asyncio.run(
            _serve_service(args, net, assignment, streams, timing)
        )
    fleet = FleetSimulator(net, assignment, engine=args.engine, timing=timing)
    result = fleet.run(streams, workers=args.workers)
    print(result.describe())
    print(
        f"served {result.stats.events_processed} events across "
        f"{result.instances} instance(s) in {result.elapsed_seconds:.3f}s "
        f"({args.engine} engine, {args.partition} partition)"
    )
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    if args.list_families:
        print("available families:", ", ".join(sorted(CORPUS_FAMILIES)))
        return 0
    if args.validate_json:
        try:
            doc = validate_corpus_file(args.validate_json)
        except OSError as error:
            print(f"error: cannot read {args.validate_json}: {error}", file=sys.stderr)
            return 2
        except CorpusSchemaError as error:
            print(f"error: {args.validate_json}: {error}", file=sys.stderr)
            return 1
        print(
            f"{args.validate_json}: valid {CORPUS_SCHEMA} document "
            f"({doc['n']} record(s), {doc['analyse']} mode)"
        )
        return 0
    families = args.families.split(",") if args.families else None
    try:
        specs = generate_corpus(args.n, seed=args.seed, families=families)
    except (KeyError, ValueError) as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if (args.memory_budget or args.spill_dir) and args.engine != ENGINE_FRONTIER:
        print(
            "error: --memory-budget/--spill-dir require --engine frontier",
            file=sys.stderr,
        )
        return 2
    try:
        result = run_corpus(
            specs,
            workers=args.workers,
            max_markings=args.max_markings,
            max_nodes=args.max_nodes,
            engine=args.engine,
            analyse=args.analyse,
            memory_budget=args.memory_budget,
            spill_dir=args.spill_dir,
        )
    except ValueError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    summary = corpus_to_json_dict(result)
    # the CLI never emits a document it would refuse to validate
    validate_corpus_document(summary)
    if args.json:
        import json

        Path(args.json).write_text(
            json.dumps(summary, indent=2, sort_keys=False) + "\n", encoding="utf-8"
        )
    if args.csv:
        corpus_to_csv(result, args.csv)
    print(render_corpus_summary(summary["summary"]))
    print(
        f"analysed {len(result.records)} nets with {result.workers} worker(s) "
        f"in {result.elapsed_seconds:.2f}s "
        f"({args.engine} engine, {args.analyse} mode)"
    )
    if result.errors:
        for record in result.errors:
            print(
                f"error: {record.family} seed={record.seed}: {record.error}",
                file=sys.stderr,
            )
        return 1
    return 0


def _add_engine_flag(
    parser: argparse.ArgumentParser, engines: tuple = ENGINES
) -> None:
    if ENGINE_FRONTIER in engines:
        help_text = (
            "execution core: the integer-indexed compiled engine "
            "(default), the legacy dict-based token game, or the "
            "frontier-batched vectorized state-space engine"
        )
    elif ENGINE_NATIVE in engines:
        help_text = (
            "execution core: the integer-indexed compiled engine "
            "(default), the legacy dict-based token game, or the "
            "synthesized C compiled to a shared library (falls back "
            "to compiled with a warning when no C compiler exists)"
        )
    else:
        help_text = (
            "execution core: the integer-indexed compiled engine "
            "(default) or the legacy dict-based token game"
        )
    parser.add_argument(
        "--engine",
        choices=engines,
        default=ENGINE_COMPILED,
        help=help_text,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-qss",
        description="Quasi-static scheduling and software synthesis from FCPNs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="structural summary of a net")
    p_info.add_argument("net", help="net description (JSON)")
    p_info.set_defaults(func=cmd_info)

    p_analyse = sub.add_parser("analyse", help="check quasi-static schedulability")
    p_analyse.add_argument("net")
    p_analyse.add_argument(
        "--show-schedule", action="store_true", help="print every finite complete cycle"
    )
    p_analyse.add_argument(
        "--fail-fast",
        action="store_true",
        help="stop at the first unschedulable T-reduction "
        "(the report shows the partial verdicts)",
    )
    p_analyse.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process pool size for the per-reduction checks; "
        "1 runs sequentially in-process",
    )
    _add_engine_flag(p_analyse, SEARCH_ENGINES)
    p_analyse.set_defaults(func=cmd_analyse)

    p_synth = sub.add_parser("synthesize", help="generate the C implementation")
    p_synth.add_argument("net")
    p_synth.add_argument("-o", "--output", help="write the C source to this file")
    p_synth.add_argument(
        "--standalone-loop",
        action="store_true",
        help="wrap each task in while(1) (the paper's listing style)",
    )
    _add_engine_flag(p_synth, SEARCH_ENGINES)
    p_synth.set_defaults(func=cmd_synthesize)

    p_emit = sub.add_parser(
        "emit",
        help="write the generated C (optionally with the native driver) "
        "to a file or stdout",
    )
    p_emit.add_argument("net")
    p_emit.add_argument("-o", "--output", help="write the C source to this file")
    p_emit.add_argument(
        "--standalone-loop",
        action="store_true",
        help="wrap each task in while(1) (the paper's listing style)",
    )
    p_emit.add_argument(
        "--driver",
        action="store_true",
        help="append the generated native driver (the self-contained "
        "translation unit the native execution tier compiles)",
    )
    _add_engine_flag(p_emit, SEARCH_ENGINES)
    p_emit.set_defaults(func=cmd_emit)

    p_dot = sub.add_parser("dot", help="export the net as Graphviz DOT")
    p_dot.add_argument("net")
    p_dot.add_argument("-o", "--output")
    p_dot.add_argument("--title")
    p_dot.set_defaults(func=cmd_dot)

    p_gallery = sub.add_parser("gallery", help="dump one of the paper's figure nets")
    p_gallery.add_argument("figure", help="figure id (or 'list')")
    p_gallery.add_argument("-o", "--output", help="write JSON to this file")
    p_gallery.add_argument(
        "--analyse",
        action="store_true",
        help="run the QSS analysis on the figure instead of dumping it",
    )
    _add_engine_flag(p_gallery, SEARCH_ENGINES)
    p_gallery.set_defaults(func=cmd_gallery)

    p_corpus = sub.add_parser(
        "corpus",
        help="generate a corpus of nets and stress-analyse it in parallel",
    )
    p_corpus.add_argument(
        "--n", type=int, default=50, help="number of nets to generate (default 50)"
    )
    p_corpus.add_argument("--seed", type=int, default=0, help="corpus seed")
    p_corpus.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process pool size; 1 runs sequentially in-process",
    )
    p_corpus.add_argument(
        "--families",
        help="comma-separated family subset (default: all; see --list-families)",
    )
    p_corpus.add_argument(
        "--list-families",
        action="store_true",
        help="print the registered generator families and exit",
    )
    p_corpus.add_argument(
        "--analyse",
        choices=CORPUS_ANALYSES,
        default="properties",
        help="analysis per net: the full property pipeline (default), "
        "the QSS schedulability sweep (verdict, allocation/reduction "
        "counts, cycle lengths), or the runtime throughput sweep "
        "(fleet execution: events served, cycle percentiles, events/s)",
    )
    p_corpus.add_argument("--json", help="write the JSON summary to this file")
    p_corpus.add_argument("--csv", help="write one CSV row per net to this file")
    p_corpus.add_argument(
        "--validate-json",
        metavar="FILE",
        help="validate FILE against the repro-qss.corpus/3 schema (exact "
        "field sets, per-field types, cross-field invariants) and exit: "
        "0 valid, 1 schema violation (the offending path is printed), "
        "2 unreadable file",
    )
    p_corpus.add_argument(
        "--max-markings",
        type=int,
        default=2_000,
        help="reachability cap per net for deadlock/liveness checks",
    )
    p_corpus.add_argument(
        "--max-nodes",
        type=int,
        default=2_500,
        help="Karp-Miller node cap per net for the coverability check",
    )
    p_corpus.add_argument(
        "--memory-budget",
        help="out-of-core RAM budget per net for --engine frontier "
        "(bytes, or a suffixed size like 64MB/2GiB); exploration spills "
        "visited-set shards and marking logs to disk past the budget",
    )
    p_corpus.add_argument(
        "--spill-dir",
        help="directory for out-of-core spill files (default: a private "
        "temp directory, removed after each net); requires --memory-budget "
        "or is used standalone to force the spilling code path",
    )
    _add_engine_flag(p_corpus, SEARCH_ENGINES)
    p_corpus.set_defaults(func=cmd_corpus)

    p_serve = sub.add_parser(
        "serve",
        help="execute a fleet of net instances: one-shot batch run or the "
        "always-on sharded service",
    )
    p_serve.add_argument(
        "--instances",
        type=int,
        default=100,
        help="number of concurrent server instances (default 100)",
    )
    p_serve.add_argument(
        "--events",
        type=int,
        default=50,
        help="events per instance; for the ATM family the periodic Ticks "
        "ride along (default 50, the Table I testbench size)",
    )
    p_serve.add_argument("--seed", type=int, default=2026, help="fleet seed")
    p_serve.add_argument(
        "--family",
        default="atm",
        help="workload family: an application case study — 'atm' (the "
        "Section 5 server, default), 'router' (packet line card, bursty "
        "traffic) or 'heating' (control plant, diurnal setpoints) — or "
        "any corpus generator family, optionally with NAME:key=value,... "
        "parameter overrides (see `repro-qss corpus --list-families`)",
    )
    p_serve.add_argument(
        "--arrival",
        choices=ARRIVAL_PROCESSES,
        default=None,
        help="arrival process of the per-instance event streams: "
        "exponential (memoryless), bursty (packet trains separated by "
        "idle gaps) or diurnal (sinusoidally rate-modulated); the "
        "default is the family's native process (atm and corpus "
        "families: exponential, router: bursty, heating: diurnal)",
    )
    p_serve.add_argument(
        "--timing",
        default="none",
        metavar="SPEC",
        help="timed firing delays, charged in integer ticks per firing "
        "and reported as per-instance delay percentiles: 'none' "
        "(untimed, default), 'fixed:N' (every transition costs N "
        "ticks) or 'uniform:LOW-HIGH' (per-transition costs drawn "
        "reproducibly from [LOW, HIGH] with the fleet seed)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the one-shot batch run over a process pool; "
        "1 runs in-process (service mode uses --shards instead)",
    )
    p_serve.add_argument(
        "--partition",
        choices=("modules", "single"),
        default=None,
        help="task partition: one task per functional module (the ATM "
        "default; pays inter-task queue traffic) or a single "
        "run-to-completion task (the only choice for corpus families)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="run as the always-on actor service with this many shard "
        "actors (hash-sharded instance routing, drain-and-stop)",
    )
    p_serve.add_argument(
        "--backend",
        choices=("async", "process"),
        default="async",
        help="shard backend for service mode: asyncio tasks in-process "
        "(default) or one multiprocessing worker per shard",
    )
    p_serve.add_argument(
        "--inbox-limit",
        type=int,
        default=None,
        metavar="N",
        help="bounded shard-inbox capacity in messages (default 1024); "
        "producers suspend while a shard's inbox is full — this is the "
        "service's backpressure knob (smaller = tighter latency bound, "
        "larger = more burst absorption)",
    )
    p_serve.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="serve events from a line-delimited-JSON socket instead of "
        "generated streams (implies service mode; port 0 picks a free port)",
    )
    p_serve.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --listen: drain and stop after this many seconds "
        "(otherwise the service runs until a client sends shutdown)",
    )
    p_serve.add_argument(
        "--telemetry",
        default=None,
        metavar="FILE",
        help="append versioned JSON-lines telemetry (per-shard throughput, "
        "queue depth, budget stops, cycle percentiles) to FILE while "
        "the service runs (implies service mode)",
    )
    p_serve.add_argument(
        "--telemetry-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="telemetry sampling period (default 0.5s)",
    )
    _add_engine_flag(p_serve)
    p_serve.set_defaults(func=cmd_serve, serve_parser=p_serve)

    p_table1 = sub.add_parser("atm-table1", help="reproduce Table I on the ATM server")
    p_table1.add_argument("--cells", type=int, default=50)
    p_table1.add_argument("--seed", type=int, default=2026)
    _add_engine_flag(p_table1, EXEC_ENGINES)
    p_table1.set_defaults(func=cmd_atm_table1)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
