"""FCPN model of a heating-control plant.

A third case study from the paper's embedded-control domain: the
controller of a hydronic heating plant.  Two independent-rate
environment inputs drive it — *Sample*, the periodic temperature
reading delivered by the sensor loop, and *Setpoint*, the irregular
(diurnal, in practice: people adjust thermostats in the morning and
evening) operator request to change the target temperature.  The
data-dependent choices resolve on sensor values and request contents:

* C1 ``p_band_state``: reading below / within / above the comfort band
  (a three-way free choice);
* C2 ``p_boost_state``: an under-temperature reading heats normally or
  engages the boost stage;
* C3 ``p_valid_state``: a setpoint request validates or is rejected;
* C4 ``p_gain_state``: an accepted setpoint recomputes controller gains
  with the quick incremental update or the full schedule.

Every event quiesces, the net is free choice, bounded and
quasi-statically schedulable, so the whole pipeline (properties, QSS
synthesis, codegen, serving) applies unchanged.
"""

from __future__ import annotations

from typing import Dict, List

from ...petrinet import NetBuilder, PetriNet

#: The two independent-rate environment inputs.
SAMPLE_SOURCE = "t_sample"
SETPOINT_SOURCE = "t_setpoint"

#: Choice places resolved while processing a Sample event.
SAMPLE_CHOICES = (
    "p_band_state",   # C1: below / within / above the comfort band
    "p_boost_state",  # C2: normal heat or boost stage
)

#: Choice places resolved while processing a Setpoint event.
SETPOINT_CHOICES = (
    "p_valid_state",  # C3: request valid / rejected
    "p_gain_state",   # C4: quick or full gain recomputation
)

#: All 4 non-deterministic choices of the model.
HEATING_CHOICE_PLACES = SAMPLE_CHOICES + SETPOINT_CHOICES

#: Functional module of every transition; the ``modules`` partition of
#: ``repro-qss serve --family heating``.
MODULE_PARTITION: Dict[str, List[str]] = {
    "sensor": [
        "t_sample",
        "t_filter_reading",
    ],
    "controller": [
        "t_band_low",
        "t_band_ok",
        "t_band_high",
        "t_hold_state",
        "t_heat_normal",
        "t_heat_boost",
        "t_valve_close",
        "t_accept_setpoint",
        "t_gain_quick",
        "t_gain_full",
        "t_commit_params",
    ],
    "actuator": [
        "t_drive_valve",
        "t_ack_actuation",
    ],
    "ui": [
        "t_setpoint",
        "t_validate_request",
        "t_reject_setpoint",
        "t_notify_ui",
        "t_log_sample",
    ],
}

#: Abstract execution cost per transition; the control-law computations
#: (filtering, gain recomputation) are the heavy steps.
_TRANSITION_COSTS: Dict[str, int] = {
    "t_sample": 1,
    "t_filter_reading": 4,
    "t_band_low": 1,
    "t_band_ok": 1,
    "t_band_high": 1,
    "t_hold_state": 1,
    "t_heat_normal": 2,
    "t_heat_boost": 3,
    "t_valve_close": 2,
    "t_drive_valve": 3,
    "t_ack_actuation": 1,
    "t_log_sample": 1,
    "t_setpoint": 1,
    "t_validate_request": 3,
    "t_reject_setpoint": 1,
    "t_notify_ui": 2,
    "t_accept_setpoint": 2,
    "t_gain_quick": 2,
    "t_gain_full": 6,
    "t_commit_params": 1,
}


def build_heating_net() -> PetriNet:
    """Build the heating-plant FCPN (20 transitions, 4 free choices)."""
    b = NetBuilder("heating_plant")

    def t(name: str) -> str:
        b.transition(name, cost=_TRANSITION_COSTS.get(name, 1))
        return name

    # ------------------------------------------------------------------
    # Sample path: filter -> band decision -> actuation -> log
    # ------------------------------------------------------------------
    b.source(SAMPLE_SOURCE, label="Temperature sample",
             cost=_TRANSITION_COSTS["t_sample"])
    b.arc(SAMPLE_SOURCE, "p_reading_raw")
    b.arc("p_reading_raw", t("t_filter_reading"))
    b.arc("t_filter_reading", "p_band_state")
    # the raw reading travels in parallel for the log entry
    b.arc("t_filter_reading", "p_sample_meta")
    # C1: three-way comfort-band decision
    b.arc("p_band_state", t("t_band_low"))
    b.arc("p_band_state", t("t_band_ok"))
    b.arc("p_band_state", t("t_band_high"))
    # within band: hold the current actuation
    b.arc("t_band_ok", "p_hold")
    b.arc("p_hold", t("t_hold_state"))
    b.arc("t_hold_state", "p_sample_done")
    # below band: heat, normally or with the boost stage
    b.arc("t_band_low", "p_boost_state")
    # C2: boost decision
    b.arc("p_boost_state", t("t_heat_normal"))
    b.arc("p_boost_state", t("t_heat_boost"))
    b.arc("t_heat_normal", "p_valve_cmd")
    b.arc("t_heat_boost", "p_valve_cmd")
    # above band: close the valve
    b.arc("t_band_high", "p_close_req")
    b.arc("p_close_req", t("t_valve_close"))
    b.arc("t_valve_close", "p_valve_cmd")
    # actuation: drive the valve, acknowledge
    b.arc("p_valve_cmd", t("t_drive_valve"))
    b.arc("t_drive_valve", "p_driven")
    b.arc("p_driven", t("t_ack_actuation"))
    b.arc("t_ack_actuation", "p_sample_done")
    # the log entry joins the completion of every branch
    b.arc("p_sample_done", t("t_log_sample"))
    b.arc("p_sample_meta", "t_log_sample")

    # ------------------------------------------------------------------
    # Setpoint path: validate -> accept/reject -> gain recomputation
    # ------------------------------------------------------------------
    b.source(SETPOINT_SOURCE, label="Setpoint request",
             cost=_TRANSITION_COSTS["t_setpoint"])
    b.arc(SETPOINT_SOURCE, "p_request_raw")
    b.arc("p_request_raw", t("t_validate_request"))
    b.arc("t_validate_request", "p_valid_state")
    # C3: validation verdict
    b.arc("p_valid_state", t("t_reject_setpoint"))
    b.arc("p_valid_state", t("t_accept_setpoint"))
    b.arc("t_reject_setpoint", "p_rejected")
    b.arc("p_rejected", t("t_notify_ui"))
    b.arc("t_accept_setpoint", "p_gain_state")
    # C4: gain recomputation strategy
    b.arc("p_gain_state", t("t_gain_quick"))
    b.arc("p_gain_state", t("t_gain_full"))
    b.arc("t_gain_quick", "p_new_gains")
    b.arc("t_gain_full", "p_new_gains")
    b.arc("p_new_gains", t("t_commit_params"))

    return b.build()


def default_choice_probabilities() -> Dict[str, Dict[str, float]]:
    """Branch odds of a plant in steady regulation: most samples fall
    within the comfort band, boost is rare, and most setpoint requests
    validate with a quick gain update."""
    return {
        "p_band_state": {"t_band_low": 0.25, "t_band_ok": 0.6, "t_band_high": 0.15},
        "p_boost_state": {"t_heat_normal": 0.8, "t_heat_boost": 0.2},
        "p_valid_state": {"t_reject_setpoint": 0.1, "t_accept_setpoint": 0.9},
        "p_gain_state": {"t_gain_quick": 0.7, "t_gain_full": 0.3},
    }
