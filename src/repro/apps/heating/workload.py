"""Testbench workloads for the heating-control plant.

The sensor loop samples on a fixed period; setpoint requests follow the
*diurnal* arrival process of :func:`repro.runtime.events.diurnal_events`
— people adjust thermostats when they wake up and when they come home,
so the request rate swings sinusoidally over the day
(``arrival="exponential"`` restores memoryless requests for comparison
runs).

:class:`HeatingFleetWorkload` scales the testbench to a building fleet
with per-instance derived seeds, for
:class:`~repro.runtime.fleet.FleetSimulator` and ``repro-qss serve
--family heating``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ...runtime.events import (
    ChoiceSampler,
    Event,
    arrival_events,
    merge_streams,
    periodic_events,
    with_choices,
)
from .model import (
    SAMPLE_CHOICES,
    SAMPLE_SOURCE,
    SETPOINT_CHOICES,
    SETPOINT_SOURCE,
    default_choice_probabilities,
)


@dataclass
class HeatingWorkload:
    """A reproducible heating-plant testbench.

    Attributes
    ----------
    samples:
        Number of periodic temperature samples.
    sample_period:
        Period of the sensor loop.
    setpoint_mean_interval:
        Long-run mean inter-arrival time of setpoint requests.
    arrival:
        Arrival process of the setpoint requests (``"diurnal"`` by
        default, or any of
        :data:`repro.runtime.events.ARRIVAL_PROCESSES`).
    seed:
        Seed for both the arrival process and the choice resolutions.
    probabilities:
        Branch probabilities per choice place; defaults to
        :func:`default_choice_probabilities`.
    """

    samples: int = 50
    sample_period: float = 1.0
    setpoint_mean_interval: float = 6.0
    arrival: str = "diurnal"
    seed: int = 2026
    probabilities: Optional[Mapping[str, Mapping[str, float]]] = None

    def events(self) -> List[Event]:
        """Generate the merged, time-ordered event stream."""
        probabilities = self.probabilities or default_choice_probabilities()
        sampler = ChoiceSampler(
            probabilities,
            seed=self.seed,
            per_source={
                SAMPLE_SOURCE: list(SAMPLE_CHOICES),
                SETPOINT_SOURCE: list(SETPOINT_CHOICES),
            },
        )
        sample_stream = periodic_events(
            SAMPLE_SOURCE, period=self.sample_period, count=self.samples
        )
        # setpoint requests arrive over the sampling horizon
        horizon = sample_stream[-1].time if sample_stream else 0.0
        request_count = max(1, int(horizon / self.setpoint_mean_interval) + 1)
        request_stream = arrival_events(
            self.arrival,
            SETPOINT_SOURCE,
            mean_interval=self.setpoint_mean_interval,
            count=request_count,
            seed=self.seed,
        )
        merged = merge_streams(sample_stream, request_stream)
        return with_choices(merged, sampler)

    def summary(self) -> Dict[str, int]:
        events = self.events()
        return {
            "events": len(events),
            "samples": sum(1 for e in events if e.source == SAMPLE_SOURCE),
            "setpoints": sum(1 for e in events if e.source == SETPOINT_SOURCE),
        }


def make_testbench(
    samples: int = 50, seed: int = 2026, arrival: str = "diurnal"
) -> List[Event]:
    """``samples`` sensor readings plus the concurrent setpoint requests."""
    return HeatingWorkload(samples=samples, seed=seed, arrival=arrival).events()


@dataclass
class HeatingFleetWorkload:
    """A fleet of independent heating-plant testbenches (one per zone).

    Instance ``i`` derives the reproducible, distinct seed
    ``seed * 1_000_003 + i`` for its own arrival process and choice
    sampler, exactly like the ATM fleet workload.
    """

    instances: int = 100
    samples: int = 50
    sample_period: float = 1.0
    setpoint_mean_interval: float = 6.0
    arrival: str = "diurnal"
    seed: int = 2026
    probabilities: Optional[Mapping[str, Mapping[str, float]]] = None

    def instance_seed(self, instance: int) -> int:
        return self.seed * 1_000_003 + instance

    def streams(self) -> List[List[Event]]:
        """One merged, time-ordered event stream per instance."""
        return [
            HeatingWorkload(
                samples=self.samples,
                sample_period=self.sample_period,
                setpoint_mean_interval=self.setpoint_mean_interval,
                arrival=self.arrival,
                seed=self.instance_seed(i),
                probabilities=self.probabilities,
            ).events()
            for i in range(self.instances)
        ]


def make_fleet_testbench(
    instances: int, samples: int = 50, seed: int = 2026, arrival: str = "diurnal"
) -> List[List[Event]]:
    """Per-instance testbenches for an ``instances``-zone heating fleet."""
    return HeatingFleetWorkload(
        instances=instances, samples=samples, seed=seed, arrival=arrival
    ).streams()
