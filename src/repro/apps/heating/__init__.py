"""Heating-control plant (diurnal embedded-control case study)."""

from .model import (
    HEATING_CHOICE_PLACES,
    MODULE_PARTITION,
    SAMPLE_CHOICES,
    SAMPLE_SOURCE,
    SETPOINT_CHOICES,
    SETPOINT_SOURCE,
    build_heating_net,
    default_choice_probabilities,
)
from .workload import (
    HeatingFleetWorkload,
    HeatingWorkload,
    make_fleet_testbench,
    make_testbench,
)

__all__ = [
    "build_heating_net",
    "MODULE_PARTITION",
    "SAMPLE_SOURCE",
    "SETPOINT_SOURCE",
    "SAMPLE_CHOICES",
    "SETPOINT_CHOICES",
    "HEATING_CHOICE_PLACES",
    "default_choice_probabilities",
    "HeatingWorkload",
    "HeatingFleetWorkload",
    "make_testbench",
    "make_fleet_testbench",
]
