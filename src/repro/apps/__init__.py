"""Application case studies built on the public API (currently the ATM server)."""
