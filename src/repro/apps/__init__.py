"""Application case studies built on the public API.

Three reactive systems from the paper's embedded domain, each with an
FCPN model, a module partition and reproducible workloads:

* :mod:`repro.apps.atm` — the ATM server of Section 5 (irregular cell
  arrivals + periodic cell slots);
* :mod:`repro.apps.router` — a packet-router line card (bursty frame
  trains + periodic transmit slots);
* :mod:`repro.apps.heating` — a heating-control plant (periodic sensor
  samples + diurnal setpoint requests).
"""
