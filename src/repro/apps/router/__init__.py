"""Packet-router line card (bursty embedded-networking case study)."""

from .model import (
    MODULE_PARTITION,
    PACKET_CHOICES,
    PACKET_SOURCE,
    ROUTER_CHOICE_PLACES,
    SCHED_CHOICES,
    SCHED_SOURCE,
    build_router_net,
    default_choice_probabilities,
)
from .workload import (
    RouterFleetWorkload,
    RouterWorkload,
    make_fleet_testbench,
    make_testbench,
)

__all__ = [
    "build_router_net",
    "MODULE_PARTITION",
    "PACKET_SOURCE",
    "SCHED_SOURCE",
    "PACKET_CHOICES",
    "SCHED_CHOICES",
    "ROUTER_CHOICE_PLACES",
    "default_choice_probabilities",
    "RouterWorkload",
    "RouterFleetWorkload",
    "make_testbench",
    "make_fleet_testbench",
]
