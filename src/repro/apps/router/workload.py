"""Testbench workloads for the packet-router line card.

Router traffic is the canonical *bursty* arrival process: frames arrive
in trains separated by idle gaps, which is exactly what
:func:`repro.runtime.events.bursty_events` models — so the default
packet stream here is bursty (``arrival="exponential"`` restores
memoryless arrivals for comparison runs).  The transmit-slot SchedTick
is periodic, like the ATM cell-slot clock.

:class:`RouterFleetWorkload` scales the testbench to a line-card fleet
with per-instance derived seeds, for
:class:`~repro.runtime.fleet.FleetSimulator` and ``repro-qss serve
--family router``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ...runtime.events import (
    ChoiceSampler,
    Event,
    arrival_events,
    merge_streams,
    periodic_events,
    with_choices,
)
from .model import (
    PACKET_CHOICES,
    PACKET_SOURCE,
    SCHED_CHOICES,
    SCHED_SOURCE,
    default_choice_probabilities,
)


@dataclass
class RouterWorkload:
    """A reproducible line-card testbench.

    Attributes
    ----------
    packets:
        Number of ingress frame arrivals.
    packet_mean_interval:
        Long-run mean inter-arrival time of frames.
    slot_period:
        Period of the transmit-slot SchedTick.
    arrival:
        Arrival process of the frames (``"bursty"`` by default — packet
        trains — or any of
        :data:`repro.runtime.events.ARRIVAL_PROCESSES`).
    seed:
        Seed for both the arrival process and the choice resolutions.
    probabilities:
        Branch probabilities per choice place; defaults to
        :func:`default_choice_probabilities`.
    """

    packets: int = 50
    packet_mean_interval: float = 1.5
    slot_period: float = 2.0
    arrival: str = "bursty"
    seed: int = 2026
    probabilities: Optional[Mapping[str, Mapping[str, float]]] = None

    def events(self) -> List[Event]:
        """Generate the merged, time-ordered event stream."""
        probabilities = self.probabilities or default_choice_probabilities()
        sampler = ChoiceSampler(
            probabilities,
            seed=self.seed,
            per_source={
                PACKET_SOURCE: list(PACKET_CHOICES),
                SCHED_SOURCE: list(SCHED_CHOICES),
            },
        )
        packet_stream = arrival_events(
            self.arrival,
            PACKET_SOURCE,
            mean_interval=self.packet_mean_interval,
            count=self.packets,
            seed=self.seed,
        )
        # transmit slots run for as long as frames keep arriving (plus
        # one trailing slot to drain the queues)
        horizon = packet_stream[-1].time if packet_stream else 0.0
        slot_count = int(horizon / self.slot_period) + 2
        slot_stream = periodic_events(
            SCHED_SOURCE, period=self.slot_period, count=slot_count
        )
        merged = merge_streams(packet_stream, slot_stream)
        return with_choices(merged, sampler)

    def summary(self) -> Dict[str, int]:
        events = self.events()
        return {
            "events": len(events),
            "packets": sum(1 for e in events if e.source == PACKET_SOURCE),
            "slots": sum(1 for e in events if e.source == SCHED_SOURCE),
        }


def make_testbench(
    packets: int = 50, seed: int = 2026, arrival: str = "bursty"
) -> List[Event]:
    """``packets`` ingress frames plus the concurrent transmit slots."""
    return RouterWorkload(packets=packets, seed=seed, arrival=arrival).events()


@dataclass
class RouterFleetWorkload:
    """A fleet of independent line-card testbenches.

    Instance ``i`` derives the reproducible, distinct seed
    ``seed * 1_000_003 + i`` for its own arrival process and choice
    sampler, exactly like the ATM fleet workload.
    """

    instances: int = 100
    packets: int = 50
    packet_mean_interval: float = 1.5
    slot_period: float = 2.0
    arrival: str = "bursty"
    seed: int = 2026
    probabilities: Optional[Mapping[str, Mapping[str, float]]] = None

    def instance_seed(self, instance: int) -> int:
        return self.seed * 1_000_003 + instance

    def streams(self) -> List[List[Event]]:
        """One merged, time-ordered event stream per instance."""
        return [
            RouterWorkload(
                packets=self.packets,
                packet_mean_interval=self.packet_mean_interval,
                slot_period=self.slot_period,
                arrival=self.arrival,
                seed=self.instance_seed(i),
                probabilities=self.probabilities,
            ).events()
            for i in range(self.instances)
        ]


def make_fleet_testbench(
    instances: int, packets: int = 50, seed: int = 2026, arrival: str = "bursty"
) -> List[List[Event]]:
    """Per-instance testbenches for an ``instances``-strong line-card fleet."""
    return RouterFleetWorkload(
        instances=instances, packets=packets, seed=seed, arrival=arrival
    ).streams()
