"""FCPN model of a packet-router line card.

A second case study in the paper's embedded-networking domain: the
ingress/egress pipeline of a router line card.  Like the ATM server it
is a reactive system with two independent-rate environment inputs —
*Packet*, the irregular (bursty, in practice) arrival of a frame on the
ingress port, and *SchedTick*, the periodic transmit-slot event of the
egress scheduler — and a handful of data-dependent choices resolved by
packet contents and queue occupancy:

* C1 ``p_version_check``: IPv4 or IPv6 header parsing path;
* C2 ``p_acl_state``: the ACL filter accepts or denies the packet;
* C3 ``p_route_state``: FIB lookup hits or misses (miss punts to CPU);
* C4 ``p_admit_state``: the output queue admits or tail-drops;
* C5 ``p_occupancy``: the transmit slot finds backlogged queues or not;
* C6 ``p_policy_state``: strict-priority or weighted-round-robin pick.

Every event quiesces (all produced tokens drain), the net is free
choice, bounded and quasi-statically schedulable — the same properties
the ATM model exhibits, so the whole pipeline (properties, QSS
synthesis, codegen, serving) applies unchanged.
"""

from __future__ import annotations

from typing import Dict, List

from ...petrinet import NetBuilder, PetriNet

#: The two independent-rate environment inputs.
PACKET_SOURCE = "t_packet"
SCHED_SOURCE = "t_sched_tick"

#: Choice places resolved while processing a Packet event, pipeline order.
PACKET_CHOICES = (
    "p_version_check",  # C1: IPv4 / IPv6
    "p_acl_state",      # C2: ACL accept / deny
    "p_route_state",    # C3: FIB hit / miss
    "p_admit_state",    # C4: queue admit / tail drop
)

#: Choice places resolved while processing a SchedTick event.
SCHED_CHOICES = (
    "p_occupancy",      # C5: queues empty / backlogged
    "p_policy_state",   # C6: strict priority / WRR
)

#: All 6 non-deterministic choices of the model.
ROUTER_CHOICE_PLACES = PACKET_CHOICES + SCHED_CHOICES

#: Functional module of every transition (the line-card blocks); the
#: ``modules`` partition of ``repro-qss serve --family router``.
MODULE_PARTITION: Dict[str, List[str]] = {
    "ingress": [
        "t_packet",
        "t_parse_frame",
        "t_ipv4",
        "t_ipv6",
        "t_acl_check",
    ],
    "filter": [
        "t_acl_accept",
        "t_acl_deny",
        "t_count_deny",
        "t_drop_packet",
    ],
    "lookup": [
        "t_fib_lookup",
        "t_route_hit",
        "t_route_miss",
        "t_punt_cpu",
        "t_cpu_done",
    ],
    "queueing": [
        "t_queue_admit",
        "t_queue_drop",
        "t_count_drop",
        "t_drop_done",
        "t_enqueue_pkt",
        "t_enqueue_done",
    ],
    "scheduler": [
        "t_sched_tick",
        "t_sched_poll",
        "t_queues_empty",
        "t_idle_slot",
        "t_queues_backlogged",
        "t_strict_prio",
        "t_wrr_pick",
    ],
    "egress": [
        "t_dequeue_head",
        "t_rewrite_header",
        "t_transmit",
        "t_tx_done",
    ],
}

#: Abstract execution cost per transition; the data-path computations
#: (parsing, FIB lookup, header rewrite) are the heavy steps.
_TRANSITION_COSTS: Dict[str, int] = {
    "t_packet": 1,
    "t_parse_frame": 4,
    "t_ipv4": 2,
    "t_ipv6": 3,
    "t_acl_check": 3,
    "t_acl_accept": 1,
    "t_acl_deny": 1,
    "t_count_deny": 1,
    "t_drop_packet": 1,
    "t_fib_lookup": 5,
    "t_route_hit": 1,
    "t_route_miss": 1,
    "t_punt_cpu": 4,
    "t_cpu_done": 1,
    "t_queue_admit": 1,
    "t_queue_drop": 1,
    "t_count_drop": 1,
    "t_drop_done": 1,
    "t_enqueue_pkt": 3,
    "t_enqueue_done": 1,
    "t_sched_tick": 1,
    "t_sched_poll": 3,
    "t_queues_empty": 1,
    "t_idle_slot": 1,
    "t_queues_backlogged": 1,
    "t_strict_prio": 2,
    "t_wrr_pick": 4,
    "t_dequeue_head": 3,
    "t_rewrite_header": 4,
    "t_transmit": 4,
    "t_tx_done": 1,
}


def build_router_net() -> PetriNet:
    """Build the line-card FCPN (31 transitions, 6 free choices)."""
    b = NetBuilder("packet_router")

    def t(name: str) -> str:
        b.transition(name, cost=_TRANSITION_COSTS.get(name, 1))
        return name

    # ------------------------------------------------------------------
    # Packet path: parse -> ACL -> FIB -> queue admission
    # ------------------------------------------------------------------
    b.source(PACKET_SOURCE, label="Packet arrival",
             cost=_TRANSITION_COSTS["t_packet"])
    b.arc(PACKET_SOURCE, "p_frame_raw")
    b.arc("p_frame_raw", t("t_parse_frame"))
    b.arc("t_parse_frame", "p_version_check")
    # C1: IP version (both parsing paths converge on the ACL check)
    b.arc("p_version_check", t("t_ipv4"))
    b.arc("p_version_check", t("t_ipv6"))
    b.arc("t_ipv4", "p_parsed")
    b.arc("t_ipv6", "p_parsed")
    # header metadata travels in parallel with the version diamond
    b.arc("t_parse_frame", "p_frame_meta")
    b.arc("p_parsed", t("t_acl_check"))
    b.arc("p_frame_meta", "t_acl_check")
    b.arc("t_acl_check", "p_acl_state")
    # C2: ACL verdict
    b.arc("p_acl_state", t("t_acl_accept"))
    b.arc("p_acl_state", t("t_acl_deny"))
    b.arc("t_acl_deny", "p_denied")
    b.arc("p_denied", t("t_count_deny"))
    b.arc("t_count_deny", "p_deny_done")
    b.arc("p_deny_done", t("t_drop_packet"))
    b.arc("t_acl_accept", "p_accepted")
    b.arc("p_accepted", t("t_fib_lookup"))
    b.arc("t_fib_lookup", "p_route_state")
    # C3: FIB lookup outcome
    b.arc("p_route_state", t("t_route_hit"))
    b.arc("p_route_state", t("t_route_miss"))
    b.arc("t_route_miss", "p_punted")
    b.arc("p_punted", t("t_punt_cpu"))
    b.arc("t_punt_cpu", "p_cpu_queued")
    b.arc("p_cpu_queued", t("t_cpu_done"))
    b.arc("t_route_hit", "p_admit_state")
    # C4: output-queue admission
    b.arc("p_admit_state", t("t_queue_admit"))
    b.arc("p_admit_state", t("t_queue_drop"))
    b.arc("t_queue_drop", "p_dropped")
    b.arc("p_dropped", t("t_count_drop"))
    b.arc("t_count_drop", "p_drop_counted")
    b.arc("p_drop_counted", t("t_drop_done"))
    b.arc("t_queue_admit", "p_admitted")
    b.arc("p_admitted", t("t_enqueue_pkt"))
    b.arc("t_enqueue_pkt", "p_enq_ok")
    b.arc("p_enq_ok", t("t_enqueue_done"))

    # ------------------------------------------------------------------
    # SchedTick path: poll occupancy -> pick policy -> transmit
    # ------------------------------------------------------------------
    b.source(SCHED_SOURCE, label="Transmit slot",
             cost=_TRANSITION_COSTS["t_sched_tick"])
    b.arc(SCHED_SOURCE, "p_slot_raw")
    b.arc("p_slot_raw", t("t_sched_poll"))
    b.arc("t_sched_poll", "p_occupancy")
    # slot bookkeeping travels in parallel with the scheduling decision
    b.arc("t_sched_poll", "p_slot_meta")
    # C5: any backlogged queues this slot?
    b.arc("p_occupancy", t("t_queues_empty"))
    b.arc("p_occupancy", t("t_queues_backlogged"))
    b.arc("t_queues_empty", "p_idle")
    b.arc("p_idle", t("t_idle_slot"))
    b.arc("t_idle_slot", "p_slot_done")
    b.arc("t_queues_backlogged", "p_policy_state")
    # C6: scheduling policy for this slot
    b.arc("p_policy_state", t("t_strict_prio"))
    b.arc("p_policy_state", t("t_wrr_pick"))
    b.arc("t_strict_prio", "p_picked")
    b.arc("t_wrr_pick", "p_picked")
    b.arc("p_picked", t("t_dequeue_head"))
    b.arc("t_dequeue_head", "p_head")
    b.arc("p_head", t("t_rewrite_header"))
    b.arc("t_rewrite_header", "p_tx_ready")
    b.arc("p_tx_ready", t("t_transmit"))
    b.arc("t_transmit", "p_slot_done")
    # the slot bookkeeping token joins the completion of either branch
    b.arc("p_slot_done", t("t_tx_done"))
    b.arc("p_slot_meta", "t_tx_done")

    return b.build()


def default_choice_probabilities() -> Dict[str, Dict[str, float]]:
    """Branch odds of a moderately loaded line card: mostly IPv4
    traffic, a permissive ACL, a warm FIB, rare tail drops, and busy
    transmit slots."""
    return {
        "p_version_check": {"t_ipv4": 0.8, "t_ipv6": 0.2},
        "p_acl_state": {"t_acl_accept": 0.9, "t_acl_deny": 0.1},
        "p_route_state": {"t_route_hit": 0.95, "t_route_miss": 0.05},
        "p_admit_state": {"t_queue_admit": 0.9, "t_queue_drop": 0.1},
        "p_occupancy": {"t_queues_empty": 0.25, "t_queues_backlogged": 0.75},
        "p_policy_state": {"t_strict_prio": 0.4, "t_wrr_pick": 0.6},
    }
