"""FCPN model of the ATM server for Virtual Private Networks (Section 5).

The paper evaluates quasi-static scheduling on an industrial ATM server
[Filippi et al. 1998] whose specification is proprietary; this module is
a reconstruction that preserves every property the experiment depends
on (see the substitution note in DESIGN.md):

* the functional structure of Figure 8 — five modules: message
  discarding (MSD), BUFFER, CELL_EXTRACT, WFQ_SCHEDULING and the
  ARBITER/COUNTER around the output port;
* the two environment inputs with independent firing rates: *Cell*, an
  interrupt occurring at irregular times when a non-empty cell enters
  the server, and *Tick*, the periodic cell-slot event that triggers
  forwarding of the next outgoing cell;
* the model size reported in the paper: **49 transitions, 41 places, 11
  free (non-deterministic) choices**;
* the consequences the paper reports: the net is quasi-statically
  schedulable, its valid schedule contains **120 finite complete
  cycles** (one per distinct T-reduction), and the synthesized software
  consists of **two tasks**, one per independent input.

The model keeps WFQ_SCHEDULING as code shared between the two tasks: it
is reachable both from the cell-admission path (first cell enqueued into
an empty buffer) and from the emission path after every transmitted cell
— the "activated either by MSD or by CELL_EXTRACT" behaviour described
in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from ...petrinet import NetBuilder, PetriNet

#: The two independent-rate environment inputs.
CELL_SOURCE = "t_cell"
TICK_SOURCE = "t_tick"

#: Choice places resolved while processing a Cell event, in pipeline order.
CELL_CHOICES = (
    "p_priority_check",   # C1: high- or low-priority virtual circuit
    "p_msd_state",        # C2: message discarding active for this message?
    "p_buffer_state",     # C3: shared buffer full?
    "p_enqueued",         # C4: was the queue empty before this cell?
    "p_wfq_mode",         # C5: new flow or existing flow for WFQ state
)

#: Choice places resolved while processing a Tick event, in pipeline order.
TICK_CHOICES = (
    "p_timer_state",      # T1: even or odd cell slot (housekeeping phase)
    "p_queue_status",     # T2: all per-VC queues empty?
    "p_class_decision",   # T3: single backlogged class or several?
    "p_weight_state",     # T4: cached WFQ weights still valid?
    "p_recompute_state",  # T5: few or many flows to rescan
    "p_backlog_state",    # T6: light or heavy backlog update
)

#: All 11 non-deterministic choices of the model.
ATM_CHOICE_PLACES = CELL_CHOICES + TICK_CHOICES

#: Functional module of every transition — the five blocks of Figure 8.
#: This partition is what the "functional task partitioning" baseline of
#: Table I synthesizes one task per module from.
MODULE_PARTITION: Dict[str, List[str]] = {
    "msd": [
        "t_cell",
        "t_parse_header",
        "t_classify_vc",
        "t_prio_high",
        "t_prio_low",
        "t_msd_check",
        "t_msd_discard",
        "t_count_discard",
        "t_drop_cell",
        "t_msd_accept",
        "t_buffer_full",
        "t_activate_msd",
        "t_reject_cell",
        "t_buffer_space",
    ],
    "buffer": [
        "t_enqueue_cell",
        "t_queue_nonempty",
        "t_ack_enqueue",
        "t_queue_empty",
        "t_wfq_new_flow",
        "t_wfq_existing_flow",
    ],
    "cell_extract": [
        "t_tick",
        "t_advance_clock",
        "t_slot_even",
        "t_slot_odd",
        "t_scan_queues",
        "t_all_empty",
        "t_emit_idle",
        "t_have_cells",
        "t_single_class",
        "t_extract_head",
        "t_multi_class",
        "t_weights_cached",
        "t_use_cached",
        "t_weights_stale",
        "t_few_flows",
        "t_linear_scan",
        "t_many_flows",
        "t_backlog_light",
        "t_update_light",
        "t_backlog_heavy",
        "t_update_heavy",
    ],
    "wfq_scheduling": [
        "t_wfq_start",
        "t_compute_finish",
        "t_update_schedule",
        "t_commit_schedule",
    ],
    "arbiter": [
        "t_arbiter_grant",
        "t_emit_cell",
        "t_update_counter",
        "t_output_done",
    ],
}

#: Abstract execution cost of each transition (in units of the cost
#: model's ``transition_cycles``).  Heavier values mark the data-path
#: computations (header parsing, WFQ finish-time computation), lighter
#: values the bookkeeping steps.
_TRANSITION_COSTS: Dict[str, int] = {
    "t_cell": 1,
    "t_parse_header": 4,
    "t_classify_vc": 3,
    "t_prio_high": 2,
    "t_prio_low": 2,
    "t_msd_check": 3,
    "t_msd_discard": 2,
    "t_count_discard": 1,
    "t_drop_cell": 1,
    "t_msd_accept": 2,
    "t_buffer_full": 2,
    "t_activate_msd": 2,
    "t_reject_cell": 1,
    "t_buffer_space": 2,
    "t_enqueue_cell": 4,
    "t_queue_nonempty": 1,
    "t_ack_enqueue": 1,
    "t_queue_empty": 1,
    "t_wfq_new_flow": 3,
    "t_wfq_existing_flow": 2,
    "t_tick": 1,
    "t_advance_clock": 2,
    "t_slot_even": 1,
    "t_slot_odd": 1,
    "t_scan_queues": 4,
    "t_all_empty": 1,
    "t_emit_idle": 2,
    "t_have_cells": 1,
    "t_single_class": 1,
    "t_extract_head": 3,
    "t_multi_class": 2,
    "t_weights_cached": 1,
    "t_use_cached": 2,
    "t_weights_stale": 1,
    "t_few_flows": 1,
    "t_linear_scan": 4,
    "t_many_flows": 1,
    "t_heap_update": 5,
    "t_backlog_light": 2,
    "t_update_light": 2,
    "t_backlog_heavy": 2,
    "t_update_heavy": 4,
    "t_wfq_start": 2,
    "t_compute_finish": 6,
    "t_update_schedule": 3,
    "t_commit_schedule": 1,
    "t_arbiter_grant": 2,
    "t_emit_cell": 4,
    "t_update_counter": 2,
    "t_output_done": 1,
}


def build_atm_server_net() -> PetriNet:
    """Build the ATM server FCPN (49 transitions, 41 places, 11 choices)."""
    b = NetBuilder("atm_server")

    def t(name: str) -> str:
        b.transition(name, cost=_TRANSITION_COSTS.get(name, 1))
        return name

    # ------------------------------------------------------------------
    # Cell path: MSD admission + BUFFER enqueue (triggered by t_cell)
    # ------------------------------------------------------------------
    b.source(CELL_SOURCE, label="Cell interrupt", cost=_TRANSITION_COSTS["t_cell"])
    b.arc(CELL_SOURCE, "p_cell_raw")
    b.arc("p_cell_raw", t("t_parse_header"))
    b.arc("t_parse_header", "p_cell_parsed")
    b.arc("p_cell_parsed", t("t_classify_vc"))
    b.arc("t_classify_vc", "p_priority_check")
    # C1: priority classification (both branches converge on the MSD check)
    b.arc("p_priority_check", t("t_prio_high"))
    b.arc("p_priority_check", t("t_prio_low"))
    b.arc("t_prio_high", "p_msd_entry")
    b.arc("t_prio_low", "p_msd_entry")
    # header information travels in parallel with the priority diamond
    b.arc("t_parse_header", "p_header_info")
    b.arc("p_msd_entry", t("t_msd_check"))
    b.arc("p_header_info", "t_msd_check")
    b.arc("t_msd_check", "p_msd_state")
    # C2: message discarding state
    b.arc("p_msd_state", t("t_msd_discard"))
    b.arc("p_msd_state", t("t_msd_accept"))
    b.arc("t_msd_discard", "p_discarded")
    b.arc("p_discarded", t("t_count_discard"))
    b.arc("t_count_discard", "p_discard_done")
    b.arc("p_discard_done", t("t_drop_cell"))
    b.arc("t_msd_accept", "p_buffer_state")
    # C3: shared buffer occupancy
    b.arc("p_buffer_state", t("t_buffer_full"))
    b.arc("p_buffer_state", t("t_buffer_space"))
    b.arc("t_buffer_full", "p_congestion")
    b.arc("p_congestion", t("t_activate_msd"))
    b.arc("t_activate_msd", "p_msd_updated")
    b.arc("p_msd_updated", t("t_reject_cell"))
    b.arc("t_buffer_space", "p_space_ok")
    b.arc("p_space_ok", t("t_enqueue_cell"))
    b.arc("t_enqueue_cell", "p_enqueued")
    # C4: was the per-VC queue empty before this cell?
    b.arc("p_enqueued", t("t_queue_nonempty"))
    b.arc("p_enqueued", t("t_queue_empty"))
    b.arc("t_queue_nonempty", "p_enq_done")
    b.arc("p_enq_done", t("t_ack_enqueue"))
    b.arc("t_queue_empty", "p_wfq_mode")
    # C5: new flow vs. existing flow (both request a WFQ update)
    b.arc("p_wfq_mode", t("t_wfq_new_flow"))
    b.arc("p_wfq_mode", t("t_wfq_existing_flow"))
    b.arc("t_wfq_new_flow", "p_wfq_req")
    b.arc("t_wfq_existing_flow", "p_wfq_req")

    # ------------------------------------------------------------------
    # Tick path: CELL_EXTRACT selection (triggered by t_tick)
    # ------------------------------------------------------------------
    b.source(TICK_SOURCE, label="Tick (cell slot)", cost=_TRANSITION_COSTS["t_tick"])
    b.arc(TICK_SOURCE, "p_tick_raw")
    b.arc("p_tick_raw", t("t_advance_clock"))
    b.arc("t_advance_clock", "p_timer_state")
    # T1: even/odd slot housekeeping (both converge on the queue scan)
    b.arc("p_timer_state", t("t_slot_even"))
    b.arc("p_timer_state", t("t_slot_odd"))
    b.arc("t_slot_even", "p_extract_entry")
    b.arc("t_slot_odd", "p_extract_entry")
    # slot bookkeeping travels in parallel with the even/odd diamond
    b.arc("t_advance_clock", "p_slot_info")
    b.arc("p_extract_entry", t("t_scan_queues"))
    b.arc("p_slot_info", "t_scan_queues")
    b.arc("t_scan_queues", "p_queue_status")
    # T2: any backlogged cells at all?
    b.arc("p_queue_status", t("t_all_empty"))
    b.arc("p_queue_status", t("t_have_cells"))
    b.arc("t_all_empty", "p_idle_slot")
    b.arc("p_idle_slot", t("t_emit_idle"))
    b.arc("t_have_cells", "p_class_decision")
    # T3: one backlogged class or several?
    b.arc("p_class_decision", t("t_single_class"))
    b.arc("p_class_decision", t("t_multi_class"))
    b.arc("t_single_class", "p_single_head")
    b.arc("p_single_head", t("t_extract_head"))
    b.arc("t_extract_head", "p_emit_req")
    b.arc("t_multi_class", "p_weight_state")
    # T4: cached WFQ weights usable?
    b.arc("p_weight_state", t("t_weights_cached"))
    b.arc("p_weight_state", t("t_weights_stale"))
    b.arc("t_weights_cached", "p_cached")
    b.arc("p_cached", t("t_use_cached"))
    b.arc("t_use_cached", "p_emit_req")
    b.arc("t_weights_stale", "p_recompute_state")
    # T5: few or many flows to rescan
    b.arc("p_recompute_state", t("t_few_flows"))
    b.arc("p_recompute_state", t("t_many_flows"))
    b.arc("t_few_flows", "p_few")
    b.arc("p_few", t("t_linear_scan"))
    b.arc("t_linear_scan", "p_emit_req")
    b.arc("t_many_flows", "p_backlog_state")
    # T6: light or heavy backlog update (both converge on the emission)
    b.arc("p_backlog_state", t("t_backlog_light"))
    b.arc("p_backlog_state", t("t_backlog_heavy"))
    b.arc("t_backlog_light", "p_light")
    b.arc("p_light", t("t_update_light"))
    b.arc("t_update_light", "p_emit_req")
    b.arc("t_backlog_heavy", "p_heavy")
    b.arc("p_heavy", t("t_update_heavy"))
    b.arc("t_update_heavy", "p_emit_req")

    # ------------------------------------------------------------------
    # ARBITER / COUNTER around the output port
    # ------------------------------------------------------------------
    b.arc("p_emit_req", t("t_arbiter_grant"))
    b.arc("t_arbiter_grant", "p_granted")
    b.arc("t_arbiter_grant", "p_grant_info")
    b.arc("p_granted", t("t_emit_cell"))
    b.arc("t_emit_cell", "p_emitted")
    b.arc("t_emit_cell", "p_emit_log")
    b.arc("p_emitted", t("t_update_counter"))
    b.arc("p_grant_info", "t_update_counter")
    b.arc("t_update_counter", "p_count_done")
    b.arc("t_update_counter", "p_wfq_req")
    b.arc("p_count_done", t("t_output_done"))
    b.arc("p_emit_log", "t_output_done")

    # ------------------------------------------------------------------
    # WFQ_SCHEDULING (shared by the Cell and Tick paths)
    # ------------------------------------------------------------------
    b.arc("p_wfq_req", t("t_wfq_start"))
    b.arc("t_wfq_start", "p_wfq_calc")
    b.arc("t_wfq_start", "p_wfq_ctx")
    b.arc("p_wfq_calc", t("t_compute_finish"))
    b.arc("t_compute_finish", "p_wfq_time")
    b.arc("p_wfq_time", t("t_update_schedule"))
    b.arc("p_wfq_ctx", "t_update_schedule")
    b.arc("t_update_schedule", "p_wfq_done")
    b.arc("p_wfq_done", t("t_commit_schedule"))

    return b.build()


def default_choice_probabilities() -> Dict[str, Dict[str, float]]:
    """Branch probabilities used by the testbench workload.

    The probabilities describe a moderately loaded server: most cells are
    accepted and enqueued into a non-empty queue, the buffer rarely
    overflows, and most cell slots find backlogged traffic.
    """
    return {
        # Cell path
        "p_priority_check": {"t_prio_high": 0.3, "t_prio_low": 0.7},
        "p_msd_state": {"t_msd_discard": 0.1, "t_msd_accept": 0.9},
        "p_buffer_state": {"t_buffer_full": 0.05, "t_buffer_space": 0.95},
        "p_enqueued": {"t_queue_nonempty": 0.7, "t_queue_empty": 0.3},
        "p_wfq_mode": {"t_wfq_new_flow": 0.4, "t_wfq_existing_flow": 0.6},
        # Tick path
        "p_timer_state": {"t_slot_even": 0.5, "t_slot_odd": 0.5},
        "p_queue_status": {"t_all_empty": 0.2, "t_have_cells": 0.8},
        "p_class_decision": {"t_single_class": 0.4, "t_multi_class": 0.6},
        "p_weight_state": {"t_weights_cached": 0.5, "t_weights_stale": 0.5},
        "p_recompute_state": {"t_few_flows": 0.6, "t_many_flows": 0.4},
        "p_backlog_state": {"t_backlog_light": 0.7, "t_backlog_heavy": 0.3},
    }
