"""ATM server for Virtual Private Networks (the Section 5 case study)."""

from .model import (
    ATM_CHOICE_PLACES,
    CELL_CHOICES,
    CELL_SOURCE,
    MODULE_PARTITION,
    TICK_CHOICES,
    TICK_SOURCE,
    build_atm_server_net,
    default_choice_probabilities,
)
from .workload import (
    AtmFleetWorkload,
    AtmWorkload,
    make_fleet_testbench,
    make_testbench,
)

__all__ = [
    "build_atm_server_net",
    "MODULE_PARTITION",
    "CELL_SOURCE",
    "TICK_SOURCE",
    "CELL_CHOICES",
    "TICK_CHOICES",
    "ATM_CHOICE_PLACES",
    "default_choice_probabilities",
    "AtmWorkload",
    "AtmFleetWorkload",
    "make_testbench",
    "make_fleet_testbench",
]
