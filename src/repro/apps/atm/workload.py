"""Testbench workloads for the ATM server experiments.

The paper's Table I uses "a testbench of 50 ATM cells".  The workload
here reproduces that setup: a configurable number of *Cell* events with
irregular (exponential) inter-arrival times, interleaved with the
periodic *Tick* events that occur while the cells are being served, each
event carrying the data-dependent choice resolutions drawn from the
probabilities in :func:`repro.apps.atm.model.default_choice_probabilities`.

:class:`AtmFleetWorkload` scales the testbench to a *server fleet*: N
independent ATM server instances, each driven by its own reproducible
stream (per-instance derived seeds for both the arrival process and the
choice sampler), for :class:`~repro.runtime.fleet.FleetSimulator` and
the ``repro-qss serve`` subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ...runtime.events import (
    ChoiceSampler,
    Event,
    arrival_events,
    merge_streams,
    periodic_events,
    with_choices,
)
from .model import (
    CELL_CHOICES,
    CELL_SOURCE,
    TICK_CHOICES,
    TICK_SOURCE,
    default_choice_probabilities,
)


@dataclass
class AtmWorkload:
    """A reproducible ATM testbench.

    Attributes
    ----------
    cells:
        Number of ATM cell arrivals (the paper uses 50).
    cell_mean_interval:
        Mean inter-arrival time of cells, in abstract time units.
    tick_period:
        Period of the cell-slot Tick.
    arrival:
        Arrival process of the cells (``"exponential"`` by default — the
        paper's memoryless testbench — or any of
        :data:`repro.runtime.events.ARRIVAL_PROCESSES`).
    seed:
        Seed for both the arrival process and the choice resolutions.
    probabilities:
        Branch probabilities per choice place; defaults to
        :func:`default_choice_probabilities`.
    """

    cells: int = 50
    cell_mean_interval: float = 2.5
    tick_period: float = 2.0
    arrival: str = "exponential"
    seed: int = 2026
    probabilities: Optional[Mapping[str, Mapping[str, float]]] = None

    def events(self) -> List[Event]:
        """Generate the merged, time-ordered event stream."""
        probabilities = self.probabilities or default_choice_probabilities()
        sampler = ChoiceSampler(
            probabilities,
            seed=self.seed,
            per_source={
                CELL_SOURCE: list(CELL_CHOICES),
                TICK_SOURCE: list(TICK_CHOICES),
            },
        )
        cell_stream = arrival_events(
            self.arrival,
            CELL_SOURCE,
            mean_interval=self.cell_mean_interval,
            count=self.cells,
            seed=self.seed,
        )
        # Ticks run for as long as cells keep arriving (plus one trailing
        # slot to drain), which is how a cell-slot clock behaves.
        horizon = cell_stream[-1].time if cell_stream else 0.0
        tick_count = int(horizon / self.tick_period) + 2
        tick_stream = periodic_events(
            TICK_SOURCE, period=self.tick_period, count=tick_count
        )
        merged = merge_streams(cell_stream, tick_stream)
        return with_choices(merged, sampler)

    def summary(self) -> Dict[str, int]:
        events = self.events()
        return {
            "events": len(events),
            "cells": sum(1 for e in events if e.source == CELL_SOURCE),
            "ticks": sum(1 for e in events if e.source == TICK_SOURCE),
        }


def make_testbench(
    cells: int = 50, seed: int = 2026, arrival: str = "exponential"
) -> List[Event]:
    """The Table I testbench: ``cells`` ATM cells plus the concurrent Ticks."""
    return AtmWorkload(cells=cells, seed=seed, arrival=arrival).events()


@dataclass
class AtmFleetWorkload:
    """A fleet of independent ATM server testbenches.

    Attributes
    ----------
    instances:
        Number of concurrent server instances.
    cells / cell_mean_interval / tick_period / probabilities:
        Per-instance testbench parameters (see :class:`AtmWorkload`).
    seed:
        Fleet seed; instance ``i`` derives the reproducible, distinct
        seed ``seed * 1_000_003 + i`` for its own arrival process and
        choice sampler.
    """

    instances: int = 100
    cells: int = 50
    cell_mean_interval: float = 2.5
    tick_period: float = 2.0
    arrival: str = "exponential"
    seed: int = 2026
    probabilities: Optional[Mapping[str, Mapping[str, float]]] = None

    def instance_seed(self, instance: int) -> int:
        return self.seed * 1_000_003 + instance

    def streams(self) -> List[List[Event]]:
        """One merged, time-ordered event stream per instance."""
        return [
            AtmWorkload(
                cells=self.cells,
                cell_mean_interval=self.cell_mean_interval,
                tick_period=self.tick_period,
                arrival=self.arrival,
                seed=self.instance_seed(i),
                probabilities=self.probabilities,
            ).events()
            for i in range(self.instances)
        ]


def make_fleet_testbench(
    instances: int, cells: int = 50, seed: int = 2026, arrival: str = "exponential"
) -> List[List[Event]]:
    """Per-instance testbenches for an ``instances``-strong ATM server fleet."""
    return AtmFleetWorkload(
        instances=instances, cells=cells, seed=seed, arrival=arrival
    ).streams()
